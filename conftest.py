"""Repository-root pytest configuration.

Puts ``src`` on ``sys.path`` (so the suite runs with or without
``PYTHONPATH=src``) and registers the repro-bundle plugin: tests driving a
``repro.check.replay.Scenario`` dump a replay bundle on failure (pytest
requires ``pytest_plugins`` to be declared in the rootdir conftest).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))

pytest_plugins = ("repro.check.pytest_plugin", "pytester")
