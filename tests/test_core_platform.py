"""Tests for the IndexPlatform facade: multi-index hosting, storage,
refinement modes, reindexing, and the storage Shard."""

import numpy as np
import pytest

from repro.core.platform import IndexPlatform, take
from repro.core.storage import Shard
from repro.dht.ring import ChordRing
from repro.metric.strings import EditDistanceMetric
from repro.metric.transforms import BoundedMetric
from repro.metric.vector import EuclideanMetric
from repro.sim.network import ConstantLatency

DIM = 4
METRIC = EuclideanMetric(box=(0, 100), dim=DIM)


def _platform(n_nodes=16, seed=0):
    latency = ConstantLatency(n_nodes, delay=0.01)
    ring = ChordRing.build(n_nodes, m=20, seed=seed, latency=latency, pns=False)
    return IndexPlatform(ring)


def _data(seed=0, n=300):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, 100, size=(3, DIM))
    return np.clip(centers[rng.integers(0, 3, n)] + rng.normal(0, 5, (n, DIM)), 0, 100)


class TestShard:
    def test_empty(self):
        s = Shard(3)
        assert len(s) == 0
        assert s.load == 0
        assert s.range_search(np.zeros(3), np.ones(3)).size == 0

    def test_add_and_search(self):
        s = Shard(2)
        s.add(
            np.array([1, 2, 3], dtype=np.uint64),
            np.array([[0.1, 0.1], [0.5, 0.5], [0.9, 0.9]]),
            np.array([10, 20, 30]),
        )
        pos = s.range_search(np.array([0.0, 0.0]), np.array([0.6, 0.6]))
        assert s.object_ids[pos].tolist() == [10, 20]

    def test_key_range_filter(self):
        s = Shard(1)
        s.add(
            np.array([5, 10, 15], dtype=np.uint64),
            np.array([[0.5], [0.5], [0.5]]),
            np.array([1, 2, 3]),
        )
        pos = s.range_search(np.array([0.0]), np.array([1.0]), key_lo=6, key_hi=14)
        assert s.object_ids[pos].tolist() == [2]

    def test_clear(self):
        s = Shard(2)
        s.add(np.array([1], dtype=np.uint64), np.array([[0.1, 0.1]]), np.array([7]))
        s.clear()
        assert len(s) == 0
        assert s.points.shape == (0, 2)


class TestTake:
    def test_array(self):
        a = np.arange(10)
        assert take(a, 3) == 3
        np.testing.assert_array_equal(take(a, [1, 2]), [1, 2])

    def test_list(self):
        xs = ["a", "b", "c"]
        assert take(xs, 1) == "b"
        assert take(xs, np.array([0, 2])) == ["a", "c"]

    def test_sparse(self):
        from scipy import sparse

        X = sparse.csr_matrix(np.eye(3))
        assert take(X, 1).shape == (1, 3)


class TestIndexLifecycle:
    def test_create_and_query(self):
        platform = _platform()
        data = _data()
        idx = platform.create_index("a", data, METRIC, k=3, seed=0)
        assert idx.total_entries() == len(data)
        res = platform.query("a", data[0], radius=20.0)
        assert res and res[0].object_id == 0

    def test_entries_conserved_across_nodes(self):
        platform = _platform()
        data = _data()
        idx = platform.create_index("a", data, METRIC, k=3, seed=0)
        assert idx.load_distribution().sum() == len(data)

    def test_entries_stored_at_owners(self):
        platform = _platform()
        data = _data()
        idx = platform.create_index("a", data, METRIC, k=3, seed=0)
        mask = np.uint64((1 << idx.m) - 1)
        for node, shard in idx.shards.items():
            for key in shard.keys:
                ring_key = int((key + np.uint64(idx.rotation)) & mask)
                assert platform.ring.successor_of(ring_key) is node

    def test_duplicate_name_rejected(self):
        platform = _platform()
        data = _data()
        platform.create_index("a", data, METRIC, k=2, seed=0)
        with pytest.raises(ValueError):
            platform.create_index("a", data, METRIC, k=2, seed=0)

    def test_drop_index(self):
        platform = _platform()
        platform.create_index("a", _data(), METRIC, k=2, seed=0)
        platform.drop_index("a")
        assert "a" not in platform.indexes

    def test_multiple_indexes_different_types(self):
        """The headline feature: several indexes over different data types on
        one overlay, no extra routing structures."""
        platform = _platform()
        vec = _data()
        platform.create_index("vectors", vec, METRIC, k=3, seed=0)
        seqs = ["acgtacgt", "acgtaccc", "ttttgggg", "ttttggga", "cgcgcgcg"] * 20
        platform.create_index(
            "dna", seqs, BoundedMetric(EditDistanceMetric()), k=2,
            selection="kmedoids", boundary="metric", seed=1,
        )
        rv = platform.query("vectors", vec[0], radius=25.0)
        assert rv[0].object_id == 0
        rs = platform.query("dna", "acgtacgt", radius=0.5)
        got = {e.object_id for e in rs}
        assert 0 in got  # itself (and its duplicates)

    def test_node_load_sums_over_indexes(self):
        platform = _platform()
        platform.create_index("a", _data(0), METRIC, k=2, seed=0)
        platform.create_index("b", _data(1), METRIC, k=2, seed=1, rotation=True)
        node = platform.ring.nodes()[0]
        assert platform.node_load(node) == (
            platform.indexes["a"].shards[node].load
            + platform.indexes["b"].shards[node].load
        )
        assert platform.load_distribution().sum() == 600


class TestRefineModes:
    def test_index_mode_is_lower_bound(self):
        platform = _platform()
        data = _data()
        platform.create_index("a", data, METRIC, k=3, refine_mode="index", seed=0)
        res = platform.query("a", data[0], radius=25.0, top_k=10 ** 6)
        for e in res:
            assert e.distance <= METRIC.distance(data[0], data[e.object_id]) + 1e-9

    def test_bad_mode_rejected(self):
        platform = _platform()
        with pytest.raises(ValueError):
            platform.create_index("a", _data(), METRIC, k=2, refine_mode="psychic")


class TestReindex:
    def test_adoption_improves_or_keeps(self):
        platform = _platform()
        data = _data()
        platform.create_index("a", data, METRIC, k=3, selection="greedy", seed=0)
        old = platform.indexes["a"]
        report = platform.reindex("a", selection="kmeans", threshold=0.0, seed=9)
        assert {"old_score", "new_score", "adopted", "moved"} <= set(report)
        if report["adopted"]:
            assert platform.indexes["a"] is not old
            # index still answers correctly after migration
            res = platform.query("a", data[0], radius=20.0)
            assert res[0].object_id == 0
        else:
            assert platform.indexes["a"] is old

    def test_high_threshold_blocks_adoption(self):
        platform = _platform()
        platform.create_index("a", _data(), METRIC, k=3, selection="kmeans", seed=0)
        report = platform.reindex("a", selection="kmeans", threshold=1e9, seed=1)
        assert report["adopted"] == 0.0


class TestFilteringScore:
    def test_kmeans_filters_better_than_random_single(self):
        platform = _platform()
        data = _data()
        platform.create_index("good", data, METRIC, k=5, selection="kmeans", seed=0)
        score = platform.indexes["good"].filtering_score(data, seed=0)
        assert 0.0 < score <= 1.0
