"""Properties of the lazy coordinate latency model.

CoordinateLatency replaces the O(n²) King matrix with synthetic coordinates
and hashed per-pair jitter, so its contract is behavioural rather than
tabular: delays are *one-way* values (directionally independent draws, not
forced-symmetric), fully determined by the seed, zero on self-loops, and —
for the King-calibrated constructor — the sampled mean RTT must sit within
10% of the measured King mean (0.180 s).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.king import KING_MEAN_RTT, king_coordinate_model
from repro.sim.network import CoordinateLatency


def _model(n_hosts: int, seed: int, jitter: float = 0.35) -> CoordinateLatency:
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0.0, 1.0, size=(n_hosts, 2))
    return CoordinateLatency(
        coords, seconds_per_unit=0.1, jitter_sigma=jitter, floor=0.002, seed=seed
    )


class TestCoordinateLatencyProperties:
    @given(
        seed=st.integers(0, 2**32 - 1),
        n_hosts=st.integers(2, 64),
        data=st.data(),
    )
    @settings(max_examples=50)
    def test_deterministic_per_seed(self, seed, n_hosts, data):
        a = data.draw(st.integers(0, n_hosts - 1))
        b = data.draw(st.integers(0, n_hosts - 1))
        m1, m2 = _model(n_hosts, seed), _model(n_hosts, seed)
        assert m1.latency(a, b) == m2.latency(a, b)
        hosts = np.arange(n_hosts)
        np.testing.assert_array_equal(m1.latency_row(a, hosts), m2.latency_row(a, hosts))

    @given(seed=st.integers(0, 2**32 - 1), n_hosts=st.integers(2, 64))
    @settings(max_examples=50)
    def test_one_way_values_positive_and_zero_on_self(self, seed, n_hosts):
        m = _model(n_hosts, seed)
        for a in range(min(n_hosts, 8)):
            row = m.latency_row(a, np.arange(n_hosts))
            assert row[a] == 0.0
            others = np.delete(row, a)
            assert np.all(others > 0)

    @given(n_hosts=st.integers(3, 48), seed=st.integers(0, 1000))
    @settings(max_examples=30)
    def test_directions_are_independent_draws(self, n_hosts, seed):
        """Jitter is per ordered pair: across all pairs the two directions
        must not be systematically equal (symmetric-free one-way delays)."""
        m = _model(n_hosts, seed, jitter=0.5)
        hosts = np.arange(n_hosts)
        fwd = np.concatenate([m.latency_row(a, hosts)[a + 1 :] for a in hosts[:-1]])
        rev = np.concatenate(
            [np.array([m.latency(b, a) for b in hosts[a + 1 :]]) for a in hosts[:-1]]
        )
        assert not np.allclose(fwd, rev)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25)
    def test_latency_row_matches_pairs(self, seed):
        m = _model(16, seed)
        for a in (0, 7, 15):
            row = m.latency_row(a, np.arange(16))
            pairs = m.latency_pairs(
                np.full(16, a, dtype=np.int64), np.arange(16, dtype=np.int64)
            )
            np.testing.assert_array_equal(row, pairs)

    @given(s1=st.integers(0, 2**31), s2=st.integers(0, 2**31))
    @settings(max_examples=25)
    def test_different_seeds_differ(self, s1, s2):
        if s1 == s2:
            return
        m1, m2 = _model(8, s1), _model(8, s2)
        hosts = np.arange(8)
        assert not np.array_equal(m1.latency_row(0, hosts), m2.latency_row(0, hosts))


class TestKingCalibration:
    @given(seed=st.integers(0, 100))
    @settings(max_examples=10)
    def test_sampled_mean_rtt_within_10pct(self, seed):
        m = king_coordinate_model(n_hosts=512, seed=seed)
        rng = np.random.default_rng(seed + 1)
        a = rng.integers(0, 512, size=4096)
        b = rng.integers(0, 512, size=4096)
        ok = a != b
        rtt = m.latency_pairs(a[ok], b[ok]) + m.latency_pairs(b[ok], a[ok])
        assert abs(float(rtt.mean()) - KING_MEAN_RTT) <= 0.1 * KING_MEAN_RTT

    def test_mean_rtt_method_agrees(self):
        m = king_coordinate_model(n_hosts=256, seed=3)
        assert abs(m.mean_rtt(sample=4096, seed=9) - KING_MEAN_RTT) < 0.1 * KING_MEAN_RTT

    def test_scales_to_100k_hosts(self):
        m = king_coordinate_model(n_hosts=100_000, seed=0)
        assert m.n_hosts == 100_000
        # memory is O(n): coordinates only, no pairwise matrix
        assert m.coords.nbytes < 4_000_000
        assert m.latency(3, 70_000) > 0
