"""The live ops surface: dashboard rendering and the HTTP endpoint."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.obs.export import write_jsonl
from repro.obs.ops import (
    ObsHTTPServer,
    read_health_jsonl,
    render_top,
    serve_files,
    serve_registry,
    sparkline,
    throughput_series,
)
from repro.obs.registry import MetricsRegistry


def _health_rows():
    rows = []
    for i in range(4):
        rows.append({
            "time": float(i),
            "event_queue_depth": 2,
            "in_flight_branches": 1,
            "live_nodes": 0,
            "total_nodes": 0,
            "load_deciles": [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0],
            "extra": {"live_nodes": 500.0, "routed_total": 1000.0 * i},
        })
    return rows


class TestReadHealthJsonl:
    def test_tolerates_partial_trailing_line(self, tmp_path):
        p = tmp_path / "health.jsonl"
        p.write_text(json.dumps({"time": 1.0}) + "\n" + '{"time": 2.0, "ev')
        rows = read_health_jsonl(p)
        assert rows == [{"time": 1.0}]

    def test_missing_file_is_empty(self, tmp_path):
        assert read_health_jsonl(tmp_path / "nope.jsonl") == []

    def test_reads_file_like(self):
        import io

        assert read_health_jsonl(io.StringIO('{"time": 3.0}\n')) == [{"time": 3.0}]


class TestThroughput:
    def test_rate_from_cumulative_probe(self):
        rates = throughput_series(_health_rows())
        assert rates == [1000.0, 1000.0, 1000.0]

    def test_skips_samples_without_probe(self):
        rows = _health_rows()
        rows.insert(2, {"time": 1.5, "extra": {}})
        assert throughput_series(rows) == [1000.0, 1000.0, 1000.0]

    def test_empty(self):
        assert throughput_series([]) == []


class TestSparkline:
    def test_empty_and_flat(self):
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == "  "

    def test_ramps_and_truncates(self):
        s = sparkline(list(range(100)), width=8)
        assert len(s) == 8
        assert s[-1] == "@"  # the max lands on the top ramp char


class TestRenderTop:
    def test_empty(self):
        assert "no health samples" in render_top([])

    def test_dashboard_fields(self):
        text = render_top(_health_rows())
        assert "throughput" in text and "1,000 q/s" in text
        assert "queue depth" in text
        # live-node count comes from the extra probe when the field is 0
        assert "live nodes" in text and "500" in text
        assert "load deciles" in text and "p100=10" in text
        assert "routed_total=3000" in text

    def test_metrics_rows_rendered(self):
        metrics = [
            {"name": "scale_query_latency_seconds", "type": "histogram",
             "p50": 0.1, "p90": 0.2, "p99": 0.3},
            {"name": "scale_query_hops", "type": "histogram",
             "p50": 4.0, "p99": 9.0},
            {"name": "scale_queries_routed_total", "type": "counter",
             "value": 4000.0},
        ]
        text = render_top(_health_rows(), metrics_rows=metrics)
        assert "latency      p50=0.100s" in text
        assert "hops         p50=4.0" in text
        assert "routed" in text and "4,000" in text


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.read().decode("utf-8")


def _get_error_code(url):
    # HTTPError doubles as the (socket-backed) response; close it or the
    # ResourceWarning trips filterwarnings=error at the next gc
    try:
        _get(url)
    except urllib.error.HTTPError as err:
        err.close()
        return err.code
    raise AssertionError(f"expected an HTTP error from {url}")


class TestHTTPServer:
    def test_routes(self):
        rows = _health_rows()
        with ObsHTTPServer(
            metrics_fn=lambda: "m_total 1.0\n", health_fn=lambda: rows
        ) as srv:
            status, body = _get(srv.url + "/metrics")
            assert status == 200 and body == "m_total 1.0\n"
            _, body = _get(srv.url + "/health")
            assert json.loads(body)["time"] == 3.0
            _, body = _get(srv.url + "/health/series")
            assert len(json.loads(body)) == 4
            status, body = _get(srv.url + "/healthz")
            assert body == "ok\n"
            assert _get_error_code(srv.url + "/nope") == 404

    def test_source_error_becomes_500(self):
        def boom():
            raise RuntimeError("source died")

        with ObsHTTPServer(metrics_fn=boom) as srv:
            assert _get_error_code(srv.url + "/metrics") == 500

    def test_missing_sources_serve_empty(self):
        with ObsHTTPServer() as srv:
            assert _get(srv.url + "/metrics")[1] == ""
            assert json.loads(_get(srv.url + "/health")[1]) == {}

    def test_serve_registry(self):
        reg = MetricsRegistry()
        reg.counter("demo_total", "demo").add(3.0)
        with serve_registry(reg) as srv:
            _, body = _get(srv.url + "/metrics")
            assert "demo_total 3.0" in body

    def test_serve_files_tails_live_writer(self, tmp_path):
        metrics = tmp_path / "metrics.jsonl"
        health = tmp_path / "health.jsonl"
        write_jsonl(
            [{"name": "x_total", "type": "counter", "help": "", "value": 1.0,
              "labels": {}}],
            metrics,
        )
        health.write_text(json.dumps({"time": 1.0}) + "\n")
        with serve_files(metrics_path=metrics, health_path=health) as srv:
            assert "x_total 1.0" in _get(srv.url + "/metrics")[1]
            assert json.loads(_get(srv.url + "/health")[1])["time"] == 1.0
            # append — the endpoint re-reads per request, so it tracks
            with open(health, "a", encoding="utf-8") as fh:
                fh.write(json.dumps({"time": 2.0}) + "\n")
            assert json.loads(_get(srv.url + "/health")[1])["time"] == 2.0
