"""Golden replay bundles pin the engine's exact event schedule.

The four bundles under ``tests/golden/replay/`` were recorded before the
hot-path vectorization (PR 6) and cover both fault-free and faulty
scenarios.  Any optimisation that perturbs a single event's time, order or
fault draw flips the fingerprint — these tests are the bit-identical
gate named in ISSUE 6's acceptance criteria, run as part of tier-1 rather
than only by hand via ``repro replay``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.check.replay import replay_file

GOLDEN_DIR = Path(__file__).resolve().parent / "golden" / "replay"
BUNDLES = sorted(GOLDEN_DIR.glob("*.json"))


def test_golden_bundles_exist():
    assert len(BUNDLES) == 4, [b.name for b in BUNDLES]


@pytest.mark.parametrize("bundle", BUNDLES, ids=lambda b: b.stem)
def test_replay_is_bit_identical(bundle):
    identical, diffs, report = replay_file(bundle)
    assert identical, f"{bundle.name} diverged from its recording: {diffs}"
    assert report.fingerprint.events > 0
