"""Tests for Morton/Hilbert curves and interval decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.index_space import IndexSpaceBounds
from repro.core.lph import lp_hash_batch
from repro.core.sfc import (
    decompose_rect_to_intervals,
    dequantize_cell,
    hilbert_decode,
    hilbert_encode,
    morton_decode,
    morton_encode,
    quantize,
)


class TestQuantize:
    def test_corners(self):
        lows, highs = np.zeros(2), np.ones(2)
        np.testing.assert_array_equal(quantize([[0.0, 0.0]], lows, highs, 3), [[0, 0]])
        np.testing.assert_array_equal(quantize([[1.0, 1.0]], lows, highs, 3), [[7, 7]])

    def test_boundary_goes_lower(self):
        lows, highs = np.zeros(1), np.ones(1)
        assert quantize([[0.5]], lows, highs, 1)[0, 0] == 0

    def test_matches_lph_tie_rule(self):
        """quantize + morton == the paper's Algorithm 2 bit for bit."""
        rng = np.random.default_rng(0)
        k, p = 3, 5
        bounds = IndexSpaceBounds.uniform(k, 0.0, 1.0)
        pts = rng.uniform(0, 1, size=(200, k))
        lph = lp_hash_batch(pts, bounds, k * p)
        cells = quantize(pts, bounds.lows, bounds.highs, p)
        morton = morton_encode(cells, p)
        np.testing.assert_array_equal(lph, morton)

    def test_dequantize_roundtrip(self):
        lows, highs = np.zeros(2), np.full(2, 8.0)
        lo, hi = dequantize_cell([[3, 5]], lows, highs, 3)
        np.testing.assert_allclose(lo, [[3.0, 5.0]])
        np.testing.assert_allclose(hi, [[4.0, 6.0]])


class TestMorton:
    def test_2d_order(self):
        # classic Z: (0,0)=0 (1,0)=? bit layout: dim0 first -> key bits x0 y0 x1 y1...
        cells = np.array([[0, 0], [1, 0], [0, 1], [1, 1]])
        keys = morton_encode(cells, 1)
        assert keys.tolist() == [0, 2, 1, 3]

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_roundtrip(self, data):
        k = data.draw(st.integers(1, 4))
        p = data.draw(st.integers(1, 8))
        n = data.draw(st.integers(1, 10))
        cells = np.asarray(
            data.draw(
                st.lists(
                    st.lists(st.integers(0, 2**p - 1), min_size=k, max_size=k),
                    min_size=n, max_size=n,
                )
            )
        )
        keys = morton_encode(cells, p)
        np.testing.assert_array_equal(morton_decode(keys, k, p), cells)


class TestHilbert:
    def test_2d_first_order(self):
        """The order-1 2-D Hilbert curve visits the quadrants in a U."""
        cells = np.array([[0, 0], [0, 1], [1, 1], [1, 0]])
        keys = hilbert_encode(cells, 1)
        assert sorted(keys.tolist()) == [0, 1, 2, 3]
        # consecutive curve positions are adjacent cells (the U shape)
        order = np.argsort(keys)
        path = cells[order]
        for a, b in zip(path[:-1], path[1:]):
            assert np.abs(a - b).sum() == 1

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_roundtrip(self, data):
        k = data.draw(st.integers(1, 4))
        p = data.draw(st.integers(1, 6))
        n = data.draw(st.integers(1, 8))
        cells = np.asarray(
            data.draw(
                st.lists(
                    st.lists(st.integers(0, 2**p - 1), min_size=k, max_size=k),
                    min_size=n, max_size=n,
                )
            )
        )
        keys = hilbert_encode(cells, p)
        np.testing.assert_array_equal(hilbert_decode(keys, k, p), cells)

    def test_bijective_2d(self):
        p = 3
        grid = np.array([[x, y] for x in range(8) for y in range(8)])
        keys = hilbert_encode(grid, p)
        assert sorted(keys.tolist()) == list(range(64))

    def test_curve_continuity(self):
        """Consecutive Hilbert keys map to adjacent cells (|Δ|₁ = 1) — the
        locality property Morton lacks."""
        p, k = 4, 2
        keys = np.arange(2 ** (k * p), dtype=np.uint64)
        cells = hilbert_decode(keys, k, p)
        steps = np.abs(np.diff(cells, axis=0)).sum(axis=1)
        assert np.all(steps == 1)

    def test_morton_not_continuous(self):
        p, k = 4, 2
        keys = np.arange(2 ** (k * p), dtype=np.uint64)
        cells = morton_decode(keys, k, p)
        steps = np.abs(np.diff(cells, axis=0)).sum(axis=1)
        assert steps.max() > 1

    def test_aligned_subcube_contiguity(self):
        """Every aligned subcube maps to one contiguous aligned interval —
        the property the decomposition relies on."""
        p, k = 3, 2
        for level in (1, 2):
            side = 1 << (p - level)
            size = 1 << (k * (p - level))
            for cx in range(0, 1 << p, side):
                for cy in range(0, 1 << p, side):
                    cube = np.array(
                        [[cx + dx, cy + dy] for dx in range(side) for dy in range(side)]
                    )
                    keys = sorted(hilbert_encode(cube, p).tolist())
                    assert keys[-1] - keys[0] == size - 1
                    assert keys[0] % size == 0


class TestDecomposition:
    @pytest.mark.parametrize("encode", [morton_encode, hilbert_encode])
    def test_covers_exactly(self, encode):
        """The union of intervals == the set of keys of cells in the box."""
        k, p = 2, 4
        lo = np.array([3, 5])
        hi = np.array([9, 12])
        intervals = decompose_rect_to_intervals(lo, hi, k, p, encode)
        cells = np.array(
            [[x, y] for x in range(3, 10) for y in range(5, 13)]
        )
        want = set(int(v) for v in encode(cells, p))
        got = set()
        for a, b in intervals:
            got |= set(range(a, b + 1))
        assert got == want

    def test_hilbert_fewer_intervals(self):
        """Hilbert's continuity fragments rectangles into fewer intervals —
        SCRAP's reason for choosing it."""
        rng = np.random.default_rng(0)
        k, p = 2, 6
        hilbert_total = morton_total = 0
        for _ in range(30):
            lo = rng.integers(0, 40, size=k)
            hi = lo + rng.integers(2, 20, size=k)
            hi = np.minimum(hi, (1 << p) - 1)
            morton_total += len(decompose_rect_to_intervals(lo, hi, k, p, morton_encode))
            hilbert_total += len(
                decompose_rect_to_intervals(lo, hi, k, p, hilbert_encode)
            )
        assert hilbert_total < morton_total

    def test_interval_cap(self):
        with pytest.raises(RuntimeError):
            decompose_rect_to_intervals(
                np.array([1, 1]), np.array([30, 30]), 2, 5, morton_encode,
                max_intervals=2,
            )

    def test_whole_domain_single_interval(self):
        k, p = 3, 4
        out = decompose_rect_to_intervals(
            np.zeros(k, dtype=int), np.full(k, 2**p - 1), k, p, hilbert_encode
        )
        assert out == [(0, 2 ** (k * p) - 1)]
