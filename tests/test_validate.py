"""Tests for the installation self-check battery."""

from repro.eval.validate import CheckResult, self_check


class TestSelfCheck:
    def test_all_pass(self):
        result = self_check(seed=0)
        assert result.ok, str(result)
        assert len(result.passed) == 5
        assert result.failed == []

    def test_different_seed_still_passes(self):
        assert self_check(seed=99).ok

    def test_report_renders(self):
        out = str(self_check(seed=1))
        assert "passed" in out
        assert "[ok]" in out

    def test_failure_is_reported_not_raised(self):
        result = CheckResult()
        from repro.eval.validate import _check

        _check(result, "boom", lambda: 1 / 0)
        assert not result.ok
        assert result.failed[0][0] == "boom"
        assert "ZeroDivisionError" in result.failed[0][1]
        assert "[FAIL]" in str(result)
