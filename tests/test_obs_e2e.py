"""End-to-end observability: a 50-query fault-injected run must yield
qid-correlated span trees whose leaf spans reconcile exactly with the
per-query message counters, and the CLI must render the recorded JSONL."""

import json

import pytest

from repro.cli import main as cli_main
from repro.eval.demo import run_demo
from repro.obs.spans import SpanTree


@pytest.fixture(scope="module")
def demo(tmp_path_factory):
    out = tmp_path_factory.mktemp("obsdemo")
    return run_demo(
        out, n_nodes=24, n_objects=800, n_queries=50, loss=0.05, seed=0)


class TestSpanStatConsistency:
    def test_every_query_has_a_span_tree(self, demo):
        obs, stats = demo["obs"], demo["stats"]
        assert len(stats) == 50
        qids = obs.span_memory.qids()
        assert qids == set(range(50))
        for qid in qids:
            tree = obs.span_tree(qid)
            roots = tree.roots()
            assert len(roots) == 1 and roots[0].kind == "query"
            assert all(s.qid == qid for s in tree.spans)

    def test_leaf_result_spans_match_query_stats(self, demo):
        """#result spans == QueryStats.result_messages, per query — the
        acceptance contract tying the trace stream to the cost counters."""
        obs, stats = demo["obs"], demo["stats"]
        for qid, qs in stats.queries.items():
            spans = obs.spans_for(qid)
            results = [s for s in spans if s.kind == "result"]
            assert len(results) == qs.result_messages, f"qid {qid}"

    def test_charged_send_spans_match_query_messages(self, demo):
        """Send spans flagged ``charged`` (size > 0, bytes recorded) are
        emitted per transmission attempt — exactly when
        ``record_query_message`` fires, retransmissions included."""
        obs, stats = demo["obs"], demo["stats"]
        for qid, qs in stats.queries.items():
            spans = obs.spans_for(qid)
            charged = [
                s for s in spans
                if s.kind == "send" and s.attrs.get("charged")
            ]
            assert len(charged) == qs.query_messages, f"qid {qid}"

    def test_faults_visible_in_spans_and_metrics(self, demo):
        """With 5% loss the run must show drops, and the drop spans must
        agree with the transport's drop counters."""
        obs = demo["obs"]
        drop_spans = obs.span_memory.by_kind("drop")
        assert drop_spans, "5% loss over 50 queries produced no drops?"
        dropped_total = sum(
            r["value"] for r in obs.metrics_snapshot()
            if r["name"] == "transport_dropped_total"
        )
        assert len(drop_spans) == dropped_total
        # retransmissions happened and were counted
        retrans = [r for r in obs.metrics_snapshot()
                   if r["name"] == "lifecycle_retransmissions_total"]
        assert retrans and retrans[0]["value"] > 0

    def test_all_queries_reached_terminal_state(self, demo):
        counts = demo["stats"].state_counts()
        assert sum(counts.values()) == 50
        assert set(counts) <= {"complete", "timed_out"}


class TestRecordedArtifacts:
    def test_jsonl_files_written_and_loadable(self, demo):
        paths = demo["paths"]
        tree = SpanTree.from_jsonl(paths["spans"], qid=0)
        assert len(tree) == len(demo["obs"].spans_for(0))
        with open(paths["metrics"]) as fh:
            names = {json.loads(line)["name"] for line in fh if line.strip()}
        assert "transport_sent_total" in names
        assert "routing_index_node_hops" in names
        assert "node_stored_entries" in names
        with open(paths["health"]) as fh:
            samples = [json.loads(line) for line in fh if line.strip()]
        assert samples and all("event_queue_depth" in s for s in samples)

    def test_cli_metrics_renders_recorded_jsonl(self, demo, capsys):
        rc = cli_main(["metrics", demo["paths"]["metrics"],
                       "--prefix", "transport_"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "transport_sent_total{proto=query}" in out

    def test_cli_trace_renders_recorded_jsonl(self, demo, capsys):
        rc = cli_main(["trace", "0", "--file", demo["paths"]["spans"]])
        out = capsys.readouterr().out
        assert rc == 0
        assert "query" in out and "|--" in out or "`--" in out
        # listing mode enumerates all 50 traced queries
        rc = cli_main(["trace", "--file", demo["paths"]["spans"]])
        out = capsys.readouterr().out
        assert rc == 0 and "50 traced queries" in out

    def test_cli_trace_missing_qid_fails_cleanly(self, demo, capsys):
        rc = cli_main(["trace", "9999", "--file", demo["paths"]["spans"]])
        assert rc == 1
        assert "no spans" in capsys.readouterr().out
