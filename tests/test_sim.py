"""Tests for the discrete-event engine, latency models, King matrix,
message size model and stats."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.king import synthetic_king_matrix, king_latency_model
from repro.sim.messages import (
    QueryMessage,
    ResultEntry,
    ResultMessage,
    query_message_size,
    result_message_size,
)
from repro.sim.network import ConstantLatency, EuclideanLatency, MatrixLatency
from repro.sim.stats import QueryStats, StatsCollector


class TestEngine:
    def test_order(self):
        sim = Simulator()
        out = []
        sim.schedule_in(2.0, out.append, "late")
        sim.schedule_in(1.0, out.append, "early")
        sim.run()
        assert out == ["early", "late"]
        assert sim.now == 2.0

    def test_fifo_at_same_time(self):
        sim = Simulator()
        out = []
        for i in range(5):
            sim.schedule_at(1.0, out.append, i)
        sim.run()
        assert out == [0, 1, 2, 3, 4]

    def test_nested_scheduling(self):
        sim = Simulator()
        out = []

        def fire():
            out.append(sim.now)
            if sim.now < 3:
                sim.schedule_in(1.0, fire)

        sim.schedule_in(1.0, fire)
        sim.run()
        assert out == [1.0, 2.0, 3.0]

    def test_run_until(self):
        sim = Simulator()
        out = []
        sim.schedule_in(1.0, out.append, "a")
        sim.schedule_in(5.0, out.append, "b")
        sim.run(until=2.0)
        assert out == ["a"]
        assert sim.now == 2.0
        assert sim.pending() == 1
        sim.run()
        assert out == ["a", "b"]

    def test_max_events(self):
        sim = Simulator()
        out = []
        for i in range(10):
            sim.schedule_in(float(i + 1), out.append, i)
        sim.run(max_events=3)
        assert len(out) == 3

    def test_no_past_scheduling(self):
        sim = Simulator()
        sim.schedule_in(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_in(-1.0, lambda: None)

    def test_reset(self):
        sim = Simulator()
        sim.schedule_in(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending() == 0

    def test_every_rearms_until_falsy(self):
        sim = Simulator()
        out = []

        def tick():
            out.append(sim.now)
            return len(out) < 3

        sim.every(1.0, tick)
        sim.run()
        assert out == [1.0, 2.0, 3.0]
        assert sim.pending() == 0  # a falsy return really stops the chain

    def test_every_matches_handrolled_digest(self):
        def handrolled():
            sim = Simulator()
            sim.digest_enabled = True

            def tick():
                if sim.now < 3:
                    sim.schedule_in(1.0, tick)

            sim.schedule_in(1.0, tick)
            sim.run()
            return sim.schedule_digest

        def via_every():
            sim = Simulator()
            sim.digest_enabled = True
            sim.every(1.0, lambda: sim.now < 3)
            sim.run()
            return sim.schedule_digest

        # the sanctioned periodic hook must not perturb replay fingerprints
        assert handrolled() == via_every()


class TestLatencyModels:
    def test_constant(self):
        lat = ConstantLatency(4, delay=0.05)
        assert lat.latency(0, 1) == 0.05
        assert lat.latency(2, 2) == 0.0

    def test_matrix(self):
        m = np.array([[0.0, 0.1], [0.2, 0.0]])
        lat = MatrixLatency(m)
        assert lat.latency(0, 1) == pytest.approx(0.1)
        assert lat.latency(1, 0) == pytest.approx(0.2)

    def test_matrix_validation(self):
        with pytest.raises(ValueError):
            MatrixLatency(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            MatrixLatency(np.array([[0.0, -1.0], [1.0, 0.0]]))

    def test_matrix_row(self):
        m = np.array([[0.0, 0.1, 0.3], [0.2, 0.0, 0.4], [0.1, 0.1, 0.0]])
        lat = MatrixLatency(m)
        np.testing.assert_allclose(lat.latency_row(1, np.array([0, 2])), [0.2, 0.4])

    def test_euclidean(self):
        coords = np.array([[0.0, 0.0], [3.0, 4.0]])
        lat = EuclideanLatency(coords, seconds_per_unit=0.01, base=0.001)
        assert lat.latency(0, 1) == pytest.approx(0.051)
        assert lat.latency(0, 0) == 0.0
        np.testing.assert_allclose(lat.latency_row(0, np.array([0, 1])), [0.0, 0.051])

    def test_mean_rtt_estimate(self):
        lat = ConstantLatency(50, delay=0.09)
        assert lat.mean_rtt() == pytest.approx(0.18)


class TestKingMatrix:
    def test_shape_and_diagonal(self):
        m = synthetic_king_matrix(n_hosts=100, seed=0)
        assert m.shape == (100, 100)
        np.testing.assert_array_equal(np.diag(m), 0.0)

    def test_symmetric(self):
        m = synthetic_king_matrix(n_hosts=80, seed=1)
        np.testing.assert_allclose(m, m.T)

    def test_mean_rtt_calibrated_to_paper(self):
        """Mean RTT must be the paper's 180 ms."""
        m = synthetic_king_matrix(n_hosts=200, seed=2)
        n = 200
        mean_one_way = m.sum() / (n * (n - 1))
        assert 2 * mean_one_way == pytest.approx(0.180, rel=1e-6)

    def test_positive_off_diagonal(self):
        m = synthetic_king_matrix(n_hosts=60, seed=3)
        off = m[~np.eye(60, dtype=bool)]
        assert off.min() > 0

    def test_heavy_tail(self):
        """King-like latencies have a right tail: p95 >> median."""
        m = synthetic_king_matrix(n_hosts=150, seed=4)
        off = m[~np.eye(150, dtype=bool)]
        assert np.percentile(off, 95) > 1.5 * np.median(off)

    def test_model_wrapper(self):
        lat = king_latency_model(n_hosts=50, seed=5)
        assert lat.n_hosts == 50
        assert lat.latency(0, 1) > 0


class TestMessageSizes:
    def test_query_size_formula(self):
        """Paper: 20 + 4 + n (2*2*k + 8 + 1)."""
        assert query_message_size(1, 10) == 20 + 4 + (40 + 9)
        assert query_message_size(3, 5) == 20 + 4 + 3 * (20 + 9)
        assert query_message_size(0, 10) == 24

    def test_result_size_formula(self):
        """Paper: 20 + 6 per entry."""
        assert result_message_size(0) == 20
        assert result_message_size(10) == 80

    def test_message_objects(self):
        qm = QueryMessage(qid=1, subqueries=[None, None], kind="routing", hops=2, k=5)
        assert qm.size == query_message_size(2, 5)
        rm = ResultMessage(qid=1, entries=[ResultEntry(3, 0.5)] * 4)
        assert rm.size == result_message_size(4)


class TestStats:
    def test_response_and_max_latency(self):
        qs = QueryStats(qid=0, issued_at=10.0)
        qs.record_result_message(26, at=10.5)
        qs.record_result_message(26, at=12.0)
        qs.record_result_message(26, at=11.0)
        assert qs.response_time == pytest.approx(0.5)
        assert qs.max_latency == pytest.approx(2.0)

    def test_unanswered_query(self):
        qs = QueryStats(qid=0, issued_at=1.0)
        assert qs.response_time is None
        assert qs.max_latency is None

    def test_hops_is_max(self):
        qs = QueryStats(qid=0)
        qs.record_index_node(1, 3)
        qs.record_index_node(2, 7)
        qs.record_index_node(3, 5)
        assert qs.max_hops == 7
        assert qs.index_nodes == {1, 2, 3}

    def test_bandwidth_split(self):
        qs = QueryStats(qid=0)
        qs.record_query_message(100)
        qs.record_query_message(50)
        qs.record_result_message(26, at=1.0)
        assert qs.query_bytes == 150
        assert qs.result_bytes == 26
        assert qs.total_bytes == 176
        assert qs.query_messages == 2
        assert qs.result_messages == 1

    def test_collector_aggregates(self):
        c = StatsCollector()
        for qid, (hops, rt) in enumerate([(2, 0.1), (4, 0.3)]):
            qs = c.for_query(qid)
            qs.issued_at = 0.0
            qs.record_index_node(qid, hops)
            qs.record_result_message(26, at=rt)
        assert c.mean_hops() == pytest.approx(3.0)
        assert c.mean_response_time() == pytest.approx(0.2)
        summary = c.summary()
        assert summary["queries"] == 2.0
        assert summary["result_bytes"] == pytest.approx(26.0)

    def test_for_query_idempotent(self):
        c = StatsCollector()
        assert c.for_query(5) is c.for_query(5)
        assert len(c) == 1

    def test_empty_collector(self):
        c = StatsCollector()
        assert c.mean_hops() == 0.0
        assert np.isnan(c.mean_response_time())
