"""Batch-vs-scalar equivalence: the bit-identicality contract of the hot paths.

The vectorized refactor is only admissible because every batch kernel is
provably on the same floating-point path as its scalar definition:

* ``LandmarkSet.project(objs)`` must equal ``project_one(obj)`` stacked, for
  every metric family — otherwise a zero-radius query for an indexed object
  misses its own stored index point;
* ``Metric.many_to_many`` columns must equal ``one_to_many`` passes (the
  column-exactness contract vectorized overrides must preserve);
* ``LatencyModel.latency_row`` must equal scalar ``latency`` lookups;
* ``lp_hash_batch`` must equal ``lp_hash`` per point.

Hypothesis drives shapes and values; comparisons are exact
(``np.array_equal``), never approximate.
"""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st
from scipy import sparse

from repro.core.landmarks import LandmarkSet
from repro.core.index_space import IndexSpaceBounds
from repro.core.lph import lp_hash, lp_hash_batch
from repro.metric.cosine import AngularMetric, SparseAngularMetric
from repro.metric.hausdorff import HausdorffMetric
from repro.metric.sets import JaccardMetric
from repro.metric.strings import EditDistanceMetric, HammingMetric
from repro.metric.vector import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    MinkowskiMetric,
)
from repro.sim.network import (
    ConstantLatency,
    EuclideanLatency,
    LatencyModel,
    MatrixLatency,
)

SETTINGS = dict(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _assert_batch_matches_scalar(landmarks, metric, objects):
    """project(objs) == stacked project_one(obj), and the many_to_many
    columns == one_to_many passes — both exactly."""
    lset = LandmarkSet(landmarks=landmarks, metric=metric)
    batch = lset.project(objects)
    n = objects.shape[0] if hasattr(objects, "shape") else len(objects)
    singles = np.stack([lset.project_one(objects[i]) for i in range(n)])
    assert np.array_equal(batch, singles)
    cols = np.stack(
        [metric.one_to_many(lset._landmark(j), objects) for j in range(lset.k)],
        axis=1,
    )
    assert np.array_equal(batch, cols)


class TestVectorFamily:
    @settings(**SETTINGS)
    @given(
        n=st.integers(1, 40),
        dim=st.integers(1, 8),
        k=st.integers(1, 5),
        p=st.sampled_from([1.0, 2.0, 3.0, math.inf]),
        seed=st.integers(0, 2**16),
    )
    def test_minkowski(self, n, dim, k, p, seed):
        rng = np.random.default_rng(seed)
        objs = rng.uniform(-50, 50, size=(n, dim))
        lms = rng.uniform(-50, 50, size=(k, dim))
        _assert_batch_matches_scalar(lms, MinkowskiMetric(p), objs)

    def test_chunked_many_to_many_matches_columns(self):
        # Force several chunks through the broadcast kernel.
        rng = np.random.default_rng(7)
        X = rng.uniform(0, 100, size=(4096, 64))
        L = rng.uniform(0, 100, size=(9, 64))
        for metric in (EuclideanMetric(), ManhattanMetric(), ChebyshevMetric()):
            got = metric.many_to_many(X, L)
            want = np.stack([metric.one_to_many(L[j], X) for j in range(9)], axis=1)
            assert np.array_equal(got, want)


class TestCosineFamily:
    @settings(**SETTINGS)
    @given(n=st.integers(1, 30), dim=st.integers(1, 6), k=st.integers(1, 4),
           seed=st.integers(0, 2**16))
    def test_dense_angular(self, n, dim, k, seed):
        rng = np.random.default_rng(seed)
        objs = rng.normal(size=(n, dim))
        objs[rng.random(n) < 0.1] = 0.0  # zero vectors hit the degenerate path
        lms = rng.normal(size=(k, dim))
        _assert_batch_matches_scalar(lms, AngularMetric(), objs)

    @settings(**SETTINGS)
    @given(n=st.integers(1, 20), k=st.integers(1, 3), seed=st.integers(0, 2**16))
    def test_sparse_angular(self, n, k, seed):
        rng = np.random.default_rng(seed)
        dense = rng.random((n, 12)) * (rng.random((n, 12)) < 0.3)
        objs = sparse.csr_matrix(dense)
        lms = sparse.csr_matrix(rng.random((k, 12)) * (rng.random((k, 12)) < 0.5))
        _assert_batch_matches_scalar(lms, SparseAngularMetric(), objs)


class TestStringFamily:
    @settings(**SETTINGS)
    @given(
        objs=st.lists(st.text(alphabet="abcd", max_size=8), min_size=1, max_size=15),
        lms=st.lists(st.text(alphabet="abcd", max_size=8), min_size=1, max_size=3),
    )
    def test_edit_distance(self, objs, lms):
        _assert_batch_matches_scalar(lms, EditDistanceMetric(), objs)

    @settings(**SETTINGS)
    @given(n=st.integers(1, 15), k=st.integers(1, 3), seed=st.integers(0, 2**16))
    def test_hamming(self, n, k, seed):
        rng = np.random.default_rng(seed)
        mk = lambda cnt: ["".join(rng.choice(list("01"), size=6)) for _ in range(cnt)]
        _assert_batch_matches_scalar(mk(k), HammingMetric(length=6), mk(n))


class TestSetFamily:
    @settings(**SETTINGS)
    @given(
        objs=st.lists(st.frozensets(st.integers(0, 20), max_size=8),
                      min_size=1, max_size=15),
        lms=st.lists(st.frozensets(st.integers(0, 20), max_size=8),
                     min_size=1, max_size=3),
    )
    def test_jaccard(self, objs, lms):
        _assert_batch_matches_scalar(lms, JaccardMetric(), objs)


class TestHausdorffFamily:
    @settings(**SETTINGS)
    @given(n=st.integers(1, 10), k=st.integers(1, 3), seed=st.integers(0, 2**16))
    def test_hausdorff(self, n, k, seed):
        rng = np.random.default_rng(seed)
        mk = lambda cnt: [
            rng.uniform(0, 10, size=(int(rng.integers(1, 5)), 2)) for _ in range(cnt)
        ]
        _assert_batch_matches_scalar(
            mk(k), HausdorffMetric(box=(0.0, 10.0), dim=2), mk(n)
        )


class TestLatencyRowEquivalence:
    def _check(self, model: LatencyModel, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        hosts = rng.integers(0, model.n_hosts, size=50)
        for a in (0, int(rng.integers(0, model.n_hosts))):
            row = model.latency_row(a, hosts)
            scalar = np.asarray(
                [model.latency(a, int(b)) for b in hosts], dtype=np.float64
            )
            assert np.array_equal(row, scalar)

    def test_constant(self):
        self._check(ConstantLatency(20, delay=0.045))

    def test_matrix(self):
        rng = np.random.default_rng(1)
        mat = rng.uniform(0, 0.2, size=(20, 20))
        np.fill_diagonal(mat, 0.0)
        self._check(MatrixLatency(mat))

    def test_euclidean(self):
        rng = np.random.default_rng(2)
        self._check(EuclideanLatency(rng.uniform(0, 1, size=(20, 2)), 0.05, base=0.01))

    def test_black_box_fallback(self):
        class Odd(LatencyModel):
            n_hosts = 20

            def latency(self, a: int, b: int) -> float:
                return 0.001 * ((a * 31 + b * 17) % 7)

        self._check(Odd())


class TestHashBatchEquivalence:
    @settings(**SETTINGS)
    @given(n=st.integers(1, 30), k=st.integers(1, 5), m=st.integers(1, 24),
           seed=st.integers(0, 2**16))
    def test_lp_hash_batch(self, n, k, m, seed):
        rng = np.random.default_rng(seed)
        bounds = IndexSpaceBounds.uniform(k, 0.0, 100.0)
        pts = rng.uniform(0.0, 100.0, size=(n, k))
        batch = lp_hash_batch(pts, bounds, m)
        scalar = np.asarray([lp_hash(p, bounds, m) for p in pts], dtype=np.uint64)
        assert np.array_equal(batch, scalar)


class TestGroundTruthBatchEquivalence:
    def test_batch_matches_per_query(self):
        from repro.eval.ground_truth import batch_exact_top_k, exact_top_k

        rng = np.random.default_rng(3)
        data = rng.uniform(0, 100, size=(500, 10))
        metric = EuclideanMetric()
        got = batch_exact_top_k(data, metric, data[:20], k=5, chunk=7)
        for i in range(20):
            assert np.array_equal(got[i], exact_top_k(data, metric, data[i], k=5))

    def test_radius_filter_matches_scalar_definition(self):
        from repro.eval.ground_truth import batch_exact_top_k

        rng = np.random.default_rng(4)
        data = rng.uniform(0, 100, size=(300, 6))
        metric = ManhattanMetric()
        got = batch_exact_top_k(data, metric, data[:10], k=8, radius=80.0)
        for i in range(10):
            d = metric.one_to_many(data[i], data)
            elig = np.flatnonzero(d <= 80.0)
            kk = min(8, len(elig))
            if kk == 0:
                assert len(got[i]) == 0
                continue
            sub = d[elig]
            top = np.argpartition(sub, kk - 1)[:kk]
            want = elig[top[np.argsort(sub[top], kind="stable")]]
            assert np.array_equal(got[i], want)


class TestEmptyLandmarks:
    def test_many_to_many_empty_ys(self):
        m = EuclideanMetric()
        out = JaccardMetric().many_to_many([{1}, {2}], [])
        assert out.shape == (2, 0)
        out2 = m.many_to_many(np.zeros((3, 4)), np.zeros((0, 4)))
        assert out2.shape == (3, 0)
