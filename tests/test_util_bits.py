"""Unit + property tests for m-bit identifier helpers (left-indexed bits)."""

import pytest
from hypothesis import given, strategies as st

from repro.util.bits import (
    bit_at,
    bits_to_key,
    clear_bit_at,
    first_zero_bit,
    key_to_bits,
    pad_prefix,
    prefix_of,
    same_prefix,
    set_bit_at,
)

M = 16


class TestBitAt:
    def test_msb_is_position_one(self):
        assert bit_at(0b1000_0000_0000_0000, 1, M) == 1
        assert bit_at(0b0111_1111_1111_1111, 1, M) == 0

    def test_lsb_is_position_m(self):
        assert bit_at(1, M, M) == 1
        assert bit_at(0, M, M) == 0

    def test_middle(self):
        key = 0b0010_0000_0000_0000
        assert bit_at(key, 3, M) == 1
        assert bit_at(key, 2, M) == 0
        assert bit_at(key, 4, M) == 0

    @pytest.mark.parametrize("pos", [0, -1, M + 1])
    def test_out_of_range(self, pos):
        with pytest.raises(ValueError):
            bit_at(0, pos, M)


class TestSetClear:
    def test_set_then_read(self):
        key = set_bit_at(0, 5, M)
        assert bit_at(key, 5, M) == 1
        assert key == 1 << (M - 5)

    def test_set_is_idempotent(self):
        key = set_bit_at(set_bit_at(0, 5, M), 5, M)
        assert key == 1 << (M - 5)

    def test_clear_undoes_set(self):
        key = clear_bit_at(set_bit_at(0b1010, 5, M), 5, M)
        assert key == 0b1010

    @given(st.integers(0, 2**M - 1), st.integers(1, M))
    def test_set_clear_roundtrip(self, key, i):
        assert bit_at(set_bit_at(key, i, M), i, M) == 1
        assert bit_at(clear_bit_at(key, i, M), i, M) == 0


class TestPrefix:
    def test_zero_length(self):
        assert prefix_of(0xABCD, 0, M) == 0

    def test_full_length(self):
        assert prefix_of(0xABCD, M, M) == 0xABCD

    def test_padding_zeroes_suffix(self):
        # 0b0110... prefix "011" of the paper's figure 1 example.
        key = pad_prefix(0b011, 3, M)
        assert key == 0b0110_0000_0000_0000
        assert prefix_of(key, 3, M) == key

    def test_pad_rejects_wide_value(self):
        with pytest.raises(ValueError):
            pad_prefix(0b1000, 3, M)

    @given(st.integers(0, 2**M - 1), st.integers(0, M))
    def test_prefix_idempotent(self, key, ln):
        p = prefix_of(key, ln, M)
        assert prefix_of(p, ln, M) == p

    @given(st.integers(0, 2**M - 1), st.integers(0, M))
    def test_prefix_shares_prefix(self, key, ln):
        assert same_prefix(key, prefix_of(key, ln, M), ln, M)

    @given(st.integers(0, 2**M - 1), st.integers(0, M), st.integers(0, M))
    def test_prefix_monotone(self, key, a, b):
        # Agreeing on a longer prefix implies agreeing on any shorter one.
        lo, hi = sorted((a, b))
        other = prefix_of(key, hi, M)
        assert same_prefix(key, other, lo, M)


class TestFirstZeroBit:
    def test_all_ones_returns_none(self):
        assert first_zero_bit(2**M - 1, 1, M) is None

    def test_all_zeros_returns_start(self):
        assert first_zero_bit(0, 1, M) == 1
        assert first_zero_bit(0, 7, M) == 7

    def test_start_beyond_m(self):
        assert first_zero_bit(0, M + 1, M) is None

    def test_finds_first_not_any(self):
        # key = 1101... -> first zero from position 1 is position 3.
        key = bits_to_key("1101" + "1" * (M - 4))
        assert first_zero_bit(key, 1, M) == 3
        # searching after position 3 skips it
        assert first_zero_bit(key, 4, M) is None

    @given(st.integers(0, 2**M - 1), st.integers(1, M))
    def test_matches_reference(self, key, start):
        bits = key_to_bits(key, M)
        expected = next((i for i in range(start, M + 1) if bits[i - 1] == "0"), None)
        assert first_zero_bit(key, start, M) == expected


class TestBitsRoundtrip:
    @given(st.integers(0, 2**M - 1))
    def test_roundtrip(self, key):
        assert bits_to_key(key_to_bits(key, M)) == key

    def test_string_length(self):
        assert len(key_to_bits(5, M)) == M
