"""The `repro lint` static-analysis toolkit: rules, engine, baseline, CLI.

Every rule has a pair of fixtures under ``tests/lint_fixtures/``: a
``*_trip.py`` that must trip the rule exactly once (and nothing else), and
a ``*_clean.py`` twin that must pass untouched.  On top of the fixture
matrix: baseline round-trips, mechanical ``--fix`` application, the JSON
output contract, the layering config, and the repo-wide gate (``src/``
lints clean against the checked-in baseline).
"""

from __future__ import annotations

import json
import shutil
from dataclasses import fields as dc_fields
from pathlib import Path

import pytest

from repro.check.lint import (
    Baseline,
    BaselineEntry,
    Finding,
    LayersConfig,
    all_rules,
    apply_fixes,
    run_lint,
)
from repro.check.lint.engine import load_module, module_name_for

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"

RULE_IDS = (
    "DET101", "DET102", "DET103", "DET104",
    "ARCH201", "ARCH202", "ARCH203",
    "CON301", "CON302", "CON303",
    "ASY401", "ASY402", "ASY403", "ASY404",
    "PRO501", "PRO502", "PRO503",
)


def lint_one(path: Path, **kw) -> list[Finding]:
    return run_lint([path], root=REPO_ROOT, **kw).findings


class TestRuleFixtures:
    def test_every_rule_has_fixtures(self):
        ids = {r.id for r in all_rules()}
        assert ids == set(RULE_IDS)
        for rule_id in ids:
            assert (FIXTURES / f"{rule_id.lower()}_trip.py").exists()
            assert (FIXTURES / f"{rule_id.lower()}_clean.py").exists()

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_trip_fixture_trips_exactly_once(self, rule_id):
        findings = lint_one(FIXTURES / f"{rule_id.lower()}_trip.py")
        assert [f.rule for f in findings] == [rule_id], findings

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_clean_twin_passes(self, rule_id):
        findings = lint_one(FIXTURES / f"{rule_id.lower()}_clean.py")
        assert findings == []

    def test_rule_catalogue_is_documented(self):
        for rule in all_rules():
            assert rule.name, rule.id
            assert len(rule.rationale) > 20, rule.id

    def test_finding_carries_symbol_and_snippet(self):
        (finding,) = lint_one(FIXTURES / "det101_trip.py")
        assert finding.symbol == "stamp_event"
        assert "time.time()" in finding.snippet
        assert finding.line > 0 and finding.col >= 0


class TestDeterminismRules:
    def test_det102_flags_global_stream_and_legacy_numpy(self, tmp_path):
        src = (
            "# lint-fixture-module: repro.core.tmp\n"
            "import random\nimport numpy as np\n"
            "def f():\n"
            "    a = random.random()\n"
            "    b = np.random.rand(3)\n"
            "    c = np.random.default_rng(None)\n"
            "    return a, b, c\n"
        )
        p = tmp_path / "m.py"
        p.write_text(src)
        findings = run_lint([p], root=tmp_path).findings
        assert [f.rule for f in findings] == ["DET102"] * 3

    def test_det103_allowed_in_hashing_module(self, tmp_path):
        src = (
            "# lint-fixture-module: repro.dht.hashing\n"
            "def f(s):\n    return hash(s)\n"
        )
        p = tmp_path / "m.py"
        p.write_text(src)
        assert run_lint([p], root=tmp_path).findings == []

    def test_det104_ignores_sets_without_scheduling(self, tmp_path):
        src = (
            "# lint-fixture-module: repro.core.tmp\n"
            "def f(xs):\n    return [x for x in set(xs)]\n"
        )
        p = tmp_path / "m.py"
        p.write_text(src)
        assert run_lint([p], root=tmp_path).findings == []

    def test_outside_package_is_ignored(self, tmp_path):
        p = tmp_path / "free.py"
        p.write_text("import time\nt = time.time()\n")
        assert run_lint([p], root=tmp_path).findings == []


class TestLayersConfig:
    def test_default_contract_loads_and_validates(self):
        cfg = LayersConfig.load()
        assert cfg.package == "repro"
        assert cfg.layer_of("repro.util.bits") == "util"
        assert cfg.layer_of("repro.cli") == "app"
        assert cfg.layer_of("numpy.random") is None

    def test_allowed_edges(self):
        cfg = LayersConfig.load()
        assert cfg.allowed("repro.core.routing", "repro.metric.base")
        assert cfg.allowed("repro.core.a", "repro.core.b")  # same layer
        assert not cfg.allowed("repro.metric.base", "repro.core.routing")
        assert not cfg.allowed("repro.obs.spans", "repro.eval.report")

    def test_denied_edges_carry_rationale_and_facade(self):
        cfg = LayersConfig.load()
        edge = cfg.denied("repro.core.platform", "repro.sim.engine")
        assert edge is not None and edge.use == "repro.sim"
        assert cfg.denied("repro.sim.transport", "repro.sim.engine") is None

    def test_bad_contract_rejected(self, tmp_path):
        p = tmp_path / "layers.toml"
        p.write_text('[layers]\na = ["nope"]\n')
        with pytest.raises(ValueError, match="unknown layer"):
            LayersConfig.load(p)

    def test_scheduler_allowlist(self):
        cfg = LayersConfig.load()
        assert cfg.scheduler_ok("repro.sim.transport")
        assert not cfg.scheduler_ok("repro.core.routing")


class TestBaseline:
    def entry_for(self, f: Finding, justification: str = "grandfathered") -> BaselineEntry:
        return BaselineEntry(
            rule=f.rule, path=f.path, symbol=f.symbol,
            snippet=f.snippet, justification=justification,
        )

    def test_baselined_findings_do_not_fail_the_gate(self):
        trip = FIXTURES / "det101_trip.py"
        (finding,) = lint_one(trip)
        baseline = Baseline((self.entry_for(finding),))
        result = run_lint([trip], root=REPO_ROOT, baseline=baseline)
        assert result.findings == [] and len(result.baselined) == 1
        assert result.ok

    def test_stale_entry_fails_the_gate(self):
        clean = FIXTURES / "det101_clean.py"
        stale = BaselineEntry(rule="DET101", path="tests/lint_fixtures/det101_clean.py",
                              symbol="gone", snippet="gone()")
        result = run_lint([clean], root=REPO_ROOT, baseline=Baseline((stale,)))
        assert result.findings == [] and len(result.stale) == 1
        assert not result.ok

    def test_round_trip_keeps_justifications(self, tmp_path):
        (finding,) = lint_one(FIXTURES / "det101_trip.py")
        old = Baseline((self.entry_for(finding, "for reasons"),))
        new = Baseline.from_findings([finding], old=old)
        path = tmp_path / "baseline.json"
        new.save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 1
        assert loaded.entries[0].justification == "for reasons"

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "absent.json")) == 0

    def test_budget_growth_fails_the_gate(self):
        trip = FIXTURES / "det101_trip.py"
        (finding,) = lint_one(trip)
        baseline = Baseline((self.entry_for(finding),), budget=0)
        result = run_lint([trip], root=REPO_ROOT, baseline=baseline)
        assert result.findings == [] and len(result.baselined) == 1
        assert any("grew" in p for p in result.baseline_problems)
        assert not result.ok

    def test_unjustified_entry_fails_the_gate(self):
        trip = FIXTURES / "det101_trip.py"
        (finding,) = lint_one(trip)
        entry = self.entry_for(finding, justification="TODO: justify or fix")
        result = run_lint([trip], root=REPO_ROOT, baseline=Baseline((entry,)))
        assert any("justification" in p for p in result.baseline_problems)
        assert not result.ok

    def test_save_ratchets_budget_down(self, tmp_path):
        (finding,) = lint_one(FIXTURES / "det101_trip.py")
        baseline = Baseline((self.entry_for(finding),), budget=5)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        assert Baseline.load(path).budget == 1  # min(old budget, survivors)
        Baseline((), budget=1).save(path)
        assert Baseline.load(path).budget == 0  # paid down: stays at zero

    def test_baselined_new_rule_finding_passes(self):
        trip = FIXTURES / "asy403_trip.py"
        (finding,) = lint_one(trip)
        baseline = Baseline((self.entry_for(finding),), budget=1)
        result = run_lint([trip], root=REPO_ROOT, baseline=baseline)
        assert result.ok and len(result.baselined) == 1


class TestAsyncSafetyRules:
    def test_asy403_anchors_symbol_and_line(self):
        (finding,) = lint_one(FIXTURES / "asy403_trip.py")
        assert finding.rule == "ASY403"
        assert finding.symbol == "on_commit"
        assert "create_task" in finding.snippet
        assert finding.line == 12

    def test_asy401_reports_blocking_target(self):
        (finding,) = lint_one(FIXTURES / "asy401_trip.py")
        assert "time.sleep" in finding.message
        assert "backoff" in finding.message
        assert finding.line == 8

    def test_asy402_cross_module_call(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "# lint-fixture-module: repro.net.fixture_a\n"
            "async def warmup() -> None: ...\n"
        )
        (tmp_path / "b.py").write_text(
            "# lint-fixture-module: repro.net.fixture_b\n"
            "from repro.net.fixture_a import warmup\n"
            "def kick() -> None:\n"
            "    warmup()\n"
        )
        findings = run_lint([tmp_path], root=tmp_path).findings
        assert [f.rule for f in findings] == ["ASY402"]
        assert findings[0].path.endswith("b.py")

    def test_asy404_module_level_lock_binding(self, tmp_path):
        src = (
            "# lint-fixture-module: repro.net.fixture_modlock\n"
            "import asyncio\nimport threading\n"
            "_LOCK = threading.Lock()\n"
            "async def f() -> None:\n"
            "    with _LOCK:\n"
            "        await asyncio.sleep(0)\n"
        )
        p = tmp_path / "m.py"
        p.write_text(src)
        findings = run_lint([p], root=tmp_path).findings
        assert [f.rule for f in findings] == ["ASY404"]


class TestProtocolRules:
    def test_pro501_reports_both_directions(self, tmp_path):
        src = (
            "# lint-fixture-module: repro.net.fixture_table\n"
            "from dataclasses import dataclass\n"
            "from repro.sim.messages import register_message\n"
            "@register_message\n"
            "@dataclass(slots=True)\n"
            "class AckMessage:\n"
            "    src: int\n"
            "_MESSAGE_CLASSES = {'GhostMessage': None}\n"
        )
        p = tmp_path / "m.py"
        p.write_text(src)
        findings = run_lint([p], root=tmp_path).findings
        assert [f.rule for f in findings] == ["PRO501", "PRO501"]
        messages = " | ".join(f.message for f in findings)
        assert "AckMessage" in messages and "GhostMessage" in messages

    def test_pro502_skips_partial_runs_without_registrations(self, tmp_path):
        src = (
            "# lint-fixture-module: repro.net.fixture_client\n"
            "async def probe(t, addr):\n"
            "    return await t.rpc(addr, 'ping', {})\n"
        )
        p = tmp_path / "m.py"
        p.write_text(src)
        # no registration site anywhere in the scanned set: under-approximate
        assert run_lint([p], root=tmp_path).findings == []

    def test_pro503_names_missing_and_unknown_fields(self):
        (finding,) = lint_one(FIXTURES / "pro503_trip.py")
        assert "missing ['y']" in finding.message
        assert "unknown ['z']" in finding.message
        assert finding.line == 15

    def test_pro_rules_hold_on_real_wire_modules(self):
        findings = run_lint(
            [REPO_ROOT / "src/repro/net/codec.py",
             REPO_ROOT / "src/repro/sim/messages.py"],
            root=REPO_ROOT,
        ).findings
        assert [f for f in findings if f.rule.startswith("PRO")] == []


class TestFixes:
    def fix_and_relint(self, fixture: str, tmp_path) -> tuple[str, list[Finding]]:
        p = tmp_path / fixture
        shutil.copy(FIXTURES / fixture, p)
        result = run_lint([p], root=tmp_path)
        assert result.findings and result.findings[0].fixable
        assert apply_fixes(result.findings, tmp_path) == 1
        return p.read_text(), run_lint([p], root=tmp_path).findings

    def test_det102_seed_fix(self, tmp_path):
        text, findings = self.fix_and_relint("det102_trip.py", tmp_path)
        assert "default_rng(0)" in text
        assert findings == []

    def test_arch203_facade_fix(self, tmp_path):
        text, findings = self.fix_and_relint("arch203_trip.py", tmp_path)
        assert "from repro.sim import Simulator" in text
        assert findings == []


class TestMessageSchema:
    def test_wire_messages_are_registered(self):
        from repro.sim.messages import QueryMessage, ResultMessage, message_schema

        schema = message_schema()
        for cls in (QueryMessage, ResultMessage):
            assert schema[cls.__name__] == tuple(f.name for f in dc_fields(cls))

    def test_register_rejects_non_dataclass(self):
        from repro.sim.messages import register_message

        with pytest.raises(TypeError):
            register_message(type("LooseMessage", (), {}))


class TestRepoGate:
    def test_src_lints_clean_against_checked_in_baseline(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        result = run_lint([REPO_ROOT / "src"], root=REPO_ROOT, baseline=baseline)
        assert result.errors == []
        assert result.findings == [], [f.render() for f in result.findings]
        assert result.stale == [], "baseline entries went stale — delete them"
        assert result.baseline_problems == []

    def test_checked_in_baseline_is_paid_down(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        assert baseline.budget == 0, "budget only ratchets down — never raise it"
        assert len(baseline) == 0, "debt came back — fix the finding instead"

    def test_module_naming(self):
        assert module_name_for(Path("src/repro/core/platform.py")) == "repro.core.platform"
        assert module_name_for(Path("src/repro/obs/__init__.py")) == "repro.obs"
        assert module_name_for(Path("scripts/tool.py")) is None

    def test_relative_import_resolution(self):
        info = load_module(REPO_ROOT / "src" / "repro" / "obs" / "__init__.py", REPO_ROOT)
        imported = {m for _, m in info.import_nodes()}
        assert "repro.obs.registry" in imported
        assert not any(m.startswith("repro.registry") for m in imported)


class TestCli:
    def run_cli(self, *argv: str) -> int:
        from repro.cli import main

        return main(list(argv))

    def test_list_rules(self, capsys):
        assert self.run_cli("lint", "--list-rules") == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out

    def test_json_output_on_trip_fixture(self, capsys):
        rc = self.run_cli(
            "lint", str(FIXTURES / "det101_trip.py"), "--format", "json")
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1 and doc["ok"] is False
        (finding,) = doc["findings"]
        assert finding["rule"] == "DET101"
        assert {"path", "line", "col", "message", "symbol", "fixable"} <= finding.keys()

    def test_select_filters_rules(self, capsys):
        rc = self.run_cli(
            "lint", str(FIXTURES / "det101_trip.py"), "--select", "ARCH201")
        assert rc == 0

    def test_src_gate_via_cli(self, capsys):
        assert self.run_cli("lint", str(REPO_ROOT / "src")) == 0

    def test_typecheck_handles_missing_mypy(self, capsys):
        import importlib.util

        rc = self.run_cli("typecheck", "--format", "json")
        out = capsys.readouterr().out
        if importlib.util.find_spec("mypy") is None:
            assert rc == 2
            assert json.loads(out)["available"] is False
        else:
            assert rc in (0, 1)
