"""Tests for the clustered-Gaussian generator (Table 1 workload)."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    ClusteredGaussianConfig,
    generate_clustered,
    paper_table1_config,
)


class TestConfig:
    def test_paper_defaults_match_table1(self):
        cfg = paper_table1_config()
        assert cfg.n_objects == 100_000
        assert cfg.dim == 100
        assert (cfg.low, cfg.high) == (0.0, 100.0)
        assert cfg.n_clusters == 10
        assert cfg.deviation == 20.0

    def test_max_distance_is_1000(self):
        # The paper: sqrt(sum of 100 * 100^2) = 1000.
        assert paper_table1_config().max_distance == pytest.approx(1000.0)

    def test_size_override(self):
        assert paper_table1_config(n_objects=500).n_objects == 500


class TestGeneration:
    CFG = ClusteredGaussianConfig(n_objects=2000, dim=8, n_clusters=4, deviation=3.0)

    def test_shapes(self):
        data, centers = generate_clustered(self.CFG, 0)
        assert data.shape == (2000, 8)
        assert centers.shape == (4, 8)

    def test_deterministic(self):
        a, ca = generate_clustered(self.CFG, 5)
        b, cb = generate_clustered(self.CFG, 5)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(ca, cb)

    def test_seeds_differ(self):
        a, _ = generate_clustered(self.CFG, 1)
        b, _ = generate_clustered(self.CFG, 2)
        assert not np.array_equal(a, b)

    def test_clipped_to_domain(self):
        data, _ = generate_clustered(self.CFG, 0)
        assert data.min() >= self.CFG.low
        assert data.max() <= self.CFG.high

    def test_unclipped_variant(self):
        cfg = ClusteredGaussianConfig(
            n_objects=5000, dim=2, n_clusters=1, deviation=50.0, clip=False
        )
        data, _ = generate_clustered(cfg, 0)
        assert data.min() < cfg.low or data.max() > cfg.high

    def test_data_is_clustered(self):
        """Points should sit far closer to their nearest centre than random."""
        data, centers = generate_clustered(self.CFG, 0)
        d2 = ((data[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        nearest = np.sqrt(d2.min(axis=1))
        # Expected distance to own centre ~ deviation * sqrt(dim) = 8.5.
        assert np.median(nearest) < self.CFG.deviation * np.sqrt(self.CFG.dim)

    def test_reusing_centers_preserves_structure(self):
        data, centers = generate_clustered(self.CFG, 0)
        more, centers2 = generate_clustered(self.CFG, 99, centers=centers)
        np.testing.assert_array_equal(centers, centers2)
        d2 = ((more[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        nearest = np.sqrt(d2.min(axis=1))
        assert np.median(nearest) < self.CFG.deviation * np.sqrt(self.CFG.dim)

    def test_bad_centers_shape_rejected(self):
        with pytest.raises(ValueError):
            generate_clustered(self.CFG, 0, centers=np.zeros((3, 8)))
