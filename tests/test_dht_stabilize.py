"""Tests for the Chord stabilisation protocol, churn repair and piggybacking."""

import numpy as np

from repro.dht.ring import ChordRing
from repro.dht.stabilize import (
    CONTROL_MESSAGE_BYTES,
    MaintenanceConfig,
    StabilizationProtocol,
)
from repro.sim.engine import Simulator
from repro.sim.network import ConstantLatency


def _setup(n=24, m=20, seed=0, config=None):
    latency = ConstantLatency(n, delay=0.01)
    ring = ChordRing.build(n, m=m, seed=seed, latency=latency, pns=False)
    sim = Simulator()
    proto = StabilizationProtocol(ring, sim, config=config or MaintenanceConfig(), seed=seed)
    return ring, sim, proto


class TestSteadyState:
    def test_oracle_ring_already_consistent(self):
        _, _, proto = _setup()
        assert proto.ring_consistent()
        assert proto.finger_accuracy() == 1.0

    def test_stabilize_preserves_consistency(self):
        ring, sim, proto = _setup()
        proto.start(duration=200.0)
        sim.run(until=200.0)
        assert proto.ring_consistent()
        assert proto.stats.messages > 0

    def test_maintenance_cost_accumulates(self):
        ring, sim, proto = _setup()
        proto.start(duration=100.0)
        sim.run(until=100.0)
        assert proto.stats.bytes == proto.stats.messages * CONTROL_MESSAGE_BYTES


class TestJoin:
    def test_join_converges(self):
        ring, sim, proto = _setup(n=16)
        proto.start(duration=2000.0)
        bootstrap = ring.nodes()[0]
        new_id = 12345
        while new_id in ring.nodes_by_id:
            new_id += 1
        node = proto.join(new_id, bootstrap, name="joiner", host=0)
        assert len(ring) == 17
        # before stabilisation the predecessor's successor may be stale...
        sim.run(until=500.0)
        # ...after a few rounds the ring is consistent again
        assert proto.ring_consistent()
        # and the new node has a predecessor
        assert node.predecessor is not None

    def test_many_joins_converge(self):
        ring, sim, proto = _setup(n=12, m=20)
        proto.start(duration=5000.0)
        rng = np.random.default_rng(0)
        t = 10.0
        for i in range(8):
            nid = int(rng.integers(0, 2**20))
            while nid in ring.nodes_by_id:
                nid = int(rng.integers(0, 2**20))
            bootstrap = ring.nodes()[int(rng.integers(0, len(ring)))]
            sim.schedule_at(t, proto.join, nid, bootstrap, f"j{i}", 0)
            t += 50.0
        sim.run(until=3000.0)
        assert len(ring) == 20
        assert proto.ring_consistent()
        assert proto.stats.joins == 8

    def test_fingers_converge_after_join(self):
        ring, sim, proto = _setup(n=12, m=16, config=MaintenanceConfig(fix_finger_interval=5.0))
        proto.start(duration=5000.0)
        proto.join(54321 % (1 << 16), ring.nodes()[0], host=0)
        sim.run(until=3000.0)
        assert proto.finger_accuracy() > 0.95


class TestLeaveAndCrash:
    def test_graceful_leave_repairs_immediately(self):
        ring, sim, proto = _setup(n=16)
        victim = ring.nodes()[5]
        proto.leave(victim, graceful=True)
        assert proto.ring_consistent()
        assert proto.stats.leaves == 1

    def test_crash_repaired_by_stabilization(self):
        ring, sim, proto = _setup(n=16)
        proto.start(duration=2000.0)
        victim = ring.nodes()[5]
        sim.schedule_at(10.0, proto.leave, victim, False)
        sim.run(until=500.0)
        assert proto.stats.crashes == 1
        assert proto.ring_consistent()

    def test_multiple_crashes_survive_successor_list(self):
        ring, sim, proto = _setup(n=24)
        proto.start(duration=5000.0)
        victims = ring.nodes()[3:7]  # four consecutive nodes (< list length)
        for i, v in enumerate(victims):
            sim.schedule_at(10.0 + i, proto.leave, v, False)
        sim.run(until=1000.0)
        assert proto.ring_consistent()

    def test_local_lookup_correct_after_churn(self):
        ring, sim, proto = _setup(n=20)
        proto.start(duration=5000.0)
        sim.schedule_at(10.0, proto.leave, ring.nodes()[3], False)
        sim.schedule_at(20.0, proto.join, 999999 % (1 << 20), ring.nodes()[0], "x", 0)
        sim.run(until=2000.0)
        rng = np.random.default_rng(1)
        for _ in range(30):
            key = int(rng.integers(0, 2**20))
            start = ring.nodes()[int(rng.integers(0, len(ring)))]
            owner, _ = proto.local_lookup(start, key)
            assert owner is ring.successor_of(key)


class TestPiggybacking:
    def test_piggyback_saves_bytes(self):
        cfg = MaintenanceConfig(piggyback=True, piggyback_window=60.0)
        ring, sim, proto = _setup(config=cfg)
        # simulate query traffic on all links used by stabilisation
        for node in ring.nodes():
            proto.note_query_traffic(node.host, node.successor.host, at=0.0)
            proto.note_query_traffic(node.successor.host, node.host, at=0.0)
        proto.start(duration=50.0)
        sim.run(until=50.0)
        assert proto.stats.piggybacked > 0
        assert proto.stats.bytes_saved > 0

    def test_no_piggyback_without_traffic(self):
        cfg = MaintenanceConfig(piggyback=True, piggyback_window=5.0)
        ring, sim, proto = _setup(config=cfg)
        proto.start(duration=50.0)
        sim.run(until=50.0)
        assert proto.stats.piggybacked == 0

    def test_window_expiry(self):
        cfg = MaintenanceConfig(piggyback=True, piggyback_window=1.0)
        ring, sim, proto = _setup(config=cfg)
        node = ring.nodes()[0]
        proto.note_query_traffic(node.host, node.successor.host, at=0.0)
        sim.run(until=10.0)  # advance the clock past the window
        before = proto.stats.piggybacked
        proto.stabilize(node)
        assert proto.stats.piggybacked == before

    def test_piggyback_costs_less_than_standalone(self):
        runs = {}
        for piggyback in (False, True):
            cfg = MaintenanceConfig(piggyback=piggyback, piggyback_window=1e9)
            ring, sim, proto = _setup(config=cfg, seed=3)
            for node in ring.nodes():
                for other in ring.nodes():
                    proto.note_query_traffic(node.host, other.host, at=0.0)
            proto.start(duration=100.0)
            sim.run(until=100.0)
            runs[piggyback] = proto.stats.bytes
        assert runs[True] < runs[False]


class TestQueryProtocolIntegration:
    def test_query_traffic_feeds_piggybacking(self):
        import numpy as np

        from repro.core.platform import IndexPlatform
        from repro.metric.vector import EuclideanMetric

        latency = ConstantLatency(16, delay=0.01)
        ring = ChordRing.build(16, m=20, seed=2, latency=latency, pns=False)
        platform = IndexPlatform(ring)
        rng = np.random.default_rng(0)
        data = rng.uniform(0, 100, size=(300, 4))
        platform.create_index(
            "idx", data, EuclideanMetric(box=(0, 100), dim=4), k=3, seed=0
        )
        cfg = MaintenanceConfig(piggyback=True, piggyback_window=1e9)
        maint = StabilizationProtocol(ring, platform.sim, config=cfg, seed=0)
        proto, stats = platform.protocol("idx", maintenance=maint)
        index = platform.indexes["idx"]
        for qid in range(20):
            proto.issue(index.make_query(data[qid], 60.0, qid=qid), ring.nodes()[qid % 16])
        platform.sim.run()
        assert maint._link_query_time  # traffic recorded
        maint.start(duration=50.0)
        platform.sim.run(until=platform.sim.now + 50.0)
        assert maint.stats.piggybacked > 0
