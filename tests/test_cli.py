"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_flags(self):
        args = build_parser().parse_args(
            ["fig2", "--scale", "bench", "--nodes", "8", "--objects", "500", "--queries", "5"]
        )
        assert args.command == "fig2"
        assert args.nodes == 8

    def test_rejects_bad_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--scale", "galactic"])

    def test_all_commands_registered(self):
        for cmd in ("fig2", "fig3", "fig4", "fig5", "fig6", "table1", "table2", "quickstart", "check"):
            args = build_parser().parse_args(
                [cmd] if cmd in ("quickstart",) else [cmd]
            )
            assert args.command == cmd


class TestExecution:
    def test_table1(self, capsys, tmp_path):
        out = tmp_path / "t1.txt"
        assert main(["table1", "--objects", "500", "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "Table 1" in captured
        assert out.read_text().startswith("Table 1")

    def test_table2(self, capsys):
        assert main(["table2", "--corpus-scale", "0.002"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_fig2_tiny(self, capsys, tmp_path):
        out = tmp_path / "fig2.txt"
        rc = main(
            [
                "fig2",
                "--nodes", "8",
                "--objects", "300",
                "--queries", "4",
                "--seed", "1",
                "--out", str(out),
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "[recall]" in text
        assert "Kmean-10" in text
        assert out.exists()

    def test_fig4_tiny(self, capsys):
        rc = main(["fig4", "--nodes", "8", "--objects", "300", "--queries", "2"])
        assert rc == 0
        assert "load distribution" in capsys.readouterr().out

    def test_fig6_tiny(self, capsys):
        rc = main(
            ["fig6", "--nodes", "8", "--queries", "2", "--corpus-scale", "0.002"]
        )
        assert rc == 0
        assert "load distribution" in capsys.readouterr().out

    def test_check(self, capsys):
        rc = main(["check", "--seed", "3"])
        assert rc == 0
        assert "self-check: 5 passed" in capsys.readouterr().out


class TestOpsCommands:
    def test_top_requires_health(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["top"])

    def test_top_renders_health_tail(self, capsys, tmp_path):
        import json

        health = tmp_path / "health.jsonl"
        rows = [
            {"time": float(i), "event_queue_depth": 1, "in_flight_branches": 0,
             "live_nodes": 10, "total_nodes": 10, "load_deciles": [],
             "extra": {"routed_total": 100.0 * i}}
            for i in range(3)
        ]
        health.write_text("".join(json.dumps(r) + "\n" for r in rows))
        assert main(["top", "--health", str(health)]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "throughput" in out

    def test_top_follow_frames(self, capsys, tmp_path):
        health = tmp_path / "health.jsonl"
        health.write_text('{"time": 1.0}\n')
        rc = main(["top", "--health", str(health), "--follow",
                   "--frames", "2", "--interval", "0.01"])
        assert rc == 0
        assert capsys.readouterr().out.count("repro top") == 2

    def test_serve_needs_a_source(self, capsys):
        assert main(["serve"]) == 2
        assert "need --metrics" in capsys.readouterr().out

    def test_serve_for_duration(self, capsys, tmp_path):
        health = tmp_path / "health.jsonl"
        health.write_text('{"time": 1.0}\n')
        rc = main(["serve", "--health", str(health), "--port", "0",
                   "--duration", "0.05"])
        assert rc == 0
        assert "serving http://" in capsys.readouterr().out

    def test_slo_gate_passes_small_run(self, capsys, tmp_path):
        out = tmp_path / "slo.txt"
        rc = main(["slo", "--nodes", "400", "--queries", "2000",
                   "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "7/7 SLOs met" in text
        assert out.read_text().startswith("[slo]")

    def test_slo_json_output(self, capsys):
        import json

        rc = main(["slo", "--nodes", "400", "--queries", "2000", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert len(payload["slos"]) == 7

    def test_flight_show_and_rerun(self, capsys, tmp_path):
        from dataclasses import asdict

        from repro.core.scale import ScaleConfig
        from repro.obs import FlightRecorder

        cfg = ScaleConfig(n_nodes=200, n_objects=400, n_queries=200,
                          chunk=100, dim=4, n_landmarks=3,
                          local_solve_sample=32)
        rec = FlightRecorder(
            capacity=8, context={"scenario": "scale", "config": asdict(cfg)})
        rec.record("chunk", routed=100)
        path = rec.dump(tmp_path / "bundle.json", reason="deadline-storm")
        assert main(["flight", str(path)]) == 0
        assert "reason='deadline-storm'" in capsys.readouterr().out
        assert main(["flight", str(path), "--rerun"]) == 0
        assert "rerun clean" in capsys.readouterr().out

    def test_flight_rerun_without_config(self, capsys, tmp_path):
        from repro.obs import FlightRecorder

        path = FlightRecorder(capacity=2).dump(
            tmp_path / "bare.json", reason="manual")
        assert main(["flight", str(path), "--rerun"]) == 1
        assert "no replayable config" in capsys.readouterr().out

    def test_scale_smoke_artifacts(self, capsys, tmp_path):
        out_dir = tmp_path / "artifacts"
        rc = main(["scale-smoke", "--nodes", "400", "--queries", "400",
                   "--out-dir", str(out_dir)])
        assert rc == 0
        assert "scale-smoke] OK" in capsys.readouterr().out
        for name in ("health.jsonl", "spans.jsonl", "metrics.jsonl", "prom.txt"):
            assert (out_dir / name).exists(), name
