"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_flags(self):
        args = build_parser().parse_args(
            ["fig2", "--scale", "bench", "--nodes", "8", "--objects", "500", "--queries", "5"]
        )
        assert args.command == "fig2"
        assert args.nodes == 8

    def test_rejects_bad_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--scale", "galactic"])

    def test_all_commands_registered(self):
        for cmd in ("fig2", "fig3", "fig4", "fig5", "fig6", "table1", "table2", "quickstart", "check"):
            args = build_parser().parse_args(
                [cmd] if cmd in ("quickstart",) else [cmd]
            )
            assert args.command == cmd


class TestExecution:
    def test_table1(self, capsys, tmp_path):
        out = tmp_path / "t1.txt"
        assert main(["table1", "--objects", "500", "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "Table 1" in captured
        assert out.read_text().startswith("Table 1")

    def test_table2(self, capsys):
        assert main(["table2", "--corpus-scale", "0.002"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_fig2_tiny(self, capsys, tmp_path):
        out = tmp_path / "fig2.txt"
        rc = main(
            [
                "fig2",
                "--nodes", "8",
                "--objects", "300",
                "--queries", "4",
                "--seed", "1",
                "--out", str(out),
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "[recall]" in text
        assert "Kmean-10" in text
        assert out.exists()

    def test_fig4_tiny(self, capsys):
        rc = main(["fig4", "--nodes", "8", "--objects", "300", "--queries", "2"])
        assert rc == 0
        assert "load distribution" in capsys.readouterr().out

    def test_fig6_tiny(self, capsys):
        rc = main(
            ["fig6", "--nodes", "8", "--queries", "2", "--corpus-scale", "0.002"]
        )
        assert rc == 0
        assert "load distribution" in capsys.readouterr().out

    def test_check(self, capsys):
        rc = main(["check", "--seed", "3"])
        assert rc == 0
        assert "self-check: 5 passed" in capsys.readouterr().out
