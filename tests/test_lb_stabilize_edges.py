"""Additional edge cases for load balancing and stabilisation internals."""

import numpy as np

from repro.core.loadbalance import _split_point, dynamic_load_migration
from repro.core.platform import IndexPlatform
from repro.dht.ring import ChordRing
from repro.dht.stabilize import StabilizationProtocol
from repro.metric.vector import EuclideanMetric
from repro.sim.engine import Simulator
from repro.sim.network import ConstantLatency

DIM = 3
METRIC = EuclideanMetric(box=(0, 100), dim=DIM)


def _platform(n_nodes=10, n_obj=200, seed=0, skew=True):
    rng = np.random.default_rng(seed)
    if skew:
        center = rng.uniform(40, 60, size=(1, DIM))
        data = np.clip(center + rng.normal(0, 2, (n_obj, DIM)), 0, 100)
    else:
        data = rng.uniform(0, 100, size=(n_obj, DIM))
    ring = ChordRing.build(n_nodes, m=20, seed=seed, latency=ConstantLatency(n_nodes, 0.01))
    platform = IndexPlatform(ring)
    platform.create_index("idx", data, METRIC, k=2, sample_size=100, seed=seed)
    return platform


class TestSplitPoint:
    def test_returns_key_in_heavy_range(self):
        platform = _platform()
        idx = platform.indexes["idx"]
        heavy = max(idx.shards, key=lambda n: idx.shards[n].load)
        split = _split_point(platform, heavy)
        assert split is not None
        # the split point must fall in the heavy node's ownership interval
        from repro.dht.idspace import in_interval_open_closed

        assert in_interval_open_closed(split, heavy.predecessor.id, heavy.id, 20) or split != heavy.id

    def test_none_for_empty_node(self):
        platform = _platform()
        idx = platform.indexes["idx"]
        empty = min(idx.shards, key=lambda n: idx.shards[n].load)
        if idx.shards[empty].load == 0:
            assert _split_point(platform, empty) is None

    def test_split_roughly_halves(self):
        platform = _platform()
        idx = platform.indexes["idx"]
        heavy = max(idx.shards, key=lambda n: idx.shards[n].load)
        before = idx.shards[heavy].load
        split = _split_point(platform, heavy)
        light = min(idx.shards, key=lambda n: idx.shards[n].load)
        platform.ring.move_node(light, split)
        idx.distribute()
        after = idx.shards[heavy].load
        assert after <= before * 0.75  # took a substantial share


class TestMigrationKnobs:
    def test_min_load_prevents_churn(self):
        platform = _platform(n_obj=20)  # tiny index
        report = dynamic_load_migration(platform, min_load=1000, seed=0)
        assert report.moves == 0

    def test_zero_rounds_cap(self):
        platform = _platform()
        report = dynamic_load_migration(platform, max_rounds=0, seed=0)
        assert report.rounds == 0
        assert report.moves == 0

    def test_history_tracks_max(self):
        platform = _platform()
        report = dynamic_load_migration(platform, max_rounds=5, seed=0)
        assert len(report.history) == report.rounds
        if report.history:
            assert report.history[-1] == report.final_max_load


class TestStabilizeEdges:
    def _proto(self, n=12):
        ring = ChordRing.build(n, m=20, seed=0, latency=ConstantLatency(n, 0.01))
        sim = Simulator()
        return ring, sim, StabilizationProtocol(ring, sim, seed=0)

    def test_leave_last_but_one(self):
        ring, sim, proto = self._proto(n=2)
        victim = ring.nodes()[0]
        proto.leave(victim, graceful=True)
        assert len(ring) == 1
        assert proto.ring_consistent()

    def test_local_lookup_hop_budget(self):
        ring, sim, proto = self._proto()
        node = ring.nodes()[0]
        owner, hops = proto.local_lookup(node, 12345, max_hops=0)
        # zero budget: either resolves instantly (successor check) or gives up
        assert hops == 0

    def test_join_schedules_timers_when_running(self):
        ring, sim, proto = self._proto()
        proto.start(duration=500.0)
        pending_before = sim.pending()
        proto.join(999_999 % (1 << 20), ring.nodes()[0], "x", 0)
        assert sim.pending() > pending_before

    def test_stabilize_idempotent_on_converged_ring(self):
        ring, sim, proto = self._proto()
        snapshot = {n.id: n.successor.id for n in ring.nodes()}
        for node in ring.nodes():
            proto.stabilize(node)
        assert {n.id: n.successor.id for n in ring.nodes()} == snapshot

    def test_notify_ignores_worse_candidate(self):
        ring, sim, proto = self._proto()
        nodes = ring.nodes()
        n2 = nodes[2]
        old_pred = n2.predecessor
        proto.notify(n2, nodes[0] if nodes[0] is not old_pred else nodes[1])
        # the true predecessor is closer; notify must not regress
        assert n2.predecessor is old_pred

    def test_finger_accuracy_degrades_then_recovers(self):
        ring, sim, proto = self._proto(n=16)
        proto.start(duration=10_000.0)
        assert proto.finger_accuracy() == 1.0
        victim = ring.nodes()[4]
        proto.leave(victim, graceful=False)
        assert proto.finger_accuracy() < 1.0  # stale fingers point at the dead node
        sim.run(until=5_000.0)
        assert proto.finger_accuracy() > 0.9
