"""Metrics registry: instruments, percentile math, null objects, exporters."""

import io
import math

import numpy as np
import pytest

from repro.obs.export import (
    format_metrics_rows,
    format_metrics_table,
    prometheus_text,
    read_metrics_jsonl,
    write_csv,
    write_jsonl,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.sim.stats import StatsCollector


class TestCounterGauge:
    def test_counter_inc_and_labels(self):
        c = Counter("msgs_total", "messages", ("proto",))
        c.inc(("query",))
        c.inc(("query",), 2.0)
        c.inc(("result",))
        assert c.value(("query",)) == 3.0
        assert c.value(("result",)) == 1.0
        assert c.value(("absent",)) == 0.0
        assert c.total() == 4.0

    def test_counter_rejects_negative_and_bad_labels(self):
        c = Counter("n", "", ("a",))
        with pytest.raises(ValueError):
            c.inc(("x",), -1.0)
        with pytest.raises(ValueError):
            c.inc(("x", "y"))  # wrong arity

    def test_gauge_set_inc_dec(self):
        g = Gauge("depth", "")
        g.set(10.0)
        g.inc((), 5.0)
        g.dec((), 2.0)
        assert g.value() == 13.0


class TestHistogramPercentiles:
    def test_bucket_percentiles_interpolate(self):
        h = Histogram("lat", "", buckets=(1.0, 2.0, 4.0, 8.0))
        for v in (0.5, 1.5, 1.5, 3.0, 6.0, 7.0):
            h.observe(v)
        # p50 of 6 samples lands inside a bucket; linear interpolation keeps
        # it within that bucket's bounds
        p50 = h.percentile(0.50)
        assert 1.0 <= p50 <= 2.0
        p99 = h.percentile(0.99)
        assert 4.0 <= p99 <= 8.0

    def test_reservoir_percentiles_exact_when_small(self):
        h = Histogram("lat", "", reservoir=256)
        data = np.arange(1, 101, dtype=float)  # 1..100
        for v in data:
            h.observe(float(v))
        # all 100 samples fit in the reservoir: percentiles are exact
        assert h.percentile(0.50) == pytest.approx(np.percentile(data, 50))
        assert h.percentile(0.90) == pytest.approx(np.percentile(data, 90))

    def test_reservoir_deterministic_across_instances(self):
        def fill():
            h = Histogram("same_name", "", reservoir=16)
            for v in range(1000):
                h.observe(float(v))
            return h.percentile(0.5)

        # seeding by crc32(name) — not the salted hash() — makes the
        # subsample identical run to run and instance to instance
        assert fill() == fill()

    def test_empty_histogram_is_nan(self):
        h = Histogram("lat", "")
        assert math.isnan(h.percentile(0.5))
        snap = h.snapshot(())
        assert snap["count"] == 0
        assert math.isnan(snap["p50"])

    def test_snapshot_fields(self):
        h = Histogram("lat", "", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        snap = h.snapshot(())
        assert snap["count"] == 2
        assert snap["sum"] == pytest.approx(5.5)
        assert not math.isnan(snap["p50"])


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "x", ("l",))
        b = reg.counter("x_total", "x", ("l",))
        assert a is b
        assert "x_total" in reg
        assert len(reg) == 1

    def test_type_and_label_conflicts_raise(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "x", ("l",))
        with pytest.raises(TypeError):
            reg.gauge("x_total", "x", ("l",))
        with pytest.raises(ValueError):
            reg.counter("x_total", "x", ("other",))

    def test_snapshot_rows_are_flat(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "help c", ("p",)).inc(("a",), 2)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(1.0)
        rows = reg.snapshot()
        by_name = {r["name"]: r for r in rows}
        assert by_name["c_total"]["value"] == 2.0
        assert by_name["c_total"]["labels"] == {"p": "a"}
        assert by_name["g"]["value"] == 7.0
        assert by_name["h"]["count"] == 1


class TestNullRegistry:
    def test_disabled_and_shared_noop_instrument(self):
        null = NullRegistry()
        assert null.enabled is False
        c = null.counter("a_total", "", ("l",))
        g = null.gauge("b")
        assert c is g  # one shared no-op object
        c.inc(("x",), 5)
        g.set(3)
        c.observe(1.0)
        assert null.snapshot() == []

    def test_module_singleton(self):
        assert NULL_REGISTRY.enabled is False
        assert NULL_REGISTRY.counter("x", "") is NULL_REGISTRY.histogram("y", "")

    def test_transport_resolves_no_instruments_when_disabled(self):
        from repro.sim.engine import Simulator
        from repro.sim.transport import Transport

        t = Transport(sim=Simulator(), metrics=NULL_REGISTRY)
        assert t._m_sent is None and t._m_bytes is None
        t2 = Transport(sim=Simulator(), metrics=MetricsRegistry())
        assert t2._m_sent is not None


class TestEmptyStatsContract:
    """NaN-vs-0.0 contract of an empty StatsCollector: time aggregates are
    undefined (NaN) with no queries; count aggregates are a true zero."""

    def test_empty_aggregates(self):
        stats = StatsCollector()
        assert math.isnan(stats.mean_response_time())
        assert math.isnan(stats.mean_max_latency())
        assert stats.mean_hops() == 0.0
        assert stats.mean_total_bytes() == 0.0
        assert stats.mean_query_messages() == 0.0
        summary = stats.summary()
        assert summary["queries"] == 0.0
        assert math.isnan(summary["response_time"])
        assert math.isnan(summary["max_latency"])
        assert summary["maintenance_bytes"] == 0.0
        assert summary["maintenance_messages"] == 0.0


class TestExporters:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("sent_total", "messages sent", ("proto",)).inc(("query",), 3)
        reg.histogram("lat", "latency").observe(0.25)
        return reg

    def test_jsonl_round_trip(self, tmp_path):
        reg = self._registry()
        path = tmp_path / "m.jsonl"
        write_jsonl(reg.snapshot(), path)
        rows = read_metrics_jsonl(path)
        assert {r["name"] for r in rows} == {"sent_total", "lat"}

    def test_jsonl_nan_round_trip(self, tmp_path):
        # JSON has no NaN: write_jsonl stores null, read restores NaN
        row = {"name": "h", "type": "histogram", "help": "", "labels": {},
               "count": 0.0, "sum": 0.0, "p50": float("nan"),
               "p90": float("nan"), "p99": float("nan")}
        p = tmp_path / "e.jsonl"
        write_jsonl([row], p)
        assert "null" in p.read_text()
        back = read_metrics_jsonl(p)
        assert math.isnan(back[0]["p50"]) and back[0]["count"] == 0.0

    def test_table_renders_same_from_live_and_reloaded(self, tmp_path):
        reg = self._registry()
        live = format_metrics_table(reg)
        path = tmp_path / "m.jsonl"
        write_jsonl(reg.snapshot(), path)
        reloaded = format_metrics_rows(read_metrics_jsonl(path))
        assert live == reloaded
        assert "sent_total{proto=query}" in live
        assert format_metrics_table(reg, prefix="nope_") == "(no metrics recorded)"

    def test_prometheus_text(self):
        text = prometheus_text(self._registry())
        assert '# TYPE sent_total counter' in text
        assert 'sent_total{proto="query"} 3.0' in text
        assert '# TYPE lat summary' in text
        assert 'lat_count' in text

    def test_csv_flattens_labels(self):
        buf = io.StringIO()
        write_csv(self._registry().snapshot(), buf)
        header = buf.getvalue().splitlines()[0]
        assert "label_proto" in header and "name" in header
