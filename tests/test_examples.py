"""Smoke tests: every example script must run end-to-end (reduced sizes
are patched in where needed to keep CI fast)."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "recall@10" in out
        assert "overlay: 64 Chord nodes" in out

    @pytest.mark.slow
    def test_dna_search(self, capsys):
        out = _run("dna_search.py", capsys)
        assert "hits from the query's own family" in out

    def test_image_search(self, capsys):
        out = _run("image_search.py", capsys)
        assert "same template" in out

    @pytest.mark.slow
    def test_multi_index(self, capsys):
        out = _run("multi_index_demo.py", capsys)
        assert "3 indexes" in out
        assert "vectors" in out and "dna" in out and "docs" in out

    def test_timeseries_search(self, capsys):
        out = _run("timeseries_search.py", capsys)
        assert "from the same family" in out
        assert "traced query" in out

    def test_knn_failures(self, capsys):
        out = _run("knn_failures_demo.py", capsys)
        assert "matches brute force=True" in out
        assert "0 entries lost" in out

    def test_experiment_harness(self, capsys):
        out = _run("experiment_harness.py", capsys)
        assert "self-check: 5 passed, 0 failed" in out
        assert "3-seed replication" in out

    @pytest.mark.slow
    def test_document_search(self, capsys):
        out = _run("document_search.py", capsys)
        assert "recall@10" in out

    @pytest.mark.slow
    def test_load_balancing_demo(self, capsys):
        out = _run("load_balancing_demo.py", capsys)
        assert "dynamic load balancing" in out
