"""Deterministic trace sampling: hash parity, rates, and replay stability."""

from __future__ import annotations

import numpy as np

from repro.obs.sampling import TraceSampler, splitmix64, splitmix64_array


class TestSplitMix64:
    def test_scalar_matches_vectorised_bits(self):
        rng = np.random.default_rng(0)
        xs = rng.integers(0, 1 << 63, size=4096, dtype=np.uint64)
        # exercise the wrap-around region too
        xs[:8] = np.uint64(0xFFFFFFFFFFFFFFFF) - np.arange(8, dtype=np.uint64)
        vec = splitmix64_array(xs)
        scalar = np.array([splitmix64(int(x)) for x in xs], dtype=np.uint64)
        np.testing.assert_array_equal(vec, scalar)

    def test_avalanche(self):
        # neighbouring inputs land far apart; no fixed point at zero
        h0, h1 = splitmix64(0), splitmix64(1)
        assert h0 != 0 and h0 != h1
        assert bin(h0 ^ h1).count("1") > 16

    def test_stays_in_64_bits(self):
        assert 0 <= splitmix64((1 << 64) - 1) < (1 << 64)


class TestTraceSampler:
    def test_mask_matches_scalar_sample(self):
        s = TraceSampler(every=64, salt=7)
        qids = np.arange(10_000, dtype=np.uint64)
        mask = s.mask(qids)
        loop = np.array([s.sample(int(q)) for q in qids], dtype=bool)
        np.testing.assert_array_equal(mask, loop)

    def test_rate_approximates_one_in_every(self):
        s = TraceSampler(every=64)
        qids = np.arange(200_000, dtype=np.uint64)
        kept = int(s.mask(qids).sum())
        expect = len(qids) / 64
        # binomial std ≈ 55 here; 5σ keeps this deterministic-in-practice
        assert abs(kept - expect) < 5 * np.sqrt(expect)
        assert s.rate == 1.0 / 64

    def test_deterministic_across_instances(self):
        qids = np.arange(5_000, dtype=np.uint64)
        a = TraceSampler(every=128, salt=3).mask(qids)
        b = TraceSampler(every=128, salt=3).mask(qids)
        np.testing.assert_array_equal(a, b)

    def test_disabled_and_keep_all(self):
        qids = np.arange(100, dtype=np.uint64)
        off = TraceSampler(every=0)
        assert off.rate == 0.0
        assert not off.sample(5)
        assert not off.mask(qids).any()
        allof = TraceSampler(every=1)
        assert allof.rate == 1.0
        assert allof.sample(5)
        assert allof.mask(qids).all()

    def test_salt_decorrelates(self):
        qids = np.arange(100_000, dtype=np.uint64)
        a = TraceSampler(every=32, salt=0).mask(qids)
        b = TraceSampler(every=32, salt=12345).mask(qids)
        # similar rates, different subsets
        assert abs(int(a.sum()) - int(b.sum())) < 500
        overlap = int((a & b).sum())
        # independent 1/32 samplers overlap on ~1/1024 of qids, not ~1/32
        assert overlap < int(a.sum()) / 4

    def test_no_rng_consumed(self):
        # the sampler is pure arithmetic: it must not perturb any RNG stream
        rng = np.random.default_rng(9)
        before = rng.bit_generator.state
        s = TraceSampler(every=16)
        s.mask(np.arange(1000, dtype=np.uint64))
        s.sample(42)
        assert rng.bit_generator.state == before

    def test_repr(self):
        assert "every=8" in repr(TraceSampler(every=8, salt=1))
