"""Cross-feature interaction tests: features composed together must keep the
core invariant (routed results == exact scan) and their own guarantees."""

import numpy as np

from repro.core.knn import knn_search
from repro.core.loadbalance import dynamic_load_migration
from repro.core.platform import IndexPlatform
from repro.core.trace import TracingProtocol
from repro.core.updates import UpdateProtocol
from repro.dht.ring import ChordRing
from repro.eval.ground_truth import exact_range, exact_top_k
from repro.metric.vector import EuclideanMetric
from repro.sim.network import ConstantLatency
from repro.sim.stats import StatsCollector

DIM = 4
METRIC = EuclideanMetric(box=(0, 100), dim=DIM)


def _platform(n_nodes=20, n_obj=500, seed=0, **kw):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, 100, size=(4, DIM))
    data = np.clip(centers[rng.integers(0, 4, n_obj)] + rng.normal(0, 5, (n_obj, DIM)), 0, 100)
    ring = ChordRing.build(n_nodes, m=24, seed=seed, latency=ConstantLatency(n_nodes, 0.01))
    platform = IndexPlatform(ring)
    platform.create_index("idx", data, METRIC, k=3, selection="kmeans",
                          sample_size=200, seed=seed, **kw)
    return platform, data


def _range_ids(platform, data, qi, radius):
    proto, stats = platform.protocol("idx", top_k=10**6)
    platform.sim.reset()
    proto.issue(platform.indexes["idx"].make_query(data[qi], radius, qid=0),
                platform.ring.nodes()[0])
    platform.sim.run()
    return sorted(e.object_id for e in stats.for_query(0).entries)


class TestRotationPlusReplication:
    def test_exact_and_crash_tolerant(self):
        platform, data = _platform(rotation=True, replication=2, seed=1)
        idx = platform.indexes["idx"]
        want = sorted(exact_range(data, METRIC, data[0], 30.0).tolist())
        assert _range_ids(platform, data, 0, 30.0) == want
        victim = max(idx.shards, key=lambda n: idx.shards[n].load)
        platform.fail_node(victim)
        assert _range_ids(platform, data, 0, 30.0) == want


class TestLoadBalancePlusUpdates:
    def test_updates_after_migration(self):
        platform, data = _platform(seed=2)
        dynamic_load_migration(platform, max_rounds=6, seed=0)
        up = UpdateProtocol(platform.indexes["idx"])
        up.delete(0)
        assert 0 not in _range_ids(platform, data, 0, 30.0)
        up.insert(0)
        want = sorted(exact_range(data, METRIC, data[0], 30.0).tolist())
        assert _range_ids(platform, data, 0, 30.0) == want

    def test_migration_after_updates(self):
        platform, data = _platform(seed=3)
        up = UpdateProtocol(platform.indexes["idx"])
        for oid in range(5):
            up.delete(oid)
        report = dynamic_load_migration(platform, max_rounds=6, seed=0)
        assert platform.indexes["idx"].total_entries() == 495
        want = sorted(exact_range(data, METRIC, data[10], 30.0).tolist())
        want = [w for w in want if w >= 5]
        assert _range_ids(platform, data, 10, 30.0) == want


class TestKnnPlusLoadBalance:
    def test_knn_exact_after_migration(self):
        platform, data = _platform(seed=4)
        dynamic_load_migration(platform, max_rounds=6, seed=0)
        res = knn_search(platform, "idx", data[3], k=10)
        truth = exact_top_k(data, METRIC, data[3], 10)
        assert res.exact
        assert set(res.object_ids.tolist()) == set(int(t) for t in truth)


class TestKnnPlusReplicationFailure:
    def test_knn_exact_after_crash(self):
        platform, data = _platform(replication=2, seed=5)
        idx = platform.indexes["idx"]
        victim = max(idx.shards, key=lambda n: idx.shards[n].load)
        platform.fail_node(victim)
        res = knn_search(platform, "idx", data[3], k=10)
        truth = exact_top_k(data, METRIC, data[3], 10)
        assert set(res.object_ids.tolist()) == set(int(t) for t in truth)


class TestTracePlusRotation:
    def test_trace_solve_ranges_disjoint_under_rotation(self):
        platform, data = _platform(rotation=True, seed=6)
        stats = StatsCollector()
        proto = TracingProtocol(platform.sim, platform.indexes["idx"], stats,
                                latency=platform.latency, top_k=10**6)
        platform.sim.reset()
        q = platform.indexes["idx"].make_query(data[0], 40.0, qid=0)
        proto.issue(q, platform.ring.nodes()[0])
        platform.sim.run()
        trace = proto.traces[0]
        ranges = sorted((e.key_lo, e.key_hi) for e in trace.solves())
        for (a1, b1), (a2, b2) in zip(ranges, ranges[1:]):
            assert b1 < a2
        want = sorted(exact_range(data, METRIC, data[0], 40.0).tolist())
        assert sorted(e.object_id for e in stats.for_query(0).entries) == want


class TestPersistencePlusLoadBalance:
    def test_saved_index_reloads_after_migration(self, tmp_path):
        from repro.io import load_index, save_index

        platform, data = _platform(seed=7)
        dynamic_load_migration(platform, max_rounds=6, seed=0)
        path = str(tmp_path / "idx.npz")
        save_index(platform.indexes["idx"], path)
        restored = load_index(path, platform.ring, data, METRIC)
        fresh = IndexPlatform(platform.ring)
        fresh.indexes["idx"] = restored
        want = sorted(exact_range(data, METRIC, data[2], 30.0).tolist())
        res = fresh.query("idx", data[2], radius=30.0, top_k=10**6)
        assert sorted(e.object_id for e in res) == want
