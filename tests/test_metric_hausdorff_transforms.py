"""Tests for the Hausdorff metric, the d/(1+d) transform, scaling and the
discrete metric."""

import math

import numpy as np
import pytest

from repro.metric.base import check_metric_axioms
from repro.metric.discrete import DiscreteMetric
from repro.metric.hausdorff import HausdorffMetric
from repro.metric.strings import EditDistanceMetric
from repro.metric.transforms import BoundedMetric, ScaledMetric
from repro.metric.vector import EuclideanMetric


class TestHausdorff:
    def test_identical_sets(self):
        A = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert HausdorffMetric().distance(A, A) == 0.0

    def test_subset_is_directed(self):
        A = np.array([[0.0, 0.0]])
        B = np.array([[0.0, 0.0], [3.0, 4.0]])
        # sup over B of dist to A is 5; sup over A of dist to B is 0.
        assert HausdorffMetric().distance(A, B) == pytest.approx(5.0)

    def test_translation(self):
        A = np.array([[0.0, 0.0], [1.0, 0.0]])
        B = A + np.array([0.0, 2.0])
        assert HausdorffMetric().distance(A, B) == pytest.approx(2.0)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(5, 2))
        B = rng.normal(size=(8, 2))
        m = HausdorffMetric()
        assert m.distance(A, B) == pytest.approx(m.distance(B, A))

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            HausdorffMetric().distance(np.empty((0, 2)), np.array([[0.0, 0.0]]))

    def test_axioms_on_point_sets(self):
        rng = np.random.default_rng(1)
        sample = [rng.uniform(0, 10, size=(rng.integers(2, 6), 2)) for _ in range(8)]
        check_metric_axioms(HausdorffMetric(), sample)

    def test_bounded_variant(self):
        m = HausdorffMetric(box=(0, 100), dim=2)
        assert m.is_bounded
        assert m.upper_bound == pytest.approx(100 * math.sqrt(2))

    def test_one_to_many(self):
        rng = np.random.default_rng(2)
        sets = [rng.uniform(size=(4, 2)) for _ in range(5)]
        m = HausdorffMetric()
        out = m.one_to_many(sets[0], sets)
        assert out[0] == pytest.approx(0.0)
        for i in range(5):
            assert out[i] == pytest.approx(m.distance(sets[0], sets[i]))


class TestBoundedTransform:
    def test_bounds_to_one(self):
        m = BoundedMetric(EuclideanMetric())
        assert m.is_bounded and m.upper_bound == 1.0
        assert m.distance([0.0], [1e9]) < 1.0

    def test_formula(self):
        m = BoundedMetric(EuclideanMetric())
        # d = 3 -> 3/4
        assert m.distance([0.0], [3.0]) == pytest.approx(0.75)

    def test_preserves_zero(self):
        m = BoundedMetric(EuclideanMetric())
        assert m.distance([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_monotone(self):
        m = BoundedMetric(EuclideanMetric())
        assert m.distance([0.0], [1.0]) < m.distance([0.0], [2.0])

    def test_still_a_metric(self):
        rng = np.random.default_rng(3)
        sample = rng.normal(scale=5, size=(10, 3))
        check_metric_axioms(BoundedMetric(EuclideanMetric()), sample)

    def test_radius_roundtrip(self):
        m = BoundedMetric(EuclideanMetric())
        for r in (0.1, 1.0, 17.3):
            assert m.to_inner_radius(m.to_bounded_radius(r)) == pytest.approx(r)

    def test_radius_ball_equivalence(self):
        """A ball of radius r under d equals a ball of radius t(r) under d'."""
        inner = EuclideanMetric()
        m = BoundedMetric(inner)
        x, y = np.array([0.0, 0.0]), np.array([2.0, 1.0])
        r = 3.0
        assert (inner.distance(x, y) <= r) == (
            m.distance(x, y) <= BoundedMetric.to_bounded_radius(r)
        )

    def test_one_to_many_matches_scalar(self):
        m = BoundedMetric(EditDistanceMetric())
        strs = ["abc", "abd", "xyzw"]
        out = m.one_to_many("abc", strs)
        np.testing.assert_allclose(out, [m.distance("abc", s) for s in strs])


class TestScaledMetric:
    def test_scales(self):
        m = ScaledMetric(EuclideanMetric(), 2.0)
        assert m.distance([0.0], [3.0]) == pytest.approx(6.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ScaledMetric(EuclideanMetric(), 0.0)

    def test_propagates_bound(self):
        m = ScaledMetric(EuclideanMetric(box=(0, 10), dim=4), 3.0)
        assert m.is_bounded
        assert m.upper_bound == pytest.approx(3.0 * 20.0)


class TestDiscreteMetric:
    def test_values(self):
        m = DiscreteMetric()
        assert m.distance("a", "a") == 0.0
        assert m.distance("a", "b") == 1.0

    def test_axioms(self):
        check_metric_axioms(DiscreteMetric(), ["a", "b", "c", "d"])

    def test_one_to_many(self):
        out = DiscreteMetric().one_to_many("a", ["a", "b", "a"])
        np.testing.assert_array_equal(out, [0.0, 1.0, 0.0])
