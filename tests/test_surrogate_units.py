"""Unit tests for SurrogateRefine internals (beyond the integration suite).

These pin down the mechanics of both surrogate modes on hand-built rings
where ownership intervals are known exactly.
"""

import numpy as np

from repro.core.index_space import IndexSpaceBounds
from repro.core.query import RangeQuery, Rect
from repro.core.routing import QueryProtocol
from repro.core.storage import Shard
from repro.dht.ring import ChordRing
from repro.sim.engine import Simulator
from repro.sim.stats import StatsCollector
from repro.util.bits import first_zero_bit, prefix_of

M = 8  # tiny id space so cuboids are enumerable


class FakeIndex:
    """A minimal index duck-type: 2-D space, hand-placed entries."""

    def __init__(self, ring, rotation=0):
        self.ring = ring
        self.m = M
        self.k = 2
        self.bounds = IndexSpaceBounds.uniform(2, 0.0, 1.0)
        self.rotation = rotation
        self.shards = {node: Shard(2) for node in ring.nodes()}
        self.name = "fake"

    def place(self, key: int, point, object_id: int):
        mask = (1 << self.m) - 1
        owner = self.ring.successor_of((key + self.rotation) & mask)
        self.shards[owner].add(
            np.array([key], dtype=np.uint64),
            np.asarray(point, dtype=np.float64)[None, :],
            np.array([object_id]),
        )

    def refine_distances(self, q, points, object_ids):
        # rank by L_inf in index space (no dataset needed)
        return np.abs(points - q.payload).max(axis=1)


def _line_ring(ids):
    ring = ChordRing(m=M, successor_list_len=4)
    for i, nid in enumerate(ids):
        ring.add_node(nid, name=f"n{nid}", host=i, rebuild=False)
    ring.rebuild_tables()
    return ring


def _proto(index, mode="fixed"):
    sim = Simulator()
    stats = StatsCollector()
    return QueryProtocol(sim, index, stats, latency=None, surrogate_mode=mode,
                         top_k=100, range_filter=False), sim, stats


class TestClaimedRange:
    def test_claimed_range_spans_cuboid(self):
        ring = _line_ring([10, 200])
        index = FakeIndex(ring)
        proto, _, _ = _proto(index)
        q = RangeQuery(Rect(np.zeros(2), np.ones(2)), prefix_key=0b01000000,
                       prefix_len=2, qid=0)
        lo, hi = proto._claimed_range(q)
        assert lo == 0b01000000
        assert hi == 0b01111111


class TestFixedSurrogate:
    def test_full_coverage_when_prefix_differs(self):
        """Owner id beyond the cuboid -> it owns the whole claimed range and
        solves locally, forwarding nothing."""
        # nodes at 16 and 240; cuboid prefix 0001xxxx (keys 16..31) is fully
        # owned by node 16's *successor interval*? keys 17..240 owned by 240.
        ring = _line_ring([16, 240])
        index = FakeIndex(ring)
        # entry inside the cuboid at key 20, point in the matching cell
        index.place(20, [0.1, 0.3], 7)
        proto, sim, stats = _proto(index)
        node240 = ring.nodes_by_id[240]
        q = RangeQuery(Rect(np.zeros(2), np.ones(2)), prefix_key=0b00010100,
                       prefix_len=6, qid=0, source=node240, payload=np.zeros(2))
        # claimed keys 20..23; owner of 20 is 240 whose prefix differs
        proto._surrogate_refine(node240, q, hops=0)
        sim.run()
        st = stats.for_query(0)
        assert {e.object_id for e in st.entries} == {7}
        assert st.index_nodes == {240}

    def test_partial_coverage_forwards_siblings(self):
        """Owner inside the cuboid: answers [prefix, id], forwards the rest."""
        # node ids 0b0101_0000 = 80 and 0b1110_0000 = 224
        ring = _line_ring([80, 224])
        index = FakeIndex(ring)
        proto, sim, stats = _proto(index)
        node80 = ring.nodes_by_id[80]
        # whole-space query claiming keys 0..255 arriving at node 80
        q = RangeQuery(Rect(np.zeros(2), np.ones(2)), prefix_key=0, prefix_len=0,
                       qid=0, source=node80, payload=np.zeros(2))
        # place entries: key 10 (owned by 80) and key 200 (owned by 224)
        index.place(10, [0.2, 0.2], 1)
        index.place(200, [0.9, 0.6], 2)
        proto._surrogate_refine(node80, q, hops=0)
        sim.run()
        st = stats.for_query(0)
        assert {e.object_id for e in st.entries} == {1, 2}
        assert st.index_nodes == {80, 224}

    def test_zero_bits_drive_sibling_count(self):
        """The number of forwarded sibling prefixes equals the number of zero
        bits of the effective id after the prefix (bounded by m)."""
        eff = 0b10100000
        zeros = []
        j = first_zero_bit(eff, 1, M)
        while j is not None:
            zeros.append(j)
            j = first_zero_bit(eff, j + 1, M)
        assert zeros == [2, 4, 5, 6, 7, 8]
        assert prefix_of(eff, 1, M) == 0b10000000


class TestLiteralVsFixedUnit:
    def test_literal_loses_straddling_sliver(self):
        """Hand-built scenario from DESIGN.md §4b where the literal mode
        provably drops an entry the fixed mode returns."""
        # Ring: nodes at 0b11000000 (192) and 0b00100000 (32).
        # Query: whole space (prefix len 0) surrogated at node 192
        # (owner of key 0).  eff = 192 = 0b11000000: bits 1,2 are 1, first
        # zero at j=3.  Literal re-prefixes to 0b11 (len 2) — claiming the
        # rect sits in the [0.75,1.0]x[0.5,1.0] cuboid — and splits at 3.
        # An entry at key 0b01xxxxxx (lower half of div 1, upper of div 2)
        # with x-coordinate > the div-3 midpoint ends up ONLY in the
        # forwarded subquery, whose keys start at 0b11100000 — missed.
        ring = _line_ring([32, 192])
        node192 = ring.nodes_by_id[192]
        results = {}
        for mode in ("fixed", "literal"):
            index = FakeIndex(ring)
            # key 0b01100000 = 96: dim0 in (0.25,0.5], dim1 in (0.5,0.75]...
            # place a point that hashes there: x in lower half div1,
            # y upper half div2, x upper half div3.
            index.place(96, [0.45, 0.6], 42)
            proto, sim, stats = _proto(index, mode=mode)
            q = RangeQuery(Rect(np.zeros(2), np.ones(2)), prefix_key=0,
                           prefix_len=0, qid=0, source=node192,
                           payload=np.zeros(2))
            proto._surrogate_refine(node192, q, hops=0)
            sim.run()
            results[mode] = {e.object_id for e in stats.for_query(0).entries}
        assert 42 in results["fixed"]
        assert 42 not in results["literal"]
