"""Property-based test: stabilisation converges under random churn schedules.

For any sequence of joins, graceful leaves and crashes (within the
successor-list tolerance), running the maintenance loop long enough must
return the overlay to a consistent ring whose lookups match the oracle.
"""

import numpy as np
from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.dht.ring import ChordRing
from repro.dht.stabilize import MaintenanceConfig, StabilizationProtocol
from repro.sim.engine import Simulator
from repro.sim.network import ConstantLatency


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 1000),
    n_start=st.integers(10, 24),
    events=st.lists(
        st.tuples(
            st.sampled_from(["join", "leave", "crash"]),
            st.integers(0, 10**6),
        ),
        min_size=1,
        max_size=6,
    ),
)
# Regression: a node joins with successors=[owner] only, and the owner
# crashes before the first successor-list copy tick — the joiner's list
# drained permanently and stabilisation stalled.  Fixed by copying the
# owner's successor list in the join handshake plus an emergency
# re-adoption path in stabilize() when every successor is dead.
@example(seed=221, n_start=10, events=[("join", 0), ("crash", 0)])
def test_churn_converges(seed, n_start, events):
    m = 20
    latency = ConstantLatency(64, delay=0.005)
    ring = ChordRing.build(n_start, m=m, seed=seed, latency=latency)
    sim = Simulator()
    proto = StabilizationProtocol(
        ring, sim,
        config=MaintenanceConfig(stabilize_interval=10.0, fix_finger_interval=5.0),
        seed=seed,
    )
    proto.start(duration=5000.0)
    rng = np.random.default_rng(seed)
    t = 20.0
    crashes_since_quiet = 0
    scheduled_ids = set(ring.nodes_by_id)
    for kind, val in events:
        if kind == "join":
            nid = val % (1 << m)
            while nid in scheduled_ids:
                nid = (nid + 1) % (1 << m)
            scheduled_ids.add(nid)
            bootstrap = ring.nodes()[int(rng.integers(0, len(ring)))]
            sim.schedule_at(t, proto.join, nid, bootstrap, f"j{val}", 0)
        else:
            # keep crash bursts within the successor-list tolerance and the
            # ring large enough to stay connected
            if kind == "crash" and crashes_since_quiet >= 3:
                continue
            if len(ring) <= 4:
                continue
            victim = ring.nodes()[val % len(ring)]
            sim.schedule_at(t, proto.leave, victim, kind == "leave")
            if kind == "crash":
                crashes_since_quiet += 1
        # spread events a couple of stabilisation rounds apart
        t += 40.0
        crashes_since_quiet = max(0, crashes_since_quiet - 1)
    sim.run(until=t + 1500.0)
    assert proto.ring_consistent()
    # lookups from node-local state match the oracle everywhere
    nodes = ring.nodes()
    for _ in range(20):
        key = int(rng.integers(0, 1 << m))
        start = nodes[int(rng.integers(0, len(nodes)))]
        owner, _ = proto.local_lookup(start, key)
        assert owner is ring.successor_of(key)
