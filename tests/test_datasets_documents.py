"""Tests for the synthetic TREC-like corpus (Table 2 statistics)."""

import numpy as np
import pytest
from scipy import sparse

from repro.datasets.documents import (
    PAPER_TABLE2,
    SyntheticCorpusConfig,
    generate_corpus,
    generate_topics,
    vector_size_stats,
)

SMALL = SyntheticCorpusConfig().scaled(0.02)  # ~3140 docs, ~4670 terms


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(SMALL, seed=0)


class TestCorpusGeneration:
    def test_shape(self, corpus):
        assert corpus.tfidf.shape == (SMALL.n_docs, SMALL.vocab_size)
        assert sparse.issparse(corpus.tfidf)

    def test_deterministic(self):
        a = generate_corpus(SMALL, seed=3)
        b = generate_corpus(SMALL, seed=3)
        assert (a.tfidf != b.tfidf).nnz == 0

    def test_stopword_columns_empty(self, corpus):
        """The top-ranked (stop) terms never appear in document vectors."""
        csc = corpus.tfidf.tocsc()
        stop_df = np.diff(csc.indptr)[: SMALL.n_stopwords]
        assert stop_df.sum() == 0

    def test_weights_positive(self, corpus):
        assert corpus.tfidf.data.min() > 0

    def test_doc_sizes_match_matrix(self, corpus):
        np.testing.assert_array_equal(corpus.doc_sizes, np.diff(corpus.tfidf.indptr))

    def test_sizes_within_paper_range(self, corpus):
        assert corpus.doc_sizes.min() >= 1
        assert corpus.doc_sizes.max() <= SMALL.max_terms

    def test_table2_shape_calibration(self, corpus):
        """Measured stats should be within a tolerant band of Table 2."""
        stats = vector_size_stats(corpus.doc_sizes)
        assert stats["50th"] == pytest.approx(PAPER_TABLE2["50th"], rel=0.2)
        assert stats["mean"] == pytest.approx(PAPER_TABLE2["mean"], rel=0.2)
        assert stats["95th"] == pytest.approx(PAPER_TABLE2["95th"], rel=0.3)
        assert stats["5th"] < 100  # short-document tail exists

    def test_idf_realised(self, corpus):
        seen = corpus.idf > 0
        assert seen.sum() > 0
        # IDF of a term seen in every doc would be 0; rare terms get more.
        assert corpus.idf[seen].max() > 1.0

    def test_n_distinct_terms_counts_nonempty_columns(self, corpus):
        df = np.diff(corpus.tfidf.tocsc().indptr)
        assert corpus.n_distinct_terms == int((df > 0).sum())

    def test_zipf_concentration(self, corpus):
        """Low-rank (frequent) terms should have much higher df than tail terms."""
        df = np.diff(corpus.tfidf.tocsc().indptr).astype(float)
        start = SMALL.n_stopwords
        head = df[start : start + 200].mean()
        tail = df[start + 2000 : start + 4000].mean()
        assert head > 3 * max(tail, 0.01)


class TestScaledConfig:
    def test_scaling_reduces_counts(self):
        cfg = SyntheticCorpusConfig().scaled(0.1)
        assert cfg.n_docs == int(157_021 * 0.1)
        assert cfg.vocab_size == int(233_640 * 0.1)

    def test_scaling_keeps_length_distribution(self):
        cfg = SyntheticCorpusConfig().scaled(0.1)
        assert cfg.log_median == SyntheticCorpusConfig().log_median

    def test_floor(self):
        cfg = SyntheticCorpusConfig().scaled(1e-9)
        assert cfg.n_docs >= 100 and cfg.vocab_size >= 2000


class TestTopics:
    def test_shape_and_sparsity(self, corpus):
        topics = generate_topics(corpus, n_topics=50, seed=1)
        assert topics.shape == (50, SMALL.vocab_size)
        sizes = np.diff(topics.indptr)
        assert sizes.min() >= 1
        # Paper: queries average ~3.5 unique terms.
        assert 2.0 < sizes.mean() < 5.5

    def test_topics_avoid_stopwords(self, corpus):
        topics = generate_topics(corpus, n_topics=50, seed=1)
        assert topics.indices.min() >= SMALL.n_stopwords

    def test_deterministic(self, corpus):
        a = generate_topics(corpus, seed=9)
        b = generate_topics(corpus, seed=9)
        assert (a != b).nnz == 0


class TestVectorSizeStats:
    def test_keys_match_table2(self):
        stats = vector_size_stats(np.arange(1, 101))
        assert set(stats) == set(PAPER_TABLE2)

    def test_values(self):
        stats = vector_size_stats(np.array([1, 2, 3, 4, 5]))
        assert stats["minimum"] == 1
        assert stats["maximum"] == 5
        assert stats["mean"] == 3.0
        assert stats["50th"] == 3.0
