"""Tests for the Jaccard set metric."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metric.base import check_metric_axioms
from repro.metric.sets import JaccardMetric

small_sets = st.frozensets(st.integers(0, 12), max_size=8)


class TestJaccard:
    def test_known_values(self):
        m = JaccardMetric()
        assert m.distance({1, 2}, {1, 2}) == 0.0
        assert m.distance({1}, {2}) == 1.0
        assert m.distance({1, 2}, {2, 3}) == pytest.approx(2 / 3)

    def test_empty_sets(self):
        m = JaccardMetric()
        assert m.distance(set(), set()) == 0.0
        assert m.distance(set(), {1}) == 1.0

    def test_accepts_iterables(self):
        m = JaccardMetric()
        assert m.distance([1, 2, 2], (2, 1)) == 0.0  # duplicates collapse

    def test_bounded(self):
        assert JaccardMetric().is_bounded
        assert JaccardMetric().upper_bound == 1.0

    def test_one_to_many(self):
        m = JaccardMetric()
        out = m.one_to_many({1, 2}, [{1, 2}, {1}, {3}])
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_axioms(self):
        sample = [frozenset(s) for s in ({1}, {1, 2}, {2, 3}, {4}, set(), {1, 2, 3, 4})]
        check_metric_axioms(JaccardMetric(), sample)

    @settings(max_examples=60, deadline=None)
    @given(small_sets, small_sets, small_sets)
    def test_triangle_property(self, a, b, c):
        m = JaccardMetric()
        assert m.distance(a, c) <= m.distance(a, b) + m.distance(b, c) + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(small_sets, small_sets)
    def test_symmetry_property(self, a, b):
        m = JaccardMetric()
        assert m.distance(a, b) == pytest.approx(m.distance(b, a))

    def test_indexable_on_platform(self):
        """End-to-end: a Jaccard index over tag sets on the platform."""
        from repro.core.platform import IndexPlatform
        from repro.dht.ring import ChordRing

        rng = np.random.default_rng(0)
        universe = list(range(40))
        base_a = set(range(0, 12))
        base_b = set(range(20, 32))
        data = []
        for i in range(120):
            base = base_a if i % 2 == 0 else base_b
            s = set(base)
            for _ in range(3):  # jitter membership
                s.symmetric_difference_update({int(rng.integers(0, 40))})
            data.append(frozenset(s))
        ring = ChordRing.build(8, m=18, seed=0)
        platform = IndexPlatform(ring)
        platform.create_index(
            "tags", data, JaccardMetric(), k=3, selection="kmedoids",
            boundary="metric", sample_size=60, seed=1,
        )
        res = platform.query("tags", data[0], radius=0.5, top_k=10)
        assert res and res[0].object_id == 0
        # same-family sets dominate the neighbourhood
        fams = [e.object_id % 2 for e in res]
        assert fams.count(0) > len(fams) / 2
