"""The scale substrates against their object-graph oracles.

CompactChordRing must reproduce ChordRing's greedy lookups hop-for-hop on
identical membership (classic fingers, no PNS); ShardStore must hold exactly
what per-node Shards would; schedule_batch must leave the engine digest
bit-identical to per-event scheduling; and the ScaleSimulation harness must
run end-to-end with its invariants intact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scale import ScaleConfig, ScaleSimulation
from repro.core.storage import Shard, ShardStore
from repro.dht.compact import CompactChordRing
from repro.dht.ring import ChordRing
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Simulator
from repro.sim.king import king_coordinate_model


def _object_ring(n, m, seed):
    return ChordRing.build(n, m=m, seed=seed, pns=False, id_source="random")


class TestCompactVsObjectRing:
    @pytest.mark.parametrize(
        "n,m,seed", [(1, 16, 0), (2, 16, 1), (7, 16, 2), (150, 32, 3), (400, 64, 4)]
    )
    def test_route_batch_matches_lookup_path(self, n, m, seed):
        ring = _object_ring(n, m, seed)
        comp = CompactChordRing.from_ring(ring)
        comp.check_invariants()
        by_slot = [ring.nodes_by_id[int(i)] for i in comp.ids]
        rng = np.random.default_rng(seed + 100)
        nq = 200
        keys = rng.integers(0, 1 << m if m < 64 else 1 << 63, size=nq, dtype=np.uint64)
        # exercise the key == node-id edge (routes the full ring)
        keys[:5] = comp.ids[rng.integers(0, n, size=5)]
        src = rng.integers(0, n, size=nq, dtype=np.int64)
        owner, hops, lat, visits = comp.route_batch(src, keys, count_visits=True)
        for i in range(nq):
            path = ring.lookup_path(by_slot[src[i]], int(keys[i]))
            assert path[-1].id == int(comp.ids[owner[i]])
            assert len(path) - 1 == hops[i]
        # each query visits its source + (hops-1) intermediates; the
        # terminal owner hop is excluded from forwarding load
        assert visits.sum() == hops.sum()

    def test_owners_match_object_ring(self):
        ring = _object_ring(64, 20, 5)
        comp = CompactChordRing.from_ring(ring)
        rng = np.random.default_rng(6)
        keys = rng.integers(0, 1 << 20, size=500, dtype=np.uint64)
        np.testing.assert_array_equal(
            comp.owners_of_keys(keys), ring.owners_of_keys(keys)
        )

    def test_latency_accumulates_along_path(self):
        ring = _object_ring(50, 24, 7)
        comp = CompactChordRing.from_ring(ring)
        lat = king_coordinate_model(n_hosts=64, seed=9)
        rng = np.random.default_rng(8)
        keys = rng.integers(0, 1 << 24, size=50, dtype=np.uint64)
        src = rng.integers(0, 50, size=50)
        _, hops, path_lat, _ = comp.route_batch(src, keys, latency=lat)
        assert np.all(path_lat[hops > 0] > 0)
        assert np.all(path_lat[hops == 0] == 0)

    def test_bulk_join_matches_fresh_build(self):
        base = CompactChordRing.build(100, m=32, seed=1)
        rng = np.random.default_rng(2)
        new_ids = np.setdiff1d(
            rng.integers(0, 1 << 32, size=40, dtype=np.uint64), base.ids
        )
        new_hosts = np.arange(100, 100 + len(new_ids), dtype=np.int64)
        slots = base.bulk_join(new_ids, new_hosts)
        base.check_invariants()
        assert np.array_equal(base.ids[slots], new_ids)
        fresh = CompactChordRing(base.ids, base.hosts, m=32)
        assert np.array_equal(fresh.fingers, base.fingers)

    def test_duplicate_join_rejected(self):
        base = CompactChordRing.build(10, m=32, seed=1)
        with pytest.raises(ValueError):
            base.bulk_join(base.ids[:1], np.array([99], dtype=np.int64))


class TestShardStoreVsShards:
    def test_matches_per_node_shards(self):
        rng = np.random.default_rng(3)
        n_slots, n_entries, k = 16, 500, 3
        owners = rng.integers(0, n_slots, size=n_entries)
        keys = rng.integers(0, 1 << 40, size=n_entries, dtype=np.uint64)
        points = rng.uniform(0, 1, size=(n_entries, k))
        ids = np.arange(n_entries, dtype=np.int64)
        store = ShardStore.build(owners, keys, points, ids, n_slots)
        assert int(store.loads().sum()) == n_entries
        for slot in range(n_slots):
            shard = Shard(k)
            mask = owners == slot
            shard.add(keys[mask], points[mask], ids[mask])
            ks, ps, os_ = store.slice(slot)
            np.testing.assert_array_equal(ks, shard.keys)
            np.testing.assert_array_equal(ps, shard.points)
            np.testing.assert_array_equal(os_, shard.object_ids)
            lows, highs = np.full(k, 0.25), np.full(k, 0.75)
            got = store.range_search(slot, lows, highs, key_lo=1 << 30, key_hi=1 << 39)
            want = shard.range_search(lows, highs, key_lo=1 << 30, key_hi=1 << 39)
            np.testing.assert_array_equal(os_[got], shard.object_ids[want])

    def test_lazy_shard_sort_matches_eager(self):
        rng = np.random.default_rng(4)
        s = Shard(2)
        ref_keys, ref_ids = [], []
        for _ in range(5):
            ks = rng.integers(0, 100, size=20, dtype=np.uint64)
            s.add(ks, rng.uniform(size=(20, 2)), np.arange(20))
            ref_keys.append(ks)
        allk = np.concatenate(ref_keys)
        np.testing.assert_array_equal(s.keys, np.sort(allk, kind="stable"))


class TestScheduleBatch:
    def test_digest_identical_to_loop(self):
        events = [(0.5, 0), (0.1, 1), (0.9, 2), (0.1, 3)]
        log_a, log_b = [], []

        sim_a = Simulator()
        sim_a.digest_enabled = True
        for t, tag in events:
            sim_a.schedule_at(t, log_a.append, tag)
        sim_a.run()

        sim_b = Simulator()
        sim_b.digest_enabled = True
        sim_b.schedule_batch([(t, log_b.append, (tag,)) for t, tag in events])
        sim_b.run()

        assert log_a == log_b
        assert sim_a.schedule_digest == sim_b.schedule_digest

    def test_past_time_rejected(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_batch([(0.5, lambda: None, ())])


class TestGaugeSetMany:
    def test_bulk_matches_scalar(self):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        vals = np.random.default_rng(7).uniform(size=50)
        g_a = reg_a.gauge("g", "x", ("pos",))
        g_b = reg_b.gauge("g", "x", ("pos",))
        labelsets = [(str(i),) for i in range(len(vals))]
        for v, ls in zip(vals, labelsets):
            g_a.set(float(v), ls)
        g_b.set_many(vals.tolist(), labelsets)
        assert g_a.samples() == g_b.samples()

    def test_null_registry_noop(self):
        from repro.obs.registry import NullRegistry

        g = NullRegistry().gauge("g", "x", ("pos",))
        g.set_many([1.0], [("0",)])  # must not raise


class TestHistogramObserveMany:
    def test_matches_loop(self):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        vals = np.random.default_rng(5).exponential(0.1, size=1000)
        h_a = reg_a.histogram("h", buckets=(0.01, 0.05, 0.1, 0.5))
        h_b = reg_b.histogram("h", buckets=(0.01, 0.05, 0.1, 0.5))
        for v in vals:
            h_a.observe(float(v))
        h_b.observe_many(vals)
        assert h_a.count() == h_b.count()
        assert h_a.sum() == pytest.approx(h_b.sum())
        assert h_a.values[()].counts == h_b.values[()].counts
        assert h_a.percentile(0.9) == pytest.approx(h_b.percentile(0.9))

    def test_reservoir_path_identical(self):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        vals = np.random.default_rng(6).uniform(size=200)
        h_a = reg_a.histogram("r", buckets=(0.5,), reservoir=32)
        h_b = reg_b.histogram("r", buckets=(0.5,), reservoir=32)
        for v in vals:
            h_a.observe(float(v))
        h_b.observe_many(vals)
        assert h_a.values[()].sample == h_b.values[()].sample

    @pytest.mark.parametrize("reservoir", [0, 64])
    def test_percentile_parity(self, reservoir):
        # batch and scalar paths must agree at every reported percentile,
        # on both the fixed-bucket estimator and the deterministic reservoir
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        vals = np.random.default_rng(8).exponential(0.2, size=500)
        kw = {"reservoir": reservoir} if reservoir else {}
        h_a = reg_a.histogram("p", buckets=(0.05, 0.1, 0.2, 0.5, 1.0), **kw)
        h_b = reg_b.histogram("p", buckets=(0.05, 0.1, 0.2, 0.5, 1.0), **kw)
        for v in vals:
            h_a.observe(float(v))
        h_b.observe_many(vals)
        for q in (0.5, 0.9, 0.99):
            assert h_a.percentile(q) == h_b.percentile(q)

    def test_labeled_batch_matches_loop(self):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        vals = np.random.default_rng(9).uniform(size=100)
        h_a = reg_a.histogram("l", buckets=(0.5,), labelnames=("shard",))
        h_b = reg_b.histogram("l", buckets=(0.5,), labelnames=("shard",))
        for v in vals:
            h_a.observe(float(v), ("a",))
        h_b.observe_many(vals, ("a",))
        assert h_a.percentile(0.9, ("a",)) == h_b.percentile(0.9, ("a",))
        assert h_a.values[("a",)].counts == h_b.values[("a",)].counts


class TestScaleSimulation:
    def test_end_to_end_small(self):
        cfg = ScaleConfig(
            n_nodes=500, n_objects=1000, n_queries=2000, chunk=500, dim=6,
            n_landmarks=3,
        )
        reg = MetricsRegistry()
        sim = ScaleSimulation(
            cfg, latency=king_coordinate_model(n_hosts=500, seed=1), registry=reg
        )
        sim.check_invariants()
        rep = sim.run()
        sim.check_invariants()
        assert rep.n_queries == 2000
        assert 0 < rep.mean_hops < 12
        assert rep.latency_p50_s > 0
        assert rep.health_samples >= 3
        assert rep.storage_load["gini"] > 0
        assert int(sim.forward_visits.sum()) > 0
        h = reg.get("scale_query_latency_seconds")
        assert h is not None and h.count() == 2000
        assert reg.get("scale_query_hops").count() == 2000

    def test_deterministic_per_seed(self):
        cfg = ScaleConfig(n_nodes=200, n_objects=400, n_queries=400, chunk=200,
                          dim=4, n_landmarks=3)
        reps = []
        for _ in range(2):
            sim = ScaleSimulation(cfg)
            reps.append(sim.run())
        assert reps[0].mean_hops == reps[1].mean_hops
        assert reps[0].storage_load["gini"] == reps[1].storage_load["gini"]

    def test_smoke_entrypoint(self, capsys):
        from repro.bench.scale import run_scale_smoke

        rc = run_scale_smoke(n_nodes=400, n_queries=400, budget_s=60.0)
        out = capsys.readouterr().out
        assert rc == 0
        assert "scale-smoke] OK" in out
        assert "forwarding visits" in out


def _small_cfg(**kw):
    base = dict(n_nodes=300, n_objects=600, n_queries=900, chunk=300,
                dim=4, n_landmarks=3, local_solve_sample=64)
    base.update(kw)
    return ScaleConfig(**base)


class TestScaleObservability:
    def test_counters_on_clean_run(self):
        reg = MetricsRegistry()
        sim = ScaleSimulation(_small_cfg(), registry=reg)
        rep = sim.run()
        assert rep.counters["routed"] == 900.0
        assert rep.counters["dropped"] == 0.0
        assert rep.counters["solved"] == 900.0
        assert rep.counters["trace_samples"] == float(rep.sampled_spans)
        assert rep.dropped == 0
        assert reg.get("scale_queries_routed_total").total() == 900.0

    def test_sampled_spans_deterministic_and_nonperturbing(self):
        from repro.obs import MemorySpanSink, SpanRecorder

        cfg = _small_cfg(trace_sample_every=16)
        plain = ScaleSimulation(cfg).run()
        sink = MemorySpanSink()
        traced_sim = ScaleSimulation(cfg, recorder=SpanRecorder(sink))
        traced = traced_sim.run()
        # sampling is a qid hash: same subset every run, and attaching a
        # recorder must not perturb the routing outcome
        assert plain.sampled_spans == traced.sampled_spans > 0
        assert plain.mean_hops == traced.mean_hops
        assert plain.storage_load["gini"] == traced.storage_load["gini"]
        # root span + one route event per sampled query
        roots = [s for s in sink.records if s.parent is None]
        assert len(roots) == traced.sampled_spans
        untr = ScaleSimulation(_small_cfg(trace_sample_every=0)).run()
        assert untr.sampled_spans == 0
        assert untr.mean_hops == plain.mean_hops

    def test_flight_records_chunk_history(self):
        sim = ScaleSimulation(_small_cfg())
        sim.run()
        kinds = [e["kind"] for e in sim.flight.events()]
        assert kinds.count("chunk") == 3  # 900 queries / 300 chunk
        assert sim.flight.context["config"]["n_nodes"] == 300
        assert not sim.flight.dumps  # clean run dumps nothing

    def test_deadline_storm_dumps_bundle(self, tmp_path, monkeypatch):
        from repro.obs.flight import load_bundle

        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        sim = ScaleSimulation(_small_cfg(hop_deadline=1))
        rep = sim.run()
        assert rep.dropped > 0
        assert len(sim.flight.dumps) == 1  # one bundle per run, not per chunk
        bundle = load_bundle(sim.flight.dumps[0])
        assert bundle["reason"] == "deadline-storm"
        assert bundle["context"]["config"]["hop_deadline"] == 1
        assert any(e["kind"] == "deadline-storm" for e in bundle["events"])

    def test_invariant_violation_dumps_bundle(self, tmp_path, monkeypatch):
        from repro.obs.flight import load_bundle

        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        sim = ScaleSimulation(_small_cfg())
        sim.store.offsets[-1] += 1  # corrupt the store
        with pytest.raises(AssertionError):
            sim.check_invariants()
        assert len(sim.flight.dumps) == 1
        assert load_bundle(sim.flight.dumps[0])["reason"] == "invariant-violation"

    def test_health_cadence_matches_chunking(self):
        sim = ScaleSimulation(_small_cfg())
        rep = sim.run()
        # one virtual second per chunk, one sample per second
        assert rep.health_samples == len(sim.chunk_stats) == 3
        series = sim.slo_series()
        assert series["health_cadence_ratio"] == [1.0]
        assert len(series["chunk_hops_p99"]) == 3

    def test_health_deciles_reconcile_with_forwarding(self):
        sim = ScaleSimulation(_small_cfg())
        sim.run()
        last = sim.sampler.samples[-1]
        want = np.percentile(
            sim.forward_visits.astype(float), list(range(0, 101, 10)))
        np.testing.assert_allclose(last.load_deciles, want)
        assert last.extra["routed_total"] == 900.0
        assert last.extra["live_nodes"] == 300.0

    def test_health_jsonl_streams(self, tmp_path):
        from repro.obs.ops import read_health_jsonl

        path = tmp_path / "health.jsonl"
        sim = ScaleSimulation(_small_cfg(), health_jsonl=path)
        rep = sim.run()
        sim.sampler.close()
        rows = read_health_jsonl(path)
        assert len(rows) == rep.health_samples
        assert rows[-1]["extra"]["routed_total"] == 900.0

    def test_load_gauges_skipped_beyond_cap(self):
        from repro.core.scale import _LOAD_GAUGE_MAX_NODES, STORED_LOAD_GAUGE

        reg = MetricsRegistry()
        sim = ScaleSimulation(_small_cfg(), registry=reg)
        sim.run()
        assert sim.cfg.n_nodes <= _LOAD_GAUGE_MAX_NODES
        gauge = reg.get(STORED_LOAD_GAUGE)
        assert gauge is not None and len(gauge.samples()) == 300
