"""The scale substrates against their object-graph oracles.

CompactChordRing must reproduce ChordRing's greedy lookups hop-for-hop on
identical membership (classic fingers, no PNS); ShardStore must hold exactly
what per-node Shards would; schedule_batch must leave the engine digest
bit-identical to per-event scheduling; and the ScaleSimulation harness must
run end-to-end with its invariants intact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scale import ScaleConfig, ScaleSimulation
from repro.core.storage import Shard, ShardStore
from repro.dht.compact import CompactChordRing
from repro.dht.ring import ChordRing
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Simulator
from repro.sim.king import king_coordinate_model


def _object_ring(n, m, seed):
    return ChordRing.build(n, m=m, seed=seed, pns=False, id_source="random")


class TestCompactVsObjectRing:
    @pytest.mark.parametrize(
        "n,m,seed", [(1, 16, 0), (2, 16, 1), (7, 16, 2), (150, 32, 3), (400, 64, 4)]
    )
    def test_route_batch_matches_lookup_path(self, n, m, seed):
        ring = _object_ring(n, m, seed)
        comp = CompactChordRing.from_ring(ring)
        comp.check_invariants()
        by_slot = [ring.nodes_by_id[int(i)] for i in comp.ids]
        rng = np.random.default_rng(seed + 100)
        nq = 200
        keys = rng.integers(0, 1 << m if m < 64 else 1 << 63, size=nq, dtype=np.uint64)
        # exercise the key == node-id edge (routes the full ring)
        keys[:5] = comp.ids[rng.integers(0, n, size=5)]
        src = rng.integers(0, n, size=nq, dtype=np.int64)
        owner, hops, lat, visits = comp.route_batch(src, keys, count_visits=True)
        for i in range(nq):
            path = ring.lookup_path(by_slot[src[i]], int(keys[i]))
            assert path[-1].id == int(comp.ids[owner[i]])
            assert len(path) - 1 == hops[i]
        # each query visits its source + (hops-1) intermediates; the
        # terminal owner hop is excluded from forwarding load
        assert visits.sum() == hops.sum()

    def test_owners_match_object_ring(self):
        ring = _object_ring(64, 20, 5)
        comp = CompactChordRing.from_ring(ring)
        rng = np.random.default_rng(6)
        keys = rng.integers(0, 1 << 20, size=500, dtype=np.uint64)
        np.testing.assert_array_equal(
            comp.owners_of_keys(keys), ring.owners_of_keys(keys)
        )

    def test_latency_accumulates_along_path(self):
        ring = _object_ring(50, 24, 7)
        comp = CompactChordRing.from_ring(ring)
        lat = king_coordinate_model(n_hosts=64, seed=9)
        rng = np.random.default_rng(8)
        keys = rng.integers(0, 1 << 24, size=50, dtype=np.uint64)
        src = rng.integers(0, 50, size=50)
        _, hops, path_lat, _ = comp.route_batch(src, keys, latency=lat)
        assert np.all(path_lat[hops > 0] > 0)
        assert np.all(path_lat[hops == 0] == 0)

    def test_bulk_join_matches_fresh_build(self):
        base = CompactChordRing.build(100, m=32, seed=1)
        rng = np.random.default_rng(2)
        new_ids = np.setdiff1d(
            rng.integers(0, 1 << 32, size=40, dtype=np.uint64), base.ids
        )
        new_hosts = np.arange(100, 100 + len(new_ids), dtype=np.int64)
        slots = base.bulk_join(new_ids, new_hosts)
        base.check_invariants()
        assert np.array_equal(base.ids[slots], new_ids)
        fresh = CompactChordRing(base.ids, base.hosts, m=32)
        assert np.array_equal(fresh.fingers, base.fingers)

    def test_duplicate_join_rejected(self):
        base = CompactChordRing.build(10, m=32, seed=1)
        with pytest.raises(ValueError):
            base.bulk_join(base.ids[:1], np.array([99], dtype=np.int64))


class TestShardStoreVsShards:
    def test_matches_per_node_shards(self):
        rng = np.random.default_rng(3)
        n_slots, n_entries, k = 16, 500, 3
        owners = rng.integers(0, n_slots, size=n_entries)
        keys = rng.integers(0, 1 << 40, size=n_entries, dtype=np.uint64)
        points = rng.uniform(0, 1, size=(n_entries, k))
        ids = np.arange(n_entries, dtype=np.int64)
        store = ShardStore.build(owners, keys, points, ids, n_slots)
        assert int(store.loads().sum()) == n_entries
        for slot in range(n_slots):
            shard = Shard(k)
            mask = owners == slot
            shard.add(keys[mask], points[mask], ids[mask])
            ks, ps, os_ = store.slice(slot)
            np.testing.assert_array_equal(ks, shard.keys)
            np.testing.assert_array_equal(ps, shard.points)
            np.testing.assert_array_equal(os_, shard.object_ids)
            lows, highs = np.full(k, 0.25), np.full(k, 0.75)
            got = store.range_search(slot, lows, highs, key_lo=1 << 30, key_hi=1 << 39)
            want = shard.range_search(lows, highs, key_lo=1 << 30, key_hi=1 << 39)
            np.testing.assert_array_equal(os_[got], shard.object_ids[want])

    def test_lazy_shard_sort_matches_eager(self):
        rng = np.random.default_rng(4)
        s = Shard(2)
        ref_keys, ref_ids = [], []
        for _ in range(5):
            ks = rng.integers(0, 100, size=20, dtype=np.uint64)
            s.add(ks, rng.uniform(size=(20, 2)), np.arange(20))
            ref_keys.append(ks)
        allk = np.concatenate(ref_keys)
        np.testing.assert_array_equal(s.keys, np.sort(allk, kind="stable"))


class TestScheduleBatch:
    def test_digest_identical_to_loop(self):
        events = [(0.5, 0), (0.1, 1), (0.9, 2), (0.1, 3)]
        log_a, log_b = [], []

        sim_a = Simulator()
        sim_a.digest_enabled = True
        for t, tag in events:
            sim_a.schedule_at(t, log_a.append, tag)
        sim_a.run()

        sim_b = Simulator()
        sim_b.digest_enabled = True
        sim_b.schedule_batch([(t, log_b.append, (tag,)) for t, tag in events])
        sim_b.run()

        assert log_a == log_b
        assert sim_a.schedule_digest == sim_b.schedule_digest

    def test_past_time_rejected(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_batch([(0.5, lambda: None, ())])


class TestHistogramObserveMany:
    def test_matches_loop(self):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        vals = np.random.default_rng(5).exponential(0.1, size=1000)
        h_a = reg_a.histogram("h", buckets=(0.01, 0.05, 0.1, 0.5))
        h_b = reg_b.histogram("h", buckets=(0.01, 0.05, 0.1, 0.5))
        for v in vals:
            h_a.observe(float(v))
        h_b.observe_many(vals)
        assert h_a.count() == h_b.count()
        assert h_a.sum() == pytest.approx(h_b.sum())
        assert h_a.values[()].counts == h_b.values[()].counts
        assert h_a.percentile(0.9) == pytest.approx(h_b.percentile(0.9))

    def test_reservoir_path_identical(self):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        vals = np.random.default_rng(6).uniform(size=200)
        h_a = reg_a.histogram("r", buckets=(0.5,), reservoir=32)
        h_b = reg_b.histogram("r", buckets=(0.5,), reservoir=32)
        for v in vals:
            h_a.observe(float(v))
        h_b.observe_many(vals)
        assert h_a.values[()].sample == h_b.values[()].sample


class TestScaleSimulation:
    def test_end_to_end_small(self):
        cfg = ScaleConfig(
            n_nodes=500, n_objects=1000, n_queries=2000, chunk=500, dim=6,
            n_landmarks=3,
        )
        reg = MetricsRegistry()
        sim = ScaleSimulation(
            cfg, latency=king_coordinate_model(n_hosts=500, seed=1), registry=reg
        )
        sim.check_invariants()
        rep = sim.run()
        sim.check_invariants()
        assert rep.n_queries == 2000
        assert 0 < rep.mean_hops < 12
        assert rep.latency_p50_s > 0
        assert rep.health_samples >= 3
        assert rep.storage_load["gini"] > 0
        assert int(sim.forward_visits.sum()) > 0
        h = reg.get("scale_query_latency_seconds")
        assert h is not None and h.count() == 2000
        assert reg.get("scale_query_hops").count() == 2000

    def test_deterministic_per_seed(self):
        cfg = ScaleConfig(n_nodes=200, n_objects=400, n_queries=400, chunk=200,
                          dim=4, n_landmarks=3)
        reps = []
        for _ in range(2):
            sim = ScaleSimulation(cfg)
            reps.append(sim.run())
        assert reps[0].mean_hops == reps[1].mean_hops
        assert reps[0].storage_load["gini"] == reps[1].storage_load["gini"]

    def test_smoke_entrypoint(self, capsys):
        from repro.bench.scale import run_scale_smoke

        rc = run_scale_smoke(n_nodes=400, n_queries=400, budget_s=60.0)
        out = capsys.readouterr().out
        assert rc == 0
        assert "scale-smoke] OK" in out
        assert "forwarding visits" in out
