"""Tests for query workloads, sequence and shape generators."""

import numpy as np
import pytest

from repro.datasets.queries import (
    PAPER_RANGE_FACTORS,
    QueryWorkload,
    poisson_arrivals,
    repeat_topics,
    synthetic_query_points,
)
from repro.datasets.shapes import ShapeFamilyConfig, generate_shapes
from repro.datasets.strings import SequenceFamilyConfig, generate_sequences, mutate
from repro.datasets.synthetic import ClusteredGaussianConfig, generate_clustered
from repro.metric.strings import edit_distance


class TestArrivals:
    def test_monotone_increasing(self):
        t = poisson_arrivals(100, 150.0, seed=0)
        assert np.all(np.diff(t) > 0)

    def test_mean_interarrival(self):
        t = poisson_arrivals(20_000, 150.0, seed=0)
        assert np.diff(t).mean() == pytest.approx(150.0, rel=0.05)

    def test_start_time(self):
        t = poisson_arrivals(10, 1.0, seed=0, start_time=1000.0)
        assert t[0] > 1000.0


class TestWorkload:
    def test_build(self):
        pts = np.zeros((25, 3))
        w = QueryWorkload.build(pts, radius=2.0, n_nodes=8, seed=1)
        assert len(w) == 25
        assert np.all(w.radii == 2.0)
        assert w.source_nodes.min() >= 0 and w.source_nodes.max() < 8
        assert np.all(np.diff(w.arrival_times) > 0)

    def test_paper_range_factors_span(self):
        assert PAPER_RANGE_FACTORS[0] == 0.001
        assert PAPER_RANGE_FACTORS[-1] == 0.20


class TestSyntheticQueryPoints:
    def test_same_cluster_structure(self):
        cfg = ClusteredGaussianConfig(n_objects=500, dim=4, n_clusters=3, deviation=2.0)
        _, centers = generate_clustered(cfg, 0)
        q = synthetic_query_points(cfg, 50, centers, seed=1)
        assert q.shape == (50, 4)
        d2 = ((q[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        assert np.median(np.sqrt(d2.min(axis=1))) < cfg.deviation * np.sqrt(cfg.dim)


class TestRepeatTopics:
    def test_repeats(self):
        topics = np.arange(12).reshape(4, 3).astype(float)
        idx, queries = repeat_topics(topics, 40, seed=0)
        assert len(idx) == 40
        assert queries.shape == (40, 3)
        np.testing.assert_array_equal(queries, topics[idx])

    def test_all_topics_used(self):
        topics = np.arange(10).reshape(5, 2).astype(float)
        idx, _ = repeat_topics(topics, 500, seed=0)
        assert set(idx.tolist()) == set(range(5))


class TestSequences:
    def test_generation(self):
        cfg = SequenceFamilyConfig(n_sequences=60, n_families=4, length=30)
        seqs, fams = generate_sequences(cfg, 0)
        assert len(seqs) == 60
        assert fams.shape == (60,)
        assert all(set(s) <= set("ACGT") for s in seqs)

    def test_family_structure(self):
        """Sequences in the same family are closer than across families."""
        cfg = SequenceFamilyConfig(n_sequences=40, n_families=2, length=40, mutation_rate=0.05)
        seqs, fams = generate_sequences(cfg, 0)
        same, cross = [], []
        for i in range(0, 20):
            for j in range(i + 1, 20):
                d = edit_distance(seqs[i], seqs[j])
                (same if fams[i] == fams[j] else cross).append(d)
        assert np.mean(same) < np.mean(cross)

    def test_mutate_rate_zero_is_identity(self):
        rng = np.random.default_rng(0)
        assert mutate("ACGTACGT", 0.0, rng) == "ACGTACGT"

    def test_mutate_never_empty(self):
        rng = np.random.default_rng(0)
        assert len(mutate("A", 1.0, rng)) >= 1


class TestShapes:
    def test_generation(self):
        cfg = ShapeFamilyConfig(n_shapes=30, n_templates=3, points_per_shape=16)
        shapes, which = generate_shapes(cfg, 0)
        assert len(shapes) == 30
        assert all(s.shape == (16, 2) for s in shapes)
        assert which.min() >= 0 and which.max() < 3

    def test_within_canvas(self):
        cfg = ShapeFamilyConfig(n_shapes=20)
        shapes, _ = generate_shapes(cfg, 1)
        for s in shapes:
            assert s.min() >= 0 and s.max() <= cfg.canvas

    def test_template_structure(self):
        """Same-template shapes are Hausdorff-closer than cross-template."""
        from repro.metric.hausdorff import HausdorffMetric

        cfg = ShapeFamilyConfig(n_shapes=24, n_templates=3, jitter=1.0)
        shapes, which = generate_shapes(cfg, 2)
        m = HausdorffMetric()
        same, cross = [], []
        for i in range(len(shapes)):
            for j in range(i + 1, len(shapes)):
                d = m.distance(shapes[i], shapes[j])
                (same if which[i] == which[j] else cross).append(d)
        assert np.mean(same) < np.mean(cross)
