"""Deterministic replay: fingerprints, replay logs, repro bundles."""

import json

import pytest

from repro.check import (
    RunFingerprint,
    Scenario,
    execute_scenario,
    random_scenario,
    record_run,
    replay_file,
    write_bundle,
)


class TestScenario:
    def test_json_roundtrip(self):
        sc = random_scenario(9, n_ops=7, loss=0.1, jitter=0.002)
        assert Scenario.from_dict(json.loads(json.dumps(sc.to_dict()))) == sc

    def test_random_scenario_is_seed_deterministic(self):
        assert random_scenario(4, n_ops=15) == random_scenario(4, n_ops=15)
        assert random_scenario(4, n_ops=15) != random_scenario(5, n_ops=15)


class TestBitIdenticalReplay:
    def test_faults_off_run_replays_identically(self, tmp_path):
        sc = random_scenario(3, n_ops=10)
        log = tmp_path / "run.json"
        report = record_run(sc, log)
        assert report.fingerprint.events > 0
        assert report.fingerprint.span_count > 0
        ok, diffs, replayed = replay_file(log)
        assert ok, diffs
        assert replayed.fingerprint == report.fingerprint

    def test_faults_on_run_replays_identically(self, tmp_path):
        # loss + jitter exercise both fault-injection random streams; the
        # draw CRC proves the coin flips replayed in the same order with the
        # same values
        sc = random_scenario(5, n_ops=10, loss=0.08, jitter=0.004, fault_seed=2)
        log = tmp_path / "run.json"
        report = record_run(sc, log)
        assert report.fingerprint.draw_crc != 0
        assert report.fingerprint.sent >= report.fingerprint.delivered
        ok, diffs, replayed = replay_file(log)
        assert ok, diffs
        assert replayed.fingerprint.draw_crc == report.fingerprint.draw_crc
        assert replayed.fingerprint.result_digest == report.fingerprint.result_digest

    def test_same_scenario_same_span_tree_and_stats(self):
        sc = random_scenario(8, n_ops=8, loss=0.05, fault_seed=1)
        a = execute_scenario(sc)
        b = execute_scenario(sc)
        assert a.fingerprint == b.fingerprint
        assert a.timeline == b.timeline
        assert a.checks == b.checks

    def test_tampered_recording_detected(self, tmp_path):
        sc = random_scenario(2, n_ops=6)
        log = tmp_path / "run.json"
        record_run(sc, log)
        doc = json.loads(log.read_text())
        doc["fingerprint"]["events"] += 1
        doc["fingerprint"]["result_digest"] = "0" * 64
        log.write_text(json.dumps(doc))
        ok, diffs, _ = replay_file(log)
        assert not ok
        assert any("events" in d for d in diffs)
        assert any("result_digest" in d for d in diffs)

    def test_fingerprint_diff_names_changed_fields(self):
        sc = random_scenario(1, n_ops=4)
        fp = execute_scenario(sc).fingerprint
        other = RunFingerprint.from_dict({**fp.to_dict(), "span_count": fp.span_count + 5})
        assert fp.diff(fp) == []
        assert fp.diff(other) == [f"span_count: {fp.span_count!r} != {other.span_count!r}"]


class TestBundles:
    def test_bundle_without_fingerprint_replays(self, tmp_path):
        sc = random_scenario(6, n_ops=5)
        path = tmp_path / "bundle.json"
        write_bundle(path, sc, error="synthetic failure")
        ok, diffs, report = replay_file(path)
        assert ok and diffs == []
        assert report.fingerprint.ops_applied == len(sc.ops)

    def test_cli_replay_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        sc = random_scenario(7, n_ops=6)
        log = tmp_path / "run.json"
        record_run(sc, log)
        assert main(["replay", str(log), "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out

    def test_cli_fuzz_smoke(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["fuzz", "--runs", "2", "--ops", "5", "--seed", "30",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        assert "2/2 scenarios clean" in capsys.readouterr().out


class TestPytestPlugin:
    def test_failing_scenario_test_dumps_replay_bundle(
        self, pytester, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BUNDLE_DIR", str(tmp_path / "bundles"))
        pytester.makepyfile(
            """
            from repro.check import attach_scenario, random_scenario

            def test_fails_with_scenario():
                attach_scenario(random_scenario(1, n_ops=2))
                assert False, "intentional"
            """
        )
        result = pytester.runpytest_inprocess(
            "-p", "repro.check.pytest_plugin", "-q"
        )
        result.assert_outcomes(failed=1)
        bundles = list((tmp_path / "bundles").glob("*.json"))
        assert len(bundles) == 1
        # the bundle IS a replay log: re-executing it must work
        ok, diffs, report = replay_file(bundles[0])
        assert ok
        assert report.fingerprint.ops_applied == 2
        doc = json.loads(bundles[0].read_text())
        assert "intentional" in doc["error"]

    def test_passing_scenario_test_leaves_no_bundle(
        self, pytester, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BUNDLE_DIR", str(tmp_path / "bundles"))
        pytester.makepyfile(
            """
            from repro.check import attach_scenario, random_scenario

            def test_passes_with_scenario():
                attach_scenario(random_scenario(1, n_ops=2))
            """
        )
        result = pytester.runpytest_inprocess(
            "-p", "repro.check.pytest_plugin", "-q"
        )
        result.assert_outcomes(passed=1)
        assert not (tmp_path / "bundles").exists()
