"""Backend-agnostic harnesses for the transport conformance suite.

``tests/test_transport_conformance.py`` is written against the small driver
API below; :class:`SimHarness` runs it on the discrete-event
:class:`repro.sim.transport.Transport` and :class:`TcpHarness` on the live
:class:`repro.net.transport.TcpTransport` — same assertions, two backends.

Peers are integers ``0..n-1``; peer i's "host" (for partition faults) is i.
Payloads are kept JSON-simple so both backends carry them unchanged.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any

from repro.sim.transport import (
    FaultConfig,
    MemoryTraceSink,
    MessageTrace,
    Transport,
)


def ephemeral_port() -> int:
    """A currently-free TCP port (bind-0-then-close; tiny reuse race, which
    is why in-process tests bind port 0 directly and only the subprocess
    launcher — which must know the port up front — uses this)."""
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return int(s.getsockname()[1])


class _SimPeer:
    """Duck-typed endpoint of the sim transport (id/host/alive)."""

    def __init__(self, i: int) -> None:
        self.id = i
        self.host = i
        self.alive = True


class SimHarness:
    """Drives the conformance API on the simulator backend."""

    backend = "sim"

    def start(self, n: int, faults: FaultConfig | None = None) -> None:
        self.sink = MemoryTraceSink()
        self.transport = Transport(faults=faults, trace=self.sink)
        self.peers = [_SimPeer(i) for i in range(n)]
        self.inbox: list[list[tuple[str, Any]]] = [[] for _ in range(n)]

    def send(self, src: int, dst: int, kind: str = "message", payload: Any = None,
             *, size: int = 0, qid: int | None = None, on_drop=None) -> bool:
        def handler(p: Any = payload, d: int = dst, k: str = kind) -> None:
            self.inbox[d].append((k, p))

        return self.transport.send(
            self.peers[src], self.peers[dst], handler,
            kind=kind, size=size, qid=qid, on_drop=on_drop,
        )

    def timer(self, peer: int, delay: float, fn) -> Any:
        return self.transport.timer_cancelable(delay, fn)

    def advance(self, seconds: float) -> None:
        self.transport.sim.run(until=self.transport.sim.now + seconds)

    def settle(self) -> None:
        self.transport.sim.run()

    def received(self, peer: int) -> list[tuple[str, Any]]:
        return self.inbox[peer]

    def trace_records(self) -> list[MessageTrace]:
        return self.sink.records

    def total_sent(self) -> int:
        return self.transport.stats.sent

    def total_delivered(self) -> int:
        return self.transport.stats.delivered

    def total_dropped(self, reason: str) -> int:
        return getattr(self.transport.stats, f"dropped_{reason}")

    def byte_totals(self) -> tuple[int, int, int]:
        s = self.transport.stats
        return s.query_bytes, s.result_bytes, s.maintenance_bytes

    def stop(self) -> None:
        pass


class TcpHarness:
    """Drives the conformance API on the live asyncio TCP backend.

    Owns a private event loop so the (synchronous) conformance tests can
    drive async transports; ``settle`` flushes every writer queue and then
    lets the loop breathe until the receive side has dispatched.
    """

    backend = "tcp"

    def start(self, n: int, faults: FaultConfig | None = None) -> None:
        from repro.net.transport import TcpTransport

        if getattr(self, "transports", None):
            self.stop()  # restartable: reproducibility tests start twice
        self.loop = asyncio.new_event_loop()
        self.sink = MemoryTraceSink()
        self.transports: list[TcpTransport] = []
        self.inbox: list[list[tuple[str, Any]]] = [[] for _ in range(n)]

        async def boot() -> None:
            for i in range(n):
                t = TcpTransport(node_id=i, host=i, faults=faults, trace=self.sink)
                await t.start()
                for kind in ("message", "a", "b", "result", "maintenance:x"):
                    t.register_handler(kind, self._make_handler(i, kind))
                self.transports.append(t)
            for t in self.transports:
                for j, u in enumerate(self.transports):
                    t.set_peer_host(u.addr, j)

        self.loop.run_until_complete(boot())

    def _make_handler(self, i: int, kind: str):
        def handler(payload: Any, src: dict[str, Any]) -> None:
            self.inbox[i].append((kind, payload))

        return handler

    def send(self, src: int, dst: int, kind: str = "message", payload: Any = None,
             *, size: int = 0, qid: int | None = None, on_drop=None) -> bool:
        return self.transports[src].send(
            self.transports[dst].addr, kind, payload,
            size=size, qid=qid, on_drop=on_drop,
        )

    def timer(self, peer: int, delay: float, fn) -> Any:
        return self.transports[peer].timer_cancelable(delay, fn)

    def advance(self, seconds: float) -> None:
        self.loop.run_until_complete(asyncio.sleep(seconds))

    def settle(self, quiet: float = 0.05, timeout: float = 10.0) -> None:
        async def drain() -> None:
            for t in self.transports:
                await t.flush(timeout)
            # wait until inboxes have been stable for `quiet` seconds
            deadline = asyncio.get_running_loop().time() + timeout
            last = None
            while asyncio.get_running_loop().time() < deadline:
                snap = [len(box) for box in self.inbox]
                if snap == last:
                    return
                last = snap
                await asyncio.sleep(quiet)

        self.loop.run_until_complete(drain())

    def received(self, peer: int) -> list[tuple[str, Any]]:
        return self.inbox[peer]

    def trace_records(self) -> list[MessageTrace]:
        return self.sink.records

    def total_sent(self) -> int:
        return sum(t.stats.sent for t in self.transports)

    def total_delivered(self) -> int:
        return sum(t.stats.delivered for t in self.transports)

    def total_dropped(self, reason: str) -> int:
        return sum(getattr(t.stats, f"dropped_{reason}") for t in self.transports)

    def byte_totals(self) -> tuple[int, int, int]:
        return (
            sum(t.stats.query_bytes for t in self.transports),
            sum(t.stats.result_bytes for t in self.transports),
            sum(t.stats.maintenance_bytes for t in self.transports),
        )

    def stop(self) -> None:
        async def teardown() -> None:
            for t in self.transports:
                await t.close()

        self.loop.run_until_complete(teardown())
        self.loop.run_until_complete(self.loop.shutdown_asyncgens())
        self.loop.close()
