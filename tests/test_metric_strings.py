"""Tests for edit-distance / Hamming metrics, including property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metric.base import check_metric_axioms
from repro.metric.strings import EditDistanceMetric, HammingMetric, edit_distance

words = st.text(alphabet="acgt", max_size=12)


class TestEditDistanceFunction:
    @pytest.mark.parametrize(
        "a,b,d",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("intention", "execution", 5),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("abc", "acb", 2),
        ],
    )
    def test_known_values(self, a, b, d):
        assert edit_distance(a, b) == d

    def test_cutoff_short_circuits(self):
        assert edit_distance("aaaa", "bbbb", cutoff=2) == 3

    def test_cutoff_exact_when_within(self):
        assert edit_distance("kitten", "sitting", cutoff=5) == 3

    def test_cutoff_length_difference(self):
        assert edit_distance("a", "aaaaaa", cutoff=2) == 3

    @settings(max_examples=80, deadline=None)
    @given(words, words)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @settings(max_examples=80, deadline=None)
    @given(words, words)
    def test_bounds(self, a, b):
        d = edit_distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @settings(max_examples=40, deadline=None)
    @given(words, words, words)
    def test_triangle(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @settings(max_examples=60, deadline=None)
    @given(words)
    def test_reflexive(self, a):
        assert edit_distance(a, a) == 0

    @settings(max_examples=60, deadline=None)
    @given(words, st.integers(0, 11), st.sampled_from("acgt"))
    def test_single_substitution_at_most_one(self, a, pos, ch):
        if not a:
            return
        pos %= len(a)
        b = a[:pos] + ch + a[pos + 1 :]
        assert edit_distance(a, b) <= 1


class TestEditDistanceMetric:
    def test_axioms(self):
        sample = ["acgt", "acct", "tttt", "", "acgtacgt", "gg"]
        check_metric_axioms(EditDistanceMetric(), sample)

    def test_one_to_many(self):
        m = EditDistanceMetric()
        out = m.one_to_many("abc", ["abc", "abd", "xyz"])
        np.testing.assert_array_equal(out, [0, 1, 3])

    def test_bounded_variant(self):
        m = EditDistanceMetric(max_length=10)
        assert m.is_bounded and m.upper_bound == 10.0

    def test_unbounded_by_default(self):
        assert not EditDistanceMetric().is_bounded


class TestHamming:
    def test_known(self):
        assert HammingMetric().distance("karolin", "kathrin") == 3.0

    def test_requires_equal_length(self):
        with pytest.raises(ValueError):
            HammingMetric().distance("ab", "abc")

    def test_one_to_many(self):
        out = HammingMetric().one_to_many("abc", ["abc", "abd", "xbd"])
        np.testing.assert_array_equal(out, [0, 1, 2])

    def test_dominates_is_dominated_by_edit(self):
        # edit distance <= hamming for equal-length strings
        a, b = "acgtacgt", "acctacct"
        assert edit_distance(a, b) <= HammingMetric().distance(a, b)

    def test_axioms(self):
        sample = ["aaaa", "aabb", "abab", "bbbb"]
        check_metric_axioms(HammingMetric(), sample)
