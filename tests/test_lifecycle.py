"""Lifecycle engine tests: completion, deadlines, retries, dedup, pipelining.

Covers the per-query state machine (`issued -> routing -> resolving ->
complete | timed_out`), positive completion detection via branch accounting,
retransmission with exponential backoff under injected loss, duplicate
suppression under jitter-induced retransmission races, and the pipelined
batch execution path — across all three query protocols (tree, naive,
SCRAP).
"""

import numpy as np
import pytest

from repro.core.knn import knn_search
from repro.core.lifecycle import (
    COMPLETE,
    ISSUED,
    RESOLVING,
    ROUTING,
    LifecycleEngine,
    QueryTimeout,
    RetryPolicy,
)
from repro.core.naive import NaiveProtocol
from repro.core.platform import IndexPlatform
from repro.core.query import QidAllocator
from repro.core.routing import QueryProtocol
from repro.core.scrap import SfcIndex, SfcRangeProtocol
from repro.datasets.queries import QueryWorkload
from repro.dht.ring import ChordRing
from repro.metric.vector import EuclideanMetric
from repro.sim.network import ConstantLatency
from repro.sim.stats import StatsCollector
from repro.sim.transport import FaultConfig, Transport

DIM = 5
FLAVORS = ("tree", "naive", "scrap")


def _make_data(n_objects, seed):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, 100, size=(3, DIM))
    return np.clip(
        centers[rng.integers(0, 3, size=n_objects)]
        + rng.normal(0, 4, size=(n_objects, DIM)),
        0,
        100,
    )


def _make_platform(faults=None, n_nodes=24, seed=11, n_objects=400):
    data = _make_data(n_objects, seed)
    latency = ConstantLatency(n_nodes, delay=0.02)
    ring = ChordRing.build(n_nodes, m=24, seed=seed, latency=latency, pns=False)
    p = IndexPlatform(ring, faults=faults)
    p.create_index(
        "t", data, EuclideanMetric(box=(0, 100), dim=DIM), k=3, sample_size=200, seed=3
    )
    return p, data


def _build_proto(p, flavor, engine=None, stats=None):
    """One of the three query protocols on the platform's shared transport."""
    stats = stats if stats is not None else StatsCollector()
    index = p.indexes["t"]
    if flavor == "tree":
        proto = QueryProtocol(
            index=index, stats=stats, transport=p.transport, engine=engine
        )
    elif flavor == "naive":
        proto = NaiveProtocol(
            index=index, stats=stats, transport=p.transport, engine=engine
        )
    else:
        proto = SfcRangeProtocol(
            index=SfcIndex(index), stats=stats, transport=p.transport, engine=engine
        )
    return proto, stats


def _top_ids(qs, k=10):
    """Top-k object ids of a QueryStats record, deduped best-distance-first."""
    best = {}
    for e in qs.entries:
        d = best.get(e.object_id)
        if d is None or e.distance < d:
            best[e.object_id] = e.distance
    ranked = sorted(best.items(), key=lambda kv: (kv[1], kv[0]))
    return [oid for oid, _ in ranked[:k]]


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline": 0.0},
            {"deadline": -1.0},
            {"max_retries": -1},
            {"rto": 0.0},
            {"backoff": 0.5},
        ],
    )
    def test_rejects_invalid_knobs(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_defaults_valid(self):
        p = RetryPolicy()
        assert p.deadline is None and p.max_retries == 0


class TestTimerHandle:
    def test_cancel_and_fire(self):
        tr = Transport()
        fired = []
        h1 = tr.timer_cancelable(1.0, fired.append, "a")
        h2 = tr.timer_cancelable(2.0, fired.append, "b")
        h3 = tr.at_cancelable(3.0, fired.append, "c")
        assert h1.active and h2.active and h3.active
        h2.cancel()
        h2.cancel()  # idempotent
        tr.sim.run()
        assert fired == ["a", "c"]
        assert not h1.active and not h2.active and not h3.active


class TestStateMachine:
    def test_future_lifecycle(self):
        p, data = _make_platform()
        engine = p.lifecycle()
        proto, stats = _build_proto(p, "tree", engine=engine)
        q = p.indexes["t"].make_query(data[0], 12.0, qid=7)
        fut = proto.issue(q, p.ring.nodes()[1])
        assert not fut.done()
        assert fut.state in (ISSUED, ROUTING, RESOLVING)
        with pytest.raises(RuntimeError):
            fut.result()
        assert engine.run_until_complete([fut])
        assert fut.done() and fut.state == COMPLETE and fut.outstanding == 0
        st = stats.for_query(7)
        assert st.state == "complete" and st.terminal
        assert st.completed_at is not None and st.completed_at >= st.issued_at
        ids = [e.object_id for e in fut.entries()]
        assert len(set(ids)) == len(ids)
        dists = [e.distance for e in fut.entries()]
        assert dists == sorted(dists)
        assert fut.result(top_k=5) == fut.entries()[:5]
        assert engine.counters.completed == 1

    def test_duplicate_qid_rejected(self):
        p, _ = _make_platform()
        engine = LifecycleEngine(p.transport)
        engine.register(1)
        with pytest.raises(ValueError):
            engine.register(1)

    def test_done_callback_fires_once_and_immediately_when_late(self):
        p, data = _make_platform()
        engine = p.lifecycle()
        proto, _ = _build_proto(p, "tree", engine=engine)
        fut = proto.issue(p.indexes["t"].make_query(data[0], 12.0, qid=0), p.ring.nodes()[0])
        seen = []
        fut.add_done_callback(seen.append)
        engine.run_until_complete([fut])
        assert seen == [fut]
        fut.add_done_callback(seen.append)  # already terminal: fires now
        assert seen == [fut, fut]

    def test_tracked_results_match_untracked_quiescence(self):
        # attaching the engine must not change what a fault-free query returns
        p1, data = _make_platform(seed=29)
        proto, stats = _build_proto(p1, "tree")
        assert proto.issue(p1.indexes["t"].make_query(data[0], 15.0, qid=0), p1.ring.nodes()[0]) is None
        p1.sim.run()
        want = set(_top_ids(stats.for_query(0), k=10**9))

        p2, data2 = _make_platform(seed=29)
        engine = p2.lifecycle()
        proto2, _ = _build_proto(p2, "tree", engine=engine)
        fut = proto2.issue(p2.indexes["t"].make_query(data2[0], 15.0, qid=0), p2.ring.nodes()[0])
        engine.run_until_complete([fut])
        assert {e.object_id for e in fut.entries()} == want


@pytest.mark.parametrize("flavor", FLAVORS)
class TestTerminationUnderFaults:
    def test_loss_terminates_positively(self, flavor):
        # no deadline, no retries: drop notifications settle lost branches,
        # so every query still reaches an explicit terminal state
        p, data = _make_platform(faults=FaultConfig(loss_rate=0.25, seed=3))
        engine = p.lifecycle()
        proto, stats = _build_proto(p, flavor, engine=engine)
        index = p.indexes["t"]
        futs = [
            proto.issue(index.make_query(data[i], 15.0, qid=i), p.ring.nodes()[i % 5])
            for i in range(8)
        ]
        assert engine.run_until_complete(futs)
        assert all(f.done() and not f.timed_out for f in futs)
        assert stats.state_counts() == {"complete": 8}
        assert p.transport.stats.dropped_loss > 0
        assert engine.counters.branches_failed > 0

    def test_partitioned_source_times_out(self, flavor):
        # retries keep rescheduling the dropped branches past the deadline,
        # which then forces the explicit timed_out state
        data = _make_data(400, 11)
        latency = ConstantLatency(24, delay=0.02)
        ring = ChordRing.build(24, m=24, seed=11, latency=latency, pns=False)
        src = ring.nodes()[0]
        p = IndexPlatform(ring, faults=FaultConfig(partitions=(frozenset({src.host}),)))
        p.create_index(
            "t", data, EuclideanMetric(box=(0, 100), dim=DIM), k=3, sample_size=200, seed=3
        )
        engine = p.lifecycle(RetryPolicy(deadline=5.0, max_retries=8, rto=1.0, backoff=2.0))
        proto, stats = _build_proto(p, flavor, engine=engine)
        fut = proto.issue(p.indexes["t"].make_query(data[0], 15.0, qid=0), src)
        assert engine.run_until_complete([fut])
        assert fut.done() and fut.timed_out
        with pytest.raises(QueryTimeout):
            fut.result()
        st = stats.for_query(0)
        assert st.state == "timed_out"
        assert st.completed_at == pytest.approx(5.0)
        assert engine.counters.timed_out == 1
        assert isinstance(fut.entries(), list)  # partials stay inspectable

    def test_duplicate_suppression_under_jitter(self, flavor):
        # rto far below the jittered delivery delay: spurious retransmissions
        # race their originals; idempotent branch ids must keep the processed
        # work — and therefore the results — identical to the clean run
        def run(faults, policy):
            p, data = _make_platform(faults=faults, seed=17)
            engine = p.lifecycle(policy)
            proto, _ = _build_proto(p, flavor, engine=engine)
            index = p.indexes["t"]
            futs = [
                proto.issue(index.make_query(data[i], 15.0, qid=i), p.ring.nodes()[i % 5])
                for i in range(10)
            ]
            assert engine.run_until_complete(futs)
            return engine, futs

        _, clean_futs = run(None, None)
        policy = RetryPolicy(max_retries=2, rto=0.05, backoff=1.0)
        engine, futs = run(FaultConfig(jitter=0.5, seed=4), policy)
        assert engine.counters.retransmissions > 0
        assert engine.counters.duplicates_suppressed > 0
        for cf, f in zip(clean_futs, futs):
            got = [e.object_id for e in f.entries()]
            assert len(set(got)) == len(got)  # unique per object id
            assert got == [e.object_id for e in cf.entries()]


class TestRetransmissionRecall:
    def test_batch_recall_under_loss(self):
        # acceptance: 50-query batch on the tree protocol, loss_rate=0.1 —
        # with retries every query terminates and recall stays >= 0.95 of
        # the fault-free run
        def run(faults, policy):
            p, data = _make_platform(faults=faults, n_nodes=32, n_objects=800, seed=13)
            workload = QueryWorkload.build(
                data[:50], 15.0, n_nodes=len(p.ring), mean_interarrival=5.0, seed=21
            )
            return p.run_workload("t", workload, policy=policy)

        clean = run(None, None)
        policy = RetryPolicy(deadline=300.0, max_retries=3, rto=0.5)
        lossy = run(FaultConfig(loss_rate=0.1, seed=2), policy)

        states = lossy.state_counts()
        assert sum(states.get(s, 0) for s in ("complete", "timed_out")) == 50
        assert lossy.total_retransmissions() > 0
        summary = lossy.summary()
        assert "timed_out" in summary and "retransmissions" in summary

        ratios = []
        for i in range(50):
            want = _top_ids(clean.for_query(i))
            if not want:
                continue
            got = set(_top_ids(lossy.for_query(i)))
            ratios.append(len(got.intersection(want)) / len(want))
        assert np.mean(ratios) >= 0.95


class TestPipelinedVsSerial:
    def _run(self, pipelined, policy):
        p, data = _make_platform(seed=19)
        workload = QueryWorkload.build(
            data[:20], 12.0, n_nodes=len(p.ring), mean_interarrival=3.0, seed=5
        )
        return p.run_workload("t", workload, pipelined=pipelined, policy=policy)

    @staticmethod
    def _per_query(stats, i):
        qs = stats.for_query(i)
        return (
            qs.query_messages,
            qs.query_bytes,
            qs.result_messages,
            qs.result_bytes,
            qs.max_hops,
            tuple(sorted(qs.index_nodes)),
            qs.response_time,
            qs.max_latency,
            tuple(_top_ids(qs)),
        )

    @pytest.mark.parametrize(
        "policy", [None, RetryPolicy(deadline=500.0, max_retries=2, rto=5.0)]
    )
    def test_identical_per_query_stats(self, policy):
        a = self._run(True, policy)
        b = self._run(False, policy)
        assert len(a) == len(b) == 20
        for i in range(20):
            assert self._per_query(a, i) == self._per_query(b, i)

    def test_engine_does_not_change_costs(self):
        # lifecycle tracking is pure bookkeeping on a fault-free run
        a = self._run(True, None)
        b = self._run(True, RetryPolicy(deadline=500.0, max_retries=2, rto=5.0))
        for i in range(20):
            assert self._per_query(a, i) == self._per_query(b, i)
        assert b.total_retransmissions() == 0
        assert b.state_counts() == {"complete": 20}


class TestKnnLiveSim:
    def test_knn_preserves_coscheduled_events(self):
        # knn rides lifecycle completion on the live simulator: events queued
        # by others (here a far-future marker) must survive all rounds
        p, data = _make_platform()
        fired = []
        p.sim.schedule_at(1e6, fired.append, 1)
        res = knn_search(p, "t", data[3], k=5)
        assert len(res.object_ids) == 5 and res.exact
        dists = np.sqrt(((data - data[3]) ** 2).sum(axis=1))
        assert np.allclose(np.sort(res.distances), np.sort(dists)[:5])
        assert fired == []
        assert p.sim.pending() >= 1
        assert p.sim.now < 1e6

    def test_consecutive_searches_draw_distinct_qids(self):
        p, data = _make_platform()
        before = p.qids.peek()
        r1 = knn_search(p, "t", data[0], k=3)
        r2 = knn_search(p, "t", data[1], k=3)
        assert r1.exact and r2.exact
        assert p.qids.peek() >= before + r1.rounds + r2.rounds

    def test_knn_under_loss_with_retries(self):
        p, data = _make_platform(faults=FaultConfig(loss_rate=0.1, seed=6))
        res = knn_search(
            p, "t", data[2], k=5,
            policy=RetryPolicy(deadline=60.0, max_retries=3, rto=0.5),
        )
        assert len(res.object_ids) == 5


class TestQidAllocation:
    def test_allocator_sequence(self):
        a = QidAllocator()
        assert [a.next() for _ in range(3)] == [0, 1, 2]
        assert a.peek() == 3
        a.reset()
        assert a.next() == 0

    def test_per_platform_isolation_and_reproducibility(self):
        p1, data = _make_platform(seed=23)
        p2, _ = _make_platform(seed=23)
        i1, i2 = p1.indexes["t"], p2.indexes["t"]
        assert i1.qids is p1.qids and i2.qids is p2.qids
        qa = i1.make_query(data[0], 5.0)
        qb = i1.make_query(data[1], 5.0)
        assert qb.qid == qa.qid + 1
        # a fresh platform restarts the sequence; draws on one platform do
        # not advance another's
        assert i2.make_query(data[0], 5.0).qid == qa.qid
        assert p2.qids.peek() == p1.qids.peek() - 1
