"""Additional k-NN edge cases and cross-metric coverage."""

import numpy as np

from repro.core.knn import knn_search
from repro.core.platform import IndexPlatform
from repro.dht.ring import ChordRing
from repro.eval.ground_truth import exact_top_k
from repro.metric.strings import EditDistanceMetric
from repro.metric.transforms import BoundedMetric
from repro.metric.vector import ManhattanMetric
from repro.sim.network import ConstantLatency


class TestKnnAcrossMetrics:
    def test_manhattan(self):
        rng = np.random.default_rng(0)
        metric = ManhattanMetric(box=(0, 100), dim=4)
        centers = rng.uniform(0, 100, size=(3, 4))
        data = np.clip(centers[rng.integers(0, 3, 300)] + rng.normal(0, 4, (300, 4)), 0, 100)
        ring = ChordRing.build(12, m=24, seed=0, latency=ConstantLatency(12, 0.01))
        platform = IndexPlatform(ring)
        platform.create_index("l1", data, metric, k=3, seed=1)
        res = knn_search(platform, "l1", data[5], k=8)
        truth = exact_top_k(data, metric, data[5], 8)
        assert res.exact
        assert set(res.object_ids.tolist()) == set(int(t) for t in truth)

    def test_strings_bounded_metric(self):
        seqs = [
            "acgtacgtaa", "acgtacgtac", "acgtacgttt",
            "ttttggggcc", "ttttggggca", "ttttggggaa",
            "ggggccccaa", "ggggccccat",
        ] * 6
        metric = BoundedMetric(EditDistanceMetric())
        ring = ChordRing.build(8, m=20, seed=0, latency=ConstantLatency(8, 0.01))
        platform = IndexPlatform(ring)
        platform.create_index(
            "dna", seqs, metric, k=2, selection="kmedoids", boundary="metric",
            sample_size=30, seed=2,
        )
        res = knn_search(platform, "dna", seqs[0], k=5)
        truth = exact_top_k(seqs, metric, seqs[0], 5)
        assert res.exact
        # distances of the found set must match the optimal multiset
        want = sorted(metric.distance(seqs[0], seqs[int(t)]) for t in truth)
        got = sorted(res.distances.tolist())
        np.testing.assert_allclose(got, want, atol=1e-12)


class TestKnnParameters:
    def _platform(self, seed=3):
        rng = np.random.default_rng(seed)
        metric = ManhattanMetric(box=(0, 100), dim=3)
        data = rng.uniform(0, 100, size=(200, 3))
        ring = ChordRing.build(10, m=20, seed=seed, latency=ConstantLatency(10, 0.01))
        platform = IndexPlatform(ring)
        platform.create_index("idx", data, metric, k=2, seed=seed)
        return platform, data, metric

    def test_growth_factor(self):
        platform, data, metric = self._platform()
        slow = knn_search(platform, "idx", data[0], k=5, initial_radius=1.0, growth=1.5)
        fast = knn_search(platform, "idx", data[0], k=5, initial_radius=1.0, growth=4.0)
        assert slow.rounds >= fast.rounds
        assert set(slow.object_ids.tolist()) == set(fast.object_ids.tolist())

    def test_max_rounds_cap(self):
        platform, data, metric = self._platform()
        res = knn_search(
            platform, "idx", data[0], k=50, initial_radius=1e-6, growth=1.01,
            max_rounds=2,
        )
        assert res.rounds == 2  # capped before certification

    def test_k_one(self):
        platform, data, metric = self._platform()
        res = knn_search(platform, "idx", data[7], k=1)
        assert res.object_ids.tolist() == [7]
        assert res.distances[0] == 0.0

    def test_query_not_in_dataset(self):
        platform, data, metric = self._platform()
        probe = np.full(3, 50.0)
        res = knn_search(platform, "idx", probe, k=10)
        truth = exact_top_k(data, metric, probe, 10)
        assert set(res.object_ids.tolist()) == set(int(t) for t in truth)

    def test_source_node_choice(self):
        platform, data, metric = self._platform()
        a = knn_search(platform, "idx", data[0], k=5, source_node=platform.ring.nodes()[0])
        b = knn_search(platform, "idx", data[0], k=5, source_node=platform.ring.nodes()[5])
        assert set(a.object_ids.tolist()) == set(b.object_ids.tolist())
