"""Property tests for landmark selection and the contractive projection.

Three contracts from paper §3.1 that must hold for *every* input, not just
the fixtures in ``test_core_landmarks.py``:

* **fixed-start permutation invariance** (greedy): Algorithm 1 is a max-min
  farthest-point traversal — once the random starting object is fixed, the
  *set* of selected landmarks depends only on the set of sample objects, not
  on their order.  Raw permutation invariance is deliberately NOT claimed:
  the start index is drawn from the seed, so reordering the sample changes
  which object the same seed picks (documented in docs/testing.md).
* **fixed-seed determinism**: selection is bit-identical for equal
  ``(sample, k, seed)`` — the property replay bundles and the differential
  fuzzer rely on.
* **contractive bound**: ``max_i |d(x, l_i) - d(y, l_i)| <= d(x, y)`` — the
  triangle-inequality consequence that guarantees no false negatives for
  range queries over the landmark index space.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.landmarks import greedy_selection, kmeans_selection, select_landmarks
from repro.metric.vector import EuclideanMetric
from repro.util.rng import as_rng

_seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _sample(seed: int, n: int, dim: int) -> np.ndarray:
    # continuous uniform data: duplicate rows / argmax ties have probability
    # zero, so greedy's index-order tie-breaking never kicks in
    return np.random.default_rng(seed).uniform(0.0, 100.0, size=(n, dim))


def _sorted_rows(arr: np.ndarray) -> np.ndarray:
    return np.asarray(arr)[np.lexsort(np.asarray(arr).T[::-1])]


class TestGreedyPermutationInvariance:
    @given(data_seed=_seeds, perm_seed=_seeds, sel_seed=_seeds,
           n=st.integers(8, 40), k=st.integers(2, 6))
    @settings(deadline=None)
    def test_fixed_start_permutation_invariance(
        self, data_seed, perm_seed, sel_seed, n, k
    ):
        sample = _sample(data_seed, n, 3)
        metric = EuclideanMetric()
        # greedy draws its start index from the seed, so fix the permutation
        # at that index: both runs then start from the same *object*
        start = int(as_rng(sel_seed).integers(0, n))
        perm = np.random.default_rng(perm_seed).permutation(n)
        j = int(np.flatnonzero(perm == start)[0])
        perm[[j, start]] = perm[[start, j]]
        assert perm[start] == start

        a = greedy_selection(sample, metric, k, seed=sel_seed)
        b = greedy_selection(sample[perm], metric, k, seed=sel_seed)
        np.testing.assert_array_equal(
            _sorted_rows(a.landmarks), _sorted_rows(b.landmarks)
        )


class TestFixedSeedDeterminism:
    @given(data_seed=_seeds, sel_seed=_seeds,
           n=st.integers(8, 40), k=st.integers(2, 6))
    @settings(deadline=None)
    def test_greedy_bit_identical(self, data_seed, sel_seed, n, k):
        sample = _sample(data_seed, n, 3)
        metric = EuclideanMetric()
        a = greedy_selection(sample, metric, k, seed=sel_seed)
        b = greedy_selection(sample, metric, k, seed=sel_seed)
        np.testing.assert_array_equal(a.landmarks, b.landmarks)

    @given(data_seed=_seeds, sel_seed=_seeds,
           n=st.integers(10, 30), k=st.integers(2, 4))
    @settings(deadline=None, max_examples=15)
    def test_kmeans_bit_identical(self, data_seed, sel_seed, n, k):
        sample = _sample(data_seed, n, 3)
        metric = EuclideanMetric()
        a = kmeans_selection(sample, metric, k, seed=sel_seed)
        b = kmeans_selection(sample, metric, k, seed=sel_seed)
        np.testing.assert_array_equal(a.landmarks, b.landmarks)


class TestContractiveBound:
    @given(data_seed=_seeds, sel_seed=_seeds, pair_seed=_seeds,
           scheme=st.sampled_from(["greedy", "kmeans", "kmedoids"]),
           k=st.integers(2, 6))
    @settings(deadline=None)
    def test_projection_is_contractive(
        self, data_seed, sel_seed, pair_seed, scheme, k
    ):
        metric = EuclideanMetric()
        sample = _sample(data_seed, 30, 3)
        ls = select_landmarks(scheme, sample, metric, k, seed=sel_seed)
        pts = np.random.default_rng(pair_seed).uniform(0, 100, size=(8, 3))
        F = ls.project(pts)
        for i in range(len(pts)):
            for j in range(i + 1, len(pts)):
                d = metric.distance(pts[i], pts[j])
                linf = float(np.abs(F[i] - F[j]).max())
                # exact in theory; allow float round-off from the distance
                # kernels (relative 1e-9 on ~1e2-scale values)
                assert linf <= d + 1e-9 * max(1.0, d), (scheme, i, j, linf, d)

    @given(data_seed=_seeds, sel_seed=_seeds)
    @settings(deadline=None, max_examples=15)
    def test_zero_distance_pairs_project_identically(self, data_seed, sel_seed):
        metric = EuclideanMetric()
        sample = _sample(data_seed, 20, 3)
        ls = greedy_selection(sample, metric, 4, seed=sel_seed)
        x = sample[0]
        np.testing.assert_array_equal(
            ls.project(np.stack([x, x]))[0], ls.project(np.stack([x, x]))[1]
        )
