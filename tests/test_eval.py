"""Tests for ground truth, recall metrics, reporting, expansion and a
miniature end-to-end experiment run."""

import numpy as np
import pytest
from scipy import sparse

from repro.eval.expansion import expand_query
from repro.eval.ground_truth import batch_exact_top_k, exact_range, exact_top_k
from repro.eval.metrics import (
    gini_coefficient,
    load_summary,
    merge_top_k,
    recall_at_k,
    workload_recall,
)
from repro.eval.report import format_dict, format_load_distribution, format_sweep, format_table
from repro.eval.runner import ExperimentConfig, Scheme, build_bundle, run_experiment
from repro.metric.vector import EuclideanMetric
from repro.sim.messages import ResultEntry


class TestGroundTruth:
    def test_exact_top_k_orders_by_distance(self):
        data = np.array([[0.0], [1.0], [5.0], [2.0]])
        m = EuclideanMetric()
        np.testing.assert_array_equal(exact_top_k(data, m, np.array([0.0]), 3), [0, 1, 3])

    def test_exact_range(self):
        data = np.array([[0.0], [1.0], [5.0]])
        got = exact_range(data, EuclideanMetric(), np.array([0.0]), 1.5)
        np.testing.assert_array_equal(got, [0, 1])

    def test_batch_matches_single(self):
        rng = np.random.default_rng(0)
        data = rng.uniform(size=(80, 3))
        queries = rng.uniform(size=(7, 3))
        m = EuclideanMetric()
        batch = batch_exact_top_k(data, m, queries, k=5, chunk=3)
        for i in range(7):
            np.testing.assert_array_equal(batch[i], exact_top_k(data, m, queries[i], 5))

    def test_batch_with_radius_filter(self):
        data = np.array([[0.0], [1.0], [10.0]])
        m = EuclideanMetric()
        out = batch_exact_top_k(data, m, np.array([[0.0]]), k=5, radius=2.0)
        np.testing.assert_array_equal(out[0], [0, 1])

    def test_batch_radius_empty(self):
        data = np.array([[10.0]])
        out = batch_exact_top_k(data, EuclideanMetric(), np.array([[0.0]]), k=5, radius=1.0)
        assert out[0].size == 0


class TestMergeAndRecall:
    def test_merge_dedup_keeps_best(self):
        entries = [ResultEntry(1, 0.5), ResultEntry(1, 0.2), ResultEntry(2, 0.3)]
        np.testing.assert_array_equal(merge_top_k(entries, 10), [1, 2])

    def test_merge_truncates(self):
        entries = [ResultEntry(i, float(i)) for i in range(20)]
        assert len(merge_top_k(entries, 5)) == 5

    def test_recall_values(self):
        assert recall_at_k(np.array([1, 2, 3, 4]), np.array([1, 2])) == 0.5
        assert recall_at_k(np.array([1]), np.array([2])) == 0.0
        assert recall_at_k(np.array([]), np.array([1])) == 1.0

    def test_workload_recall(self):
        from repro.sim.stats import StatsCollector

        c = StatsCollector()
        c.for_query(0).entries = [ResultEntry(0, 0.1), ResultEntry(1, 0.2)]
        c.for_query(1).entries = []
        truth = [np.array([0, 1]), np.array([5])]
        mean, per = workload_recall(c, truth)
        assert per.tolist() == [1.0, 0.0]
        assert mean == 0.5


class TestLoadMetrics:
    def test_gini_even(self):
        assert gini_coefficient(np.full(10, 7.0)) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated(self):
        loads = np.zeros(100)
        loads[0] = 1000
        assert gini_coefficient(loads) > 0.95

    def test_gini_empty_or_zero(self):
        assert gini_coefficient(np.array([])) == 0.0
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_load_summary(self):
        s = load_summary(np.array([0, 5, 10, 5]))
        assert s["max"] == 10
        assert s["mean"] == 5.0
        assert s["nonzero"] == 3
        assert s["max_over_mean"] == 2.0


class TestReports:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], [3, 0.001]], title="T")
        assert "T" in out and "bb" in out and "0.0010" in out

    def test_format_dict(self):
        out = format_dict({"alpha": 1.0, "b": 2}, title="X")
        assert "alpha" in out and "X" in out


class TestExpansion:
    def test_expansion_adds_terms(self):
        q = sparse.csr_matrix(np.array([[1.0, 0, 0, 0, 0]]))
        fb = sparse.csr_matrix(np.array([[1.0, 2.0, 0, 0, 0], [1.0, 1.5, 0.5, 0, 0]]))
        out = expand_query(q, fb, n_terms=1)
        dense = np.asarray(out.todense()).ravel()
        assert dense[0] > 0  # original kept
        assert dense[1] > 0  # strongest feedback term added
        assert dense[2] == 0  # weaker term cut by n_terms=1

    def test_no_feedback_is_identity(self):
        q = sparse.csr_matrix(np.array([[1.0, 0.5]]))
        out = expand_query(q, sparse.csr_matrix((0, 2)))
        assert (out != q).nnz == 0


class TestMiniExperiment:
    """A tiny end-to-end run through the full harness (both workloads)."""

    def test_synthetic_mini(self):
        cfg = ExperimentConfig(
            kind="synthetic",
            n_nodes=16,
            n_objects=800,
            n_queries=12,
            sample_size=200,
            schemes=(Scheme("Greedy-3", "greedy", 3), Scheme("Kmean-3", "kmeans", 3)),
            range_factors=(0.01, 0.10),
            load_balance=False,
            pns=False,
            seed=1,
        )
        result = run_experiment(cfg)
        assert len(result.schemes) == 2
        for s in result.schemes:
            assert len(s.rows) == 2
            for row in s.rows:
                assert 0.0 <= row["recall"] <= 1.0
                assert row["hops"] >= 0
                assert row["total_bytes"] > 0
            # recall should not decrease with range factor
            assert s.rows[1]["recall"] >= s.rows[0]["recall"] - 1e-9
            assert s.load_distribution.sum() == 800
        # report rendering works on real results
        assert "recall" in format_sweep(result)
        assert "load" in format_load_distribution(result)

    def test_synthetic_with_lb(self):
        cfg = ExperimentConfig(
            kind="synthetic",
            n_nodes=16,
            n_objects=600,
            n_queries=6,
            sample_size=150,
            schemes=(Scheme("Greedy-3", "greedy", 3),),
            range_factors=(0.05,),
            load_balance=True,
            lb_max_rounds=8,
            pns=False,
            seed=2,
        )
        result = run_experiment(cfg)
        s = result.schemes[0]
        assert s.lb_report is not None
        assert s.lb_report.final_max_load <= s.lb_report.initial_max_load

    def test_trec_mini(self):
        cfg = ExperimentConfig(
            kind="trec",
            n_nodes=16,
            n_queries=10,
            n_topics=5,
            sample_size=150,
            corpus_scale=0.004,
            schemes=(Scheme("Kmean-4", "kmeans", 4),),
            range_factors=(0.05, 0.20),
            load_balance=False,
            pns=False,
            seed=3,
        )
        bundle = build_bundle(cfg)
        assert bundle.boundary == "sample"
        result = run_experiment(cfg, bundle)
        rows = result.schemes[0].rows
        assert len(rows) == 2
        assert all(np.isfinite(r["recall"]) for r in rows)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            build_bundle(ExperimentConfig(kind="webscale"))


class TestExperimentConfigs:
    def test_named_configs(self):
        from repro.eval.experiments import (
            figure2_config,
            figure3_config,
            figure4_config,
            figure5_config,
            figure6_config,
        )

        f2 = figure2_config()
        assert not f2.load_balance
        f3 = figure3_config()
        assert f3.load_balance and f3.lb_delta == 0.0 and f3.lb_probe_level == 4
        assert figure4_config().load_balance
        f5 = figure5_config()
        assert f5.kind == "trec" and f5.sample_size == 3000
        assert figure6_config().kind == "trec"

    def test_paper_scale(self):
        from repro.eval.experiments import figure2_config

        cfg = figure2_config(scale="paper")
        assert cfg.n_nodes == 1740
        assert cfg.n_objects == 100_000
        assert cfg.n_queries == 2000

    def test_bad_scale(self):
        from repro.eval.experiments import figure2_config

        with pytest.raises(ValueError):
            figure2_config(scale="galactic")

    def test_overrides(self):
        from repro.eval.experiments import figure2_config

        cfg = figure2_config(n_nodes=8)
        assert cfg.n_nodes == 8
