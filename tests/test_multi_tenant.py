"""Multi-tenant regression: two indexes sharing one ring, rotation on.

The platform hosts many indexes on the same overlay (§3.1: "the platform is
shared"); the static load-balancing rotation (§3.4) gives each index a
distinct offset φ derived from its *name*, so the same data keys land on
different owner nodes per index.  These tests pin that behaviour: distinct
offsets, separated key ranges, and correct range/kNN answers from both
tenants — including after one tenant's entries migrate or its queries run
interleaved with the other's.
"""

from __future__ import annotations

import numpy as np

from repro.core.knn import knn_search
from repro.core.platform import IndexPlatform
from repro.dht.ring import ChordRing
from repro.eval.ground_truth import exact_range, exact_top_k
from repro.metric.vector import EuclideanMetric
from repro.sim.network import ConstantLatency

DIM = 4
METRIC = EuclideanMetric(box=(0, 100), dim=DIM)


def _data(seed=0, n=400):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, 100, size=(3, DIM))
    return np.clip(
        centers[rng.integers(0, 3, n)] + rng.normal(0, 5, (n, DIM)), 0, 100
    )


def _two_tenant_platform(n_nodes=24, seed=0):
    latency = ConstantLatency(n_nodes, delay=0.01)
    ring = ChordRing.build(n_nodes, m=24, seed=seed, latency=latency, pns=False)
    platform = IndexPlatform(ring, latency=latency)
    data_a = _data(seed=1)
    data_b = _data(seed=2)
    for name, data in (("tenant-a", data_a), ("tenant-b", data_b)):
        platform.create_index(
            name, data, METRIC, k=3, selection="kmeans", sample_size=200,
            rotation=True, seed=5,
        )
    return platform, data_a, data_b


class TestMultiTenant:
    def test_rotation_offsets_differ(self):
        platform, _, _ = _two_tenant_platform()
        a = platform.indexes["tenant-a"]
        b = platform.indexes["tenant-b"]
        assert a.rotation != 0 and b.rotation != 0
        assert a.rotation != b.rotation

    def test_rotation_separates_owner_sets(self):
        """Identical data under different φ must land on different owners."""
        latency = ConstantLatency(24, delay=0.01)
        ring = ChordRing.build(24, m=24, seed=3, latency=latency, pns=False)
        platform = IndexPlatform(ring, latency=latency)
        data = _data(seed=4)
        for name in ("same-data-a", "same-data-b"):
            platform.create_index(
                name, data, METRIC, k=3, selection="kmeans", sample_size=200,
                rotation=True, seed=5,
            )
        loads = {
            name: {
                node.id: len(shard)
                for node, shard in platform.indexes[name].shards.items()
                if len(shard)
            }
            for name in ("same-data-a", "same-data-b")
        }
        assert loads["same-data-a"] != loads["same-data-b"]

    def test_both_tenants_answer_range_queries(self):
        platform, data_a, data_b = _two_tenant_platform()
        for name, data, qi, radius in (
            ("tenant-a", data_a, 0, 25.0),
            ("tenant-b", data_b, 7, 30.0),
        ):
            want = sorted(exact_range(data, METRIC, data[qi], radius).tolist())
            res = platform.query(name, data[qi], radius=radius, top_k=10**6)
            assert sorted(e.object_id for e in res) == want

    def test_interleaved_queries_do_not_cross_tenants(self):
        platform, data_a, data_b = _two_tenant_platform()
        # alternate queries between tenants on the same simulator
        for qi in range(3):
            res_a = platform.query("tenant-a", data_a[qi], radius=20.0, top_k=10**6)
            res_b = platform.query("tenant-b", data_b[qi], radius=20.0, top_k=10**6)
            want_a = sorted(exact_range(data_a, METRIC, data_a[qi], 20.0).tolist())
            want_b = sorted(exact_range(data_b, METRIC, data_b[qi], 20.0).tolist())
            assert sorted(e.object_id for e in res_a) == want_a
            assert sorted(e.object_id for e in res_b) == want_b

    def test_both_tenants_answer_knn(self):
        platform, data_a, data_b = _two_tenant_platform()
        for name, data in (("tenant-a", data_a), ("tenant-b", data_b)):
            k = 10
            res = knn_search(platform, name, data[3], k=k)
            truth = exact_top_k(data, METRIC, data[3], k)
            assert res.exact
            assert set(res.object_ids.tolist()) == {int(t) for t in truth}
