"""Tests for landmark selection (Algorithm 1, k-means, k-medoids) and projection."""

import numpy as np
import pytest

from repro.core.landmarks import (
    greedy_selection,
    kmeans_selection,
    kmedoids_selection,
    select_landmarks,
)
from repro.metric.strings import EditDistanceMetric
from repro.metric.vector import EuclideanMetric
from scipy import sparse

from repro.metric.cosine import SparseAngularMetric

METRIC = EuclideanMetric()


def _clusters(rng, n=300, k=4, dim=5, spread=60.0, sigma=1.0):
    centers = rng.uniform(0, spread, size=(k, dim))
    assign = rng.integers(0, k, size=n)
    return centers[assign] + rng.normal(0, sigma, size=(n, dim)), centers


class TestGreedy:
    def test_count_and_membership(self, rng):
        X, _ = _clusters(rng)
        ls = greedy_selection(X, METRIC, 6, seed=0)
        assert ls.k == 6
        assert ls.scheme == "greedy"
        # Greedy picks actual sample objects.
        for lm in ls.landmarks:
            assert any(np.array_equal(lm, x) for x in X)

    def test_deterministic(self, rng):
        X, _ = _clusters(rng)
        a = greedy_selection(X, METRIC, 4, seed=5)
        b = greedy_selection(X, METRIC, 4, seed=5)
        np.testing.assert_array_equal(np.asarray(a.landmarks), np.asarray(b.landmarks))

    def test_landmarks_distinct(self, rng):
        X, _ = _clusters(rng)
        ls = greedy_selection(X, METRIC, 8, seed=1)
        L = np.asarray(ls.landmarks)
        assert len(np.unique(L, axis=0)) == 8

    def test_maxmin_dispersion(self, rng):
        """Greedy landmarks should be far more dispersed than random picks."""
        X, _ = _clusters(rng, n=400, k=6, spread=100.0)
        ls = greedy_selection(X, METRIC, 6, seed=0)
        L = np.asarray(ls.landmarks)
        d = METRIC.pairwise(L, L)
        min_greedy = d[np.triu_indices(6, 1)].min()
        picks = X[np.random.default_rng(0).choice(len(X), 6, replace=False)]
        dr = METRIC.pairwise(picks, picks)
        min_rand = dr[np.triu_indices(6, 1)].min()
        assert min_greedy >= min_rand

    def test_too_many_rejected(self, rng):
        X, _ = _clusters(rng, n=10)
        with pytest.raises(ValueError):
            greedy_selection(X, METRIC, 11)

    def test_works_on_strings(self):
        seqs = ["aaaa", "aaab", "bbbb", "bbbc", "cccc", "dddd"]
        ls = greedy_selection(seqs, EditDistanceMetric(), 3, seed=0)
        assert ls.k == 3
        assert all(isinstance(s, str) for s in ls.landmarks)


class TestKMeans:
    def test_centroids_near_true_centers(self, rng):
        X, centers = _clusters(rng, n=600, k=4, spread=100.0, sigma=0.5)
        ls = kmeans_selection(X, METRIC, 4, seed=0)
        L = np.asarray(ls.landmarks)
        # every true centre should have a landmark within a few sigma
        d = METRIC.pairwise(centers, L)
        assert d.min(axis=1).max() < 5.0

    def test_deterministic(self, rng):
        X, _ = _clusters(rng)
        a = kmeans_selection(X, METRIC, 3, seed=2)
        b = kmeans_selection(X, METRIC, 3, seed=2)
        np.testing.assert_allclose(np.asarray(a.landmarks), np.asarray(b.landmarks))

    def test_rejects_non_vector(self):
        with pytest.raises(TypeError):
            kmeans_selection(["abc", "def"], EditDistanceMetric(), 2)

    def test_sparse_spherical(self):
        rng = np.random.default_rng(0)
        rows = np.repeat(np.arange(60), 3)
        # two topic groups: terms 0-9 vs terms 10-19
        cols = np.concatenate(
            [rng.integers(0, 10, size=90), rng.integers(10, 20, size=90)]
        )
        vals = np.ones(180)
        X = sparse.csr_matrix((vals, (rows, cols)), shape=(60, 25))
        ls = kmeans_selection(X, SparseAngularMetric(), 2, seed=0)
        L = np.asarray(ls.landmarks)
        assert L.shape == (2, 25)
        # centroids should separate the two term blocks
        block = L[:, :10].sum(axis=1) > L[:, 10:20].sum(axis=1)
        assert block[0] != block[1]

    def test_more_clusters_than_structure(self, rng):
        """k larger than natural cluster count must not crash or dupe."""
        X, _ = _clusters(rng, n=100, k=2)
        ls = kmeans_selection(X, METRIC, 7, seed=0)
        assert ls.k == 7


class TestKMedoids:
    def test_medoids_are_sample_objects(self, rng):
        X, _ = _clusters(rng, n=120)
        ls = kmedoids_selection(X, METRIC, 4, seed=0)
        for lm in ls.landmarks:
            assert any(np.array_equal(lm, x) for x in X)

    def test_on_strings(self):
        seqs = ["aaaa", "aaab", "aaba", "bbbb", "bbba", "cccc", "ccca", "dddd"]
        ls = kmedoids_selection(seqs, EditDistanceMetric(), 3, seed=1)
        assert ls.k == 3

    def test_too_many_rejected(self):
        with pytest.raises(ValueError):
            kmedoids_selection(["a", "b"], EditDistanceMetric(), 3)


class TestProjection:
    def test_project_shape_and_values(self, rng):
        X, _ = _clusters(rng, n=50)
        ls = greedy_selection(X, METRIC, 3, seed=0)
        P = ls.project(X)
        assert P.shape == (50, 3)
        # column i equals distances to landmark i
        for i in range(3):
            np.testing.assert_allclose(P[:, i], METRIC.one_to_many(ls.landmarks[i], X))

    def test_project_one_matches_batch(self, rng):
        X, _ = _clusters(rng, n=20)
        ls = greedy_selection(X, METRIC, 4, seed=0)
        np.testing.assert_allclose(ls.project_one(X[7]), ls.project(X)[7])

    def test_landmark_projects_to_zero_coordinate(self, rng):
        X, _ = _clusters(rng, n=30)
        ls = greedy_selection(X, METRIC, 3, seed=0)
        P = ls.project(np.asarray(ls.landmarks))
        # landmark i has distance 0 to itself
        np.testing.assert_allclose(np.diag(P), 0.0, atol=1e-9)

    def test_contractive_mapping(self, rng):
        """|proj(x) - proj(y)|_inf <= d(x, y): the triangle-inequality bound
        that guarantees range queries have no false negatives (§3.1)."""
        X, _ = _clusters(rng, n=60)
        ls = greedy_selection(X, METRIC, 5, seed=0)
        P = ls.project(X)
        for _ in range(200):
            i, j = np.random.default_rng(0).integers(0, 60, 2)
            lower = np.abs(P[i] - P[j]).max()
            assert lower <= METRIC.distance(X[i], X[j]) + 1e-9


class TestDispatch:
    def test_known_schemes(self, rng):
        X, _ = _clusters(rng, n=60)
        for scheme in ("greedy", "kmeans", "kmedoids"):
            assert select_landmarks(scheme, X, METRIC, 3, seed=0).k == 3

    def test_unknown_scheme(self, rng):
        X, _ = _clusters(rng, n=20)
        with pytest.raises(ValueError, match="unknown landmark selection"):
            select_landmarks("pca", X, METRIC, 3)
