"""Tests for multi-seed experiment replication."""

import numpy as np

from repro.eval.runner import ExperimentConfig, Scheme, run_replicated

CFG = ExperimentConfig(
    kind="synthetic",
    n_nodes=10,
    n_objects=400,
    n_queries=6,
    sample_size=100,
    schemes=(Scheme("G3", "greedy", 3),),
    range_factors=(0.02, 0.10),
    pns=False,
    load_balance=False,
    seed=5,
)


class TestRunReplicated:
    def test_shapes(self):
        rep = run_replicated(CFG, n_seeds=2)
        assert rep.n_seeds == 2
        assert len(rep.runs) == 2
        assert rep.mean["G3"]["recall"].shape == (2,)
        assert rep.std["G3"]["recall"].shape == (2,)

    def test_mean_is_mean_of_runs(self):
        rep = run_replicated(CFG, n_seeds=3)
        per_run = np.asarray(
            [[row["recall"] for row in run.schemes[0].rows] for run in rep.runs]
        )
        np.testing.assert_allclose(rep.mean["G3"]["recall"], per_run.mean(axis=0))
        np.testing.assert_allclose(rep.std["G3"]["recall"], per_run.std(axis=0))

    def test_seeds_actually_differ(self):
        rep = run_replicated(CFG, n_seeds=2)
        a = [row["total_bytes"] for row in rep.runs[0].schemes[0].rows]
        b = [row["total_bytes"] for row in rep.runs[1].schemes[0].rows]
        assert a != b  # different datasets/overlays -> different costs

    def test_deterministic(self):
        a = run_replicated(CFG, n_seeds=2)
        b = run_replicated(CFG, n_seeds=2)
        np.testing.assert_allclose(a.mean["G3"]["recall"], b.mean["G3"]["recall"])

    def test_metrics_present(self):
        rep = run_replicated(CFG, n_seeds=2)
        for metric in ("recall", "hops", "total_bytes", "max_latency"):
            assert metric in rep.mean["G3"]
