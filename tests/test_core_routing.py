"""Integration tests for Algorithms 3 & 5: completeness, cost accounting,
rotation-equivariance, and the fixed-vs-literal surrogate ablation."""

import numpy as np
import pytest

from repro.core.platform import IndexPlatform
from repro.dht.ring import ChordRing
from repro.eval.ground_truth import exact_range, exact_top_k
from repro.eval.metrics import merge_top_k
from repro.metric.vector import EuclideanMetric
from repro.sim.network import ConstantLatency

DIM = 5
METRIC = EuclideanMetric(box=(0, 100), dim=DIM)


def _make_platform(n_nodes=24, n_obj=600, seed=0, m=24, rotation=False, selection="kmeans"):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, 100, size=(4, DIM))
    data = np.clip(
        centers[rng.integers(0, 4, n_obj)] + rng.normal(0, 6, size=(n_obj, DIM)), 0, 100
    )
    latency = ConstantLatency(n_nodes, delay=0.03)
    ring = ChordRing.build(n_nodes, m=m, seed=seed, latency=latency, pns=False)
    platform = IndexPlatform(ring)
    platform.create_index(
        "idx", data, METRIC, k=3, selection=selection, sample_size=300,
        rotation=rotation, seed=seed,
    )
    return platform, data


def _run_query(platform, obj, radius, top_k=10**6, surrogate_mode="fixed", node_idx=0):
    proto, stats = platform.protocol("idx", top_k=top_k, surrogate_mode=surrogate_mode)
    index = platform.indexes["idx"]
    q = index.make_query(obj, radius)
    proto.issue(q, platform.ring.nodes()[node_idx])
    platform.sim.reset()
    proto.issue(index.make_query(obj, radius, qid=0), platform.ring.nodes()[node_idx])
    platform.sim.run()
    return stats.for_query(0)


class TestCompleteness:
    """The range query must find exactly the objects within the radius —
    no false negatives (contractive mapping + correct routing) and, with the
    true-distance refinement, no false positives."""

    @pytest.mark.parametrize("radius", [5.0, 15.0, 40.0, 120.0])
    def test_matches_exact_range_scan(self, radius):
        platform, data = _make_platform()
        for qi in (0, 17, 300):
            st = _run_query(platform, data[qi], radius)
            got = sorted(e.object_id for e in st.entries)
            want = sorted(exact_range(data, METRIC, data[qi], radius).tolist())
            assert got == want, f"radius={radius} query={qi}"

    def test_no_duplicate_reports(self):
        platform, data = _make_platform()
        st = _run_query(platform, data[3], 60.0)
        ids = [e.object_id for e in st.entries]
        assert len(ids) == len(set(ids))

    def test_distances_are_true_metric_distances(self):
        platform, data = _make_platform()
        st = _run_query(platform, data[5], 30.0)
        for e in st.entries:
            assert e.distance == pytest.approx(METRIC.distance(data[5], data[e.object_id]))

    def test_query_from_every_source_node(self):
        platform, data = _make_platform(n_nodes=12)
        want = sorted(exact_range(data, METRIC, data[0], 25.0).tolist())
        for src in range(12):
            st = _run_query(platform, data[0], 25.0, node_idx=src)
            assert sorted(e.object_id for e in st.entries) == want

    def test_zero_radius_finds_self(self):
        platform, data = _make_platform()
        st = _run_query(platform, data[9], 0.0)
        assert 9 in {e.object_id for e in st.entries}

    def test_full_domain_radius_finds_everything(self):
        platform, data = _make_platform(n_obj=150)
        st = _run_query(platform, data[0], METRIC.upper_bound)
        assert len(st.entries) == 150


class TestTopKBehaviour:
    def test_per_node_top_k_caps_entries(self):
        platform, data = _make_platform()
        st = _run_query(platform, data[0], 120.0, top_k=10)
        # each index node returns at most 10
        assert len(st.entries) <= 10 * len(st.index_nodes)

    def test_merged_top_k_matches_exact_when_radius_large(self):
        platform, data = _make_platform()
        st = _run_query(platform, data[2], 50.0, top_k=10)
        got = merge_top_k(st.entries, 10)
        want = exact_top_k(data, METRIC, data[2], 10)
        assert set(got.tolist()) == set(want.tolist())


class TestCostAccounting:
    def test_hops_messages_latency_sane(self):
        platform, data = _make_platform()
        st = _run_query(platform, data[0], 30.0)
        assert st.max_hops >= 1
        assert st.query_messages >= 1
        assert st.query_bytes > 0
        assert st.result_bytes > 0
        assert st.response_time is not None
        assert st.response_time <= st.max_latency
        assert len(st.index_nodes) >= 1

    def test_larger_radius_touches_more_nodes(self):
        platform, data = _make_platform(n_obj=1200)
        small = _run_query(platform, data[0], 3.0)
        large = _run_query(platform, data[0], 140.0)
        assert len(large.index_nodes) >= len(small.index_nodes)
        assert large.query_messages >= small.query_messages

    def test_latency_scales_with_constant_delay(self):
        """With constant per-hop delay d, response time is a multiple of d."""
        platform, data = _make_platform()
        st = _run_query(platform, data[0], 10.0)
        d = 0.03
        assert st.response_time >= d - 1e-12
        assert (st.response_time / d) == pytest.approx(round(st.response_time / d), abs=1e-6)


class TestRotation:
    def test_rotation_preserves_results(self):
        plain, data = _make_platform(rotation=False, seed=3)
        rot, data2 = _make_platform(rotation=True, seed=3)
        np.testing.assert_array_equal(data, data2)
        assert rot.indexes["idx"].rotation != 0
        for qi in (0, 44, 99):
            a = _run_query(plain, data[qi], 35.0)
            b = _run_query(rot, data[qi], 35.0)
            assert sorted(e.object_id for e in a.entries) == sorted(
                e.object_id for e in b.entries
            )

    def test_rotation_shifts_placement(self):
        plain, _ = _make_platform(rotation=False, seed=3)
        rot, _ = _make_platform(rotation=True, seed=3)
        lp = plain.indexes["idx"].load_distribution()
        lr = rot.indexes["idx"].load_distribution()
        assert not np.array_equal(lp, lr)


class TestSurrogateModes:
    def test_fixed_superset_of_literal(self):
        """The literal Algorithm 5 can drop straddling slivers; the fixed
        variant must never return less."""
        platform, data = _make_platform(n_obj=900, seed=5)
        worse = 0
        for qi in range(0, 60, 5):
            fixed = _run_query(platform, data[qi], 45.0, surrogate_mode="fixed")
            literal = _run_query(platform, data[qi], 45.0, surrogate_mode="literal")
            f = {e.object_id for e in fixed.entries}
            l = {e.object_id for e in literal.entries}
            assert l <= f
            worse += len(f - l)
        # fixed must equal exact; literal usually close (sliver loss is rare)

    def test_fixed_mode_exact(self):
        platform, data = _make_platform(n_obj=900, seed=5)
        for qi in (1, 13):
            st = _run_query(platform, data[qi], 45.0, surrogate_mode="fixed")
            got = sorted(e.object_id for e in st.entries)
            want = sorted(exact_range(data, METRIC, data[qi], 45.0).tolist())
            assert got == want

    def test_unknown_mode_rejected(self):
        platform, _ = _make_platform()
        with pytest.raises(ValueError):
            platform.protocol("idx", surrogate_mode="bogus")


class TestSmallRings:
    @pytest.mark.parametrize("n_nodes", [1, 2, 3])
    def test_tiny_rings_still_complete(self, n_nodes):
        platform, data = _make_platform(n_nodes=n_nodes, n_obj=200, seed=7)
        st = _run_query(platform, data[0], 50.0)
        want = sorted(exact_range(data, METRIC, data[0], 50.0).tolist())
        assert sorted(e.object_id for e in st.entries) == want


class TestWorkloadRun:
    def test_run_workload_end_to_end(self):
        from repro.datasets.queries import QueryWorkload

        platform, data = _make_platform(n_obj=500, seed=8)
        w = QueryWorkload.build(data[:20], radius=30.0, n_nodes=24, seed=1)
        stats = platform.run_workload("idx", w, top_k=10)
        assert len(stats) == 20
        for qid in range(20):
            st = stats.for_query(qid)
            assert st.max_latency is not None
            # arrival times respected
            assert st.issued_at == pytest.approx(w.arrival_times[qid])
