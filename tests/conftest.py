"""Shared fixtures: small rings, platforms and datasets reused across tests."""

from __future__ import annotations

import importlib.util
import os
import signal
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

#: live-network tests carry @pytest.mark.timeout(N) so a wedged socket or
#: event loop fails fast instead of hanging CI.  When the pytest-timeout
#: plugin is installed it owns the marker; otherwise the SIGALRM fallback
#: below enforces it (POSIX main-thread only, which is where pytest runs
#: the tests).
_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test after this many wall-clock seconds "
        "(pytest-timeout when installed, SIGALRM fallback otherwise)",
    )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout")
    if (
        marker is None
        or _HAVE_PYTEST_TIMEOUT
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return (yield)
    seconds = float(marker.args[0]) if marker.args else 60.0

    def on_alarm(signum, frame):
        raise TimeoutError(f"{item.nodeid} exceeded the {seconds:g}s timeout")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)

from repro.core.platform import IndexPlatform
from repro.dht.ring import ChordRing
from repro.metric.vector import EuclideanMetric
from repro.sim.network import ConstantLatency

# Hypothesis profiles: "fast" keeps the tier-1 suite quick; explicit
# @settings on a test (e.g. the churn property) still take precedence.
# Select the heavier sweep with HYPOTHESIS_PROFILE=thorough.
settings.register_profile(
    "fast",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("thorough", max_examples=200, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "fast"))


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_ring():
    """A 32-node ring with constant latency (deterministic, fast)."""
    latency = ConstantLatency(32, delay=0.02)
    return ChordRing.build(32, m=24, seed=7, latency=latency, pns=False)


@pytest.fixture
def clustered_data(rng):
    """Small clustered 6-d dataset with known structure."""
    centers = rng.uniform(0, 100, size=(4, 6))
    assign = rng.integers(0, 4, size=800)
    data = centers[assign] + rng.normal(0, 4, size=(800, 6))
    return np.clip(data, 0, 100)


@pytest.fixture
def platform(small_ring, clustered_data):
    """A platform with one kmeans index over the clustered dataset."""
    p = IndexPlatform(small_ring)
    p.create_index(
        "t",
        clustered_data,
        EuclideanMetric(box=(0, 100), dim=6),
        k=3,
        selection="kmeans",
        sample_size=400,
        seed=3,
    )
    return p
