"""Shared fixtures: small rings, platforms and datasets reused across tests."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.platform import IndexPlatform
from repro.dht.ring import ChordRing
from repro.metric.vector import EuclideanMetric
from repro.sim.network import ConstantLatency

# Hypothesis profiles: "fast" keeps the tier-1 suite quick; explicit
# @settings on a test (e.g. the churn property) still take precedence.
# Select the heavier sweep with HYPOTHESIS_PROFILE=thorough.
settings.register_profile(
    "fast",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("thorough", max_examples=200, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "fast"))


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_ring():
    """A 32-node ring with constant latency (deterministic, fast)."""
    latency = ConstantLatency(32, delay=0.02)
    return ChordRing.build(32, m=24, seed=7, latency=latency, pns=False)


@pytest.fixture
def clustered_data(rng):
    """Small clustered 6-d dataset with known structure."""
    centers = rng.uniform(0, 100, size=(4, 6))
    assign = rng.integers(0, 4, size=800)
    data = centers[assign] + rng.normal(0, 4, size=(800, 6))
    return np.clip(data, 0, 100)


@pytest.fixture
def platform(small_ring, clustered_data):
    """A platform with one kmeans index over the clustered dataset."""
    p = IndexPlatform(small_ring)
    p.create_index(
        "t",
        clustered_data,
        EuclideanMetric(box=(0, 100), dim=6),
        k=3,
        selection="kmeans",
        sample_size=400,
        seed=3,
    )
    return p
