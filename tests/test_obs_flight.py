"""Flight recorder: ring-buffer bounds, bundle roundtrips, failure dumps."""

from __future__ import annotations

import io
import json
from types import SimpleNamespace

import pytest

from repro.check.invariants import InvariantViolation, PartitionChecker
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    attached_recorders,
    format_bundle,
    load_bundle,
)


class TestRingBuffer:
    def test_capacity_evicts_oldest(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("tick", i=i)
        assert len(rec) == 4
        assert rec.recorded == 10
        assert [e["attrs"]["i"] for e in rec.events()] == [6, 7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_clock_and_shard_tagging(self):
        t = SimpleNamespace(now=0.0)
        rec = FlightRecorder(capacity=8, clock=lambda: t.now, shard=3)
        rec.record("a")
        t.now = 2.5
        rec.record("b", shard=7)
        ev = rec.events()
        assert (ev[0]["time"], ev[0]["shard"]) == (0.0, 3)
        assert (ev[1]["time"], ev[1]["shard"]) == (2.5, 7)

    def test_registered_for_crash_dumps(self):
        rec = FlightRecorder(capacity=2)
        assert rec in attached_recorders()


class TestBundles:
    def test_dump_load_roundtrip(self, tmp_path):
        rec = FlightRecorder(capacity=8, context={"scenario": "t", "seed": 5})
        rec.record("chunk", routed=100)
        path = rec.dump(tmp_path / "b.json", reason="unit-test")
        assert rec.dumps == [str(path)]
        bundle = load_bundle(path)
        assert bundle["schema"] == FLIGHT_SCHEMA
        assert bundle["reason"] == "unit-test"
        assert bundle["context"] == {"scenario": "t", "seed": 5}
        assert bundle["recorded_total"] == 1
        assert bundle["events"][0]["attrs"] == {"routed": 100}

    def test_default_path_under_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        rec = FlightRecorder(capacity=2)
        p1 = rec.dump(reason="storm storm!")
        p2 = rec.dump(reason="storm storm!")
        assert p1 != p2  # collision gets a -N suffix
        assert p1.startswith(str(tmp_path))
        assert "storm_storm_" in p1  # unsafe chars sanitised
        assert load_bundle(p2)["reason"] == "storm storm!"

    def test_dump_to_stream(self):
        rec = FlightRecorder(capacity=2)
        rec.record("x")
        buf = io.StringIO()
        rec.dump(buf, reason="stream")
        assert json.loads(buf.getvalue())["reason"] == "stream"

    def test_load_rejects_wrong_schema(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"schema": "other/9", "events": []}))
        with pytest.raises(ValueError, match="not a repro-flight/1"):
            load_bundle(p)

    def test_dump_on_error_dumps_and_reraises(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        rec = FlightRecorder(capacity=8)
        rec.record("before")
        with pytest.raises(RuntimeError, match="boom"):
            with rec.dump_on_error("invariant-violation"):
                raise RuntimeError("boom")
        assert len(rec.dumps) == 1
        bundle = load_bundle(rec.dumps[0])
        assert bundle["reason"] == "invariant-violation"
        kinds = [e["kind"] for e in bundle["events"]]
        assert kinds == ["before", "error"]
        assert "RuntimeError: boom" in bundle["events"][-1]["attrs"]["error"]

    def test_format_bundle_truncates(self):
        rec = FlightRecorder(capacity=100, context={"seed": 1})
        for i in range(20):
            rec.record("tick", i=i)
        text = format_bundle(rec.bundle("r"), max_events=5)
        assert "reason='r'" in text
        assert "seed=1" in text
        assert "15 earlier event(s) omitted" in text
        assert "i=19" in text and "i=3" not in text


class TestInvariantCheckerIntegration:
    def _checker(self, flight, strict):
        index = SimpleNamespace(m=16, bounds=SimpleNamespace(k=2))
        return PartitionChecker(index, strict=strict, flight=flight)

    def test_violation_dumps_bundle(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        flight = FlightRecorder(capacity=8)
        checker = self._checker(flight, strict=True)
        q = SimpleNamespace(qid=9, prefix_len=0, prefix_key=0)
        with pytest.raises(InvariantViolation):
            checker.on_split(q, [])  # wrong arity
        assert len(flight.dumps) == 1
        bundle = load_bundle(flight.dumps[0])
        assert bundle["reason"] == "invariant-violation"
        assert bundle["events"][-1]["attrs"]["name"] == "split.arity"

    def test_collect_mode_still_dumps(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        flight = FlightRecorder(capacity=8)
        checker = self._checker(flight, strict=False)
        q = SimpleNamespace(qid=9, prefix_len=0, prefix_key=0)
        checker.on_split(q, [])
        assert not checker.ok
        assert len(flight.dumps) == 1
