"""Edge-case tests for the query protocol: bundling, empty indexes,
reply policies, extreme rotations, non-uniform bounds, m=64."""

import numpy as np
import pytest

from repro.core.index_space import IndexSpaceBounds
from repro.core.lph import lp_hash, lp_hash_batch, prefix_to_cuboid, smallest_enclosing_prefix
from repro.core.naive import decompose_to_owner_cuboids
from repro.core.platform import IndexPlatform
from repro.dht.ring import ChordRing
from repro.eval.ground_truth import exact_range
from repro.metric.vector import EuclideanMetric
from repro.sim.network import ConstantLatency

DIM = 3
METRIC = EuclideanMetric(box=(0, 100), dim=DIM)


def _platform(n_nodes=12, n_obj=200, seed=0, m=20, rotation=False, data=None):
    rng = np.random.default_rng(seed)
    if data is None:
        data = rng.uniform(0, 100, size=(n_obj, DIM))
    ring = ChordRing.build(n_nodes, m=m, seed=seed, latency=ConstantLatency(n_nodes, 0.01))
    platform = IndexPlatform(ring)
    platform.create_index(
        "idx", data, METRIC, k=2, sample_size=min(100, len(data)),
        rotation=rotation, seed=seed,
    )
    return platform, data


class TestReplyPolicies:
    def test_reply_empty_false_suppresses_empty_replies(self):
        platform, data = _platform()
        # a query in an empty corner of the space
        probe = np.full(DIM, 0.0)
        for reply_empty in (True, False):
            proto, stats = platform.protocol("idx", reply_empty=reply_empty, top_k=5)
            platform.sim.reset()
            q = platform.indexes["idx"].make_query(probe, 0.01, qid=0)
            proto.issue(q, platform.ring.nodes()[0])
            platform.sim.run()
            st = stats.for_query(0)
            if reply_empty:
                assert st.result_messages >= 1
            # with reply_empty=False a no-hit query may yield zero replies
        assert True

    def test_results_to_self_cost_nothing(self):
        """When the querier itself is the index node, the reply is free."""
        platform, data = _platform(n_nodes=1)
        proto, stats = platform.protocol("idx", top_k=10**6)
        platform.sim.reset()
        q = platform.indexes["idx"].make_query(data[0], 10.0, qid=0)
        proto.issue(q, platform.ring.nodes()[0])
        platform.sim.run()
        st = stats.for_query(0)
        assert st.result_bytes == 0
        assert st.query_bytes == 0  # single node: everything local
        assert len(st.entries) == len(exact_range(data, METRIC, data[0], 10.0))


class TestEmptyAndTinyIndexes:
    def test_empty_dataset_rejected(self):
        """An index needs at least k objects to select landmarks from."""
        ring = ChordRing.build(4, m=16, seed=0)
        platform = IndexPlatform(ring)
        with pytest.raises(ValueError):
            platform.create_index("idx", np.empty((0, DIM)), METRIC, k=2)

    def test_single_object(self):
        data = np.full((1, DIM), 42.0)
        ring = ChordRing.build(4, m=16, seed=0)
        platform = IndexPlatform(ring)
        platform.create_index("idx", data, METRIC, k=1, sample_size=1)
        res = platform.query("idx", np.full(DIM, 42.0), radius=1.0)
        assert [e.object_id for e in res] == [0]

    def test_duplicate_objects(self):
        """Identical objects share a key; all must be returned."""
        data = np.tile(np.full((1, DIM), 33.0), (5, 1))
        platform, _ = _platform(data=data)
        res = platform.query("idx", np.full(DIM, 33.0), radius=0.5, top_k=10**6)
        assert sorted(e.object_id for e in res) == [0, 1, 2, 3, 4]


class TestExtremeRotation:
    @pytest.mark.parametrize("m", [20, 64])
    def test_m_bit_sizes(self, m):
        platform, data = _platform(m=m, rotation=True, seed=3)
        want = sorted(exact_range(data, METRIC, data[0], 30.0).tolist())
        proto, stats = platform.protocol("idx", top_k=10**6)
        platform.sim.reset()
        q = platform.indexes["idx"].make_query(data[0], 30.0, qid=0)
        proto.issue(q, platform.ring.nodes()[0])
        platform.sim.run()
        assert sorted(e.object_id for e in stats.for_query(0).entries) == want

    def test_manual_rotation_wraps_ring(self):
        """A rotation putting the hot range across the 0-wrap still works."""
        platform, data = _platform(seed=4)
        index = platform.indexes["idx"]
        index.rotation = (1 << index.m) - 5  # keys wrap past zero
        index.distribute()
        want = sorted(exact_range(data, METRIC, data[1], 25.0).tolist())
        proto, stats = platform.protocol("idx", top_k=10**6)
        platform.sim.reset()
        proto.issue(index.make_query(data[1], 25.0, qid=0), platform.ring.nodes()[2])
        platform.sim.run()
        assert sorted(e.object_id for e in stats.for_query(0).entries) == want


class TestNonUniformBounds:
    def test_lph_with_mixed_bounds(self):
        bounds = IndexSpaceBounds(np.array([-5.0, 100.0]), np.array([3.0, 101.0]))
        pts = np.array([[-4.9, 100.01], [2.9, 100.99], [-1.0, 100.5]])
        keys = lp_hash_batch(pts, bounds, 16)
        for i, p in enumerate(pts):
            assert int(keys[i]) == lp_hash(p, bounds, 16)
            lo, hi = prefix_to_cuboid(int(keys[i]), 16, bounds, 16)
            assert np.all(p >= lo - 1e-9) and np.all(p <= hi + 1e-9)

    def test_enclosing_prefix_with_mixed_bounds(self):
        bounds = IndexSpaceBounds(np.array([-5.0, 100.0]), np.array([3.0, 101.0]))
        key, ln = smallest_enclosing_prefix(
            np.array([-4.0, 100.1]), np.array([-3.5, 100.2]), bounds, 16
        )
        lo, hi = prefix_to_cuboid(key, ln, bounds, 16)
        assert lo[0] <= -4.0 and hi[0] >= -3.5
        assert lo[1] <= 100.1 and hi[1] >= 100.2


class TestNaiveEdges:
    def test_decomposition_cap(self):
        platform, data = _platform(n_nodes=24, n_obj=300, seed=5)
        index = platform.indexes["idx"]
        q = index.make_query(data[0], 200.0)  # whole space
        with pytest.raises(RuntimeError):
            decompose_to_owner_cuboids(index, q.rect, max_subqueries=2)

    def test_decomposition_with_rotation(self):
        platform, data = _platform(rotation=True, seed=6)
        index = platform.indexes["idx"]
        q = index.make_query(data[0], 15.0)
        pieces = decompose_to_owner_cuboids(index, q.rect)
        # pieces must jointly contain every in-range stored point
        ids = exact_range(data, METRIC, data[0], 15.0)
        pts = index.space.project(data[ids])
        for p in pts:
            assert any(
                np.all(p >= lo - 1e-12) and np.all(p <= hi + 1e-12)
                for _, _, lo, hi in pieces
            )


class TestBundling:
    def test_messages_bundle_subqueries(self):
        """With many subqueries, message count < subquery count thanks to
        same-next-hop bundling (the n-term of the paper's byte model)."""
        rng = np.random.default_rng(7)
        data = rng.uniform(0, 100, size=(500, DIM))
        platform, _ = _platform(n_nodes=4, data=data, seed=7)
        proto, stats = platform.protocol("idx", top_k=10**6)
        platform.sim.reset()
        q = platform.indexes["idx"].make_query(data[0], 120.0, qid=0)
        proto.issue(q, platform.ring.nodes()[0])
        platform.sim.run()
        st = stats.for_query(0)
        # bytes accounting must match the size model given bundling:
        # every message has >= the minimum frame of one subquery
        from repro.sim.messages import query_message_size

        assert st.query_bytes >= st.query_messages * query_message_size(1, 2)
