# lint-fixture-module: repro.sim.fixture_goodmsg
"""CON302 clean twin: the message dataclass registers its schema."""

from dataclasses import dataclass

from repro.sim.messages import register_message


@register_message
@dataclass(slots=True)
class PongMessage:
    src: int
    dst: int
