# lint-fixture-module: repro.net.fixture_blocking
"""ASY401 clean twin: the asyncio sleep yields the loop while waiting."""

import asyncio


async def backoff(attempt: int) -> None:
    await asyncio.sleep(0.5 * attempt)


def sync_helper() -> None:
    # a nested sync def runs off the await chain (thread pool, call_soon
    # from sync code) — blocking here is out of ASY401's scope
    import time

    time.sleep(0.01)
