# lint-fixture-module: repro.metric.fixture_badlayer
"""ARCH201 trip: the metric layer imports the core layer above it."""

from repro.core.query import RangeQuery  # ARCH201: metric may only use util


def radius_of(query: RangeQuery) -> float:
    return query.radius
