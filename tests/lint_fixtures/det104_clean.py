# lint-fixture-module: repro.core.fixture_goodsetiter
"""DET104 clean twin: the set is sorted before it feeds the schedule."""


def flood(transport, node, neighbors: list, payload) -> None:
    targets = set(neighbors)
    for peer in sorted(targets, key=lambda p: p.id):
        transport.send(node, peer, peer.handle, payload)
