# lint-fixture-module: repro.net.fixture_droptask
"""ASY403 trip: a fire-and-forget task whose only reference is discarded."""

import asyncio


async def flush_wal() -> None:
    return None


async def on_commit() -> None:
    asyncio.create_task(flush_wal())  # ASY403: collectable mid-flight
