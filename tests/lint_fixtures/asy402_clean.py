# lint-fixture-module: repro.net.fixture_lostcall
"""ASY402 clean twin: the coroutine is awaited (or handed to a kept task)."""


async def refresh_fingers() -> None:
    return None


async def maintenance_round() -> None:
    await refresh_fingers()
