# lint-fixture-module: repro.core.fixture_badsched
"""ARCH202 trip: protocol code touching the event queue directly."""


def arm_timeout(sim, deadline: float, callback) -> None:
    sim.schedule_in(deadline, callback)  # ARCH202: bypasses the transport
