# lint-fixture-module: repro.net.fixture_badrpc
"""PRO502 trip: an RPC kind requested but registered nowhere."""


def wire(transport, payload: dict) -> None:
    transport.register_rpc("pong", lambda msg: msg)


async def probe(transport, addr: str) -> dict:
    # PRO502: no register_rpc("ping", ...) anywhere — times out forever
    return await transport.rpc(addr, "ping", {})
