# lint-fixture-module: repro.sim.fixture_badclock
"""DET101 trip: a simulated component reading the host wall clock."""

import time


def stamp_event(record: dict) -> dict:
    record["at"] = time.time()  # DET101: host clock, diverges across machines
    return record
