# lint-fixture-module: repro.net.fixture_codecdrift
"""PRO503 trip: the encoder literal drifted from the dataclass fields."""

from dataclasses import dataclass


@dataclass(slots=True)
class Coord:
    x: float
    y: float


def encode_coord(value: Coord) -> dict:
    # PRO503: `y` never reaches the wire, `z` does not exist
    return {"__obj__": "Coord", "x": value.x, "z": 0.0}
