# lint-fixture-module: repro.core.fixture_badsetiter
"""DET104 trip: set iteration order reaches the event queue."""


def flood(transport, node, neighbors: list, payload) -> None:
    targets = set(neighbors)
    for peer in targets:  # DET104: arbitrary order feeds scheduling below
        transport.send(node, peer, peer.handle, payload)
