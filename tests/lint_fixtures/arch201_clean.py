# lint-fixture-module: repro.core.fixture_goodlayer
"""ARCH201 clean twin: core importing the metric layer below it."""

from repro.metric.base import Metric


def metric_name(metric: Metric) -> str:
    return metric.name
