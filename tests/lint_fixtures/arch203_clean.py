# lint-fixture-module: repro.core.fixture_goodengine
"""ARCH203 clean twin: core imports the simulator from the facade."""

from repro.sim import Simulator


def fresh_sim() -> Simulator:
    return Simulator()
