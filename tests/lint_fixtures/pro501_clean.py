# lint-fixture-module: repro.net.fixture_wiretable
"""PRO501 clean twin: the wire table mirrors the registry exactly."""

from dataclasses import dataclass

from repro.sim.messages import register_message


@register_message
@dataclass(slots=True)
class PingMessage:
    src: int
    dst: int


@register_message
@dataclass(slots=True)
class PongMessage:
    src: int
    dst: int


_MESSAGE_CLASSES = {
    "PingMessage": PingMessage,
    "PongMessage": PongMessage,
}
