# lint-fixture-module: repro.net.fixture_droptask
"""ASY403 clean twin: the handle is kept until the task completes."""

import asyncio

_TASKS: set[asyncio.Task[None]] = set()


async def flush_wal() -> None:
    return None


async def on_commit() -> None:
    task = asyncio.create_task(flush_wal())
    _TASKS.add(task)
    task.add_done_callback(_TASKS.discard)
