# lint-fixture-module: repro.core.fixture_badrng
"""DET102 trip: an unseeded generator escapes the scenario seed."""

import numpy as np


def jitter_sample(n: int):
    rng = np.random.default_rng()  # DET102: fresh entropy, not replayable
    return rng.uniform(0.0, 1.0, size=n)
