# lint-fixture-module: repro.sim.fixture_badmsg
"""CON302 trip: a message dataclass missing its trace-schema registration."""

from dataclasses import dataclass


@dataclass
class PingMessage:  # CON302: not registered with the transport trace schema
    src: int
    dst: int
