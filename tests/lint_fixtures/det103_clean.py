# lint-fixture-module: repro.core.fixture_goodhash
"""DET103 clean twin: stable hashing via zlib.crc32."""

import zlib


def index_offset(index_name: str, m: int) -> int:
    return zlib.crc32(index_name.encode("utf-8")) % (1 << m)
