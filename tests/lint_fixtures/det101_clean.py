# lint-fixture-module: repro.sim.fixture_goodclock
"""DET101 clean twin: time comes from the simulation clock."""


def stamp_event(sim, record: dict) -> dict:
    record["at"] = sim.now
    return record
