# lint-fixture-module: repro.net.fixture_blocking
"""ASY401 trip: a coroutine stalling the event loop with a sync sleep."""

import time


async def backoff(attempt: int) -> None:
    time.sleep(0.5 * attempt)  # ASY401: blocks every peer on this loop
