# lint-fixture-module: repro.core.fixture_badengine
"""ARCH203 trip: core reaching into sim.engine internals (fixable)."""

from repro.sim.engine import Simulator  # ARCH203: use the repro.sim facade


def fresh_sim() -> Simulator:
    return Simulator()
