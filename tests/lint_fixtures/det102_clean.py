# lint-fixture-module: repro.core.fixture_goodrng
"""DET102 clean twin: every draw comes from a seeded generator."""

import random

import numpy as np


def jitter_sample(n: int, seed: int):
    rng = np.random.default_rng(seed)
    shuffler = random.Random(seed)
    order = list(range(n))
    shuffler.shuffle(order)
    return rng.uniform(0.0, 1.0, size=n)[order]
