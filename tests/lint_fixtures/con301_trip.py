# lint-fixture-module: repro.metric.fixture_badmetric
"""CON301 trip: a Metric subclass shipping without its distance."""

from repro.metric.base import Metric


class BrokenMetric(Metric):  # CON301: inherits raise NotImplementedError
    is_bounded = True
    upper_bound = 1.0
