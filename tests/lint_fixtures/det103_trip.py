# lint-fixture-module: repro.core.fixture_badhash
"""DET103 trip: builtin hash() is salted per process for str/bytes."""


def index_offset(index_name: str, m: int) -> int:
    return hash(index_name) % (1 << m)  # DET103: PYTHONHASHSEED hazard
