# lint-fixture-module: repro.metric.fixture_goodmetric
"""CON301 clean twin: the distance contract is implemented."""

from repro.metric.base import Metric


class AbsoluteDifference(Metric):
    is_bounded = False

    def distance(self, x, y) -> float:
        return abs(float(x) - float(y))
