# lint-fixture-module: repro.net.fixture_lockwait
"""ASY404 clean twin: an asyncio lock cooperates with the event loop."""

import asyncio
import threading


class PeerRegistry:
    def __init__(self) -> None:
        self._lock = asyncio.Lock()
        self._sync_guard = threading.Lock()
        self.peers: list[str] = []

    async def publish(self, peer: str) -> None:
        async with self._lock:
            self.peers.append(peer)
            await asyncio.sleep(0)

    def snapshot(self) -> list[str]:
        # sync context: holding a threading lock without awaiting is fine
        with self._sync_guard:
            return list(self.peers)
