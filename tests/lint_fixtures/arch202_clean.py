# lint-fixture-module: repro.core.fixture_goodsched
"""ARCH202 clean twin: local timers go through the transport."""


def arm_timeout(transport, deadline: float, callback):
    return transport.timer_cancelable(deadline, callback)
