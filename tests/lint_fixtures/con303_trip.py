# lint-fixture-module: repro.sim.fixture_unslotted
"""CON303 trip: a registered message dataclass without ``slots=True``."""

from dataclasses import dataclass

from repro.sim.messages import register_message


@register_message
@dataclass  # CON303: registered message must declare slots=True
class ProbeMessage:
    src: int
    dst: int
