# lint-fixture-module: repro.net.fixture_wiretable
"""PRO501 trip: a registered message missing from the wire table."""

from dataclasses import dataclass

from repro.sim.messages import register_message


@register_message
@dataclass(slots=True)
class PingMessage:
    src: int
    dst: int


@register_message
@dataclass(slots=True)
class PongMessage:
    src: int
    dst: int


# PRO501: PongMessage encodes but can never be decoded off the wire
_MESSAGE_CLASSES = {
    "PingMessage": PingMessage,
}
