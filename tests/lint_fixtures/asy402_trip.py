# lint-fixture-module: repro.net.fixture_lostcall
"""ASY402 trip: a coroutine called bare — the body never runs."""


async def refresh_fingers() -> None:
    return None


async def maintenance_round() -> None:
    refresh_fingers()  # ASY402: builds a coroutine object and drops it
