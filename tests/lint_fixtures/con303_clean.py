# lint-fixture-module: repro.sim.fixture_slotted
"""CON303 clean twin: the registered message dataclass is slotted."""

from dataclasses import dataclass

from repro.sim.messages import register_message


@register_message
@dataclass(slots=True)
class EchoMessage:
    src: int
    dst: int
