# lint-fixture-module: repro.net.fixture_lockwait
"""ASY404 trip: suspending with a threading lock held deadlocks the loop."""

import asyncio
import threading


class PeerRegistry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.peers: list[str] = []

    async def publish(self, peer: str) -> None:
        with self._lock:
            self.peers.append(peer)
            await asyncio.sleep(0)  # ASY404: parked holding the lock
