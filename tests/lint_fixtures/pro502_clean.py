# lint-fixture-module: repro.net.fixture_badrpc
"""PRO502 clean twin: every requested kind has a registration."""


def wire(transport, payload: dict) -> None:
    transport.register_rpc("ping", lambda msg: msg)
    transport.register_handler("gossip", lambda msg: None)


async def probe(transport, addr: str) -> dict:
    await transport.send(addr, "gossip", {})
    return await transport.rpc(addr, "ping", {})
