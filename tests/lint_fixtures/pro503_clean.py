# lint-fixture-module: repro.net.fixture_codecdrift
"""PRO503 clean twin: the encoder carries exactly the dataclass fields."""

from dataclasses import dataclass


@dataclass(slots=True)
class Coord:
    x: float
    y: float


def encode_coord(value: Coord) -> dict:
    return {"__obj__": "Coord", "x": value.x, "y": value.y}
