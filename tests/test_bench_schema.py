"""The bench layer: BenchResult schema, regression gate, legacy-table migration.

Covers the JSON round-trip, the speedup-ratio regression semantics the CI
gate relies on (identical runs pass, a synthetic 25% candidate slowdown
fails the default 20% threshold), the geomean summary, the one-shot
``.txt``-to-JSON converter on the real committed results, and
``repro.eval.report.read_result_file`` rendering both formats.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import (
    SCHEMA,
    BenchResult,
    BenchSection,
    check_regression,
    convert_text_table,
    geomean_speedup,
)
from repro.eval.report import read_result_file

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"


def make_result(embed_speedup: float = 8.0, loop_speedup: float = 2.0) -> BenchResult:
    r = BenchResult.new("perf", quick=True)
    r.sections.append(BenchSection(
        name="embedding", baseline_label="loop", candidate_label="batch",
        baseline_s=embed_speedup, candidate_s=1.0, repeats=3,
    ))
    r.sections.append(BenchSection(
        name="event_loop", baseline_label="legacy", candidate_label="live",
        baseline_s=loop_speedup, candidate_s=1.0, repeats=3,
    ))
    return r


class TestSchema:
    def test_round_trip(self, tmp_path):
        r = make_result()
        r.summary = {"geomean": 4.0}
        path = tmp_path / "BENCH_perf.json"
        r.write(str(path))
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA
        loaded = BenchResult.load(str(path))
        assert loaded.suite == "perf"
        assert loaded.quick is True
        assert loaded.summary == {"geomean": 4.0}
        assert loaded.section("embedding").speedup == pytest.approx(8.0)
        assert loaded.machine == r.machine

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"schema": "other/9", "suite": "x"}')
        with pytest.raises(ValueError, match="not a repro-bench/1"):
            BenchResult.load(str(path))

    def test_speedup_none_for_tables(self):
        sec = BenchSection(name="grid", kind="table", headers=["a"], rows=[[1]])
        assert sec.speedup is None

    def test_geomean(self):
        r = make_result(embed_speedup=8.0, loop_speedup=2.0)
        assert geomean_speedup(r) == pytest.approx(4.0)
        assert geomean_speedup(r, ["embedding"]) == pytest.approx(8.0)
        assert geomean_speedup(BenchResult.new("empty")) is None


class TestRegressionGate:
    def test_identical_runs_pass(self):
        assert check_regression(make_result(), make_result(), 0.2) == []

    def test_synthetic_25pct_slowdown_fails_default_gate(self):
        baseline = make_result(embed_speedup=8.0)
        current = make_result(embed_speedup=8.0)
        sec = current.section("embedding")
        sec.candidate_s = sec.candidate_s * 1.25  # candidate got 25% slower
        problems = check_regression(current, baseline, 0.2)
        assert len(problems) == 1
        assert "embedding" in problems[0] and "regressed" in problems[0]

    def test_small_jitter_within_threshold_passes(self):
        baseline = make_result(embed_speedup=8.0)
        current = make_result(embed_speedup=8.0)
        current.section("embedding").candidate_s *= 1.1  # 10% < 20% allowed
        assert check_regression(current, baseline, 0.2) == []

    def test_missing_section_is_reported(self):
        current = make_result()
        current.sections = [s for s in current.sections if s.name != "event_loop"]
        problems = check_regression(current, make_result(), 0.2)
        assert len(problems) == 1
        assert "event_loop" in problems[0] and "missing" in problems[0]

    def test_faster_current_passes(self):
        baseline = make_result(embed_speedup=8.0)
        current = make_result(embed_speedup=16.0)
        assert check_regression(current, baseline, 0.2) == []


class TestLegacyConverter:
    def test_figure2_blocks(self):
        r = convert_text_table(RESULTS_DIR / "figure2.txt")
        assert r.suite == "figure2"
        assert r.summary["title"].startswith("Figure 2")
        names = [s.name for s in r.sections]
        assert names == [
            "recall", "hops", "response_time", "max_latency",
            "total_bytes", "query_messages", "index_nodes",
        ]
        recall = r.section("recall")
        assert recall.kind == "table"
        assert recall.headers == [
            "range%", "Greedy-5", "Greedy-10", "Kmean-5", "Kmean-10",
        ]
        # cells parse to numbers; the range column keeps its % strings
        row = recall.rows[4]
        assert row[0] == "5%"
        assert row[1] == pytest.approx(0.955)

    def test_single_table_file(self):
        r = convert_text_table(RESULTS_DIR / "table2.txt")
        (sec,) = r.sections
        assert sec.headers[0] == "statistic"
        assert ["minimum", 1, 1.0] in sec.rows

    def test_round_trips_through_schema(self, tmp_path):
        r = convert_text_table(RESULTS_DIR / "ablation_knn.txt")
        path = tmp_path / "knn.json"
        r.write(str(path))
        loaded = BenchResult.load(str(path))
        assert loaded.section(r.sections[0].name).rows == r.sections[0].rows

    def test_committed_json_siblings_match_txt(self):
        # the one-shot migration committed a .json next to every .txt;
        # they must stay in sync with the text tables
        for txt in sorted(RESULTS_DIR.glob("*.txt")):
            sibling = txt.with_suffix(".json")
            assert sibling.exists(), f"missing converted sibling for {txt.name}"
            fresh = convert_text_table(txt)
            committed = BenchResult.load(str(sibling))
            assert [s.to_json() for s in committed.sections] == [
                s.to_json() for s in fresh.sections
            ], txt.name


class TestReportReader:
    def test_reads_txt_verbatim(self):
        path = RESULTS_DIR / "table2.txt"
        assert read_result_file(str(path)) == path.read_text().rstrip("\n")

    def test_renders_bench_json(self, tmp_path):
        r = make_result()
        r.summary = {"geomean": 4.0}
        path = tmp_path / "BENCH_perf.json"
        r.write(str(path))
        text = read_result_file(str(path))
        assert "[suite perf]" in text
        assert "embedding" in text and "event_loop" in text
        assert "geomean" in text

    def test_renders_converted_tables(self, tmp_path):
        path = tmp_path / "figure2.json"
        convert_text_table(RESULTS_DIR / "figure2.txt").write(str(path))
        text = read_result_file(str(path))
        assert "[recall]" in text
        assert "Greedy-10" in text

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"schema": "nope"}')
        with pytest.raises(ValueError):
            read_result_file(str(path))
