"""Tests for load balancing (§3.4) and the naive routing baseline (§3.3)."""

import numpy as np

from repro.core.loadbalance import (
    dynamic_load_migration,
    hotspot_overlap,
    probe_neighbourhood,
)
from repro.core.naive import NaiveProtocol, decompose_to_owner_cuboids
from repro.core.platform import IndexPlatform
from repro.dht.ring import ChordRing
from repro.eval.ground_truth import exact_range
from repro.metric.vector import EuclideanMetric
from repro.sim.network import ConstantLatency

DIM = 4
METRIC = EuclideanMetric(box=(0, 100), dim=DIM)


def _skewed_platform(n_nodes=24, n_obj=800, seed=0, rotation=False):
    """Highly clustered data -> skewed key distribution -> uneven load."""
    rng = np.random.default_rng(seed)
    center = rng.uniform(30, 70, size=(1, DIM))
    data = np.clip(center + rng.normal(0, 3, size=(n_obj, DIM)), 0, 100)
    latency = ConstantLatency(n_nodes, delay=0.02)
    ring = ChordRing.build(n_nodes, m=24, seed=seed, latency=latency, pns=False)
    platform = IndexPlatform(ring)
    platform.create_index(
        "idx", data, METRIC, k=3, selection="greedy", sample_size=300,
        rotation=rotation, seed=seed,
    )
    return platform, data


class TestProbeNeighbourhood:
    def test_level_one_is_routing_table(self):
        platform, _ = _skewed_platform()
        node = platform.ring.nodes()[0]
        probed = probe_neighbourhood(node, 1)
        table_ids = {n.id for n in node.routing_table()} - {node.id}
        assert {n.id for n in probed} == table_ids

    def test_levels_monotone(self):
        platform, _ = _skewed_platform()
        node = platform.ring.nodes()[0]
        sizes = [len(probe_neighbourhood(node, lvl)) for lvl in (1, 2, 3)]
        assert sizes[0] <= sizes[1] <= sizes[2]

    def test_excludes_self(self):
        platform, _ = _skewed_platform()
        node = platform.ring.nodes()[0]
        assert node not in probe_neighbourhood(node, 2)


class TestDynamicMigration:
    def test_reduces_imbalance(self):
        platform, _ = _skewed_platform()
        before = platform.load_distribution()
        report = dynamic_load_migration(platform, delta=0.0, probe_level=4, seed=0)
        after = platform.load_distribution()
        assert before.sum() == after.sum()  # no entries lost
        assert report.final_max_load <= report.initial_max_load
        assert report.moves > 0
        assert report.final_imbalance <= report.initial_imbalance

    def test_queries_still_exact_after_lb(self):
        platform, data = _skewed_platform()
        dynamic_load_migration(platform, delta=0.0, probe_level=4, seed=0)
        proto, stats = platform.protocol("idx", top_k=10**6)
        index = platform.indexes["idx"]
        q = index.make_query(data[0], 12.0, qid=0)
        proto.issue(q, platform.ring.nodes()[0])
        platform.sim.run()
        got = sorted(e.object_id for e in stats.for_query(0).entries)
        want = sorted(exact_range(data, METRIC, data[0], 12.0).tolist())
        assert got == want

    def test_delta_controls_aggressiveness(self):
        p1, _ = _skewed_platform(seed=2)
        p2, _ = _skewed_platform(seed=2)
        eager = dynamic_load_migration(p1, delta=0.0, probe_level=4, seed=0)
        lazy = dynamic_load_migration(p2, delta=5.0, probe_level=4, seed=0)
        assert eager.moves >= lazy.moves

    def test_report_migration_volume(self):
        platform, _ = _skewed_platform()
        report = dynamic_load_migration(platform, seed=0)
        if report.moves:
            assert report.entries_migrated > 0

    def test_converges_without_skew(self):
        """Uniform data should require few or no moves."""
        rng = np.random.default_rng(1)
        data = rng.uniform(0, 100, size=(600, DIM))
        ring = ChordRing.build(24, m=24, seed=1, latency=ConstantLatency(24), pns=False)
        platform = IndexPlatform(ring)
        platform.create_index("idx", data, METRIC, k=3, selection="greedy", seed=1)
        report = dynamic_load_migration(platform, delta=1.0, probe_level=2, seed=0)
        assert report.rounds <= 40


class TestRotationHotspots:
    def test_rotation_reduces_hotspot_overlap(self):
        """Several similarly-skewed indexes without rotation overload the same
        nodes; rotation spreads their hot arcs (§3.4 static balancing)."""

        def build(rotation):
            rng = np.random.default_rng(5)
            center = rng.uniform(40, 60, size=(1, DIM))
            ring = ChordRing.build(32, m=24, seed=5, latency=ConstantLatency(32), pns=False)
            platform = IndexPlatform(ring)
            for i in range(4):
                data = np.clip(center + rng.normal(0, 3, size=(400, DIM)), 0, 100)
                platform.create_index(
                    f"idx{i}", data, METRIC, k=3, selection="greedy",
                    sample_size=200, rotation=rotation, seed=5,
                )
            return platform

        no_rot = hotspot_overlap(build(False))
        with_rot = hotspot_overlap(build(True))
        assert with_rot < no_rot

    def test_single_index_overlap_is_one(self):
        platform, _ = _skewed_platform()
        assert hotspot_overlap(platform) == 1.0


class TestNaiveDecomposition:
    def test_covers_query_rect(self):
        platform, data = _skewed_platform()
        index = platform.indexes["idx"]
        q = index.make_query(data[0], 10.0)
        pieces = decompose_to_owner_cuboids(index, q.rect)
        assert pieces
        # every stored entry in the rect must fall in some piece's box+keys
        total = 0
        for _, _, lo, hi in pieces:
            assert np.all(lo <= hi)
        # pieces' key ranges must be disjoint
        ranges = sorted(
            (pk, pk + (1 << (index.m - pl)) - 1) for pk, pl, _, _ in pieces
        )
        for (a1, b1), (a2, b2) in zip(ranges, ranges[1:]):
            assert b1 < a2

    def test_single_owner_per_piece(self):
        platform, data = _skewed_platform()
        index = platform.indexes["idx"]
        q = index.make_query(data[0], 10.0)
        for pk, pl, _, _ in decompose_to_owner_cuboids(index, q.rect):
            span = 1 << (index.m - pl)
            mask = (1 << index.m) - 1
            lo = (pk + index.rotation) & mask
            hi = (pk + span - 1 + index.rotation) & mask
            assert platform.ring.successor_of(lo) is platform.ring.successor_of(hi)


class TestNaiveProtocol:
    def test_same_results_as_tree_routing(self):
        platform, data = _skewed_platform(n_obj=500, seed=7)
        index = platform.indexes["idx"]
        for qi in (0, 10, 200):
            naive, nstats = platform.protocol("idx", top_k=10**6)
            naive = NaiveProtocol(
                platform.sim, index, nstats, latency=platform.latency, top_k=10**6
            )
            platform.sim.reset()
            naive.issue(index.make_query(data[qi], 9.0, qid=0), platform.ring.nodes()[0])
            platform.sim.run()

            proto, tstats = platform.protocol("idx", top_k=10**6)
            platform.sim.reset()
            proto.issue(index.make_query(data[qi], 9.0, qid=0), platform.ring.nodes()[0])
            platform.sim.run()

            assert sorted(e.object_id for e in nstats.for_query(0).entries) == sorted(
                e.object_id for e in tstats.for_query(0).entries
            )

    def test_naive_costs_more_messages(self):
        """The whole point of §3.3: per-cuboid lookups send far more
        messages than embedded-tree routing for selective queries."""
        platform, data = _skewed_platform(n_obj=800, seed=9)
        index = platform.indexes["idx"]

        _, nstats = platform.protocol("idx")
        naive = NaiveProtocol(platform.sim, index, nstats, latency=platform.latency)
        platform.sim.reset()
        naive.issue(index.make_query(data[0], 10.0, qid=0), platform.ring.nodes()[0])
        platform.sim.run()

        proto, tstats = platform.protocol("idx")
        platform.sim.reset()
        proto.issue(index.make_query(data[0], 10.0, qid=0), platform.ring.nodes()[0])
        platform.sim.run()

        assert (
            nstats.for_query(0).query_messages >= tstats.for_query(0).query_messages
        )
