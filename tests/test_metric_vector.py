"""Tests for Minkowski vector metrics: values, vectorised kernels, axioms."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.metric.base import check_metric_axioms
from repro.metric.vector import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    MinkowskiMetric,
)

vectors = hnp.arrays(
    np.float64,
    st.integers(1, 6).map(lambda d: (d,)),
    elements=st.floats(-50, 50, allow_nan=False),
)


class TestKnownValues:
    def test_euclidean_345(self):
        assert EuclideanMetric().distance([0, 0], [3, 4]) == 5.0

    def test_manhattan(self):
        assert ManhattanMetric().distance([0, 0], [3, 4]) == 7.0

    def test_chebyshev(self):
        assert ChebyshevMetric().distance([0, 0], [3, 4]) == 4.0

    def test_l3(self):
        d = MinkowskiMetric(3).distance([0.0], [2.0])
        assert d == pytest.approx(2.0)

    def test_identity(self):
        for m in (EuclideanMetric(), ManhattanMetric(), ChebyshevMetric()):
            assert m.distance([1.5, -2.0], [1.5, -2.0]) == 0.0

    def test_exponent_below_one_rejected(self):
        with pytest.raises(ValueError):
            MinkowskiMetric(0.5)


class TestBounds:
    def test_euclidean_box_bound_matches_paper(self):
        # 100-d, range [0,100]: theoretical max distance = 1000 (paper §4.2).
        m = EuclideanMetric(box=(0, 100), dim=100)
        assert m.is_bounded
        assert m.upper_bound == pytest.approx(1000.0)

    def test_manhattan_box_bound(self):
        m = ManhattanMetric(box=(0, 10), dim=4)
        assert m.upper_bound == pytest.approx(40.0)

    def test_chebyshev_box_bound(self):
        m = ChebyshevMetric(box=(0, 10), dim=4)
        assert m.upper_bound == pytest.approx(10.0)

    def test_box_without_dim_rejected(self):
        with pytest.raises(ValueError):
            EuclideanMetric(box=(0, 1))

    def test_unbounded_by_default(self):
        assert not EuclideanMetric().is_bounded

    def test_bound_is_respected_on_samples(self):
        m = EuclideanMetric(box=(0, 100), dim=5)
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 100, (50, 5))
        assert m.pairwise(X, X).max() <= m.upper_bound + 1e-9


class TestVectorisedKernels:
    @pytest.mark.parametrize("p", [1.0, 2.0, 3.0, math.inf])
    def test_one_to_many_matches_scalar(self, p):
        rng = np.random.default_rng(1)
        x = rng.normal(size=7)
        Y = rng.normal(size=(20, 7))
        m = MinkowskiMetric(p)
        got = m.one_to_many(x, Y)
        want = [m.distance(x, y) for y in Y]
        np.testing.assert_allclose(got, want, rtol=1e-12)

    @pytest.mark.parametrize("p", [1.0, 2.0, math.inf])
    def test_pairwise_matches_scalar(self, p):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(6, 4))
        Y = rng.normal(size=(9, 4))
        m = MinkowskiMetric(p)
        got = m.pairwise(X, Y)
        assert got.shape == (6, 9)
        for i in range(6):
            for j in range(9):
                assert got[i, j] == pytest.approx(m.distance(X[i], Y[j]), rel=1e-9, abs=1e-9)

    def test_one_to_many_single_row(self):
        m = EuclideanMetric()
        out = m.one_to_many(np.zeros(3), np.ones((1, 3)))
        assert out.shape == (1,)


class TestAxioms:
    @pytest.mark.parametrize("p", [1.0, 2.0, 2.5, math.inf])
    def test_axioms_hold_on_sample(self, p):
        rng = np.random.default_rng(3)
        sample = rng.normal(scale=10, size=(12, 4))
        check_metric_axioms(MinkowskiMetric(p), sample)

    @settings(max_examples=50, deadline=None)
    @given(vectors, st.floats(1.0, 5.0))
    def test_symmetry_property(self, x, p):
        y = x[::-1].copy()
        m = MinkowskiMetric(p)
        assert m.distance(x, y) == pytest.approx(m.distance(y, x), rel=1e-9, abs=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_triangle_property(self, data):
        dim = data.draw(st.integers(1, 5))
        elems = st.floats(-100, 100, allow_nan=False)
        arr = hnp.arrays(np.float64, (3, dim), elements=elems)
        pts = data.draw(arr)
        m = EuclideanMetric()
        d01 = m.distance(pts[0], pts[1])
        d12 = m.distance(pts[1], pts[2])
        d02 = m.distance(pts[0], pts[2])
        assert d02 <= d01 + d12 + 1e-7


class TestNames:
    def test_names(self):
        assert EuclideanMetric().name == "L2"
        assert ManhattanMetric().name == "L1"
        assert ChebyshevMetric().name == "L_inf"
        assert MinkowskiMetric(2.5).name == "L2.5"
