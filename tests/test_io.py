"""Tests for index persistence (save/load round trips)."""

import numpy as np
import pytest

from repro.core.platform import IndexPlatform
from repro.dht.ring import ChordRing
from repro.eval.ground_truth import exact_range
from repro.io import load_index, save_index
from repro.metric.strings import EditDistanceMetric
from repro.metric.transforms import BoundedMetric
from repro.metric.vector import EuclideanMetric

DIM = 4
METRIC = EuclideanMetric(box=(0, 100), dim=DIM)


@pytest.fixture
def built(tmp_path, rng):
    centers = rng.uniform(0, 100, size=(3, DIM))
    data = np.clip(centers[rng.integers(0, 3, 300)] + rng.normal(0, 5, (300, DIM)), 0, 100)
    ring = ChordRing.build(12, m=24, seed=0)
    platform = IndexPlatform(ring)
    platform.create_index(
        "idx", data, METRIC, k=3, selection="kmeans", rotation=True,
        replication=2, seed=1,
    )
    path = str(tmp_path / "index.npz")
    save_index(platform.indexes["idx"], path)
    return platform, data, path


class TestRoundTrip:
    def test_same_ring_identical_state(self, built):
        platform, data, path = built
        orig = platform.indexes["idx"]
        restored = load_index(path, platform.ring, data, METRIC)
        np.testing.assert_array_equal(orig._keys, restored._keys)
        np.testing.assert_array_equal(orig._object_ids, restored._object_ids)
        assert restored.rotation == orig.rotation
        assert restored.replication == orig.replication
        assert restored.refine_mode == orig.refine_mode
        np.testing.assert_allclose(
            np.asarray(orig.space.landmark_set.landmarks),
            np.asarray(restored.space.landmark_set.landmarks),
        )

    def test_queries_identical_after_restore(self, built):
        platform, data, path = built
        restored = load_index(path, platform.ring, data, METRIC)
        fresh = IndexPlatform(platform.ring)
        fresh.indexes["idx"] = restored
        want = sorted(exact_range(data, METRIC, data[0], 25.0).tolist())
        res = fresh.query("idx", data[0], radius=25.0, top_k=10**6)
        assert sorted(e.object_id for e in res) == want

    def test_restore_onto_different_ring(self, built):
        """A new overlay (different membership) redistributes the entries."""
        platform, data, path = built
        ring2 = ChordRing.build(20, m=24, seed=99)
        restored = load_index(path, ring2, data, METRIC)
        assert restored.load_distribution().sum() == 2 * 300  # replication kept
        fresh = IndexPlatform(ring2)
        fresh.indexes["idx"] = restored
        want = sorted(exact_range(data, METRIC, data[5], 25.0).tolist())
        res = fresh.query("idx", data[5], radius=25.0, top_k=10**6)
        assert sorted(e.object_id for e in res) == want

    def test_m_mismatch_rejected(self, built):
        platform, data, path = built
        ring_bad = ChordRing.build(8, m=16, seed=0)
        with pytest.raises(ValueError, match="identifier width"):
            load_index(path, ring_bad, data, METRIC)

    def test_blackbox_landmarks_rejected(self, tmp_path):
        seqs = ["acgt", "acct", "tttt", "gggg", "aaaa", "cccc"] * 10
        ring = ChordRing.build(4, m=16, seed=0)
        platform = IndexPlatform(ring)
        platform.create_index(
            "dna", seqs, BoundedMetric(EditDistanceMetric()), k=2,
            selection="kmedoids", boundary="metric", seed=0,
        )
        with pytest.raises(TypeError, match="array-backed"):
            save_index(platform.indexes["dna"], str(tmp_path / "x.npz"))
