"""Tests for the deterministic RNG plumbing."""

import numpy as np

from repro.util.rng import as_rng, derive_rng, spawn_rngs


class TestAsRng:
    def test_int_seed_is_deterministic(self):
        assert as_rng(42).integers(0, 1 << 30) == as_rng(42).integers(0, 1 << 30)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestDeriveRng:
    def test_same_label_same_stream(self):
        a = derive_rng(as_rng(1), "landmarks")
        b = derive_rng(as_rng(1), "landmarks")
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_different_labels_differ(self):
        parent = as_rng(1)
        a = derive_rng(parent, "a")
        parent2 = as_rng(1)
        b = derive_rng(parent2, "b")
        draws_a = a.integers(0, 1 << 30, size=8)
        draws_b = b.integers(0, 1 << 30, size=8)
        assert not np.array_equal(draws_a, draws_b)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_deterministic(self):
        a = spawn_rngs(7, 3)
        b = spawn_rngs(7, 3)
        for x, y in zip(a, b):
            assert x.integers(0, 1 << 30) == y.integers(0, 1 << 30)

    def test_independent(self):
        a, b = spawn_rngs(7, 2)
        assert not np.array_equal(
            a.integers(0, 1 << 30, size=16), b.integers(0, 1 << 30, size=16)
        )
