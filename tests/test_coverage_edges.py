"""Edge-case coverage for query expansion, the King matrix and metric transforms.

Complements the happy-path tests in ``test_eval.py``, ``test_sim.py`` and
``test_metric_hausdorff_transforms.py`` with the boundary and degenerate
inputs those files do not exercise: cutoff ties and zero queries for Rocchio
expansion, scaling/jitter extremes for the synthetic King matrix, and the
``d' = d/(1+d)`` transform at the boundary of its range.
"""

import math

import numpy as np
import pytest
from scipy import sparse

from repro.eval.expansion import expand_query
from repro.metric.strings import EditDistanceMetric
from repro.metric.transforms import BoundedMetric, ScaledMetric
from repro.metric.vector import EuclideanMetric
from repro.sim.king import (
    KING_MEAN_RTT,
    KING_N_HOSTS,
    king_latency_model,
    synthetic_king_matrix,
)


class TestExpansionEdges:
    def _q(self, row):
        return sparse.csr_matrix(np.asarray([row], dtype=float))

    def test_rocchio_weights_are_exact(self):
        # expanded = alpha*q + beta*centroid on every kept term
        q = self._q([2.0, 0.0, 0.0, 0.0])
        fb = sparse.csr_matrix(
            np.array([[1.0, 4.0, 0.0, 0.0], [3.0, 2.0, 0.0, 0.0]])
        )
        out = np.asarray(
            expand_query(q, fb, n_terms=1, alpha=0.5, beta=2.0).todense()
        ).ravel()
        # term 0 is an original term: alpha*2 + beta*centroid(= 2.0)
        assert out[0] == pytest.approx(0.5 * 2.0 + 2.0 * 2.0)
        # term 1 is the strongest new term: beta*centroid(= 3.0) only
        assert out[1] == pytest.approx(2.0 * 3.0)
        assert out[2] == out[3] == 0.0

    def test_n_terms_zero_keeps_only_original_terms(self):
        q = self._q([1.0, 0.0, 0.0])
        fb = sparse.csr_matrix(np.array([[0.5, 5.0, 3.0]]))
        out = np.asarray(expand_query(q, fb, n_terms=0).todense()).ravel()
        assert out[0] > 0
        assert out[1] == 0.0 and out[2] == 0.0

    def test_n_terms_exceeding_candidates_keeps_them_all(self):
        q = self._q([1.0, 0.0, 0.0, 0.0])
        fb = sparse.csr_matrix(np.array([[0.0, 2.0, 1.0, 0.0]]))
        out = np.asarray(expand_query(q, fb, n_terms=10).todense()).ravel()
        assert out[1] > 0 and out[2] > 0  # both candidates survive
        assert out[3] == 0.0  # but zero-weight terms stay zero

    def test_cutoff_ties_all_survive(self):
        # two candidate terms tied at the cutoff weight: np.partition keeps
        # values equal to the cutoff, so a tie admits both
        q = self._q([1.0, 0.0, 0.0, 0.0])
        fb = sparse.csr_matrix(np.array([[0.0, 2.0, 2.0, 0.0]]))
        out = np.asarray(expand_query(q, fb, n_terms=1).todense()).ravel()
        assert out[1] > 0 and out[2] > 0

    def test_zero_query_expands_from_feedback_alone(self):
        q = self._q([0.0, 0.0, 0.0])
        fb = sparse.csr_matrix(np.array([[0.0, 4.0, 1.0]]))
        out = np.asarray(expand_query(q, fb, n_terms=1).todense()).ravel()
        assert out[1] > 0  # strongest feedback term
        assert out[0] == 0.0 and out[2] == 0.0  # cut by n_terms=1

    def test_output_is_csr_with_query_shape(self):
        q = self._q([1.0, 0.0, 0.0, 0.0, 0.0])
        fb = sparse.csr_matrix(np.array([[1.0, 1.0, 0.0, 0.0, 0.0]]))
        out = expand_query(q, fb)
        assert sparse.issparse(out) and out.format == "csr"
        assert out.shape == q.shape

    def test_empty_feedback_returns_independent_copy(self):
        q = self._q([1.0, 0.5])
        out = expand_query(q, sparse.csr_matrix((0, 2)))
        assert (out != q).nnz == 0
        out.data[:] = 99.0  # mutating the copy must not touch the original
        assert q.data[0] == 1.0


class TestKingMatrixEdges:
    def test_constants_match_paper(self):
        assert KING_N_HOSTS == 1740
        assert KING_MEAN_RTT == pytest.approx(0.180)

    def test_seed_determinism_bitwise(self):
        a = synthetic_king_matrix(n_hosts=40, seed=9)
        b = synthetic_king_matrix(n_hosts=40, seed=9)
        np.testing.assert_array_equal(a, b)
        c = synthetic_king_matrix(n_hosts=40, seed=10)
        assert not np.array_equal(a, c)

    def test_generator_seed_accepted(self):
        a = synthetic_king_matrix(n_hosts=20, seed=np.random.default_rng(3))
        b = synthetic_king_matrix(n_hosts=20, seed=np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_custom_mean_rtt_calibration_is_exact(self):
        n = 50
        m = synthetic_king_matrix(n_hosts=n, mean_rtt=0.5, seed=0)
        assert 2 * m.sum() / (n * (n - 1)) == pytest.approx(0.5, rel=1e-9)

    def test_two_hosts_minimal_matrix(self):
        m = synthetic_king_matrix(n_hosts=2, seed=0)
        assert m.shape == (2, 2)
        assert m[0, 0] == m[1, 1] == 0.0
        # the single off-diagonal pair carries the whole calibrated mean
        assert m[0, 1] == m[1, 0] == pytest.approx(KING_MEAN_RTT / 2.0)

    def test_zero_jitter_is_pure_geometry(self):
        # lognormal(0, 0) == 1, so the matrix is scaled propagation + floor:
        # still symmetric, zero-diagonal and calibrated
        n = 30
        m = synthetic_king_matrix(n_hosts=n, seed=2, jitter_sigma=0.0)
        np.testing.assert_allclose(m, m.T)
        assert 2 * m.sum() / (n * (n - 1)) == pytest.approx(KING_MEAN_RTT)
        # without jitter there is no heavy tail
        off = m[~np.eye(n, dtype=bool)]
        assert np.percentile(off, 95) < 3 * np.median(off)

    def test_floor_does_not_break_calibration(self):
        # the floor shifts raw delays, but the global rescale restores the
        # target mean regardless of its magnitude
        n = 25
        for floor in (0.0, 0.002, 0.5):
            m = synthetic_king_matrix(n_hosts=n, seed=1, floor=floor)
            assert 2 * m.sum() / (n * (n - 1)) == pytest.approx(KING_MEAN_RTT)

    def test_latency_model_symmetry_and_row_kernel(self):
        lat = king_latency_model(n_hosts=12, seed=4)
        assert lat.latency(3, 7) == lat.latency(7, 3)
        row = lat.latency_row(0, np.arange(12))
        assert row.shape == (12,)
        assert row[0] == 0.0
        for j in (1, 5, 11):
            assert row[j] == lat.latency(0, j)


class TestBoundedTransformEdges:
    def test_range_is_half_open(self):
        # t(d) = d/(1+d) reaches 0 only at d=0 and never reaches 1
        m = BoundedMetric(EuclideanMetric())
        assert m.distance([0.0], [0.0]) == 0.0
        huge = m.distance([0.0], [1e12])
        assert huge < 1.0
        assert huge == pytest.approx(1.0)

    def test_radius_zero_maps_to_zero(self):
        m = BoundedMetric(EuclideanMetric())
        assert BoundedMetric.to_bounded_radius(0.0) == 0.0
        assert m.to_inner_radius(0.0) == 0.0

    def test_inner_radius_saturates_at_and_above_one(self):
        m = BoundedMetric(EuclideanMetric())
        assert m.to_inner_radius(1.0) == math.inf
        assert m.to_inner_radius(1.5) == math.inf

    def test_pairwise_matches_scalar(self):
        rng = np.random.default_rng(7)
        X, Y = rng.normal(size=(3, 2)), rng.normal(size=(4, 2))
        m = BoundedMetric(EuclideanMetric())
        got = m.pairwise(X, Y)
        for i in range(3):
            for j in range(4):
                assert got[i, j] == pytest.approx(m.distance(X[i], Y[j]))

    def test_one_to_many_empty_input(self):
        m = BoundedMetric(EuclideanMetric(dim=2))
        out = m.one_to_many(np.zeros(2), np.empty((0, 2)))
        assert out.shape == (0,)

    def test_name_wraps_inner(self):
        assert BoundedMetric(EditDistanceMetric()).name.startswith("bounded(")


class TestScaledMetricEdges:
    def test_rejects_negative_scale(self):
        with pytest.raises(ValueError):
            ScaledMetric(EuclideanMetric(), -1.0)

    def test_unbounded_inner_stays_unbounded(self):
        m = ScaledMetric(EuclideanMetric(), 2.0)
        assert not m.is_bounded
        assert m.upper_bound == math.inf

    def test_bulk_kernels_match_scalar(self):
        rng = np.random.default_rng(8)
        X, Y = rng.normal(size=(3, 2)), rng.normal(size=(5, 2))
        m = ScaledMetric(EuclideanMetric(), 0.25)
        np.testing.assert_allclose(
            m.one_to_many(X[0], Y), [m.distance(X[0], y) for y in Y]
        )
        np.testing.assert_allclose(
            m.pairwise(X, Y),
            [[m.distance(x, y) for y in Y] for x in X],
        )

    def test_composes_with_bounded_transform(self):
        # scaling the bounded transform keeps a finite, scaled upper bound
        m = ScaledMetric(BoundedMetric(EuclideanMetric()), 3.0)
        assert m.is_bounded and m.upper_bound == pytest.approx(3.0)
        assert m.distance([0.0], [1.0]) == pytest.approx(3.0 * 0.5)

    def test_name_shows_scale(self):
        assert ScaledMetric(EuclideanMetric(), 2.0).name.startswith("2.0*")
