"""Tests for the angular (arccos-cosine) metrics, dense and sparse."""

import math

import numpy as np
import pytest
from scipy import sparse

from repro.metric.base import check_metric_axioms
from repro.metric.cosine import AngularMetric, SparseAngularMetric


class TestDenseAngular:
    def test_orthogonal_is_pi_over_2(self):
        m = AngularMetric()
        assert m.distance([1, 0], [0, 1]) == pytest.approx(math.pi / 2)

    def test_parallel_is_zero(self):
        m = AngularMetric()
        assert m.distance([1, 2], [2, 4]) == pytest.approx(0.0, abs=1e-7)

    def test_opposite_is_pi(self):
        m = AngularMetric()
        assert m.distance([1, 0], [-1, 0]) == pytest.approx(math.pi)

    def test_scale_invariance(self):
        m = AngularMetric()
        a, b = np.array([1.0, 3.0, 2.0]), np.array([2.0, 0.5, 1.0])
        assert m.distance(a, b) == pytest.approx(m.distance(10 * a, 0.1 * b))

    def test_zero_vector_is_max(self):
        m = AngularMetric()
        assert m.distance([0, 0], [1, 0]) == m.upper_bound

    def test_nonnegative_bound(self):
        assert AngularMetric(nonnegative=True).upper_bound == pytest.approx(math.pi / 2)
        assert AngularMetric().upper_bound == pytest.approx(math.pi)

    def test_clipping_handles_fp_cos_overflow(self):
        # Nearly identical vectors can give cos slightly above 1.
        m = AngularMetric()
        v = np.array([1.0, 1.0, 1.0]) / math.sqrt(3)
        assert m.distance(v, v) == pytest.approx(0.0, abs=1e-7)

    def test_one_to_many_matches_scalar(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=5)
        Y = rng.normal(size=(15, 5))
        m = AngularMetric()
        np.testing.assert_allclose(
            m.one_to_many(x, Y), [m.distance(x, y) for y in Y], rtol=1e-9
        )

    def test_pairwise_matches_scalar(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(4, 3))
        Y = rng.normal(size=(6, 3))
        m = AngularMetric()
        got = m.pairwise(X, Y)
        for i in range(4):
            for j in range(6):
                assert got[i, j] == pytest.approx(m.distance(X[i], Y[j]), abs=1e-6)

    def test_axioms_on_sample(self):
        rng = np.random.default_rng(2)
        sample = rng.normal(size=(10, 4))
        check_metric_axioms(AngularMetric(), sample, atol=1e-7)


class TestSparseAngular:
    def _corpus(self):
        rows = np.array([0, 0, 1, 1, 2, 3, 3, 3])
        cols = np.array([0, 1, 1, 2, 3, 0, 2, 3])
        vals = np.array([1.0, 2.0, 1.0, 1.0, 5.0, 1.0, 1.0, 1.0])
        return sparse.csr_matrix((vals, (rows, cols)), shape=(4, 5))

    def test_agrees_with_dense(self):
        X = self._corpus()
        dm = AngularMetric()
        sm = SparseAngularMetric()
        D = np.asarray(X.todense())
        for i in range(4):
            for j in range(4):
                assert sm.distance(X[i], X[j]) == pytest.approx(
                    dm.distance(D[i], D[j]), abs=1e-6
                )

    def test_disjoint_supports_are_orthogonal(self):
        X = self._corpus()
        m = SparseAngularMetric()
        # doc 1 uses terms {1,2}; doc 2 uses term {3}: orthogonal.
        assert m.distance(X[1], X[2]) == pytest.approx(math.pi / 2)

    def test_one_to_many_full_matrix(self):
        X = self._corpus()
        m = SparseAngularMetric()
        d = m.one_to_many(X[0], X)
        assert d.shape == (4,)
        assert d[0] == pytest.approx(0.0, abs=1e-6)
        for j in range(4):
            assert d[j] == pytest.approx(m.distance(X[0], X[j]), abs=1e-6)

    def test_pairwise(self):
        X = self._corpus()
        m = SparseAngularMetric()
        D = m.pairwise(X, X)
        assert D.shape == (4, 4)
        np.testing.assert_allclose(np.diag(D), 0.0, atol=1e-6)
        np.testing.assert_allclose(D, D.T, atol=1e-12)

    def test_dense_input_accepted(self):
        m = SparseAngularMetric()
        assert m.distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(
            math.pi / 2
        )

    def test_empty_row_is_max(self):
        # build via COO: assigning into an existing CSR raises
        # SparseEfficiencyWarning (an error under filterwarnings = error)
        X = sparse.coo_matrix(([1.0], ([0], [0])), shape=(2, 3)).tocsr()
        m = SparseAngularMetric()
        assert m.distance(X[0], X[1]) == m.upper_bound

    def test_bounded_by_pi_over_2(self):
        assert SparseAngularMetric().is_bounded
        assert SparseAngularMetric().upper_bound == pytest.approx(math.pi / 2)
