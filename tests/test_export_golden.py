"""Golden-file tests pinning the exporter output formats byte-for-byte.

``obs/export.py`` feeds CI artifacts and the ``repro metrics`` CLI; external
tooling (Prometheus scrapes, spreadsheet imports, jq pipelines) parses these
bytes, so format drift is a breaking change even when the values are right.
The goldens live in ``tests/golden/``.  To regenerate after an *intentional*
format change::

    PYTHONPATH=src:tests python -c 'import test_export_golden as t; t.regenerate()'

and review the diff before committing.
"""

import io
import math
import os

import pytest

from repro.obs.export import (
    format_metrics_rows,
    prometheus_text,
    read_metrics_jsonl,
    write_csv,
    write_jsonl,
)
from repro.obs.registry import MetricsRegistry

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def build_registry() -> MetricsRegistry:
    """A fixed registry exercising every exporter code path.

    Covers: labeled + unlabeled counters, a gauge holding NaN (JSONL null /
    Prometheus ``NaN``), a bucket-interpolated histogram, a reservoir
    histogram (deterministic: its RNG is seeded from the metric name), and a
    label name needing Prometheus sanitisation.
    """
    reg = MetricsRegistry()
    c = reg.counter("queries_total", "Queries issued", labelnames=("index",))
    c.inc(("vec",), 3)
    c.inc(("doc",), 2)
    reg.counter("messages_total", "Messages sent").inc((), 41)
    reg.gauge("nodes_alive", "Live node count").set(16)
    reg.gauge("load_skew", "max/mean shard load").set(math.nan)
    h = reg.histogram(
        "query_latency_seconds", "Query latency", labelnames=("index",),
        buckets=(0.05, 0.1, 0.5, 1.0),
    )
    for i in range(1, 11):
        h.observe(i / 10.0, ("vec",))
    r = reg.histogram("hops", "Routing hops", buckets=(1, 2, 4, 8), reservoir=64)
    for v in (1, 1, 2, 3, 5, 8):
        r.observe(float(v))
    s = reg.counter(
        "bytes_total", "Bytes by direction", labelnames=("direction-kind",))
    s.inc(("in",), 1024)
    return reg


def _render(fmt: str) -> str:
    reg = build_registry()
    if fmt == "prom":
        return prometheus_text(reg)
    buf = io.StringIO()
    if fmt == "jsonl":
        write_jsonl(reg.snapshot(), buf)
    elif fmt == "csv":
        write_csv(reg.snapshot(), buf)
    elif fmt == "table":
        return format_metrics_rows(reg.snapshot()) + "\n"
    return buf.getvalue()

FORMATS = {
    "prom": "metrics.prom",
    "jsonl": "metrics.jsonl",
    "csv": "metrics.csv",
    "table": "metrics.txt",
}


def regenerate() -> None:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for fmt, fname in FORMATS.items():
        with open(os.path.join(GOLDEN_DIR, fname), "w", newline="") as fh:
            fh.write(_render(fmt))


class TestGoldenFormats:
    @pytest.mark.parametrize("fmt", sorted(FORMATS))
    def test_output_matches_golden(self, fmt):
        path = os.path.join(GOLDEN_DIR, FORMATS[fmt])
        with open(path, newline="") as fh:
            golden = fh.read()
        assert _render(fmt) == golden, (
            f"{FORMATS[fmt]} drifted; if the change is intentional, "
            f"regenerate the goldens (see module docstring) and review the diff"
        )


class TestFormatContracts:
    """Targeted assertions so a golden failure has a readable counterpart."""

    def test_prometheus_structure(self):
        text = prometheus_text(build_registry())
        assert "# TYPE queries_total counter\n" in text
        # histograms render as summaries: quantile series + _sum/_count
        assert "# TYPE query_latency_seconds summary\n" in text
        assert 'query_latency_seconds{index="vec",quantile="0.50"}' in text
        assert "query_latency_seconds_count" in text
        # label names are sanitised to the Prometheus charset
        assert 'bytes_total{direction_kind="in"} 1024.0\n' in text
        # NaN gauges render as literal NaN samples
        assert "load_skew NaN\n" in text

    def test_jsonl_roundtrip_restores_nan(self):
        reg = build_registry()
        buf = io.StringIO()
        write_jsonl(reg.snapshot(), buf)
        assert '"value": null' in buf.getvalue()  # NaN encodes as null
        rows = read_metrics_jsonl(io.StringIO(buf.getvalue()))
        skew = next(r for r in rows if r["name"] == "load_skew")
        assert math.isnan(skew["value"])
        clean = [r for r in rows if r["name"] != "load_skew"]
        assert clean == [r for r in reg.snapshot() if r["name"] != "load_skew"]

    def test_csv_has_union_header_and_crlf(self):
        buf = io.StringIO()
        write_csv(build_registry().snapshot(), buf)
        lines = buf.getvalue().split("\r\n")
        header = lines[0].split(",")
        assert header[:3] == ["name", "type", "help"]
        assert "label_index" in header and "value" in header and "p99" in header
