"""Runtime invariant checkers: detection power and clean-run silence."""

import numpy as np
import pytest

from repro.check import InvariantChecker, InvariantViolation, PartitionChecker
from repro.core.query import query_split
from repro.dht.ring import ChordRing
from repro.metric import EuclideanMetric
from repro.obs.spans import Span, reconcile_with_stats
from repro.sim.engine import Simulator
from repro.sim.network import ConstantLatency
from repro.sim.stats import QueryStats


# -- Chord ring consistency -----------------------------------------------------


class TestRingInvariants:
    def test_clean_ring_passes(self, small_ring):
        checker = InvariantChecker(ring=small_ring)
        checker.check_ring()
        assert checker.checks["ring"] == 1
        assert checker.ok

    def test_single_node_ring_passes(self):
        ring = ChordRing.build(1, m=16, seed=0)
        InvariantChecker(ring=ring).check_ring()

    def test_bad_successor_detected(self):
        ring = ChordRing.build(16, m=20, seed=3)
        nodes = ring.nodes()
        nodes[0].successors = [nodes[5]]  # oracle successor is nodes[1]
        with pytest.raises(InvariantViolation, match="ring.successor"):
            InvariantChecker(ring=ring).check_ring()

    def test_bad_predecessor_detected(self):
        ring = ChordRing.build(16, m=20, seed=3)
        ring.nodes()[4].predecessor = None
        with pytest.raises(InvariantViolation, match="ring.predecessor"):
            InvariantChecker(ring=ring).check_ring()

    def test_dead_finger_detected(self):
        ring = ChordRing.build(16, m=20, seed=3)
        nodes = ring.nodes()
        ghost = nodes[7]
        ring.remove_node(ghost)
        # rebuild pointed everyone away from ghost; plant a stale reference
        ring.nodes()[2].fingers[0] = ghost
        with pytest.raises(InvariantViolation, match="ring.finger_live"):
            InvariantChecker(ring=ring).check_ring()

    def test_non_strict_collects_instead_of_raising(self):
        ring = ChordRing.build(8, m=16, seed=1)
        ring.nodes()[0].predecessor = None
        checker = InvariantChecker(ring=ring, strict=False)
        checker.check_ring()
        assert not checker.ok
        assert checker.violations[0].name == "ring.predecessor"

    def test_intervals_partition_id_space(self, small_ring):
        # interval_of agrees with successor_of on sampled keys
        rng = np.random.default_rng(0)
        for key in rng.integers(0, 1 << small_ring.m, size=64):
            owner = small_ring.successor_of(int(key))
            lo, hi = small_ring.interval_of(owner)
            if lo < hi:
                assert lo < int(key) <= hi
            else:  # wrapping interval
                assert int(key) > lo or int(key) <= hi


# -- exactly-one-owner shard placement --------------------------------------------


class TestOwnershipInvariants:
    def test_clean_placement_passes(self, platform):
        checker = InvariantChecker(platform=platform)
        checker.check_ownership()
        assert checker.checks["ownership"] == 1

    def test_foreign_entry_detected(self, platform):
        index = platform.indexes["t"]
        nodes = platform.ring.nodes()
        donor = max(nodes, key=lambda n: index.shards[n].load)
        thief = min(nodes, key=lambda n: index.shards[n].load)
        shard = index.shards[donor]
        index.shards[thief].add(shard.keys[:1], shard.points[:1], shard.object_ids[:1])
        with pytest.raises(InvariantViolation, match="ownership.placement"):
            InvariantChecker(platform=platform).check_ownership()

    def test_missing_entry_detected(self, platform):
        index = platform.indexes["t"]
        donor = max(platform.ring.nodes(), key=lambda n: index.shards[n].load)
        index.shards[donor].clear()
        with pytest.raises(InvariantViolation, match="ownership.placement"):
            InvariantChecker(platform=platform).check_ownership()


# -- branch conservation -----------------------------------------------------------


class TestConservation:
    def test_engine_balances_after_queries(self, platform, clustered_data):
        engine = platform.lifecycle()
        checker = InvariantChecker(platform=platform)
        checker.track_engine(engine)
        platform.query("t", clustered_data[0], 25.0, engine=engine)
        checker.check_conservation()
        assert checker.checks["conservation"] == 1
        c = engine.counters
        assert c.branches_opened > 0
        assert c.branches_opened == c.branches_settled + c.branches_discarded

    def test_imbalance_detected(self, platform, clustered_data):
        engine = platform.lifecycle()
        platform.query("t", clustered_data[1], 20.0, engine=engine)
        engine.counters.branches_opened += 1  # simulate a leaked branch
        with pytest.raises(InvariantViolation, match="conservation"):
            InvariantChecker(platform=platform).check_conservation(engine)


# -- query partition exactness ------------------------------------------------------


class TestPartitionChecker:
    @pytest.fixture
    def index(self, platform):
        return platform.indexes["t"]

    def test_live_queries_tile_exactly(self, platform, clustered_data):
        checker = PartitionChecker(platform.indexes["t"])
        for i in range(4):
            platform.query("t", clustered_data[i], 22.0, checker=checker)
        assert checker.checks.get("split", 0) > 0
        assert checker.checks.get("refine", 0) > 0
        assert checker.ok

    def test_split_matches_query_split(self, index):
        checker = PartitionChecker(index)
        q = index.make_query(index.dataset[0], 30.0)
        subs = query_split(q, q.prefix_len + 1, index.bounds, index.m)
        if len(subs) == 2:
            checker.on_split(q, subs)
            assert checker.checks["split"] == 1

    def test_wrong_arity_detected(self, index):
        checker = PartitionChecker(index)
        q = index.make_query(index.dataset[0], 30.0)
        with pytest.raises(InvariantViolation, match="split.arity"):
            checker.on_split(q, [q])

    def test_gap_in_refinement_detected(self, index):
        checker = PartitionChecker(index)
        q = index.make_query(index.dataset[0], 30.0)
        key_lo = q.prefix_key
        key_hi = key_lo + (1 << (index.m - q.prefix_len)) - 1
        # local coverage stops one key short of the claim, no siblings
        with pytest.raises(InvariantViolation, match="refine.gap"):
            checker.on_refine(q, key_hi, key_lo, key_hi - 1, [])

    def test_full_local_coverage_accepted(self, index):
        checker = PartitionChecker(index)
        q = index.make_query(index.dataset[0], 30.0)
        key_lo = q.prefix_key
        key_hi = key_lo + (1 << (index.m - q.prefix_len)) - 1
        checker.on_refine(q, key_hi, key_lo, key_hi, [])
        assert checker.checks["refine"] == 1


# -- span/stats reconciliation --------------------------------------------------------


class TestSpanReconciliation:
    @staticmethod
    def _span(kind, **attrs):
        return Span(sid=0, qid=1, kind=kind, attrs=attrs)

    def test_balanced_stream_reconciles(self):
        spans = [
            self._span("send", charged=True, attempt=1),
            self._span("send", charged=True, attempt=2),
            self._span("send", charged=False, attempt=1),  # result reply
            self._span("result"),
            self._span("drop"),
            self._span("solve"),
        ]
        qs = QueryStats(qid=1, query_messages=2, result_messages=1,
                        dropped_messages=1, retransmissions=1)
        assert reconcile_with_stats(spans, qs) == []

    def test_each_counter_mismatch_reported(self):
        qs = QueryStats(qid=1, query_messages=3, result_messages=2,
                        dropped_messages=1, retransmissions=1)
        problems = reconcile_with_stats([], qs)
        assert len(problems) == 4
        assert any("query_messages" in p for p in problems)

    def test_traced_run_reconciles_end_to_end(self, clustered_data):
        from repro.core.platform import IndexPlatform
        from repro.obs import Observability
        from repro.sim.stats import StatsCollector

        ring = ChordRing.build(16, m=20, seed=2,
                               latency=ConstantLatency(16, delay=0.01))
        obs = Observability(metrics=False, tracing=True)
        platform = IndexPlatform(ring, obs=obs)
        platform.create_index(
            "t", clustered_data, EuclideanMetric(box=(0, 100), dim=6),
            k=3, sample_size=200, seed=0,
        )
        engine = platform.lifecycle()
        stats = StatsCollector()
        platform.query("t", clustered_data[3], 25.0, engine=engine, stats=stats)
        checker = InvariantChecker(platform=platform)
        checker.check_spans(stats)
        assert checker.checks["spans"] >= 1


# -- periodic attachment ---------------------------------------------------------------


class TestPeriodicChecking:
    def test_tick_rearms_only_while_events_pending(self, small_ring):
        sim = Simulator()
        checker = InvariantChecker(ring=small_ring)
        fired = []
        sim.schedule_in(0.3, fired.append, "a")
        sim.schedule_in(1.2, fired.append, "b")
        checker.attach(sim, interval=0.5)
        sim.run()  # must terminate: the tick stops re-arming when queue drains
        assert fired == ["a", "b"]
        assert checker.checks["ring"] >= 2

    def test_attached_checker_raises_mid_run(self):
        ring = ChordRing.build(8, m=16, seed=4)
        sim = Simulator()
        checker = InvariantChecker(ring=ring)
        sim.schedule_in(0.2, lambda: setattr(ring.nodes()[0], "predecessor", None))
        sim.schedule_in(2.0, lambda: None)
        checker.attach(sim, interval=0.5)
        with pytest.raises(InvariantViolation, match="ring.predecessor"):
            sim.run()
