"""WAL + snapshot persistence: recovery, torn tails, double-apply, digests.

Unit-level coverage of :class:`repro.core.storage.WriteAheadLog` and
:class:`repro.core.storage.PersistentShard` — the disk format under the
live backend.  The live SIGKILL scenario is ``tests/test_net_recovery.py``;
here the crash states are synthesised directly on the files.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.storage import PersistentShard, Shard, WriteAheadLog


def batch(rng, n, k=2):
    keys = rng.integers(0, 2**32, size=n, dtype=np.uint64)
    points = rng.uniform(0, 1000, size=(n, k))
    ids = rng.integers(0, 2**31, size=n, dtype=np.int64)
    return keys, points, ids


def test_wal_append_replay_round_trip(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.jsonl")
    wal.append({"seq": 1, "x": [1, 2]})
    wal.append({"seq": 2, "x": [3]})
    wal.close()
    assert WriteAheadLog(tmp_path / "wal.jsonl").replay() == [
        {"seq": 1, "x": [1, 2]}, {"seq": 2, "x": [3]},
    ]


def test_wal_tolerates_torn_final_line(tmp_path):
    path = tmp_path / "wal.jsonl"
    wal = WriteAheadLog(path)
    wal.append({"seq": 1})
    wal.close()
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"seq": 2, "x": [1,')  # SIGKILL mid-append
    assert WriteAheadLog(path).replay() == [{"seq": 1}]


def test_wal_rejects_mid_log_corruption(tmp_path):
    path = tmp_path / "wal.jsonl"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{"seq": 1}\n')
        fh.write("GARBAGE\n")
        fh.write('{"seq": 2}\n')  # valid data AFTER damage: not a torn tail
    with pytest.raises(ValueError, match="damaged"):
        WriteAheadLog(path).replay()


def test_persistent_shard_recovers_bit_identically(tmp_path):
    rng = np.random.default_rng(0)
    shard = PersistentShard(tmp_path, k=2)
    for _ in range(3):
        shard.add(*batch(rng, 16))
    digest = shard.digest()
    raw = (shard.shard.keys.tobytes(), shard.shard.points.tobytes(),
           shard.shard.object_ids.tobytes())
    shard.close()

    recovered = PersistentShard(tmp_path, k=2)
    assert recovered.digest() == digest
    assert recovered.shard.keys.tobytes() == raw[0]
    assert recovered.shard.points.tobytes() == raw[1]
    assert recovered.shard.object_ids.tobytes() == raw[2]


def test_snapshot_compacts_and_recovery_does_not_double_apply(tmp_path):
    rng = np.random.default_rng(1)
    shard = PersistentShard(tmp_path, k=2)
    shard.add(*batch(rng, 10))
    shard.snapshot()
    assert shard.wal_records == 0
    shard.add(*batch(rng, 5))
    digest = shard.digest()
    shard.close()

    recovered = PersistentShard(tmp_path, k=2)
    assert len(recovered.shard) == 15
    assert recovered.digest() == digest


def test_crash_between_snapshot_and_truncate_is_safe(tmp_path):
    # the dangerous window: snapshot.json written, wal.jsonl NOT yet
    # truncated — every WAL record's seq <= snapshot seq must be skipped
    rng = np.random.default_rng(2)
    shard = PersistentShard(tmp_path, k=2)
    shard.add(*batch(rng, 8))
    shard.add(*batch(rng, 8))
    digest = shard.digest()
    wal_bytes = (tmp_path / "wal.jsonl").read_bytes()
    shard.snapshot()
    shard.close()
    # resurrect the pre-truncation WAL next to the fresh snapshot
    (tmp_path / "wal.jsonl").write_bytes(wal_bytes)

    recovered = PersistentShard(tmp_path, k=2)
    assert len(recovered.shard) == 16  # not 32
    assert recovered.digest() == digest


def test_recovery_with_torn_wal_tail_keeps_acknowledged_batches(tmp_path):
    rng = np.random.default_rng(3)
    shard = PersistentShard(tmp_path, k=2)
    shard.add(*batch(rng, 6))
    shard.add(*batch(rng, 6))
    shard.close()
    with open(tmp_path / "wal.jsonl", "ab") as fh:
        fh.write(b'{"seq": 3, "keys": {"__nd__":')  # torn third batch

    recovered = PersistentShard(tmp_path, k=2)
    assert len(recovered.shard) == 12
    # the next accepted batch must not reuse the torn record's file position
    recovered.add(*batch(rng, 2))
    recovered.close()
    again = PersistentShard(tmp_path, k=2)
    assert len(again.shard) == 14


def test_meta_round_trip_and_merge(tmp_path):
    shard = PersistentShard(tmp_path, k=2)
    shard.set_meta(successors=[{"id": 1, "addr": "127.0.0.1:9"}])
    shard.set_meta(predecessor=None, node_id=42)
    shard.close()
    recovered = PersistentShard(tmp_path, k=2)
    assert recovered.meta["successors"] == [{"id": 1, "addr": "127.0.0.1:9"}]
    assert recovered.meta["node_id"] == 42
    assert recovered.meta["predecessor"] is None


def test_k_mismatch_rejected(tmp_path):
    shard = PersistentShard(tmp_path, k=2)
    shard.add(np.array([1], dtype=np.uint64), np.zeros((1, 2)), np.array([7]))
    shard.snapshot()
    shard.close()
    with pytest.raises(ValueError, match="k="):
        PersistentShard(tmp_path, k=3)


def test_wal_records_are_plain_json_lines(tmp_path):
    # operational property: the WAL is inspectable with standard tools
    rng = np.random.default_rng(4)
    shard = PersistentShard(tmp_path, k=2)
    shard.add(*batch(rng, 3))
    shard.close()
    lines = (tmp_path / "wal.jsonl").read_text().splitlines()
    assert len(lines) == 1
    rec = json.loads(lines[0])
    assert rec["seq"] == 1
    assert set(rec) == {"seq", "keys", "points", "ids"}


def test_persistent_shard_matches_plain_shard_semantics(tmp_path):
    rng = np.random.default_rng(5)
    keys, points, ids = batch(rng, 32)
    plain = Shard(2)
    plain.add(keys, points, ids)
    durable = PersistentShard(tmp_path, k=2)
    durable.add(keys, points, ids)
    lows, highs = np.array([100.0, 100.0]), np.array([800.0, 800.0])
    a = plain.object_ids[plain.range_search(lows, highs)]
    b = durable.shard.object_ids[durable.shard.range_search(lows, highs)]
    assert np.array_equal(a, b)
    durable.close()
