"""Crash recovery on the live backend: SIGKILL, WAL restore, re-convergence.

Three escalating scenarios against :mod:`repro.net`:

* a fast unit check that :func:`repro.check.invariants.check_live_cluster`
  actually detects broken rings and lost entries;
* an in-process :class:`LocalCluster` kill/restart cycle asserting digest
  equality, ring invariants and query-answer stability;
* a real OS-process cluster (``repro node`` children) where the victim is
  SIGKILLed — no flush, no atexit — restarted on the same data directory,
  and must report the identical shard digest over RPC.

The live scenarios are ``slow`` (real sockets, real child processes) and
carry timeouts so a wedged event loop fails instead of hanging CI.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.check.invariants import InvariantViolation, check_live_cluster
from repro.core.index_space import IndexSpaceBounds
from repro.core.lph import lp_hash_batch
from repro.net.cluster import (
    ClusterClient,
    LocalCluster,
    kill_node_process,
    run_cluster_demo,
    spawn_node_process,
)
from repro.net.transport import RpcError
from tests.net_helpers import ephemeral_port

M = 32
K = 2


def workload(n, seed=0, n_rects=6):
    bounds = IndexSpaceBounds.uniform(K, 0.0, 1000.0)
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 1000.0, size=(n, K))
    ids = np.arange(n, dtype=np.int64)
    keys = lp_hash_batch(points, bounds, M)
    rects = []
    for _ in range(n_rects):
        center = rng.uniform(150.0, 850.0, size=K)
        half = rng.uniform(40.0, 150.0, size=K)
        rects.append((center - half, center + half))
    return keys, points, ids, rects


async def _statuses(client, addrs):
    return [await client.status(a) for a in addrs]


async def _wait_up(client, addr, timeout=30.0):
    """Poll ``status`` until the node answers (child processes boot slowly)."""
    deadline = client.transport.now + timeout
    while client.transport.now < deadline:
        try:
            return await client.status(addr)
        except RpcError:
            await asyncio.sleep(0.2)
    raise TimeoutError(f"node at {addr} did not come up within {timeout}s")


# -- the checker itself must catch real damage ----------------------------------


def _fake_statuses(ids, entries_each=0):
    ordered = sorted(ids)
    out = []
    for pos, nid in enumerate(ordered):
        succ = ordered[(pos + 1) % len(ordered)]
        pred = ordered[(pos - 1) % len(ordered)]
        out.append({
            "id": nid,
            "addr": f"a{nid}",
            "name": f"n{nid}",
            "successors": [{"id": succ, "addr": f"a{succ}", "name": f"n{succ}"}],
            "predecessor": {"id": pred, "addr": f"a{pred}", "name": f"n{pred}"},
            "entries": entries_each,
        })
    return out


def test_check_live_cluster_accepts_consistent_ring():
    rep = check_live_cluster(_fake_statuses([10, 900, 2**20], entries_each=4),
                             M, expected_entries=12)
    assert rep.ok
    assert rep.checks["ring"] == 1
    assert rep.checks["ownership"] == 1


def test_check_live_cluster_detects_broken_successor():
    statuses = _fake_statuses([10, 900, 2**20])
    statuses[0]["successors"][0]["id"] = 10  # points back at itself
    with pytest.raises(InvariantViolation, match="ring.successor"):
        check_live_cluster(statuses, M)
    rep = check_live_cluster(statuses, M, strict=False)
    assert not rep.ok and rep.violations[0].name == "ring.successor"


def test_check_live_cluster_detects_dangling_predecessor():
    statuses = _fake_statuses([10, 900, 2**20])
    statuses[1]["predecessor"] = None
    rep = check_live_cluster(statuses, M, strict=False)
    assert not rep.ok and rep.violations[0].name == "ring.predecessor"


def test_check_live_cluster_detects_lost_entries():
    statuses = _fake_statuses([10, 900], entries_each=5)
    rep = check_live_cluster(statuses, M, strict=False, expected_entries=11)
    assert not rep.ok and rep.violations[0].name == "ownership.conservation"


def test_check_live_cluster_single_node_ring():
    assert check_live_cluster(_fake_statuses([42]), M).ok


# -- in-process kill/restart cycle ----------------------------------------------


@pytest.mark.slow
@pytest.mark.timeout(120)
def test_local_cluster_kill_restart_recovers_bit_identically(tmp_path):
    asyncio.run(_local_cluster_scenario(tmp_path))


async def _local_cluster_scenario(tmp_path):
    keys, points, ids, rects = workload(160)
    cluster = LocalCluster(5, data_root=tmp_path, m=M, k=K)
    client = ClusterClient()
    try:
        addrs = await cluster.start()
        await client.start()
        assert await client.wait_converged(addrs)
        accepted = await client.insert(addrs[0], keys, points, ids)
        assert accepted == len(ids)

        rep = check_live_cluster(await _statuses(client, addrs), M,
                                 expected_entries=len(ids))
        assert rep.ok and rep.checks["ring"] and rep.checks["ownership"]

        before = [np.sort(await client.query(addrs[1], lo, hi))
                  for lo, hi in rects]

        digest_before = cluster.nodes[2].shard.digest()
        await cluster.stop_node(2)
        survivors = [a for i, a in enumerate(addrs) if i != 2]
        assert await client.wait_converged(survivors)
        # the survivors alone must re-form a consistent (smaller) ring
        assert check_live_cluster(await _statuses(client, survivors), M).ok

        await cluster.restart_node(2, bootstrap=survivors[0])
        assert cluster.nodes[2].shard.digest() == digest_before
        assert await client.wait_converged(cluster.addrs)
        rep = check_live_cluster(await _statuses(client, cluster.addrs), M,
                                 expected_entries=len(ids))
        assert rep.ok

        # answers routed through the recovered node are unchanged
        for (lo, hi), want in zip(rects, before):
            got = np.sort(await client.query(cluster.addrs[2], lo, hi))
            assert np.array_equal(got, want)
    finally:
        await client.close()
        await cluster.close()


# -- OS-process SIGKILL (the real crash) ----------------------------------------


@pytest.mark.slow
@pytest.mark.timeout(300)
def test_sigkill_child_process_recovers_from_wal(tmp_path):
    asyncio.run(_subprocess_scenario(tmp_path))


async def _subprocess_scenario(tmp_path):
    keys, points, ids, rects = workload(96, seed=1, n_rects=3)
    ports = [ephemeral_port() for _ in range(3)]
    addrs = [f"127.0.0.1:{p}" for p in ports]
    extra = ("--stabilize-interval", "0.1")
    procs = {}
    client = ClusterClient()
    try:
        await client.start()
        procs[0] = spawn_node_process(
            "node-0", tmp_path / "node-0", ports[0], m=M, k=K, extra_args=extra)
        await _wait_up(client, addrs[0])
        for i in (1, 2):
            procs[i] = spawn_node_process(
                f"node-{i}", tmp_path / f"node-{i}", ports[i],
                bootstrap=addrs[0], m=M, k=K, extra_args=extra)
            await _wait_up(client, addrs[i])
        assert await client.wait_converged(addrs, timeout=60.0)

        accepted = await client.insert(addrs[0], keys, points, ids)
        assert accepted == len(ids)
        baseline = [np.sort(await client.query(addrs[2], lo, hi))
                    for lo, hi in rects]

        digest_before = (await client.status(addrs[1]))["digest"]
        kill_node_process(procs.pop(1))  # SIGKILL: no flush, no atexit

        survivors = [addrs[0], addrs[2]]
        assert await client.wait_converged(survivors, timeout=60.0)
        assert check_live_cluster(await _statuses(client, survivors), M).ok

        procs[1] = spawn_node_process(
            "node-1", tmp_path / "node-1", ports[1],
            bootstrap=addrs[0], m=M, k=K, extra_args=extra)
        recovered = await _wait_up(client, addrs[1])
        assert recovered["digest"] == digest_before  # bit-identical shard
        assert await client.wait_converged(addrs, timeout=60.0)
        rep = check_live_cluster(await _statuses(client, addrs), M,
                                 expected_entries=len(ids))
        assert rep.ok

        for (lo, hi), want in zip(rects, baseline):
            got = np.sort(await client.query(addrs[1], lo, hi))
            assert np.array_equal(got, want)
    finally:
        await client.close()
        for proc in procs.values():
            proc.kill()
            proc.wait(timeout=10)


# -- the issue's acceptance demo, at the specified scale ------------------------


@pytest.mark.slow
@pytest.mark.timeout(300)
def test_eight_node_demo_end_to_end(tmp_path):
    report = asyncio.run(run_cluster_demo(
        n_nodes=8, n_entries=256, n_queries=8, m=M, k=K, seed=0,
        data_root=tmp_path))
    assert report.ok, report
