"""Wire-codec properties: round trips, framing, chunk splits, versioning.

Hypothesis drives two invariants end to end:

* **value round trip** — any encodable value tree (scalars, bytes, arrays,
  registered messages, the routing value types) survives
  encode → frame → decode bit-exactly;
* **chunk-boundary independence** — a frame stream split at *arbitrary*
  byte boundaries decodes to the same values in the same order (the
  property that makes the TCP receive path correct no matter how the
  kernel slices the stream).

Plus directed tests for the failure modes: version mismatch, schema
drift, reserved keys, corrupt length prefixes, and truncated arrays.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.query import RangeQuery, Rect
from repro.net.codec import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    CodecError,
    FrameDecoder,
    Framer,
    available_formats,
    decode_value,
    encode_value,
)
from repro.sim.messages import QueryMessage, ResultEntry, ResultMessage, message_schema
from repro.util.arrays import decode_array, encode_array

# -- strategies -----------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False),  # NaN != NaN breaks equality, not the codec
    st.text(max_size=40),
    st.binary(max_size=64),
)

small_arrays = st.one_of(
    st.lists(st.floats(allow_nan=False, width=64), max_size=8).map(
        lambda v: np.asarray(v, dtype=np.float64)),
    st.lists(st.integers(0, 2**63 - 1), max_size=8).map(
        lambda v: np.asarray(v, dtype=np.uint64)),
    st.lists(st.integers(-(2**31), 2**31 - 1), max_size=8).map(
        lambda v: np.asarray(v, dtype=np.int64)),
)

result_entries = st.builds(
    ResultEntry,
    object_id=st.integers(0, 2**31),
    distance=st.floats(0, 1e9, allow_nan=False),
)


def _rects() -> st.SearchStrategy[Rect]:
    return st.integers(1, 4).flatmap(lambda k: st.tuples(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=k, max_size=k),
        st.lists(st.floats(0, 100, allow_nan=False), min_size=k, max_size=k),
    ).map(lambda lh: Rect(
        np.minimum(lh[0], lh[1]), np.maximum(lh[0], lh[1]) + 1.0)))


query_messages = st.builds(
    QueryMessage,
    qid=st.integers(0, 2**31),
    subqueries=st.lists(_rects().map(lambda r: RangeQuery(
        rect=r, prefix_key=0, prefix_len=0, qid=0, source=None,
        index_name="t", payload=None, radius=None)), max_size=3),
    kind=st.sampled_from(["routing", "refine"]),
    hops=st.integers(0, 30),
    k=st.integers(0, 50),
)

result_messages = st.builds(
    ResultMessage,
    qid=st.integers(0, 2**31),
    entries=st.lists(result_entries, max_size=6),
    from_node=st.integers(0, 2**31),
)

trees = st.recursive(
    st.one_of(scalars, small_arrays, result_entries, _rects(),
              query_messages, result_messages),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(min_size=1, max_size=10).filter(lambda s: not s.startswith("__")),
            children, max_size=4),
    ),
    max_leaves=12,
)


def assert_same(a, b) -> None:
    """Structural equality across the types the codec carries."""
    if isinstance(a, np.ndarray):
        assert isinstance(b, np.ndarray)
        assert a.dtype == b.dtype and a.shape == b.shape
        assert a.tobytes() == b.tobytes()  # bit-exact, not approx
    elif isinstance(a, Rect):
        assert isinstance(b, Rect)
        assert_same(a.lows, b.lows)
        assert_same(a.highs, b.highs)
    elif isinstance(a, RangeQuery):
        assert isinstance(b, RangeQuery)
        assert_same(a.rect, b.rect)
        for f in ("prefix_key", "prefix_len", "qid", "index_name", "radius"):
            assert getattr(a, f) == getattr(b, f)
        assert_same(a.source, b.source)
        assert_same(a.payload, b.payload)
    elif isinstance(a, (QueryMessage, ResultMessage)):
        assert type(a) is type(b)
        for f in message_schema()[type(a).__name__]:
            assert_same(getattr(a, f), getattr(b, f))
    elif isinstance(a, ResultEntry):
        assert isinstance(b, ResultEntry)
        assert a.object_id == b.object_id and a.distance == b.distance
    elif isinstance(a, (list, tuple)):
        assert isinstance(b, list)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert_same(x, y)
    elif isinstance(a, dict):
        assert isinstance(b, dict)
        assert set(a) == set(b)
        for k in a:
            assert_same(a[k], b[k])
    else:
        assert a == b and type(a) is type(b)


# -- properties -----------------------------------------------------------------


@given(trees)
def test_value_round_trip(value):
    assert_same(value, decode_value(encode_value(value)))


@pytest.mark.parametrize("fmt", available_formats())
@given(values=st.lists(trees, min_size=1, max_size=5), data=st.data())
def test_frame_stream_survives_arbitrary_chunking(fmt, values, data):
    framer = Framer(fmt)
    stream = b"".join(framer.encode(v) for v in values)
    cuts = sorted(data.draw(st.lists(
        st.integers(0, len(stream)), max_size=8)))
    decoder = FrameDecoder()
    out = []
    prev = 0
    for cut in cuts + [len(stream)]:
        out.extend(decoder.feed(stream[prev:cut]))
        prev = cut
    assert decoder.pending_bytes == 0
    assert len(out) == len(values)
    for want, got in zip(values, out):
        assert_same(want, got)


@given(query_messages | result_messages)
def test_every_registered_message_type_round_trips(msg):
    # the schema registry is the source of truth: every registered type the
    # codec claims to carry must round-trip through a framed stream
    assert type(msg).__name__ in message_schema()
    framer = Framer("json")
    decoder = FrameDecoder()
    (got,) = decoder.feed(framer.encode(msg))
    assert_same(msg, got)


def test_byte_by_byte_feed():
    framer = Framer("json")
    msg = QueryMessage(qid=7, subqueries=3, kind="range", hops=2, k=None)
    stream = framer.encode(msg) + framer.encode({"tail": [1, 2, 3]})
    decoder = FrameDecoder()
    out = []
    for i in range(len(stream)):
        out.extend(decoder.feed(stream[i:i + 1]))
    assert len(out) == 2
    assert_same(msg, out[0])
    assert_same({"tail": [1, 2, 3]}, out[1])


# -- directed failure modes -----------------------------------------------------


def test_version_mismatch_rejected():
    encoded = encode_value(QueryMessage(qid=1, subqueries=1, kind="range",
                                        hops=0, k=None))
    encoded["__v__"] = WIRE_VERSION + 1
    with pytest.raises(CodecError, match="wire version"):
        decode_value(encoded)


def test_schema_field_drift_rejected():
    encoded = encode_value(ResultMessage(qid=1, entries=[], from_node=2))
    encoded["surprise"] = 1
    with pytest.raises(CodecError, match="field set disagrees"):
        decode_value(encoded)
    del encoded["surprise"], encoded["qid"]
    with pytest.raises(CodecError, match="field set disagrees"):
        decode_value(encoded)


def test_unknown_message_and_object_tags_rejected():
    with pytest.raises(CodecError, match="not a registered message"):
        decode_value({"__msg__": "NopeMessage", "__v__": WIRE_VERSION})
    with pytest.raises(CodecError, match="unknown tagged object"):
        decode_value({"__obj__": "Nope"})


def test_reserved_payload_keys_rejected():
    for key in ("__msg__", "__obj__", "__bytes__", "__nd__", "__npscalar__"):
        with pytest.raises(CodecError, match="collides"):
            encode_value({"data": {key: 1}})


def test_non_string_keys_rejected():
    with pytest.raises(CodecError, match="non-string"):
        encode_value({1: "x"})


def test_unencodable_type_rejected():
    with pytest.raises(CodecError, match="not wire-encodable"):
        encode_value(object())


def test_invalid_frame_length_rejected():
    decoder = FrameDecoder()
    with pytest.raises(CodecError, match="invalid frame length"):
        decoder.feed((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
    decoder = FrameDecoder()
    with pytest.raises(CodecError, match="invalid frame length"):
        decoder.feed((0).to_bytes(4, "big") + b"x")


def test_undecodable_body_rejected():
    decoder = FrameDecoder()
    body = b"{not json"
    frame = (len(body) + 1).to_bytes(4, "big") + b"J" + body
    with pytest.raises(CodecError, match="undecodable JSON"):
        decoder.feed(frame)
    decoder = FrameDecoder()
    frame = (2).to_bytes(4, "big") + b"\x00x"
    with pytest.raises(CodecError, match="unknown frame format"):
        decoder.feed(frame)


def test_truncated_array_payload_rejected():
    payload = encode_array(np.arange(4, dtype=np.float64))
    payload["shape"] = [8]  # claims more elements than the buffer holds
    with pytest.raises(CodecError, match="bytes"):
        decode_value(payload)


def test_array_disk_wire_encoding_is_shared():
    # the WAL and the wire use the same raw-buffer encoding, so a shard
    # batch can move between them without re-encoding
    arr = np.array([0.1, 0.2, -1.5e300], dtype=np.float64)
    assert decode_array(encode_array(arr)).tobytes() == arr.tobytes()
    assert_same(arr, decode_value(encode_value(arr)))


def test_rangequery_round_trip():
    rq = RangeQuery(
        rect=Rect(np.array([0.0, 1.0]), np.array([2.0, 3.0])),
        prefix_key=0b1010 << 28,
        prefix_len=4,
        qid=77,
        source=None,
        index_name="t",
        payload={"hops": 3},
        radius=1.25,
    )
    got = decode_value(encode_value(rq))
    assert isinstance(got, RangeQuery)
    assert got.prefix_key == rq.prefix_key and got.prefix_len == rq.prefix_len
    assert got.qid == rq.qid and got.index_name == "t"
    assert got.payload == {"hops": 3} and got.radius == 1.25
    assert_same(got.rect, rq.rect)
