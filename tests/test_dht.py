"""Tests for the Chord substrate: id space, hashing, nodes, rings, PNS, lookups."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dht.hashing import hash_to_id, node_id, random_ids, rotation_offset
from repro.dht.idspace import (
    cw_distance,
    in_interval_closed_open,
    in_interval_open,
    in_interval_open_closed,
)
from repro.dht.ring import ChordRing
from repro.sim.network import ConstantLatency, MatrixLatency

M = 16


class TestIdSpace:
    def test_cw_distance(self):
        assert cw_distance(0, 5, M) == 5
        assert cw_distance(5, 0, M) == 2**M - 5
        assert cw_distance(7, 7, M) == 0

    def test_open_closed_basic(self):
        assert in_interval_open_closed(5, 3, 7, M)
        assert in_interval_open_closed(7, 3, 7, M)
        assert not in_interval_open_closed(3, 3, 7, M)
        assert not in_interval_open_closed(8, 3, 7, M)

    def test_open_closed_wrap(self):
        hi = 2**M - 2
        assert in_interval_open_closed(1, hi, 3, M)
        assert in_interval_open_closed(2**M - 1, hi, 3, M)
        assert not in_interval_open_closed(hi, hi, 3, M)

    def test_full_ring_convention(self):
        # (a, a] is the full ring: single node owns everything.
        assert in_interval_open_closed(123, 7, 7, M)

    def test_open_interval(self):
        assert in_interval_open(5, 3, 7, M)
        assert not in_interval_open(7, 3, 7, M)
        assert not in_interval_open(3, 3, 7, M)

    def test_closed_open(self):
        assert in_interval_closed_open(3, 3, 7, M)
        assert not in_interval_closed_open(7, 3, 7, M)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 2**M - 1), st.integers(0, 2**M - 1), st.integers(0, 2**M - 1))
    def test_interval_partition(self, x, a, b):
        """(a,b] and (b,a] partition the ring minus nothing (for a != b)."""
        if a == b:
            return
        assert in_interval_open_closed(x, a, b, M) != in_interval_open_closed(x, b, a, M) or x in (a, b)


class TestHashing:
    def test_in_range(self):
        for name in ("a", "b", "node-1"):
            assert 0 <= node_id(name, 24) < 2**24

    def test_deterministic(self):
        assert node_id("x", 24) == node_id("x", 24)

    def test_rotation_differs_from_node_id(self):
        assert rotation_offset("x", 24) != node_id("x", 24)

    def test_hash_to_id_width(self):
        assert 0 <= hash_to_id(b"data", 8) < 256

    def test_random_ids_distinct(self):
        ids = random_ids(100, 16, seed=0)
        assert len(set(int(i) for i in ids)) == 100

    def test_random_ids_overflow_guard(self):
        with pytest.raises(ValueError):
            random_ids(10, 3, seed=0)


def _line_ring(ids, m=M):
    """Hand-built ring with oracle tables for unit tests."""
    ring = ChordRing(m=m, successor_list_len=4)
    for i, nid in enumerate(ids):
        ring.add_node(nid, name=f"n{i}", host=i, rebuild=False)
    ring.rebuild_tables()
    return ring


class TestRingStructure:
    def test_successor_predecessor_oracle(self):
        ring = _line_ring([10, 100, 1000, 30000])
        assert ring.successor_of(5).id == 10
        assert ring.successor_of(10).id == 10
        assert ring.successor_of(11).id == 100
        assert ring.successor_of(60000).id == 10  # wrap
        assert ring.predecessor_of(10).id == 30000
        assert ring.predecessor_of(101).id == 100

    def test_successor_lists_ordered(self):
        ring = _line_ring([10, 100, 1000, 30000])
        n10 = ring.nodes_by_id[10]
        assert [s.id for s in n10.successors] == [100, 1000, 30000]

    def test_predecessors(self):
        ring = _line_ring([10, 100, 1000])
        assert ring.nodes_by_id[10].predecessor.id == 1000
        assert ring.nodes_by_id[100].predecessor.id == 10

    def test_fingers_point_at_interval_successors(self):
        ring = _line_ring([10, 100, 1000, 30000])
        node = ring.nodes_by_id[10]
        for i, f in enumerate(node.fingers):
            start = (10 + (1 << i)) % 2**M
            assert f.id == ring.successor_of(start).id

    def test_build_hash_ids(self):
        ring = ChordRing.build(50, m=24, seed=0)
        assert len(ring) == 50
        ids = [n.id for n in ring.nodes()]
        assert ids == sorted(ids)

    def test_build_random_ids(self):
        ring = ChordRing.build(20, m=24, seed=0, id_source="random")
        assert len(ring) == 20

    def test_owners_of_keys_matches_oracle(self):
        ring = ChordRing.build(32, m=20, seed=1)
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**20, size=200, dtype=np.uint64)
        pos = ring.owners_of_keys(keys)
        nodes = ring.nodes()
        for key, p in zip(keys, pos):
            assert nodes[p] is ring.successor_of(int(key))

    def test_join_leave(self):
        ring = _line_ring([10, 1000])
        n = ring.add_node(500, name="joiner")
        assert ring.successor_of(200) is n
        ring.remove_node(n)
        assert ring.successor_of(200).id == 1000

    def test_duplicate_id_rejected(self):
        ring = _line_ring([10, 1000])
        with pytest.raises(ValueError):
            ring.add_node(10)

    def test_move_node(self):
        ring = _line_ring([10, 1000, 5000])
        n = ring.nodes_by_id[1000]
        ring.move_node(n, 4000)
        assert n.id == 4000
        assert 1000 not in ring.nodes_by_id
        assert ring.successor_of(999).id == 4000
        assert ring.successor_of(4500).id == 5000


class TestNextHop:
    def test_next_hop_progresses_toward_key(self):
        ring = ChordRing.build(64, m=20, seed=2)
        nodes = ring.nodes()
        key = 12345
        cur = nodes[0]
        seen = 0
        while True:
            nh = cur.next_hop(key)
            if nh is cur:
                break
            assert cw_distance(nh.id, key, 20) < cw_distance(cur.id, key, 20)
            cur = nh
            seen += 1
            assert seen < 64
        # terminal node is the true predecessor
        assert cur is ring.predecessor_of(key)

    def test_next_hop_never_returns_key_owner_id(self):
        ring = _line_ring([10, 100, 1000])
        n = ring.nodes_by_id[10]
        # keying exactly at a node id routes to its predecessor side
        nh = n.next_hop(1000)
        assert nh.id != 1000

    def test_single_node_ring(self):
        ring = _line_ring([42])
        n = ring.nodes_by_id[42]
        assert n.next_hop(7) is n
        assert n.successor is n
        assert n.owns(7)


class TestLookup:
    def test_lookup_reaches_oracle_owner(self):
        ring = ChordRing.build(80, m=24, seed=3)
        nodes = ring.nodes()
        rng = np.random.default_rng(1)
        for _ in range(100):
            key = int(rng.integers(0, 2**24))
            start = nodes[int(rng.integers(0, len(nodes)))]
            path = ring.lookup_path(start, key)
            assert path[-1] is ring.successor_of(key)

    def test_lookup_hop_count_logarithmic(self):
        ring = ChordRing.build(256, m=24, seed=4)
        nodes = ring.nodes()
        rng = np.random.default_rng(2)
        hops = []
        for _ in range(100):
            key = int(rng.integers(0, 2**24))
            start = nodes[int(rng.integers(0, len(nodes)))]
            hops.append(len(ring.lookup_path(start, key)) - 1)
        assert np.mean(hops) < 2 * np.log2(256)

    def test_lookup_from_owner_is_short(self):
        ring = ChordRing.build(32, m=20, seed=5)
        node = ring.nodes()[0]
        path = ring.lookup_path(node, node.id)
        assert path[-1] is node


class TestPNS:
    def _latency(self, n):
        rng = np.random.default_rng(0)
        mat = rng.uniform(0.01, 0.2, size=(n, n))
        mat = 0.5 * (mat + mat.T)
        np.fill_diagonal(mat, 0.0)
        return MatrixLatency(mat)

    def test_pns_requires_latency(self):
        with pytest.raises(ValueError):
            ChordRing(m=8, pns=True)

    def test_pns_fingers_are_valid_candidates(self):
        lat = self._latency(64)
        ring = ChordRing.build(64, m=20, seed=6, latency=lat, pns=True)
        for node in ring.nodes():
            for i, f in enumerate(node.fingers):
                start = (node.id + (1 << i)) % 2**20
                end = (node.id + (1 << (i + 1))) % 2**20
                # finger must be in [start, end) when any candidate exists,
                # else equal to successor(start)
                if f.id != ring.successor_of(start).id:
                    assert in_interval_closed_open(f.id, start, end, 20)

    def test_pns_picks_lower_latency_than_plain(self):
        lat = self._latency(128)
        plain = ChordRing.build(128, m=20, seed=7, latency=lat, pns=False)
        pns = ChordRing.build(128, m=20, seed=7, latency=lat, pns=True)

        def mean_finger_latency(ring):
            vals = []
            for node in ring.nodes():
                for f in node.fingers:
                    if f is not node:
                        vals.append(lat.latency(node.host, f.host))
            return np.mean(vals)

        assert mean_finger_latency(pns) <= mean_finger_latency(plain)

    def test_pns_lookup_still_correct(self):
        lat = self._latency(64)
        ring = ChordRing.build(64, m=20, seed=8, latency=lat, pns=True)
        rng = np.random.default_rng(3)
        nodes = ring.nodes()
        for _ in range(60):
            key = int(rng.integers(0, 2**20))
            start = nodes[int(rng.integers(0, len(nodes)))]
            assert ring.lookup_path(start, key)[-1] is ring.successor_of(key)


class TestRoutingTable:
    def test_contains_self_fingers_successors(self):
        ring = ChordRing.build(32, m=20, seed=9, latency=ConstantLatency(32), pns=False)
        node = ring.nodes()[0]
        table = list(node.routing_table())
        assert table[0] is node
        ids = {t.id for t in table}
        for f in node.fingers:
            assert f.id in ids
        for s in node.successors:
            assert s.id in ids

    def test_no_duplicates(self):
        ring = ChordRing.build(32, m=20, seed=10)
        node = ring.nodes()[0]
        table = list(node.routing_table())
        assert len(table) == len({t.id for t in table})
