"""SLO declarations, burn-rate math, and the default scale catalogue."""

from __future__ import annotations

import math

import pytest

from repro.core.scale import ScaleConfig, ScaleSimulation
from repro.obs.slo import (
    DEFAULT_SCALE_SLOS,
    SLO,
    SloReport,
    burn_rate,
    evaluate_slo,
    evaluate_slos,
)
from repro.sim.king import king_coordinate_model


class TestBurnRate:
    def test_ratio_of_bad_to_budget(self):
        # 10% bad against a 5% budget burns at 2x
        assert burn_rate(0.90, 0.95) == pytest.approx(2.0)
        assert burn_rate(0.95, 0.95) == pytest.approx(1.0)
        assert burn_rate(1.0, 0.95) == 0.0

    def test_hard_floor_objective(self):
        assert burn_rate(1.0, 1.0) == 0.0
        assert math.isinf(burn_rate(0.999999, 1.0))


class TestSLO:
    def test_validates_op_and_objective(self):
        with pytest.raises(ValueError, match="op"):
            SLO("x", series="s", threshold=1.0, op="<")
        with pytest.raises(ValueError, match="objective"):
            SLO("x", series="s", threshold=1.0, objective=0.0)
        with pytest.raises(ValueError, match="objective"):
            SLO("x", series="s", threshold=1.0, objective=1.5)

    def test_is_good_both_ops_and_nan(self):
        le = SLO("le", series="s", threshold=2.0, op="<=")
        ge = SLO("ge", series="s", threshold=2.0, op=">=")
        assert le.is_good(2.0) and not le.is_good(2.1)
        assert ge.is_good(2.0) and not ge.is_good(1.9)
        assert not le.is_good(math.nan) and not ge.is_good(math.nan)


class TestEvaluate:
    def test_counts_and_worst(self):
        slo = SLO("lat", series="s", threshold=1.0, op="<=", objective=0.5)
        r = evaluate_slo(slo, [0.5, 0.9, 1.5, 2.0])
        assert (r.total, r.good) == (4, 2)
        assert r.worst == 2.0
        assert r.burn == pytest.approx(1.0)
        assert r.passed
        assert r.good_fraction == 0.5

    def test_ge_worst_is_minimum(self):
        slo = SLO("recall", series="s", threshold=0.5, op=">=", objective=0.5)
        assert evaluate_slo(slo, [0.9, 0.2, 0.7]).worst == 0.2

    def test_empty_series_fails(self):
        r = evaluate_slo(SLO("x", series="s", threshold=1.0), [])
        assert not r.passed
        assert math.isinf(r.burn)
        assert r.good_fraction == 1.0  # vacuous, but passed is still False
        assert r.to_dict()["burn_rate"] is None
        assert r.to_dict()["worst"] is None

    def test_hard_floor_single_bad_sample(self):
        slo = SLO("floor", series="s", threshold=1.0)  # objective defaults 1.0
        good = evaluate_slo(slo, [0.1] * 100)
        bad = evaluate_slo(slo, [0.1] * 99 + [1.1])
        assert good.passed and good.burn == 0.0
        assert not bad.passed and math.isinf(bad.burn)

    def test_missing_series_fails_catalogue(self):
        slos = (SLO("a", series="present", threshold=1.0),
                SLO("b", series="absent", threshold=1.0))
        report = evaluate_slos(slos, {"present": [0.5]})
        assert not report.ok
        assert [r.slo.name for r in report.failed()] == ["b"]


class TestReport:
    def _report(self):
        ok = SLO("ok_one", series="s", threshold=1.0, unit="s")
        bad = SLO("bad_one", series="t", threshold=1.0, objective=0.9)
        return evaluate_slos((ok, bad), {"s": [0.5], "t": [2.0, 2.0]})

    def test_format_table(self):
        text = self._report().format()
        assert "ok_one" in text and "bad_one" in text
        assert "PASS" in text and "FAIL" in text
        assert "1/2 SLOs met — BUDGET BURNED" in text

    def test_format_all_pass(self):
        report = evaluate_slos(
            (SLO("a", series="s", threshold=1.0),), {"s": [0.1]})
        assert report.ok
        assert report.format().endswith("1/1 SLOs met")

    def test_to_dict(self):
        d = self._report().to_dict()
        assert d["ok"] is False
        assert len(d["slos"]) == 2
        assert d["slos"][0]["passed"] is True

    def test_empty_report_ok(self):
        assert SloReport().ok


class TestDefaultCatalogue:
    def test_passes_on_small_scale_run(self):
        cfg = ScaleConfig(
            n_nodes=800, n_objects=8_000, n_queries=4_000, chunk=800,
            dim=6, n_landmarks=3, local_solve_sample=256,
        )
        sim = ScaleSimulation(
            cfg, latency=king_coordinate_model(n_hosts=800, seed=1))
        sim.run()
        report = evaluate_slos(DEFAULT_SCALE_SLOS, sim.slo_series())
        assert report.ok, report.format()
        # every SLO in the catalogue found its series (no vacuous passes)
        assert all(r.total > 0 for r in report.results)

    def test_hop_deadline_storm_burns_drop_budget(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        cfg = ScaleConfig(
            n_nodes=800, n_objects=1_600, n_queries=1_600, chunk=800,
            dim=6, n_landmarks=3, local_solve_sample=64, hop_deadline=1,
        )
        sim = ScaleSimulation(cfg)
        sim.run()
        report = evaluate_slos(DEFAULT_SCALE_SLOS, sim.slo_series())
        assert "drop_rate" in [r.slo.name for r in report.failed()]
