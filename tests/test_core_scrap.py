"""Tests for the SCRAP-style SFC baseline: placement, intervals, protocol."""

import numpy as np
import pytest

from repro.core.platform import IndexPlatform
from repro.core.scrap import SfcIndex, SfcRangeProtocol
from repro.dht.ring import ChordRing
from repro.eval.ground_truth import exact_range
from repro.metric.vector import EuclideanMetric
from repro.sim.network import ConstantLatency
from repro.sim.stats import StatsCollector

DIM = 3
METRIC = EuclideanMetric(box=(0, 100), dim=DIM)


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    centers = rng.uniform(0, 100, size=(3, DIM))
    data = np.clip(centers[rng.integers(0, 3, 400)] + rng.normal(0, 6, (400, DIM)), 0, 100)
    ring = ChordRing.build(16, m=32, seed=0, latency=ConstantLatency(16, 0.01))
    platform = IndexPlatform(ring)
    platform.create_index("idx", data, METRIC, k=2, sample_size=150, seed=1)
    return platform, data


def _run_sfc(platform, index, data, qi, radius, top_k=10**6):
    stats = StatsCollector()
    proto = SfcRangeProtocol(platform.sim, index, stats, latency=platform.latency, top_k=top_k)
    base = platform.indexes["idx"]
    platform.sim.reset()
    proto.issue(base.make_query(data[qi], radius, qid=0), platform.ring.nodes()[0])
    platform.sim.run()
    return stats.for_query(0)


class TestSfcIndex:
    @pytest.mark.parametrize("curve", ["morton", "hilbert"])
    def test_entries_conserved(self, setup, curve):
        platform, data = setup
        sfc = SfcIndex(platform.indexes["idx"], curve=curve)
        assert sfc.load_distribution().sum() == 400

    def test_unknown_curve_rejected(self, setup):
        platform, _ = setup
        with pytest.raises(ValueError):
            SfcIndex(platform.indexes["idx"], curve="peano")

    def test_p_capped_by_ring_bits(self, setup):
        platform, _ = setup
        sfc = SfcIndex(platform.indexes["idx"], p=100)
        assert sfc.k * sfc.p <= sfc.m

    def test_entries_at_curve_owners(self, setup):
        platform, _ = setup
        sfc = SfcIndex(platform.indexes["idx"], curve="hilbert")
        for node, shard in sfc.shards.items():
            for key in shard.keys:
                assert platform.ring.successor_of(int(key)) is node

    def test_interval_keys_cover_entries(self, setup):
        platform, data = setup
        base = platform.indexes["idx"]
        sfc = SfcIndex(base, curve="hilbert")
        q = base.make_query(data[0], 25.0)
        intervals = sfc.query_intervals(q.rect)
        # every stored in-rect entry key lies in some interval
        for shard in sfc.shards.values():
            pos = shard.range_search(q.rect.lows, q.rect.highs)
            for key in shard.keys[pos]:
                assert any(a <= int(key) <= b for a, b in intervals)


class TestSfcProtocol:
    @pytest.mark.parametrize("curve", ["morton", "hilbert"])
    @pytest.mark.parametrize("radius", [5.0, 25.0, 80.0])
    def test_matches_exact_range(self, setup, curve, radius):
        platform, data = setup
        sfc = SfcIndex(platform.indexes["idx"], curve=curve)
        st = _run_sfc(platform, sfc, data, 0, radius)
        got = sorted(e.object_id for e in st.entries)
        want = sorted(exact_range(data, METRIC, data[0], radius).tolist())
        assert got == want

    def test_no_duplicates(self, setup):
        platform, data = setup
        sfc = SfcIndex(platform.indexes["idx"], curve="hilbert")
        st = _run_sfc(platform, sfc, data, 3, 60.0)
        ids = [e.object_id for e in st.entries]
        assert len(ids) == len(set(ids))

    def test_cost_accounting(self, setup):
        platform, data = setup
        sfc = SfcIndex(platform.indexes["idx"], curve="hilbert")
        st = _run_sfc(platform, sfc, data, 0, 25.0)
        assert st.query_messages >= 1
        assert st.result_messages >= 1
        assert st.max_latency is not None

    def test_hilbert_touches_fewer_or_equal_intervals(self, setup):
        platform, data = setup
        base = platform.indexes["idx"]
        q = base.make_query(data[0], 20.0)
        n_m = len(SfcIndex(base, curve="morton", p=6).query_intervals(q.rect))
        n_h = len(SfcIndex(base, curve="hilbert", p=6).query_intervals(q.rect))
        assert n_h <= n_m
