"""Tests for the time-series generator and the query tracer."""

import numpy as np

from repro.core.platform import IndexPlatform
from repro.core.trace import TracingProtocol
from repro.datasets.timeseries import TimeSeriesFamilyConfig, generate_timeseries
from repro.dht.ring import ChordRing
from repro.metric.vector import ManhattanMetric
from repro.sim.stats import StatsCollector


class TestTimeSeries:
    CFG = TimeSeriesFamilyConfig(n_series=200, n_templates=4, length=32, noise=0.1)

    def test_shapes(self):
        series, fam = generate_timeseries(self.CFG, 0)
        assert series.shape == (200, 32)
        assert fam.shape == (200,)
        assert fam.max() < 4

    def test_deterministic(self):
        a, _ = generate_timeseries(self.CFG, 5)
        b, _ = generate_timeseries(self.CFG, 5)
        np.testing.assert_array_equal(a, b)

    def test_clipped_to_domain(self):
        series, _ = generate_timeseries(self.CFG, 0)
        assert series.min() >= self.CFG.low
        assert series.max() <= self.CFG.high

    def test_family_structure(self):
        """Same-family series are closer under L1 than cross-family."""
        series, fam = generate_timeseries(self.CFG, 0)
        m = ManhattanMetric()
        same, cross = [], []
        for i in range(40):
            for j in range(i + 1, 40):
                d = m.distance(series[i], series[j])
                (same if fam[i] == fam[j] else cross).append(d)
        assert np.mean(same) < np.mean(cross)


class TestTracer:
    def _traced_query(self, radius=20.0):
        rng = np.random.default_rng(0)
        series, _ = generate_timeseries(
            TimeSeriesFamilyConfig(n_series=300, n_templates=4, length=16), 0
        )
        metric = ManhattanMetric(box=(-50, 50), dim=16)
        ring = ChordRing.build(16, m=20, seed=0)
        platform = IndexPlatform(ring)
        platform.create_index("s", series, metric, k=3, sample_size=150, seed=1)
        stats = StatsCollector()
        proto = TracingProtocol(platform.sim, platform.indexes["s"], stats)
        q = platform.indexes["s"].make_query(series[0], radius, qid=0)
        proto.issue(q, ring.nodes()[0])
        platform.sim.run()
        return proto.traces[0], stats, platform

    def test_trace_structure(self):
        trace, stats, _ = self._traced_query()
        assert trace.routes()  # at least the initial routing step
        assert trace.solves()  # something got answered
        # the first event is the issuing node's QueryRouting at hop 0
        assert trace.events[0].kind == "route"
        assert trace.events[0].hops == 0

    def test_prefix_never_shrinks_along_hops(self):
        """Later hops refine prefixes; hops and time are non-decreasing in
        trace order (event order == execution order)."""
        trace, _, _ = self._traced_query()
        times = [e.time for e in trace.events]
        assert all(t2 >= t1 for t1, t2 in zip(times, times[1:]))

    def test_solve_key_ranges_disjoint(self):
        """Every local solve claims a key interval; intervals never overlap
        (this is what prevents duplicate results)."""
        trace, _, _ = self._traced_query(radius=60.0)
        ranges = sorted((e.key_lo, e.key_hi) for e in trace.solves())
        for (a1, b1), (a2, b2) in zip(ranges, ranges[1:]):
            assert b1 < a2, f"overlapping solve ranges {(a1, b1)} and {(a2, b2)}"

    def test_solved_nodes_match_stats(self):
        trace, stats, _ = self._traced_query()
        st = stats.for_query(0)
        assert {e.node_id for e in trace.solves()} == st.index_nodes

    def test_render(self):
        trace, _, _ = self._traced_query()
        text = trace.render(m=20, limit=5)
        assert "query 0" in text
        assert "route" in text

    def test_nodes_visited_superset_of_solvers(self):
        trace, _, _ = self._traced_query()
        assert {e.node_id for e in trace.solves()} <= trace.nodes_visited()
