"""Tests for the Pastry substrate: digits, tables, leaf sets, routing."""

import numpy as np
import pytest

from repro.dht.pastry import PastryNode, PastryRing, cyclic_distance
from repro.sim.network import MatrixLatency

M, B = 16, 4


def _latency(n, seed=0):
    rng = np.random.default_rng(seed)
    mat = rng.uniform(0.01, 0.2, size=(n, n))
    mat = 0.5 * (mat + mat.T)
    np.fill_diagonal(mat, 0.0)
    return MatrixLatency(mat)


class TestBasics:
    def test_cyclic_distance(self):
        assert cyclic_distance(0, 1, M) == 1
        assert cyclic_distance(1, 0, M) == 1
        assert cyclic_distance(0, 2**M - 1, M) == 1
        assert cyclic_distance(0, 2 ** (M - 1), M) == 2 ** (M - 1)

    def test_digit_extraction(self):
        node = PastryNode(0xA3F1, M, B)
        assert node.digit(0) == 0xA
        assert node.digit(1) == 0x3
        assert node.digit(2) == 0xF
        assert node.digit(3) == 0x1

    def test_m_must_be_digit_multiple(self):
        with pytest.raises(ValueError):
            PastryRing(m=10, b=4)


class TestConstruction:
    def test_build(self):
        ring = PastryRing.build(40, m=M, b=B, seed=0)
        assert len(ring) == 40

    def test_leaf_sets_are_ring_neighbours(self):
        ring = PastryRing.build(30, m=M, b=B, seed=0, leaf_set_size=8)
        nodes = ring.nodes()
        for pos, node in enumerate(nodes):
            expect = {nodes[(pos + off) % 30].id for off in (1, 2, 3, 4, -4, -3, -2, -1)}
            assert {x.id for x in node.leaf_set} == expect

    def test_routing_table_invariants(self):
        """Entry at [row][col] shares exactly `row` digits and has digit
        `col` at position row."""
        ring = PastryRing.build(50, m=M, b=B, seed=1)
        for node in ring.nodes():
            for row, cells in enumerate(node.routing_table):
                for col, entry in enumerate(cells):
                    if entry is None:
                        continue
                    for r in range(row):
                        assert entry.digit(r) == node.digit(r)
                    assert entry.digit(row) == col
                    assert col != node.digit(row)

    def test_proximity_tables_pick_closer(self):
        lat = _latency(60)
        prox = PastryRing.build(60, m=M, b=B, seed=2, latency=lat)
        plain = PastryRing.build(60, m=M, b=B, seed=2)

        def mean_entry_latency(ring):
            vals = []
            for node in ring.nodes():
                for row in node.routing_table:
                    for e in row:
                        if e is not None:
                            vals.append(lat.latency(node.host, e.host))
            return np.mean(vals)

        # hosts differ between builds (plain build numbers hosts 0..n-1);
        # compare against a randomised assignment on the same ring instead
        assert mean_entry_latency(prox) <= np.mean(lat.matrix[lat.matrix > 0])


class TestOwnership:
    def test_owner_is_numerically_closest(self):
        ring = PastryRing.build(25, m=M, b=B, seed=3)
        rng = np.random.default_rng(0)
        ids = [n.id for n in ring.nodes()]
        for _ in range(100):
            key = int(rng.integers(0, 2**M))
            owner = ring.owner_of(key)
            best = min(cyclic_distance(i, key, M) for i in ids)
            assert cyclic_distance(owner.id, key, M) == best

    def test_owner_of_node_id_is_node(self):
        ring = PastryRing.build(10, m=M, b=B, seed=4)
        for node in ring.nodes():
            assert ring.owner_of(node.id) is node


class TestRouting:
    def test_lookup_reaches_owner(self):
        ring = PastryRing.build(64, m=M, b=B, seed=5)
        nodes = ring.nodes()
        rng = np.random.default_rng(1)
        for _ in range(150):
            key = int(rng.integers(0, 2**M))
            start = nodes[int(rng.integers(0, len(nodes)))]
            path = ring.lookup_path(start, key)
            assert path[-1] is ring.owner_of(key)

    def test_hop_count_logarithmic(self):
        ring = PastryRing.build(128, m=24, b=B, seed=6)
        nodes = ring.nodes()
        rng = np.random.default_rng(2)
        hops = []
        for _ in range(100):
            key = int(rng.integers(0, 2**24))
            start = nodes[int(rng.integers(0, len(nodes)))]
            hops.append(len(ring.lookup_path(start, key)) - 1)
        # Pastry: ~log_{2^b}(N) = log_16(128) ≈ 1.75
        assert np.mean(hops) < 4.0

    def test_route_from_owner_is_zero_hops(self):
        ring = PastryRing.build(20, m=M, b=B, seed=7)
        node = ring.nodes()[0]
        assert ring.lookup_path(node, node.id) == [node]

    def test_single_node_ring(self):
        ring = PastryRing(m=M, b=B)
        n = PastryNode(123, M, B)
        ring.nodes_by_id[123] = n
        ring._sorted_ids = [123]
        ring.rebuild_tables()
        assert ring.lookup_path(n, 9999) == [n]

    def test_two_node_ring(self):
        ring = PastryRing(m=M, b=B)
        for nid in (100, 40000):
            ring.nodes_by_id[nid] = PastryNode(nid, M, B)
        ring._sorted_ids = sorted(ring.nodes_by_id)
        ring.rebuild_tables()
        a = ring.nodes_by_id[100]
        path = ring.lookup_path(a, 39999)
        assert path[-1].id == 40000
