"""Tests for index-space boundaries, Rect and QuerySplit (Algorithm 4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.index_space import IndexSpace, IndexSpaceBounds
from repro.core.landmarks import greedy_selection
from repro.core.lph import lp_hash, prefix_to_cuboid
from repro.core.query import RangeQuery, Rect, query_split
from repro.metric.vector import EuclideanMetric
from repro.util.bits import bit_at

B2 = IndexSpaceBounds.uniform(2, 0.0, 1.0)
M = 16


class TestBounds:
    def test_uniform(self):
        b = IndexSpaceBounds.uniform(3, 0.0, 5.0)
        assert b.k == 3
        np.testing.assert_array_equal(b.lows, [0, 0, 0])
        np.testing.assert_array_equal(b.highs, [5, 5, 5])

    def test_from_metric_requires_bounded(self):
        with pytest.raises(ValueError):
            IndexSpaceBounds.from_metric(2, EuclideanMetric())

    def test_from_metric_paper_synthetic(self):
        b = IndexSpaceBounds.from_metric(10, EuclideanMetric(box=(0, 100), dim=100))
        np.testing.assert_allclose(b.highs, 1000.0)
        np.testing.assert_allclose(b.lows, 0.0)

    def test_from_sample(self):
        pts = np.array([[1.0, 5.0], [3.0, 2.0], [2.0, 9.0]])
        b = IndexSpaceBounds.from_sample(pts)
        np.testing.assert_array_equal(b.lows, [1.0, 2.0])
        np.testing.assert_array_equal(b.highs, [3.0, 9.0])

    def test_from_sample_pad(self):
        pts = np.array([[0.0, 0.0], [10.0, 10.0]])
        b = IndexSpaceBounds.from_sample(pts, pad=0.1)
        np.testing.assert_allclose(b.lows, [-1.0, -1.0])
        np.testing.assert_allclose(b.highs, [11.0, 11.0])

    def test_from_sample_degenerate_dim(self):
        pts = np.array([[1.0, 5.0], [1.0, 6.0]])
        b = IndexSpaceBounds.from_sample(pts)
        assert b.highs[0] > b.lows[0]

    def test_clip(self):
        b = IndexSpaceBounds.uniform(2, 0.0, 1.0)
        out = b.clip(np.array([[-1.0, 0.5], [2.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.5], [1.0, 1.0]])

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            IndexSpaceBounds(np.array([0.0, 1.0]), np.array([1.0, 1.0]))


class TestIndexSpace:
    def test_build_metric_boundary(self, rng):
        X = rng.uniform(0, 100, size=(100, 4))
        ls = greedy_selection(X, EuclideanMetric(box=(0, 100), dim=4), 3, seed=0)
        space = IndexSpace.build(ls, boundary="metric")
        assert space.k == 3
        assert np.all(space.project(X) <= space.bounds.highs + 1e-9)

    def test_build_sample_boundary(self, rng):
        X = rng.uniform(0, 100, size=(100, 4))
        ls = greedy_selection(X, EuclideanMetric(), 3, seed=0)  # unbounded metric
        space = IndexSpace.build(ls, boundary="sample", sample=X)
        proj = space.project(X)
        assert np.all(proj >= space.bounds.lows - 1e-9)
        assert np.all(proj <= space.bounds.highs + 1e-9)

    def test_sample_boundary_requires_sample(self, rng):
        X = rng.uniform(size=(20, 2))
        ls = greedy_selection(X, EuclideanMetric(), 2, seed=0)
        with pytest.raises(ValueError):
            IndexSpace.build(ls, boundary="sample")

    def test_unknown_boundary(self, rng):
        X = rng.uniform(size=(20, 2))
        ls = greedy_selection(X, EuclideanMetric(), 2, seed=0)
        with pytest.raises(ValueError):
            IndexSpace.build(ls, boundary="magic")

    def test_out_of_sample_objects_clipped(self, rng):
        """Objects beyond the sampled boundary map to boundary points (§3.1)."""
        X = rng.uniform(40, 60, size=(50, 3))
        ls = greedy_selection(X, EuclideanMetric(), 2, seed=0)
        space = IndexSpace.build(ls, boundary="sample", sample=X)
        far = np.array([[1000.0, 1000.0, 1000.0]])
        proj = space.project(far)
        assert np.all(proj <= space.bounds.highs + 1e-12)


class TestRect:
    def test_contains(self):
        r = Rect(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        mask = r.contains_points(np.array([[0.5, 0.5], [1.5, 0.5], [1.0, 1.0]]))
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_intersects(self):
        r = Rect(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert r.intersects_box(np.array([0.5, 0.5]), np.array([2.0, 2.0]))
        assert not r.intersects_box(np.array([1.1, 1.1]), np.array([2.0, 2.0]))
        # touching counts (closed boxes)
        assert r.intersects_box(np.array([1.0, 0.0]), np.array([2.0, 1.0]))

    def test_volume_and_empty(self):
        r = Rect(np.array([0.0, 0.0]), np.array([2.0, 3.0]))
        assert r.volume() == 6.0
        assert not r.is_empty()
        r2 = Rect(np.array([1.0, 0.0]), np.array([0.0, 3.0]))
        assert r2.is_empty()

    def test_copy_is_deep(self):
        r = Rect(np.array([0.0]), np.array([1.0]))
        c = r.copy()
        c.lows[0] = 0.5
        assert r.lows[0] == 0.0


class TestRangeQueryFromPoint:
    def test_rect_clipped_to_bounds(self):
        q = RangeQuery.from_point(np.array([0.05, 0.95]), 0.1, B2, M)
        np.testing.assert_allclose(q.rect.lows, [0.0, 0.85])
        np.testing.assert_allclose(q.rect.highs, [0.15, 1.0])

    def test_initial_prefix_holds_rect(self):
        q = RangeQuery.from_point(np.array([0.3, 0.3]), 0.01, B2, M)
        lo, hi = prefix_to_cuboid(q.prefix_key, q.prefix_len, B2, M)
        assert np.all(lo <= q.rect.lows + 1e-12)
        assert np.all(hi >= q.rect.highs - 1e-12)

    def test_qids_unique(self):
        a = RangeQuery.from_point(np.array([0.5, 0.5]), 0.1, B2, M)
        b = RangeQuery.from_point(np.array([0.5, 0.5]), 0.1, B2, M)
        assert a.qid != b.qid

    def test_explicit_qid(self):
        q = RangeQuery.from_point(np.array([0.5, 0.5]), 0.1, B2, M, qid=77)
        assert q.qid == 77

    def test_radius_recorded(self):
        q = RangeQuery.from_point(np.array([0.5, 0.5]), 0.07, B2, M)
        assert q.radius == pytest.approx(0.07)


class TestQuerySplit:
    def _q(self, lo, hi, prefix_key=0, prefix_len=0):
        return RangeQuery(
            rect=Rect(np.asarray(lo, float), np.asarray(hi, float)),
            prefix_key=prefix_key,
            prefix_len=prefix_len,
            qid=0,
        )

    def test_straddling_splits_in_two(self):
        q = self._q([0.4, 0.1], [0.6, 0.2])
        subs = query_split(q, 1, B2, M)
        assert len(subs) == 2
        hi_half = [s for s in subs if bit_at(s.prefix_key, 1, M)][0]
        lo_half = [s for s in subs if not bit_at(s.prefix_key, 1, M)][0]
        assert hi_half.rect.lows[0] == pytest.approx(0.5)
        assert hi_half.rect.highs[0] == pytest.approx(0.6)
        assert lo_half.rect.lows[0] == pytest.approx(0.4)
        assert lo_half.rect.highs[0] == pytest.approx(0.5)
        assert all(s.prefix_len == 1 for s in subs)

    def test_wholly_lower_advances_prefix(self):
        q = self._q([0.1, 0.1], [0.3, 0.2])
        subs = query_split(q, 1, B2, M)
        assert len(subs) == 1
        assert subs[0].prefix_len == 1
        assert bit_at(subs[0].prefix_key, 1, M) == 0

    def test_wholly_upper_sets_bit(self):
        q = self._q([0.6, 0.1], [0.8, 0.2])
        subs = query_split(q, 1, B2, M)
        assert len(subs) == 1
        assert bit_at(subs[0].prefix_key, 1, M) == 1

    def test_second_division_splits_dim1(self):
        q = self._q([0.1, 0.4], [0.2, 0.6], prefix_key=0, prefix_len=1)
        subs = query_split(q, 2, B2, M)
        assert len(subs) == 2
        assert subs[0].rect.lows[1] == pytest.approx(0.5)  # upper half in dim 1

    def test_invalid_position(self):
        q = self._q([0.0, 0.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            query_split(q, 0, B2, M)
        with pytest.raises(ValueError):
            query_split(q, M + 1, B2, M)

    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_split_partitions_rect(self, data):
        """The subqueries' rects union to the original rect (same volume,
        no overlap beyond the shared split plane)."""
        lo = np.asarray(
            data.draw(st.lists(st.floats(0.0, 0.9, allow_nan=False), min_size=2, max_size=2))
        )
        ext = np.asarray(
            data.draw(st.lists(st.floats(0.01, 0.5, allow_nan=False), min_size=2, max_size=2))
        )
        hi = np.minimum(lo + ext, 1.0)
        q = self._q(lo, hi)
        # advance through several levels, checking volume conservation
        queries = [q]
        for p in range(1, 7):
            nxt = []
            for qq in queries:
                nxt.extend(query_split(qq, p, B2, M))
            vol = sum(s.rect.volume() for s in nxt)
            assert vol == pytest.approx(q.rect.volume(), rel=1e-9)
            queries = nxt

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_rect_stays_in_claimed_cuboid(self, data):
        """Invariant: after split at p, each subquery's rect lies inside the
        cuboid its (prefix_key, prefix_len=p) claims."""
        lo = np.asarray(
            data.draw(st.lists(st.floats(0.0, 0.9, allow_nan=False), min_size=2, max_size=2))
        )
        ext = np.asarray(
            data.draw(st.lists(st.floats(0.01, 0.4, allow_nan=False), min_size=2, max_size=2))
        )
        hi = np.minimum(lo + ext, 1.0)
        queries = [self._q(lo, hi)]
        for p in range(1, 9):
            nxt = []
            for qq in queries:
                nxt.extend(query_split(qq, p, B2, M))
            for s in nxt:
                clo, chi = prefix_to_cuboid(s.prefix_key, s.prefix_len, B2, M)
                assert np.all(s.rect.lows >= clo - 1e-12)
                assert np.all(s.rect.highs <= chi + 1e-12)
            queries = nxt

    def test_points_not_lost_by_split(self):
        """Every point of the rect lands in exactly one subquery rect whose
        key-range claim matches the point's hash (no false negatives)."""
        rng = np.random.default_rng(0)
        q = self._q([0.2, 0.3], [0.7, 0.8])
        queries = [q]
        for p in range(1, 9):
            nxt = []
            for qq in queries:
                nxt.extend(query_split(qq, p, B2, M))
            queries = nxt
        pts = rng.uniform([0.2, 0.3], [0.7, 0.8], size=(100, 2))
        for pt in pts:
            key = lp_hash(pt, B2, M)
            holders = [
                s
                for s in queries
                if np.all(pt >= s.rect.lows) and np.all(pt <= s.rect.highs)
                and (key >> (M - s.prefix_len)) == (s.prefix_key >> (M - s.prefix_len))
            ]
            assert len(holders) >= 1
