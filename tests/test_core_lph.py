"""Tests for the locality-preserving hash (Algorithm 2) and cuboid geometry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.index_space import IndexSpaceBounds
from repro.core.lph import (
    dimension_range,
    key_to_cuboid,
    lp_hash,
    lp_hash_batch,
    prefix_to_cuboid,
    smallest_enclosing_prefix,
)

B2 = IndexSpaceBounds.uniform(2, 0.0, 1.0)


class TestScalarHash:
    def test_2d_quadrants_m2(self):
        """With m=2 over [0,1]^2 the four quadrants spell 00,10,01,11.

        Division 1 splits dim 0, division 2 splits dim 1; bit 1 = higher half
        of dim 0, bit 2 = higher half of dim 1.
        """
        assert lp_hash(np.array([0.25, 0.25]), B2, 2) == 0b00
        assert lp_hash(np.array([0.75, 0.25]), B2, 2) == 0b10
        assert lp_hash(np.array([0.25, 0.75]), B2, 2) == 0b01
        assert lp_hash(np.array([0.75, 0.75]), B2, 2) == 0b11

    def test_paper_figure1_prefix_011(self):
        """Figure 1(a): after 3 divisions, rectangle '011' is the low-x,
        high-y, high-x-within-left... — verify by geometry round trip."""
        lo, hi = prefix_to_cuboid(0b011 << 13, 3, B2, 16)
        # prefix 011: dim0 lower half (bit1=0), dim1 upper half (bit2=1),
        # dim0 upper quarter of the lower half (bit3=1).
        np.testing.assert_allclose(lo, [0.25, 0.5])
        np.testing.assert_allclose(hi, [0.5, 1.0])

    def test_boundary_point_goes_lower(self):
        """The tie rule: point exactly on the split plane hashes low."""
        assert lp_hash(np.array([0.5, 0.5]), B2, 2) == 0b00

    def test_corners(self):
        m = 8
        assert lp_hash(np.array([0.0, 0.0]), B2, m) == 0
        assert lp_hash(np.array([1.0, 1.0]), B2, m) == 2**m - 1

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            lp_hash(np.zeros(3), B2, 4)

    def test_alternating_dimensions(self):
        """Division i splits dimension (i-1) mod k."""
        b3 = IndexSpaceBounds.uniform(3, 0.0, 1.0)
        # Only dim 2 high: bits at divisions 3, 6, ... are 1.
        key = lp_hash(np.array([0.1, 0.1, 0.9]), b3, 6)
        assert key == 0b001001


class TestBatchHash:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_batch_matches_scalar(self, data):
        k = data.draw(st.integers(1, 4))
        m = data.draw(st.integers(1, 24))
        bounds = IndexSpaceBounds.uniform(k, -3.0, 7.0)
        n = data.draw(st.integers(1, 12))
        pts = data.draw(
            st.lists(
                st.lists(st.floats(-3.0, 7.0, allow_nan=False), min_size=k, max_size=k),
                min_size=n,
                max_size=n,
            )
        )
        pts = np.asarray(pts)
        batch = lp_hash_batch(pts, bounds, m)
        for i in range(n):
            assert int(batch[i]) == lp_hash(pts[i], bounds, m)

    def test_m64_supported(self):
        pts = np.random.default_rng(0).uniform(size=(16, 3))
        b3 = IndexSpaceBounds.uniform(3, 0.0, 1.0)
        keys = lp_hash_batch(pts, b3, 64)
        assert keys.dtype == np.uint64
        for i in range(16):
            assert int(keys[i]) == lp_hash(pts[i], b3, 64)

    def test_m_above_64_rejected(self):
        with pytest.raises(ValueError):
            lp_hash_batch(np.zeros((1, 2)), B2, 65)

    def test_locality(self):
        """Nearby points share longer prefixes than distant ones, on average."""
        rng = np.random.default_rng(1)
        m = 16
        base = rng.uniform(0.2, 0.8, size=(200, 2))
        near = base + rng.uniform(-0.01, 0.01, size=base.shape)
        far = rng.uniform(0, 1, size=base.shape)
        kb = lp_hash_batch(base, B2, m)
        kn = lp_hash_batch(near, B2, m)
        kf = lp_hash_batch(far, B2, m)

        def mean_common_prefix(a, b):
            x = np.bitwise_xor(a, b)
            return np.mean([m - int(v).bit_length() for v in x])

        assert mean_common_prefix(kb, kn) > mean_common_prefix(kb, kf) + 2


class TestInverseGeometry:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_point_within_its_cuboid(self, data):
        k = data.draw(st.integers(1, 3))
        m = data.draw(st.integers(1, 20))
        bounds = IndexSpaceBounds.uniform(k, 0.0, 1.0)
        pt = np.asarray(
            data.draw(st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=k, max_size=k))
        )
        key = lp_hash(pt, bounds, m)
        lo, hi = key_to_cuboid(key, bounds, m)
        assert np.all(pt >= lo - 1e-12) and np.all(pt <= hi + 1e-12)

    def test_cuboids_partition_volume(self):
        """All 2^m leaf cuboids have equal volume summing to the domain."""
        m = 4
        vols = []
        for key in range(2**m):
            lo, hi = key_to_cuboid(key, B2, m)
            vols.append(np.prod(hi - lo))
        assert np.allclose(vols, 1.0 / 2**m)

    def test_prefix_nesting(self):
        """cuboid(prefix, L) contains cuboid(prefix', L+1) for its children."""
        m = 10
        key = 0b0110000000
        lo1, hi1 = prefix_to_cuboid(key, 3, B2, m)
        for child in (key, key | (1 << (m - 4))):
            lo2, hi2 = prefix_to_cuboid(child, 4, B2, m)
            assert np.all(lo2 >= lo1 - 1e-12) and np.all(hi2 <= hi1 + 1e-12)

    def test_dimension_range_matches_cuboid(self):
        m = 12
        key = 0b101101000000
        for upto in range(0, 7):
            lo, hi = prefix_to_cuboid(key, upto, B2, m)
            for dim in range(2):
                dlo, dhi = dimension_range(key, upto, dim, B2, m)
                assert dlo == pytest.approx(lo[dim])
                assert dhi == pytest.approx(hi[dim])


class TestSmallestEnclosingPrefix:
    def test_full_domain_query(self):
        key, length = smallest_enclosing_prefix(
            np.array([0.0, 0.0]), np.array([1.0, 1.0]), B2, 8
        )
        assert (key, length) == (0, 0)

    def test_tiny_query_deep_prefix(self):
        key, length = smallest_enclosing_prefix(
            np.array([0.3, 0.3]), np.array([0.3001, 0.3001]), B2, 16
        )
        assert length > 8
        lo, hi = prefix_to_cuboid(key, length, B2, 16)
        assert np.all(lo <= 0.3) and np.all(hi >= 0.3001)

    def test_straddling_centre_stays_at_root(self):
        key, length = smallest_enclosing_prefix(
            np.array([0.49, 0.1]), np.array([0.51, 0.2]), B2, 16
        )
        assert length == 0

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_prefix_contains_rect(self, data):
        m = 14
        lo = np.asarray(
            data.draw(st.lists(st.floats(0.0, 0.99, allow_nan=False), min_size=2, max_size=2))
        )
        ext = np.asarray(
            data.draw(st.lists(st.floats(0.0, 0.3, allow_nan=False), min_size=2, max_size=2))
        )
        hi = np.minimum(lo + ext, 1.0)
        key, length = smallest_enclosing_prefix(lo, hi, B2, m)
        clo, chi = prefix_to_cuboid(key, length, B2, m)
        assert np.all(clo <= lo + 1e-12) and np.all(chi >= hi - 1e-12)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_point_keys_share_query_prefix(self, data):
        """Every point inside the rect hashes with the enclosing prefix —
        the guarantee routing relies on (no false negatives)."""
        m = 12
        lo = np.asarray(
            data.draw(st.lists(st.floats(0.0, 0.9, allow_nan=False), min_size=2, max_size=2))
        )
        ext = np.asarray(
            data.draw(st.lists(st.floats(0.001, 0.2, allow_nan=False), min_size=2, max_size=2))
        )
        hi = np.minimum(lo + ext, 1.0)
        key, length = smallest_enclosing_prefix(lo, hi, B2, m)
        rng = np.random.default_rng(0)
        pts = rng.uniform(lo, hi, size=(30, 2))
        keys = lp_hash_batch(pts, B2, m)
        shift = np.uint64(m - length)
        if length:
            assert np.all((keys >> shift) == np.uint64(key >> (m - length)))
