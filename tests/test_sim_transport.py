"""Transport layer: delivery semantics, fault injection, tracing, and
parity between transport-level and per-query drop accounting."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.core.platform import IndexPlatform
from repro.dht.ring import ChordRing
from repro.metric.vector import EuclideanMetric
from repro.sim.engine import Simulator
from repro.sim.network import ConstantLatency
from repro.sim.transport import (
    DELIVERED,
    DROPPED_DEAD,
    DROPPED_LOSS,
    FaultConfig,
    JsonlTraceSink,
    MemoryTraceSink,
    Transport,
)


class _Node:
    """Minimal endpoint: transport only needs id / host / alive."""

    def __init__(self, id, host, alive=True):
        self.id = id
        self.host = host
        self.alive = alive


def _pair(latency=None, faults=None, trace=None):
    sim = Simulator()
    tp = Transport(sim=sim, latency=latency, faults=faults, trace=trace)
    return sim, tp, _Node(1, 0), _Node(2, 1)


class TestFaultConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(loss_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(jitter=-1.0)

    def test_partitions_normalised(self):
        cfg = FaultConfig(partitions=[[0, 1], {2, 3}])
        assert cfg.partitions == (frozenset({0, 1}), frozenset({2, 3}))

    def test_active(self):
        assert not FaultConfig().active
        assert FaultConfig(loss_rate=0.1).active
        assert FaultConfig(jitter=0.01).active
        assert FaultConfig(partitions=[{0}]).active


class TestDelivery:
    def test_send_after_latency(self):
        sim, tp, a, b = _pair(latency=ConstantLatency(4, delay=0.05))
        got = []
        tp.send(a, b, lambda: got.append(sim.now), kind="t", size=40)
        sim.run()
        assert got == [0.05]
        assert tp.stats.sent == 1 and tp.stats.delivered == 1
        assert tp.stats.bytes == 40 and tp.stats.dropped == 0

    def test_send_to_self_immediate_and_unfaulted(self):
        # local hand-off: even loss_rate=1 must not touch it
        sim, tp, a, _ = _pair(
            latency=ConstantLatency(4, delay=0.05), faults=FaultConfig(loss_rate=1.0)
        )
        got = []
        assert tp.send(a, a, got.append, "x")
        sim.run()
        assert got == ["x"] and sim.now == 0.0

    def test_dead_destination_dropped_at_delivery(self):
        sim, tp, a, b = _pair(latency=ConstantLatency(4, delay=0.05))
        got, drops = [], []
        tp.send(a, b, got.append, "x", on_drop=drops.append)
        b.alive = False  # crashes while the message is in flight
        sim.run()
        assert got == []
        assert tp.stats.dropped_dead == 1
        assert [d.status for d in drops] == [DROPPED_DEAD]

    def test_control_roundtrip_and_dead(self):
        _, tp, a, b = _pair()
        assert tp.control(a, b, size=28)
        b.alive = False
        assert not tp.control(a, b, size=28)
        # bytes are counted for dropped messages too (they were sent)
        assert tp.stats.bytes == 56
        assert tp.stats.delivered == 1 and tp.stats.dropped_dead == 1


class TestFaultInjection:
    def _drop_pattern(self, seed, n=300, loss=0.3, jitter=0.0):
        sim, tp, a, b = _pair(faults=FaultConfig(loss_rate=loss, jitter=jitter, seed=seed))
        return [tp.send(a, b, lambda: None) for _ in range(n)]

    def test_same_seed_same_drops(self):
        assert self._drop_pattern(seed=7) == self._drop_pattern(seed=7)

    def test_different_seed_different_drops(self):
        assert self._drop_pattern(seed=7) != self._drop_pattern(seed=8)

    def test_loss_rate_extremes(self):
        assert all(self._drop_pattern(seed=0, loss=0.0))
        assert not any(self._drop_pattern(seed=0, loss=1.0))

    def test_jitter_does_not_perturb_loss_stream(self):
        # independent generators: toggling jitter keeps the drop pattern
        assert self._drop_pattern(seed=3, jitter=0.0) == self._drop_pattern(
            seed=3, jitter=0.1
        )

    def test_jitter_delays_delivery(self):
        sim, tp, a, b = _pair(
            latency=ConstantLatency(4, delay=0.05),
            faults=FaultConfig(jitter=0.5, seed=1),
        )
        arrivals = []
        for _ in range(50):
            tp.send(a, b, lambda: arrivals.append(sim.now))
        sim.run()
        assert len(arrivals) == 50
        assert all(t >= 0.05 for t in arrivals)
        assert max(arrivals) > 0.05  # some draw added real extra delay


class TestPartitions:
    def test_cross_partition_dropped(self):
        faults = FaultConfig(partitions=[{0, 1}, {2}])
        sim = Simulator()
        tp = Transport(sim=sim, faults=faults)
        a, b, c, d = _Node(1, 0), _Node(2, 1), _Node(3, 2), _Node(4, 3)
        got = []
        assert tp.send(a, b, got.append, "same-side")  # same partition
        assert not tp.send(a, c, got.append, "cross")  # different partitions
        assert not tp.send(a, d, got.append, "outside")  # host 3 in no set
        sim.run()
        assert got == ["same-side"]
        assert tp.stats.dropped_partition == 2
        assert not tp.partitioned(0, 1)
        assert tp.partitioned(0, 2) and tp.partitioned(0, 3)

    def test_control_respects_partitions(self):
        tp = Transport(faults=FaultConfig(partitions=[{0}, {1}]))
        a, b = _Node(1, 0), _Node(2, 1)
        assert not tp.control(a, b)
        assert tp.stats.dropped_partition == 1


class TestTraceSinks:
    def test_memory_sink_filters(self):
        sink = MemoryTraceSink()
        sim, tp, a, b = _pair(trace=sink)
        tp.send(a, b, lambda: None, kind="query:forward", size=33, qid=5)
        sim.run()  # deliver the first before crashing the destination
        b.alive = False
        tp.send(a, b, lambda: None, kind="query:forward", size=33, qid=6)
        tp.control(a, a, kind="maintenance", size=28)
        sim.run()
        assert len(sink) == 3
        assert len(sink.by_kind("query:forward")) == 2
        assert len(sink.by_kind("maintenance")) == 1
        assert [t.qid for t in sink.dropped()] == [6]
        assert sink.by_status(DROPPED_DEAD)[0].arrived_at is None
        (ok,) = sink.for_query(5)
        assert ok.status == DELIVERED and ok.size == 33

    def test_jsonl_sink(self):
        buf = io.StringIO()
        sink = JsonlTraceSink(buf)
        sim, tp, a, b = _pair(trace=sink, faults=FaultConfig(loss_rate=1.0))
        tp.send(a, b, lambda: None, kind="t", size=10)
        sim.run()
        (line,) = buf.getvalue().strip().splitlines()
        rec = json.loads(line)
        assert rec["status"] == DROPPED_LOSS
        assert rec["kind"] == "t" and rec["size"] == 10


def _tiny_platform(faults=None, trace=None, n_nodes=24, seed=11):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, 100, size=(3, 5))
    data = np.clip(
        centers[rng.integers(0, 3, size=400)] + rng.normal(0, 4, size=(400, 5)), 0, 100
    )
    latency = ConstantLatency(n_nodes, delay=0.02)
    ring = ChordRing.build(n_nodes, m=24, seed=seed, latency=latency, pns=False)
    p = IndexPlatform(ring, faults=faults, trace=trace)
    p.create_index(
        "t", data, EuclideanMetric(box=(0, 100), dim=5), k=3, sample_size=200, seed=3
    )
    return p, data


class TestQueryIntegration:
    """End-to-end checks that protocol accounting matches the transport's."""

    def test_trace_accounting_matches_query_stats(self):
        # every byte the per-query stats attribute to a query must appear in
        # the transport trace, and vice versa (parity with the old direct
        # accounting paths)
        sink = MemoryTraceSink()
        p, data = _tiny_platform(trace=sink)
        proto, stats = p.protocol("t")
        index = p.indexes["t"]
        q = index.make_query(data[0], 12.0, qid=0)
        proto.issue(q, p.ring.nodes()[0])
        p.sim.run()
        st = stats.for_query(0)
        traced_bytes = sum(t.size for t in sink.records)
        assert traced_bytes == st.query_bytes + st.result_bytes
        assert traced_bytes == p.transport.stats.bytes
        sized = [t for t in sink.records if t.size > 0]
        assert len(sized) == st.query_messages + st.result_messages
        assert all(t.status == DELIVERED for t in sink.records)
        assert p.transport.stats.dropped == 0

    def test_dead_node_drop_parity(self):
        # messages arriving at crashed nodes: the transport's dropped_dead
        # counter and the per-query dropped_messages must agree (the old
        # per-protocol liveness checks counted the latter)
        p, data = _tiny_platform()
        proto, stats = p.protocol("t")
        index = p.indexes["t"]
        nodes = p.ring.nodes()
        for i in range(8):
            q = index.make_query(data[i], 20.0, qid=i)
            proto.issue(q, nodes[0])
        # crash half the ring (not the source) with queries in flight
        for n in nodes[1::2]:
            n.alive = False
        p.sim.run()
        per_query = sum(stats.for_query(i).dropped_messages for i in range(8))
        assert per_query == p.transport.stats.dropped_dead
        assert per_query > 0

    def test_query_degrades_gracefully_under_loss(self):
        # acceptance: with loss injected, runs still complete, recall only
        # degrades, and the drops are visible in the stats
        def run(faults):
            p, data = _tiny_platform(faults=faults)
            proto, stats = p.protocol("t")
            index = p.indexes["t"]
            for i in range(12):
                q = index.make_query(data[i], 15.0, qid=i)
                proto.issue(q, p.ring.nodes()[i % 4])
            p.sim.run()
            entries = sum(len(stats.for_query(i).entries) for i in range(12))
            return p, stats, entries

        _, _, clean_entries = run(None)
        p, stats, lossy_entries = run(FaultConfig(loss_rate=0.25, seed=5))
        assert p.transport.stats.dropped_loss > 0
        assert sum(s.dropped_messages for s in stats.queries.values()) > 0
        assert 0 < lossy_entries <= clean_entries

    def test_fault_determinism_end_to_end(self):
        def run():
            p, data = _tiny_platform(faults=FaultConfig(loss_rate=0.3, seed=9))
            proto, stats = p.protocol("t")
            index = p.indexes["t"]
            for i in range(10):
                q = index.make_query(data[i], 15.0, qid=i)
                proto.issue(q, p.ring.nodes()[i % 5])
            p.sim.run()
            s = p.transport.stats
            drops = tuple(stats.for_query(i).dropped_messages for i in range(10))
            return (s.sent, s.delivered, s.dropped_loss, s.bytes, drops)

        assert run() == run()

    def test_inactive_faults_equal_no_faults(self):
        def totals(faults):
            p, data = _tiny_platform(faults=faults)
            proto, stats = p.protocol("t")
            index = p.indexes["t"]
            q = index.make_query(data[0], 15.0, qid=0)
            proto.issue(q, p.ring.nodes()[0])
            p.sim.run()
            st = stats.for_query(0)
            return (
                st.query_messages,
                st.result_messages,
                st.query_bytes,
                st.result_bytes,
                st.max_hops,
                st.max_latency,
            )

        assert totals(None) == totals(FaultConfig())
