"""Backend-agnostic transport conformance suite.

One parametrized set of assertions over the Transport contract, run against
both execution backends:

* ``sim`` — :class:`repro.sim.transport.Transport` on the discrete-event
  engine (tier-1: fast, deterministic);
* ``tcp`` — :class:`repro.net.transport.TcpTransport` on real asyncio
  sockets (marked ``slow``; the CI live-backend job runs it).

The contract under test: per-peer in-order delivery, cancelable-timer
semantics, fault-injection drop behaviour (loss, partition, self-send
exemption), trace-sink emission, and stats/byte accounting.  A behaviour
difference between the backends is a bug in the live backend, not in the
test.
"""

from __future__ import annotations

import pytest

from repro.sim.transport import FaultConfig

from tests.net_helpers import SimHarness, TcpHarness

BACKENDS = [
    pytest.param("sim", id="sim"),
    pytest.param("tcp", id="tcp",
                 marks=[pytest.mark.slow, pytest.mark.timeout(60)]),
]


@pytest.fixture(params=BACKENDS)
def harness(request):
    h = SimHarness() if request.param == "sim" else TcpHarness()
    yield h
    h.stop()


def test_in_order_delivery_per_peer(harness):
    harness.start(2)
    n = 64
    for i in range(n):
        assert harness.send(0, 1, kind="message", payload=i)
    harness.settle()
    assert [p for _, p in harness.received(1)] == list(range(n))


def test_in_order_delivery_interleaved_destinations(harness):
    harness.start(3)
    for i in range(32):
        harness.send(0, 1, kind="message", payload=("to1", i))
        harness.send(0, 2, kind="message", payload=("to2", i))
    harness.settle()
    got1 = [tuple(p) for _, p in harness.received(1)]
    got2 = [tuple(p) for _, p in harness.received(2)]
    assert got1 == [("to1", i) for i in range(32)]
    assert got2 == [("to2", i) for i in range(32)]


def test_delivered_trace_records(harness):
    harness.start(2)
    harness.send(0, 1, kind="message", payload="x", size=17, qid=42)
    harness.settle()
    delivered = [t for t in harness.trace_records() if t.status == "delivered"]
    assert len(delivered) == 1
    t = delivered[0]
    assert t.kind == "message"
    assert t.src_host == 0 and t.dst_host == 1
    assert t.size == 17
    assert t.qid == 42
    assert t.attempt == 1
    assert t.arrived_at is not None and t.arrived_at >= t.sent_at


def test_timer_fires_and_deactivates(harness):
    harness.start(1)
    fired = []
    h = harness.timer(0, 0.01, lambda: fired.append(1))
    assert h.active
    harness.advance(0.1)
    assert fired == [1]
    assert not h.active
    h.cancel()  # cancel-after-fire is a no-op
    assert not h.active


def test_timer_cancel_prevents_firing(harness):
    harness.start(1)
    fired = []
    h = harness.timer(0, 0.02, lambda: fired.append(1))
    h.cancel()
    assert not h.active
    h.cancel()  # idempotent
    harness.advance(0.1)
    assert fired == []


def test_full_loss_drops_everything(harness):
    harness.start(2, faults=FaultConfig(loss_rate=1.0, seed=3))
    drops = []
    for i in range(10):
        ok = harness.send(0, 1, kind="message", payload=i, on_drop=drops.append)
        assert ok is False
    harness.settle()
    assert harness.received(1) == []
    assert len(drops) == 10
    assert all(t.status == "dropped:loss" for t in drops)
    assert harness.total_dropped("loss") == 10
    assert harness.total_delivered() == 0
    statuses = {t.status for t in harness.trace_records()}
    assert statuses == {"dropped:loss"}


def test_partition_blocks_cross_group_only(harness):
    faults = FaultConfig(partitions=({0, 1}, {2}))
    harness.start(3, faults=faults)
    assert harness.send(0, 1, kind="message", payload="same-group")
    ok_cross = harness.send(0, 2, kind="message", payload="cross")
    assert ok_cross is False
    harness.settle()
    assert [p for _, p in harness.received(1)] == ["same-group"]
    assert harness.received(2) == []
    assert harness.total_dropped("partition") == 1
    dropped = [t for t in harness.trace_records()
               if t.status == "dropped:partition"]
    assert len(dropped) == 1
    assert (dropped[0].src_host, dropped[0].dst_host) == (0, 2)


def test_self_send_is_never_faulted(harness):
    harness.start(1, faults=FaultConfig(loss_rate=1.0, seed=1))
    assert harness.send(0, 0, kind="message", payload="local")
    harness.settle()
    assert [p for _, p in harness.received(0)] == ["local"]
    assert harness.total_delivered() == 1


def test_stats_and_byte_accounting(harness):
    harness.start(2)
    harness.send(0, 1, kind="message", payload=None, size=10)   # query class
    harness.send(0, 1, kind="result", payload=None, size=20)
    harness.send(0, 1, kind="maintenance:x", payload=None, size=30)
    harness.settle()
    assert harness.total_sent() == 3
    assert harness.total_delivered() == 3
    assert harness.byte_totals() == (10, 20, 30)


def test_seeded_loss_is_reproducible(harness):
    outcomes = []
    for _ in range(2):
        harness.start(2, faults=FaultConfig(loss_rate=0.5, seed=99))
        outcomes.append(tuple(
            harness.send(0, 1, kind="message", payload=i) for i in range(32)
        ))
        harness.settle()
    assert outcomes[0] == outcomes[1]
    assert any(outcomes[0]) and not all(outcomes[0])


# -- tcp-only regressions ---------------------------------------------------


def test_local_rpc_answer_task_handle_is_kept():
    """Regression (ASY403): the self-addressed RPC fast path spawns an
    answer task; its handle must be strongly referenced until completion,
    or the loop's weak task set lets it be collected mid-flight."""
    import asyncio

    from repro.net.transport import TcpTransport

    async def scenario():
        transport = TcpTransport(node_id=0, host=0)
        await transport.start(listen=False)
        release = asyncio.Event()

        async def handler(payload, src):
            await release.wait()
            return {"echo": payload}

        transport.register_rpc("echo", handler)
        rpc = asyncio.create_task(
            transport.rpc(transport.addr, "echo", {"n": 1}))
        await asyncio.sleep(0)  # let the answer task spawn
        assert transport._client_tasks, "answer task handle was dropped"
        release.set()
        reply = await rpc
        assert reply == {"echo": {"n": 1}}
        for _ in range(3):  # done_callback runs a tick after completion
            if not transport._client_tasks:
                break
            await asyncio.sleep(0)
        assert not transport._client_tasks, "completed task not discarded"
        await transport.close()

    asyncio.run(scenario())
