"""Health sampler: periodic snapshots on the sim clock, churn, gauges."""

import numpy as np

from repro.dht.ring import ChordRing
from repro.obs.health import HealthSampler
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Simulator


def test_sampler_does_not_keep_sim_alive():
    """The sampler's own timer must never be the only thing in the queue:
    ``sim.run()`` has to terminate once real work drains."""
    sim = Simulator()
    sampler = HealthSampler(sim, interval=1.0)
    sampler.start()
    sim.schedule_in(3.5, lambda: None)  # some real work until t=3.5
    sim.run()
    assert sim.now <= 4.5  # the tick after the last event stops itself
    times = [s.time for s in sampler.samples]
    assert times == [1.0, 2.0, 3.0, 4.0]


def test_sampler_with_duration_runs_to_the_end():
    sim = Simulator()
    sampler = HealthSampler(sim, interval=1.0)
    sampler.start(duration=3.0)
    sim.run()
    assert [s.time for s in sampler.samples] == [1.0, 2.0, 3.0]


def test_sample_fields_and_series():
    sim = Simulator()
    loads = np.array([0, 0, 5, 10, 85], dtype=np.int64)
    sampler = HealthSampler(sim, interval=1.0, load_fn=lambda: loads)
    sim.schedule_in(2.5, lambda: None)
    sampler.start()
    sim.run()
    s = sampler.samples[0]
    assert s.event_queue_depth >= 0
    assert s.load_deciles[0] == 0.0 and s.load_deciles[-1] == 85.0
    times, depths = sampler.series("event_queue_depth")
    assert times == [s.time for s in sampler.samples]
    assert len(depths) == len(times)
    rows = sampler.to_dicts()
    assert rows[0]["load_deciles"][-1] == 85.0


def test_sampler_sees_node_churn():
    """live_nodes tracks ring membership as nodes crash mid-run."""
    ring = ChordRing.build(16, m=32, seed=0)
    sim = Simulator()
    sampler = HealthSampler(sim, interval=1.0, ring=ring)
    total = len(ring.nodes())

    def crash_some():
        for node in ring.nodes()[:4]:
            ring.remove_node(node)

    sim.schedule_in(1.5, crash_some)
    sim.schedule_in(3.5, lambda: None)
    sampler.start()
    sim.run()
    _, live = sampler.series("live_nodes")
    assert live[0] == total
    assert live[-1] == total - 4


def test_sampler_updates_registry_gauges():
    sim = Simulator()
    reg = MetricsRegistry()
    sampler = HealthSampler(
        sim, interval=1.0, registry=reg,
        load_fn=lambda: np.array([1, 2, 3], dtype=np.int64),
    )
    sim.schedule_in(2.2, lambda: None)
    sampler.start()
    sim.run()
    assert reg.get("health_samples_total").total() == len(sampler.samples)
    assert reg.get("health_event_queue_depth") is not None
    # decile gauges labeled by percentile
    decile = reg.get("health_load_decile")
    assert decile.value(("100",)) == 3.0


def test_engine_in_flight_branches_probe():
    sim = Simulator()

    class FakeEngine:
        def branches_in_flight(self):
            return 7

    sampler = HealthSampler(sim, interval=1.0, engine=FakeEngine())
    sim.schedule_in(1.2, lambda: None)
    sampler.start()
    sim.run()
    assert sampler.samples[0].in_flight_branches == 7


def test_stop_prevents_further_samples():
    sim = Simulator()
    sampler = HealthSampler(sim, interval=1.0)
    sim.schedule_in(5.0, lambda: None)
    sampler.start()

    def stop_it():
        sampler.stop()

    sim.schedule_in(2.5, stop_it)
    sim.run()
    assert [s.time for s in sampler.samples] == [1.0, 2.0]
