"""Differential fuzzing: oracle lockstep, fault tolerance bounds, seeded bugs."""

import pytest
from hypothesis import HealthCheck, settings
from hypothesis.stateful import run_state_machine_as_test

from repro.check import LinearScanOracle, execute_scenario, random_scenario
from repro.check.fuzz import (
    BuggyOwnershipMachine,
    DifferentialMachine,
    FaultyTransportMachine,
)

_MACHINE_SETTINGS = settings(
    max_examples=5,
    stateful_step_count=8,
    deadline=None,
    suppress_health_check=list(HealthCheck),
)


class TestOracle:
    def test_range_and_knn_agree_on_boundaries(self, rng):
        import numpy as np

        from repro.metric import EuclideanMetric

        data = rng.uniform(0, 100, size=(60, 3))
        oracle = LinearScanOracle(data, EuclideanMetric(box=(0, 100), dim=3))
        obj = data[0]
        hits = oracle.range(obj, 30.0)
        assert hits[0] == (0, 0.0)  # the object itself, distance zero
        assert all(d <= 30.0 for _, d in hits)
        knn = oracle.knn(obj, 5)
        assert len(knn) == 5
        assert [d for _, d in knn] == sorted(d for _, d in knn)
        oracle.restrict(range(10))
        assert all(oid < 10 for oid, _ in oracle.range(obj, 1000.0))

    def test_compare_range_flags_misses_and_extras(self, rng):
        from repro.core.routing import ResultEntry
        from repro.metric import EuclideanMetric

        data = rng.uniform(0, 100, size=(30, 3))
        oracle = LinearScanOracle(data, EuclideanMetric(box=(0, 100), dim=3))
        obj = data[0]
        truth = oracle.range(obj, 40.0)
        entries = [ResultEntry(oid, d) for oid, d in truth]
        clean = oracle.compare_range(obj, 40.0, entries)
        assert clean == {
            "false_negatives": [], "false_positives": [], "distance_errors": [],
        }
        missing = oracle.compare_range(obj, 40.0, entries[1:])
        assert missing["false_negatives"] == [entries[0].object_id]
        extra = entries + [ResultEntry(9999, 1.0)]
        assert oracle.compare_range(obj, 40.0, extra)["false_positives"] == [9999]


class TestDifferentialFuzzing:
    def test_faults_off_machine_is_oracle_exact(self):
        run_state_machine_as_test(DifferentialMachine, settings=_MACHINE_SETTINGS)

    def test_faults_on_machine_terminates_without_false_positives(self):
        run_state_machine_as_test(FaultyTransportMachine, settings=_MACHINE_SETTINGS)

    def test_25_seeded_runs_faults_off_zero_false_negatives(self):
        """Acceptance: 25 seeded differential runs, faults off, must agree
        with the linear-scan oracle exactly — ids and bit-identical
        distances, zero false negatives."""
        for seed in range(25):
            sc = random_scenario(
                seed, n_ops=8, n_nodes=8, n_objects=48, dim=3, k=3, m=16,
            )
            report = execute_scenario(sc, differential=True)
            assert report.mismatches == [], f"seed {seed}: {report.mismatches}"
            assert report.checks["violations"] == 0

    def test_seeded_runs_faults_on_hold_weakened_contract(self):
        # under loss, recall may drop but invariants and no-false-positives
        # must still hold (execute_scenario only records false negatives as
        # mismatches when faults are off)
        for seed in (0, 1, 2):
            sc = random_scenario(
                seed, n_ops=8, n_nodes=8, n_objects=48, dim=3, k=3, m=16,
                loss=0.1, jitter=0.005, fault_seed=seed,
            )
            report = execute_scenario(sc, differential=True)
            assert report.mismatches == [], f"seed {seed}: {report.mismatches}"


class TestSeededBugDetection:
    def test_fuzzer_finds_and_shrinks_ownership_bug(self):
        """Acceptance: an intentionally misplaced entry (corrupted key ->
        wrong owner) must surface as a differential mismatch, and Hypothesis
        must shrink the failing sequence to a small scenario."""
        with pytest.raises(AssertionError, match="differential mismatch") as exc:
            run_state_machine_as_test(
                BuggyOwnershipMachine,
                settings=settings(
                    max_examples=40,
                    stateful_step_count=10,
                    deadline=None,
                    suppress_health_check=list(HealthCheck),
                ),
            )
        # Hypothesis reports the *minimal* failing example: a single query
        # op is enough to expose the bug, so the shrunk failure must not
        # need more than a couple of steps
        note = str(exc.value.__notes__) if hasattr(exc.value, "__notes__") else ""
        assert "mismatch" in str(exc.value) or "mismatch" in note

    def test_buggy_machine_minimal_repro_is_single_query(self):
        # deterministic witness, independent of Hypothesis' search: a wide
        # range query centred on the misplaced object misses it
        from repro.check.fuzz import BuggyOwnershipMachine

        machine = BuggyOwnershipMachine()
        with pytest.raises(AssertionError, match="false negative"):
            # qseed 1 with radius 80 in the [0,100]^3 box covers object 0
            machine._apply(["range", 1, 80.0])
