"""Property-based tests of the distributed range query against exact search.

The strongest invariant in the system: for ANY dataset, ring size, landmark
count, rotation, radius and query point, the routed range query must return
exactly the objects within the radius (fixed surrogate mode, unbounded
per-node top-k).  Hypothesis drives the parameters.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.platform import IndexPlatform
from repro.dht.ring import ChordRing
from repro.eval.ground_truth import exact_range
from repro.metric.vector import EuclideanMetric, ManhattanMetric

DIM = 3


def _run(platform, data, metric, qi, radius):
    proto, stats = platform.protocol("idx", top_k=10**6)
    index = platform.indexes["idx"]
    platform.sim.reset()
    proto.issue(index.make_query(data[qi], radius, qid=0), platform.ring.nodes()[0])
    platform.sim.run()
    return sorted(e.object_id for e in stats.for_query(0).entries)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    n_nodes=st.integers(2, 40),
    k=st.integers(1, 6),
    m=st.sampled_from([12, 20, 32, 64]),
    rotation=st.booleans(),
    radius=st.floats(0.0, 250.0),
    metric_cls=st.sampled_from([EuclideanMetric, ManhattanMetric]),
)
def test_range_query_equals_exact_scan(seed, n_nodes, k, m, rotation, radius, metric_cls):
    rng = np.random.default_rng(seed)
    n_obj = 120
    centers = rng.uniform(0, 100, size=(3, DIM))
    data = np.clip(
        centers[rng.integers(0, 3, n_obj)] + rng.normal(0, 8, (n_obj, DIM)), 0, 100
    )
    metric = metric_cls(box=(0, 100), dim=DIM)
    ring = ChordRing.build(n_nodes, m=m, seed=seed)
    platform = IndexPlatform(ring)
    platform.create_index(
        "idx", data, metric, k=k, selection="greedy", sample_size=60,
        rotation=rotation, seed=seed,
    )
    qi = int(rng.integers(0, n_obj))
    got = _run(platform, data, metric, qi, radius)
    want = sorted(exact_range(data, metric, data[qi], radius).tolist())
    assert got == want


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    radius=st.floats(1.0, 150.0),
)
def test_query_cost_bounded(seed, radius):
    """Messages and hops stay within sane structural bounds for any query."""
    rng = np.random.default_rng(seed)
    data = rng.uniform(0, 100, size=(150, DIM))
    metric = EuclideanMetric(box=(0, 100), dim=DIM)
    n_nodes = 24
    ring = ChordRing.build(n_nodes, m=20, seed=seed)
    platform = IndexPlatform(ring)
    platform.create_index("idx", data, metric, k=3, sample_size=80, seed=seed)
    proto, stats = platform.protocol("idx")
    index = platform.indexes["idx"]
    qi = int(rng.integers(0, 150))
    proto.issue(index.make_query(data[qi], radius, qid=0), ring.nodes()[0])
    platform.sim.run()
    st_ = stats.for_query(0)
    # Hops chain through owners for wide queries (progressive refinement is
    # sequential along the ring), bounded by visits x per-visit routing.
    assert st_.max_hops <= n_nodes * 20
    assert len(st_.index_nodes) <= n_nodes
    # a node replies once per subquery slice it resolves; slices are bounded
    # by the query messages that delivered them (each message bundles >= 1)
    assert st_.result_messages >= 1
    assert st_.result_messages <= 2 * (st_.query_messages + 1) * 8
