"""Tests for dynamic entry updates, k-NN search, replication and failures."""

import numpy as np
import pytest

from repro.core.knn import knn_search
from repro.core.platform import IndexPlatform
from repro.core.updates import UpdateProtocol, entry_message_size
from repro.dht.ring import ChordRing
from repro.eval.ground_truth import exact_range, exact_top_k
from repro.metric.vector import EuclideanMetric
from repro.sim.network import ConstantLatency

DIM = 4
METRIC = EuclideanMetric(box=(0, 100), dim=DIM)


def _platform(n_nodes=20, n_obj=400, seed=0, replication=1, index_on=None):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, 100, size=(3, DIM))
    data = np.clip(centers[rng.integers(0, 3, n_obj)] + rng.normal(0, 5, (n_obj, DIM)), 0, 100)
    latency = ConstantLatency(n_nodes, delay=0.01)
    ring = ChordRing.build(n_nodes, m=22, seed=seed, latency=latency, pns=False)
    platform = IndexPlatform(ring)
    subset = data if index_on is None else data[:index_on]
    platform.create_index(
        "idx", data, METRIC, k=3, selection="kmeans", sample_size=min(200, len(subset)),
        replication=replication, seed=seed,
    )
    return platform, data


def _range_ids(platform, data, qi, radius):
    proto, stats = platform.protocol("idx", top_k=10**6)
    index = platform.indexes["idx"]
    platform.sim.reset()
    proto.issue(index.make_query(data[qi], radius, qid=0), platform.ring.nodes()[0])
    platform.sim.run()
    return sorted(e.object_id for e in stats.for_query(0).entries)


class TestUpdates:
    def test_entry_message_size(self):
        assert entry_message_size(1, 5) == 24 + (20 + 16)
        assert entry_message_size(3, 2) == 24 + 3 * (8 + 16)

    def test_delete_removes_from_results(self):
        platform, data = _platform()
        up = UpdateProtocol(platform.indexes["idx"])
        target = _range_ids(platform, data, 0, 25.0)
        assert 0 in target
        assert up.delete(0)
        after = _range_ids(platform, data, 0, 25.0)
        assert 0 not in after
        assert set(after) == set(target) - {0}

    def test_delete_missing_returns_false(self):
        platform, _ = _platform()
        up = UpdateProtocol(platform.indexes["idx"])
        assert up.delete(0)
        assert not up.delete(0)
        assert up.stats.deletes == 1

    def test_insert_after_delete_restores(self):
        platform, data = _platform()
        up = UpdateProtocol(platform.indexes["idx"])
        before = _range_ids(platform, data, 5, 25.0)
        up.delete(5)
        up.insert(5)
        assert _range_ids(platform, data, 5, 25.0) == before

    def test_incremental_build_matches_bulk(self):
        """Index built by protocol inserts == index built in bulk."""
        platform_bulk, data = _platform(seed=3)
        # fresh platform indexing only the first 300; insert the rest
        platform_inc, data2 = _platform(seed=3)
        np.testing.assert_array_equal(data, data2)
        idx = platform_inc.indexes["idx"]
        up = UpdateProtocol(idx)
        removed = list(range(300, 400))
        for oid in removed:
            up.delete(oid)
        for oid in removed:
            up.insert(oid)
        for qi in (0, 350):
            assert _range_ids(platform_inc, data, qi, 30.0) == _range_ids(
                platform_bulk, data, qi, 30.0
            )

    def test_insert_many(self):
        platform, data = _platform()
        idx = platform.indexes["idx"]
        up = UpdateProtocol(idx)
        for oid in (1, 2, 3):
            up.delete(oid)
        up.insert_many([1, 2, 3])
        assert up.stats.inserts == 3
        got = _range_ids(platform, data, 1, 20.0)
        want = sorted(exact_range(data, METRIC, data[1], 20.0).tolist())
        assert got == want

    def test_update_costs_accounted(self):
        platform, _ = _platform()
        up = UpdateProtocol(platform.indexes["idx"])
        up.delete(7)
        up.insert(7)
        assert up.stats.messages >= 2
        assert up.stats.bytes > 0
        assert up.stats.mean_hops >= 0.0

    def test_entries_conserved_after_updates(self):
        platform, _ = _platform()
        idx = platform.indexes["idx"]
        up = UpdateProtocol(idx)
        up.delete(0)
        assert idx.total_entries() == 399
        up.insert(0)
        assert idx.total_entries() == 400
        assert idx.load_distribution().sum() == 400


class TestKnn:
    def test_exact_against_ground_truth(self):
        platform, data = _platform(n_obj=500, seed=1)
        for qi in (0, 123, 400):
            res = knn_search(platform, "idx", data[qi], k=10)
            truth = exact_top_k(data, METRIC, data[qi], 10)
            assert res.exact
            assert set(res.object_ids.tolist()) == set(int(t) for t in truth)

    def test_distances_sorted(self):
        platform, data = _platform(seed=2)
        res = knn_search(platform, "idx", data[3], k=8)
        assert np.all(np.diff(res.distances) >= 0)

    def test_radius_grows_until_certified(self):
        platform, data = _platform(seed=2)
        res = knn_search(platform, "idx", data[3], k=10, initial_radius=0.5)
        assert res.rounds > 1
        assert res.final_radius > 0.5

    def test_large_initial_radius_one_round(self):
        platform, data = _platform(seed=2)
        res = knn_search(platform, "idx", data[3], k=5, initial_radius=METRIC.upper_bound)
        assert res.rounds == 1 and res.exact

    def test_cost_accumulates_over_rounds(self):
        platform, data = _platform(seed=2)
        res = knn_search(platform, "idx", data[3], k=10, initial_radius=1.0)
        assert res.query_messages > 0
        assert res.index_nodes >= 1

    def test_k_larger_than_dataset(self):
        platform, data = _platform(n_obj=30, seed=4)
        res = knn_search(platform, "idx", data[0], k=50)
        assert len(res.object_ids) == 30
        assert res.exact


class TestReplication:
    def test_replicas_increase_storage_not_results(self):
        p1, data = _platform(seed=5, replication=1)
        p3, data3 = _platform(seed=5, replication=3)
        np.testing.assert_array_equal(data, data3)
        assert p3.indexes["idx"].load_distribution().sum() == 3 * 400
        assert p1.indexes["idx"].load_distribution().sum() == 400
        # identical query answers (replicas invisible while primaries live)
        for qi in (0, 100):
            assert _range_ids(p1, data, qi, 30.0) == _range_ids(p3, data, qi, 30.0)

    def test_no_duplicate_results_with_replication(self):
        platform, data = _platform(seed=5, replication=3)
        ids = _range_ids(platform, data, 0, 40.0)
        assert len(ids) == len(set(ids))

    def test_crash_without_replication_loses_data(self):
        platform, data = _platform(seed=6, replication=1)
        idx = platform.indexes["idx"]
        # find a node holding entries
        victim = max(idx.shards, key=lambda n: idx.shards[n].load)
        lost = set(int(o) for o in idx.shards[victim].object_ids)
        assert lost
        platform.fail_node(victim)
        survivors = set(int(o) for o in idx.surviving_object_ids())
        assert survivors == set(range(400)) - lost

    def test_crash_with_replication_loses_nothing(self):
        platform, data = _platform(seed=6, replication=2)
        idx = platform.indexes["idx"]
        victim = max(idx.shards, key=lambda n: idx.shards[n].load)
        platform.fail_node(victim)
        assert len(idx.surviving_object_ids()) == 400

    def test_queries_survive_crash_with_replication(self):
        platform, data = _platform(seed=7, replication=2)
        idx = platform.indexes["idx"]
        want = {}
        for qi in (0, 50):
            want[qi] = _range_ids(platform, data, qi, 30.0)
        victim = max(idx.shards, key=lambda n: idx.shards[n].load)
        platform.fail_node(victim)
        for qi in (0, 50):
            assert _range_ids(platform, data, qi, 30.0) == want[qi]

    def test_rebuild_restores_replication(self):
        platform, data = _platform(seed=8, replication=2)
        idx = platform.indexes["idx"]
        victim = max(idx.shards, key=lambda n: idx.shards[n].load)
        platform.fail_node(victim)
        lost = idx.rebuild_from_shards()
        assert lost == 0
        assert idx.load_distribution().sum() == 2 * 400
        # a second crash (different node) still loses nothing
        idx2 = platform.indexes["idx"]
        victim2 = max(idx2.shards, key=lambda n: idx2.shards[n].load)
        platform.fail_node(victim2)
        assert len(idx2.surviving_object_ids()) == 400

    def test_replication_capped_by_ring_size(self):
        platform, data = _platform(n_nodes=2, seed=9, replication=5)
        idx = platform.indexes["idx"]
        assert idx.load_distribution().sum() == 2 * 400

    def test_invalid_replication_rejected(self):
        rng = np.random.default_rng(0)
        ring = ChordRing.build(4, m=16, seed=0)
        platform = IndexPlatform(ring)
        with pytest.raises(ValueError):
            platform.create_index(
                "x", rng.uniform(0, 100, (20, DIM)), METRIC, k=2, replication=0
            )
