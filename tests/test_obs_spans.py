"""Span recorder, sinks, tree reconstruction and the legacy-trace bridge."""

import json

import pytest

from repro.obs.spans import (
    JsonlSpanSink,
    MemorySpanSink,
    Span,
    SpanRecorder,
    SpanTree,
    spans_from_query_trace,
)
from repro.sim.transport import MemoryTraceSink, MessageTrace


class FakeSim:
    def __init__(self):
        self.now = 0.0


class TestMemorySpanSink:
    def _sink(self):
        sink = MemorySpanSink()
        rec = SpanRecorder(sink)
        rec.begin_query(1)
        rec.event(1, "send", node=4)
        rec.event(2, "send", node=5)
        rec.event(1, "result", node=4)
        rec.finish_query(1)
        return sink

    def test_filters(self):
        sink = self._sink()
        assert {s.kind for s in sink.for_query(1)} == {"send", "result", "query"}
        assert len(sink.by_kind("send")) == 2
        assert sink.qids() == {1, 2}
        assert len(sink) == 4  # qid-2 root never finished nor flushed


class TestSpanRecorder:
    def test_parenting_via_stack_and_query_root(self):
        sink = MemorySpanSink()
        rec = SpanRecorder(sink)
        root = rec.begin_query(7)
        assert rec.begin_query(7) is root  # idempotent
        # no stack: parent defaults to the query root
        sid_a = rec.event(7, "send")
        assert sink.records[-1].parent == root.sid
        # with a pushed context the stack top wins
        rec.push(sid_a)
        try:
            rec.event(7, "route")
        finally:
            rec.pop()
        assert sink.records[-1].parent == sid_a
        assert rec.context(7) == root.sid
        rec.finish_query(7, status="complete")
        assert sink.records[-1].kind == "query"
        assert sink.records[-1].status == "complete"

    def test_timestamps_follow_bound_sim(self):
        sim = FakeSim()
        rec = SpanRecorder(MemorySpanSink())
        rec.bind(sim)
        sim.now = 4.5
        sid = rec.event(1, "send")
        span = rec.sinks[0].records[-1]
        assert span.sid == sid and span.start == 4.5 and span.end == 4.5

    def test_flush_open_emits_unfinished_spans(self):
        sink = MemorySpanSink()
        rec = SpanRecorder(sink)
        rec.begin_query(3)
        interval = rec.begin(3, "resolve")
        rec.close()  # flushes both open spans
        flushed = {s.kind: s for s in sink.records}
        assert flushed["query"].end is None
        assert flushed["resolve"].end is None
        # finishing after a flush is a no-op, not a duplicate emit
        rec.finish(interval)
        assert len(sink.records) == 2


class TestJsonlSpanSink:
    def test_writes_complete_file_even_on_error(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with pytest.raises(RuntimeError):
            with JsonlSpanSink(path) as sink:
                sink.record(Span(sid=0, qid=1, kind="send"))
                raise RuntimeError("boom")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "send"

    def test_close_idempotent_and_filelike_left_open(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with open(path, "w") as fh:
            sink = JsonlSpanSink(fh)
            sink.record(Span(sid=0, qid=1, kind="x"))
            sink.close()
            sink.close()
            assert not fh.closed  # caller owns file-like targets


class TestSpanTree:
    def _records(self):
        return [
            {"sid": 0, "qid": 1, "kind": "query", "start": 0.0, "end": 2.0},
            {"sid": 1, "qid": 1, "kind": "send", "parent": 0, "start": 0.1,
             "end": 0.1, "node": 9, "attrs": {"msg_kind": "query:routing", "size": 40}},
            {"sid": 2, "qid": 1, "kind": "result", "parent": 1, "start": 1.0,
             "end": 1.0, "attrs": {"results": 3}},
            {"sid": 5, "qid": 2, "kind": "query", "start": 0.0, "end": 1.0},
        ]

    def test_from_records_filters_by_qid(self):
        tree = SpanTree.from_records(self._records(), qid=1)
        assert len(tree) == 3
        assert [r.sid for r in tree.roots()] == [0]
        assert [s.sid for s in tree.leaves()] == [2]
        assert len(tree.of_kind("send")) == 1

    def test_duplicate_sids_later_wins(self):
        recs = self._records() + [
            {"sid": 0, "qid": 1, "kind": "query", "start": 0.0, "end": 3.0,
             "status": "complete"},
        ]
        tree = SpanTree.from_records(recs, qid=1)
        assert len(tree) == 3
        assert tree.by_sid[0].status == "complete"

    def test_render_shows_tree_structure(self):
        tree = SpanTree.from_records(self._records(), qid=1)
        out = tree.render()
        assert "query" in out and "query:routing" in out and "3 results" in out
        assert "`--" in out  # ascii branches
        assert "40B" in out

    def test_render_truncates(self):
        tree = SpanTree.from_records(self._records(), qid=1)
        out = tree.render(max_spans=1)
        assert "more span(s)" in out

    def test_from_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w") as fh:
            for r in self._records():
                fh.write(json.dumps(r) + "\n")
        tree = SpanTree.from_jsonl(path, qid=2)
        assert len(tree) == 1


class TestLegacyTraceBridge:
    def test_query_trace_to_spans(self):
        from repro.core.trace import QueryTrace, TraceEvent

        qt = QueryTrace(qid=9)
        qt.events.append(TraceEvent(
            kind="route", node_id=1, node_name="n1", prefix_key=0,
            prefix_len=0, hops=0, time=1.0))
        qt.events.append(TraceEvent(
            kind="solve", node_id=2, node_name="n2", prefix_key=4,
            prefix_len=2, hops=1, time=2.0, key_lo=0, key_hi=8, results=5))
        spans = qt.to_spans()
        assert spans[0].kind == "query" and spans[0].qid == 9
        assert all(s.parent == spans[0].sid for s in spans[1:])
        solve = [s for s in spans if s.kind == "solve"][0]
        assert solve.attrs["results"] == 5
        # the converted records render with the same tooling
        tree = SpanTree.from_records(spans, qid=9)
        assert len(tree.roots()) == 1
        # emitting through a recorder fans out to its sinks
        sink = MemorySpanSink()
        spans_from_query_trace(qt, recorder=SpanRecorder(sink))
        assert len(sink) == 3


class TestMemoryTraceSinkFilters:
    """The transport-level sink keeps its filter API (satellite check)."""

    def _sink(self):
        sink = MemoryTraceSink()
        sink.record(MessageTrace(
            kind="query:routing", src=1, dst=2, src_host=0, dst_host=1,
            size=40, sent_at=0.0, arrived_at=0.1, status="delivered", qid=1))
        sink.record(MessageTrace(
            kind="result", src=2, dst=1, src_host=1, dst_host=0,
            size=20, sent_at=0.2, status="dropped:loss", qid=1))
        sink.record(MessageTrace(
            kind="maintenance:ping", src=3, dst=4, src_host=2, dst_host=3,
            size=8, sent_at=0.3, arrived_at=0.4, status="delivered"))
        return sink

    def test_filters(self):
        sink = self._sink()
        assert len(sink) == 3
        assert len(sink.for_query(1)) == 2
        assert [t.kind for t in sink.by_kind("result")] == ["result"]
        assert [t.status for t in sink.dropped()] == ["dropped:loss"]
        assert len(sink.by_status("delivered")) == 2
