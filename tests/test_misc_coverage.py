"""Coverage for small public surfaces: MetricSpace, report formatting,
bit-helper edges, simulator corners, hashing determinism."""


import numpy as np
import pytest

from repro.eval.report import _fmt, format_dict, format_sweep, format_table
from repro.metric.base import MetricSpace
from repro.metric.vector import EuclideanMetric
from repro.sim.engine import Simulator
from repro.util.bits import clear_trailing, key_to_bits, pad_prefix, prefix_of


class TestMetricSpace:
    def test_wrapper(self):
        data = np.array([[0.0, 0.0], [3.0, 4.0], [6.0, 8.0]])
        space = MetricSpace(objects=data, metric=EuclideanMetric(), name="pts")
        assert len(space) == 3
        np.testing.assert_array_equal(space[1], [3.0, 4.0])
        np.testing.assert_allclose(space.distances_from(np.zeros(2)), [0.0, 5.0, 10.0])
        assert space.name == "pts"


class TestReportFormatting:
    def test_fmt_variants(self):
        assert _fmt(0.0) == "0"
        assert _fmt(1234.5) == "1234"
        assert _fmt(3.14159) == "3.14"
        assert _fmt(0.01234) == "0.0123"
        assert _fmt("abc") == "abc"
        assert _fmt(7) == "7"

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out

    def test_dict_empty(self):
        assert format_dict({}) == ""
        assert format_dict({}, title="T") == "T"

    def test_sweep_single_scheme(self):
        from repro.eval.runner import ExperimentConfig, ExperimentResult, Scheme, SchemeResult

        cfg = ExperimentConfig(schemes=(Scheme("X", "greedy", 2),), range_factors=(0.1,))
        res = ExperimentResult(config=cfg)
        sr = SchemeResult(scheme=cfg.schemes[0])
        sr.rows = [{"range_factor": 0.1, "recall": 0.5, "hops": 3.0}]
        res.schemes = [sr]
        out = format_sweep(res, metrics=("recall", "hops"))
        assert "X" in out and "10%" in out

    def test_experiment_result_scheme_lookup(self):
        from repro.eval.runner import ExperimentConfig, ExperimentResult, Scheme, SchemeResult

        cfg = ExperimentConfig(schemes=(Scheme("X", "greedy", 2),))
        res = ExperimentResult(config=cfg)
        res.schemes = [SchemeResult(scheme=cfg.schemes[0])]
        assert res.scheme("X").scheme.label == "X"
        with pytest.raises(KeyError):
            res.scheme("nope")


class TestBitsEdges:
    def test_clear_trailing_alias(self):
        assert clear_trailing(0b1111, 2, 4) == prefix_of(0b1111, 2, 4)

    def test_m64(self):
        key = (1 << 64) - 1
        assert key_to_bits(key, 64) == "1" * 64
        assert prefix_of(key, 64, 64) == key
        assert pad_prefix(0b1, 1, 64) == 1 << 63

    def test_pad_zero_length(self):
        assert pad_prefix(0, 0, 8) == 0


class TestSimulatorCorners:
    def test_run_empty_queue_with_until(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_run_empty_no_until(self):
        sim = Simulator()
        sim.run()
        assert sim.now == 0.0

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule_in(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_until_exactly_at_event(self):
        sim = Simulator()
        hits = []
        sim.schedule_at(2.0, hits.append, 1)
        sim.run(until=2.0)
        assert hits == [1]


class TestHashingDeterminism:
    def test_node_ids_stable_across_rings(self):
        from repro.dht.ring import ChordRing

        a = ChordRing.build(10, m=20, seed=0)
        b = ChordRing.build(10, m=20, seed=0)
        assert [n.id for n in a.nodes()] == [n.id for n in b.nodes()]

    def test_rotation_offsets_distinct_per_index(self):
        from repro.dht.hashing import rotation_offset

        offs = {rotation_offset(f"index-{i}", 32) for i in range(20)}
        assert len(offs) == 20


class TestBoundedMetricEdge:
    def test_infinite_radius(self):
        from repro.metric.transforms import BoundedMetric

        assert BoundedMetric.to_bounded_radius(float("inf")) == 1.0
        m = BoundedMetric(EuclideanMetric())
        assert m.to_inner_radius(1.0) == float("inf")
