"""Landmark selection and projection (paper §3.1, Algorithm 1).

The landmark-based index space maps every object ``x`` of a metric space
``(D, d)`` to the vector ``(d(x, l1), ..., d(x, lk))`` over a pre-selected
landmark set ``L``.  The triangle inequality makes the mapping contractive —
``max_i |d(x, l_i) - d(y, l_i)| <= d(x, y)`` — which is what lets a
near-neighbour query ``(q, r)`` be answered from the hypercube of side ``2r``
around the query's image (no false negatives).

Two selection schemes from the paper:

* **greedy** (Algorithm 1): start from a random sample element, repeatedly
  add the sample object farthest from the chosen set (max-min distance);
* **k-means**: cluster the sample and use the cluster *centroids* — this
  needs vector structure, so for black-box metrics we fall back to
  **k-medoids** (the cluster member closest to the centroid role), which the
  platform exposes as ``"kmedoids"``.

A well-known node performs selection once at system initiation on a random
sample of the network's data (§3.1); new nodes fetch the set from any member.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np
from scipy import sparse

from repro.metric.base import Metric
from repro.util.rng import as_rng

__all__ = [
    "LandmarkSet",
    "greedy_selection",
    "kmeans_selection",
    "kmedoids_selection",
    "select_landmarks",
    "SELECTION_SCHEMES",
]


@dataclass
class LandmarkSet:
    """A chosen set of landmarks bound to its metric.

    ``landmarks`` is a sequence of domain objects (rows of an array, strings,
    sparse rows...).  :meth:`project` computes index-space points for a batch
    of objects with one vectorised ``one_to_many`` pass per landmark.
    """

    landmarks: Any
    metric: Metric
    scheme: str = field(default="greedy")

    @property
    def k(self) -> int:
        """Number of landmarks == dimensionality of the index space."""
        if hasattr(self.landmarks, "shape") and getattr(self.landmarks, "ndim", 1) >= 2:
            return int(self.landmarks.shape[0])
        return len(self.landmarks)

    def _landmark(self, i: int) -> Any:
        return self.landmarks[i]

    def project(self, objects: Any) -> np.ndarray:
        """Map ``objects`` to the k-dimensional index space.

        Returns an ``(n_objects, k)`` float64 array whose column ``i`` holds
        ``d(x, l_i)``, computed as one ``many_to_many`` distance matrix.
        The metric's column-exactness contract (column ``i`` bit-identical
        to ``one_to_many(l_i, objects)``) is what keeps single-object and
        batch projection on the same floating-point path.
        """
        return self.metric.many_to_many(objects, self.landmarks)

    def project_one(self, obj: Any) -> np.ndarray:
        """Map a single object to its index-space point (k-vector).

        Delegates to the batch kernel with a singleton batch so the
        floating-point path is bit-identical to :meth:`project` — a
        zero-radius query for an indexed object must land exactly on its
        stored index point.
        """
        from scipy import sparse

        if isinstance(obj, np.ndarray) and obj.ndim == 1:
            batch: Any = obj[None, :]
        elif sparse.issparse(obj):
            batch = obj
        else:
            batch = [obj]
        return self.project(batch)[0]


def _take(sample: Any, idx: Any) -> Any:
    """Index a domain sample that may be an array, CSR matrix or list."""
    if sparse.issparse(sample) or isinstance(sample, np.ndarray):
        return sample[idx]
    if isinstance(idx, (list, np.ndarray)):
        return [sample[int(i)] for i in np.atleast_1d(idx)]
    return sample[int(idx)]


def greedy_selection(
    sample: Any,
    metric: Metric,
    k: int,
    seed: int | np.random.Generator | None = 0,
) -> LandmarkSet:
    """Algorithm 1 (GreedySelection): max-min farthest-point traversal.

    Starts from a random sample object; each round adds the object whose
    minimum distance to the current landmark set is maximal, keeping the
    landmarks dispersed in the original space.
    """
    rng = as_rng(seed)
    n = sample.shape[0] if hasattr(sample, "shape") else len(sample)
    if k > n:
        raise ValueError(f"cannot select {k} landmarks from a sample of {n}")
    chosen = [int(rng.integers(0, n))]
    # min distance from every sample object to the chosen set, updated
    # incrementally — one one_to_many pass per selected landmark.
    min_dist = metric.one_to_many(_take(sample, chosen[0]), sample)
    while len(chosen) < k:
        min_dist[chosen] = -np.inf  # never re-pick a landmark
        nxt = int(np.argmax(min_dist))
        chosen.append(nxt)
        np.minimum(min_dist, metric.one_to_many(_take(sample, nxt), sample), out=min_dist)
    return LandmarkSet(landmarks=_take(sample, chosen), metric=metric, scheme="greedy")


def _lloyd(
    X: np.ndarray,
    k: int,
    rng: np.random.Generator,
    iters: int,
    spherical: bool,
) -> np.ndarray:
    """Lloyd's k-means on dense rows; spherical variant normalises rows/centroids.

    Initialisation is k-means++ style (distance-weighted seeding).
    """
    n = X.shape[0]
    if spherical:
        norms = np.linalg.norm(X, axis=1)
        norms[norms == 0] = 1.0
        X = X / norms[:, None]
    centers = np.empty((k, X.shape[1]))
    first = int(rng.integers(0, n))
    centers[0] = X[first]
    d2 = np.full(n, np.inf)
    for c in range(1, k):
        diff = X - centers[c - 1]
        np.minimum(d2, np.einsum("ij,ij->i", diff, diff), out=d2)
        total = d2.sum()
        if total <= 0:
            centers[c:] = X[rng.integers(0, n, size=k - c)]
            break
        centers[c] = X[int(rng.choice(n, p=d2 / total))]
    for _ in range(iters):
        # assignment: nearest centre (squared-Euclidean expansion trick)
        sq = (
            np.einsum("ij,ij->i", X, X)[:, None]
            - 2.0 * (X @ centers.T)
            + np.einsum("ij,ij->i", centers, centers)[None, :]
        )
        assign = np.argmin(sq, axis=1)
        new_centers = np.zeros_like(centers)
        counts = np.bincount(assign, minlength=k).astype(np.float64)
        np.add.at(new_centers, assign, X)
        empty = counts == 0
        counts[empty] = 1.0
        new_centers /= counts[:, None]
        if empty.any():  # re-seed empty clusters at far points
            far = np.argsort(-np.min(sq, axis=1))[: int(empty.sum())]
            new_centers[empty] = X[far]
        if spherical:
            cn = np.linalg.norm(new_centers, axis=1)
            cn[cn == 0] = 1.0
            new_centers /= cn[:, None]
        if np.allclose(new_centers, centers):
            centers = new_centers
            break
        centers = new_centers
    return centers


def _spherical_lloyd_sparse(
    X: sparse.csr_matrix,
    k: int,
    rng: np.random.Generator,
    iters: int,
) -> np.ndarray:
    """Spherical k-means on CSR rows without densifying the sample.

    Rows are L2-normalised; assignment maximises cosine similarity; centroids
    are the (re-normalised) mean of assigned rows, accumulated with one
    sparse indicator product per iteration.  Returns dense ``(k, dim)``
    centroids — for k ~ 10 this is small even at a 233k-term vocabulary.
    """
    n = X.shape[0]
    norms = np.sqrt(np.asarray(X.multiply(X).sum(axis=1)).ravel())
    norms[norms == 0] = 1.0
    Xn = sparse.diags(1.0 / norms) @ X
    seeds = rng.choice(n, size=k, replace=False)
    centers = np.asarray(Xn[seeds].todense(), dtype=np.float64)
    for _ in range(iters):
        sim = np.asarray((Xn @ centers.T))  # (n, k) dense similarities
        assign = np.argmax(sim, axis=1)
        indicator = sparse.csr_matrix(
            (np.ones(n), (assign, np.arange(n))), shape=(k, n)
        )
        sums = np.asarray((indicator @ Xn).todense(), dtype=np.float64)
        counts = np.bincount(assign, minlength=k).astype(np.float64)
        empty = counts == 0
        if empty.any():  # re-seed empty clusters at poorly-fit rows
            worst = np.argsort(sim[np.arange(n), assign])[: int(empty.sum())]
            sums[empty] = np.asarray(Xn[worst].todense(), dtype=np.float64)
            counts[empty] = 1.0
        cn = np.linalg.norm(sums, axis=1)
        cn[cn == 0] = 1.0
        new_centers = sums / cn[:, None]
        if np.allclose(new_centers, centers):
            centers = new_centers
            break
        centers = new_centers
    return centers


def kmeans_selection(
    sample: Any,
    metric: Metric,
    k: int,
    seed: int | np.random.Generator | None = 0,
    iters: int = 25,
) -> LandmarkSet:
    """K-means clustering selection: landmarks are cluster *centroids*.

    Requires vector structure.  Dense arrays use plain Lloyd's; sparse
    matrices (document vectors) use the spherical variant — centroids of
    normalised vectors — which matches clustering under the angular metric
    and yields dense landmark vectors with "more terms", the property the
    paper credits for k-means beating greedy on TREC (§4.3).
    """
    rng = as_rng(seed)
    if sparse.issparse(sample):
        centers = _spherical_lloyd_sparse(sample.tocsr(), k, rng, iters)
        return LandmarkSet(landmarks=centers, metric=metric, scheme="kmeans")
    try:
        X = np.asarray(sample, dtype=np.float64)
    except (TypeError, ValueError):
        X = None
    if X is None or X.ndim != 2:
        raise TypeError(
            "k-means landmark selection needs vector data; "
            "use scheme='kmedoids' for black-box metric domains"
        )
    centers = _lloyd(X, k, rng, iters, spherical=False)
    return LandmarkSet(landmarks=centers, metric=metric, scheme="kmeans")


def kmedoids_selection(
    sample: Any,
    metric: Metric,
    k: int,
    seed: int | np.random.Generator | None = 0,
    iters: int = 10,
) -> LandmarkSet:
    """K-medoids (PAM-style) selection for black-box metric domains.

    Plays the role of k-means when centroids cannot be formed (strings,
    point sets): medoids are actual sample objects minimising the summed
    distance of their cluster.
    """
    rng = as_rng(seed)
    n = sample.shape[0] if hasattr(sample, "shape") else len(sample)
    if k > n:
        raise ValueError(f"cannot select {k} medoids from a sample of {n}")
    medoid_idx = list(rng.choice(n, size=k, replace=False))
    D = None
    if n <= 3000:  # precompute full matrix when affordable
        D = metric.pairwise(sample, sample)
    for _ in range(iters):
        if D is not None:
            dist_to_medoids = D[:, medoid_idx]
        else:
            dist_to_medoids = np.stack(
                [metric.one_to_many(_take(sample, mi), sample) for mi in medoid_idx], axis=1
            )
        assign = np.argmin(dist_to_medoids, axis=1)
        new_medoids = []
        for c in range(k):
            members = np.flatnonzero(assign == c)
            if len(members) == 0:
                new_medoids.append(medoid_idx[c])
                continue
            if D is not None:
                sub = D[np.ix_(members, members)]
            else:
                sub = metric.pairwise(_take(sample, members), _take(sample, members))
            new_medoids.append(int(members[np.argmin(sub.sum(axis=1))]))
        if new_medoids == medoid_idx:
            break
        medoid_idx = new_medoids
    return LandmarkSet(landmarks=_take(sample, medoid_idx), metric=metric, scheme="kmedoids")


#: Registry used by the platform's ``selection=`` parameter.
SELECTION_SCHEMES = {
    "greedy": greedy_selection,
    "kmeans": kmeans_selection,
    "kmedoids": kmedoids_selection,
}


def select_landmarks(
    scheme: str,
    sample: Any,
    metric: Metric,
    k: int,
    seed: int | np.random.Generator | None = 0,
) -> LandmarkSet:
    """Dispatch to a selection scheme by name (``greedy``/``kmeans``/``kmedoids``)."""
    try:
        fn = SELECTION_SCHEMES[scheme]
    except KeyError:
        raise ValueError(
            f"unknown landmark selection scheme {scheme!r}; "
            f"expected one of {sorted(SELECTION_SCHEMES)}"
        ) from None
    return fn(sample, metric, k, seed)
