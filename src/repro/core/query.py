"""Range-query objects and query splitting (paper §3.3, Algorithm 4).

A near-neighbour query ``(q, r)`` in the metric space becomes the range query
over the hypercube of side ``2r`` centred at the query's index point, clipped
to the index-space boundary.  Each in-flight (sub)query carries a
``(prefix_key, prefix_length)`` identifying the smallest hypercuboid that
completely holds its region; routing progressively extends the prefix.

``query_split(q, p)`` is Algorithm 4: it reconstructs the splitting range of
dimension ``j = (p-1) mod k`` from the prefix bits, computes the midpoint,
and either advances the query wholly into one half (extending the prefix by
one bit) or splits it into two subqueries, one per half.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.index_space import IndexSpaceBounds
from repro.core.lph import dimension_range, smallest_enclosing_prefix
from repro.util.bits import set_bit_at

__all__ = ["Rect", "RangeQuery", "QidAllocator", "query_split"]


class QidAllocator:
    """A scoped monotonic query-id source.

    Query ids key per-query stats, message traces and lifecycle records, so
    they must be unique within whatever shares those tables — a platform, or
    a standalone protocol.  Each :class:`repro.core.platform.IndexPlatform`
    owns one allocator (shared by all of its indexes), replacing the old
    process-global counter: two platforms built in one process now draw the
    same id sequence, which keeps stats and traces reproducible across
    repeated runs, and concurrent queries on one platform can never collide
    (the way ``knn_search``'s hardcoded ``qid=0`` used to).
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def next(self) -> int:
        qid = self._next
        self._next += 1
        return qid

    def reset(self, start: int = 0) -> None:
        self._next = start

    def peek(self) -> int:
        """The id the next :meth:`next` call will return."""
        return self._next


#: fallback for bare ``RangeQuery.from_point`` calls outside any platform
#: (platform/protocol paths always pass an explicit qid or allocator)
_fallback_qids = QidAllocator()


@dataclass
class Rect:
    """An axis-aligned hyper-rectangle in the index space."""

    lows: np.ndarray
    highs: np.ndarray

    def __post_init__(self) -> None:
        self.lows = np.asarray(self.lows, dtype=np.float64)
        self.highs = np.asarray(self.highs, dtype=np.float64)
        if self.lows.shape != self.highs.shape or self.lows.ndim != 1:
            raise ValueError("rect bounds must be 1-D arrays of equal length")

    @property
    def k(self) -> int:
        return len(self.lows)

    def copy(self) -> Rect:
        return Rect(self.lows.copy(), self.highs.copy())

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of index points inside the rectangle (inclusive)."""
        pts = np.atleast_2d(points)
        return np.all((pts >= self.lows) & (pts <= self.highs), axis=1)

    def intersects_box(self, lows: np.ndarray, highs: np.ndarray) -> bool:
        """Whether the rectangle overlaps the (closed) box ``[lows, highs]``."""
        return bool(np.all(self.lows <= highs) & np.all(self.highs >= lows))

    def is_empty(self) -> bool:
        """True when some dimension has negative extent."""
        return bool(np.any(self.highs < self.lows))

    def volume(self) -> float:
        return float(np.prod(np.maximum(self.highs - self.lows, 0.0)))


@dataclass
class RangeQuery:
    """One (sub)query in flight: region + routing prefix + provenance.

    Attributes
    ----------
    rect:
        The query region in index space.
    prefix_key:
        ``m``-bit key: the prefix padded with zeros (figure 1a).
    prefix_len:
        Valid bit count of the prefix.
    qid:
        Stable id of the *original* query — subqueries inherit it, which is
        how per-query cost metrics are aggregated.
    source:
        Identifier of the querying node (results return directly to it).
    index_name:
        Which index of the multi-index platform this query targets.
    payload:
        Opaque reference to the original query object (used by index nodes to
        refine candidates with true metric distances).
    """

    rect: Rect
    prefix_key: int
    prefix_len: int
    qid: int
    source: Any = None
    index_name: str = "default"
    payload: Any = None
    radius: float | None = None

    def copy(self) -> RangeQuery:
        return RangeQuery(
            rect=self.rect.copy(),
            prefix_key=self.prefix_key,
            prefix_len=self.prefix_len,
            qid=self.qid,
            source=self.source,
            index_name=self.index_name,
            payload=self.payload,
            radius=self.radius,
        )

    @classmethod
    def from_point(
        cls,
        center: np.ndarray,
        radius: float,
        bounds: IndexSpaceBounds,
        m: int,
        source: Any = None,
        index_name: str = "default",
        payload: Any = None,
        qid: int | None = None,
        alloc: QidAllocator | None = None,
    ) -> RangeQuery:
        """Build the initial query: hypercube of side ``2r`` clipped to bounds.

        Clipping realises the paper's observation that a query point mapped
        near the boundary searches ``[I_q - r, upper_boundary]`` rather than
        a full ``2r`` box (§4.3).
        """
        center = np.asarray(center, dtype=np.float64)
        lows = np.maximum(center - radius, bounds.lows)
        highs = np.minimum(center + radius, bounds.highs)
        key, length = smallest_enclosing_prefix(lows, highs, bounds, m)
        return cls(
            rect=Rect(lows, highs),
            prefix_key=key,
            prefix_len=length,
            qid=(alloc or _fallback_qids).next() if qid is None else qid,
            source=source,
            index_name=index_name,
            payload=payload,
            radius=float(radius),
        )


def query_split(
    q: RangeQuery,
    p: int,
    bounds: IndexSpaceBounds,
    m: int,
) -> list[RangeQuery]:
    """Algorithm 4 (QuerySplit): advance/split ``q`` at division position ``p``.

    ``p`` must be ``q.prefix_len + 1`` — the next division of the recursive
    partition.  Returns one subquery when the region lies wholly in one half
    (prefix extended by the matching bit) or two complementary subqueries
    otherwise.  The returned queries all have ``prefix_len == p``.
    """
    if not 1 <= p <= m:
        raise ValueError(f"split position {p} out of range 1..{m}")
    k = bounds.k
    j = (p - 1) % k
    # Reconstruct the dim-j extent of the cuboid addressed by the first
    # p-1 prefix bits (the while-loop of Algorithm 4).
    lo, hi = dimension_range(q.prefix_key, p - 1, j, bounds, m)
    mid = (lo + hi) / 2.0
    if q.rect.lows[j] > mid:
        nq = q.copy()
        nq.prefix_key = set_bit_at(nq.prefix_key, p, m)
        nq.prefix_len = p
        return [nq]
    if q.rect.highs[j] < mid:
        nq = q.copy()
        nq.prefix_len = p
        return [nq]
    # Straddles the midpoint: split into higher (bit 1) and lower (bit 0)
    # halves; Algorithm 4 line 22 assigns mid to both new boundaries.
    nq1 = q.copy()
    nq2 = q.copy()
    nq1.rect.lows[j] = mid
    nq2.rect.highs[j] = mid
    nq1.prefix_key = set_bit_at(nq1.prefix_key, p, m)
    nq1.prefix_len = p
    nq2.prefix_len = p
    return [nq1, nq2]
