"""Per-node index-entry storage.

Each overlay node stores, for every index it participates in, the entries
whose (rotated) keys fall in its ownership interval.  An entry is
``(key, index_point, object_id)``; keys are stored *unrotated* (pure LPH
output) because query prefixes live in unrotated space — rotation is applied
only when deciding ownership/routing.

Shards hold columnar NumPy arrays **sorted by key**: the claimed-key-range
filter of query resolution then reduces to two ``searchsorted`` calls and the
rectangle mask runs only over the candidate slice — profiling the query loop
showed the full-shard mask dominating local solve time on hot shards (see
``bench_perf_microbench.py``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Shard"]


class Shard:
    """Columnar store of the index entries held by one node for one index.

    Invariant: ``keys`` is non-decreasing; ``points``/``object_ids`` are
    aligned with it.
    """

    __slots__ = ("keys", "points", "object_ids")

    def __init__(self, k: int) -> None:
        self.keys = np.empty(0, dtype=np.uint64)
        self.points = np.empty((0, k), dtype=np.float64)
        self.object_ids = np.empty(0, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def load(self) -> int:
        """The paper's load measure: number of index entries stored."""
        return len(self.keys)

    def add(self, keys: np.ndarray, points: np.ndarray, object_ids: np.ndarray) -> None:
        """Append a batch of entries, re-establishing key order."""
        keys = np.asarray(keys, dtype=np.uint64)
        new_keys = np.concatenate([self.keys, keys])
        new_points = np.vstack([self.points, np.asarray(points, dtype=np.float64)])
        new_ids = np.concatenate([self.object_ids, np.asarray(object_ids, dtype=np.int64)])
        order = np.argsort(new_keys, kind="stable")
        self.keys = new_keys[order]
        self.points = new_points[order]
        self.object_ids = new_ids[order]

    def clear(self) -> None:
        k = self.points.shape[1]
        self.keys = np.empty(0, dtype=np.uint64)
        self.points = np.empty((0, k), dtype=np.float64)
        self.object_ids = np.empty(0, dtype=np.int64)

    def range_search(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        key_lo: int | None = None,
        key_hi: int | None = None,
    ) -> np.ndarray:
        """Positions of entries inside the rectangle (and key range, if given).

        The key-range filter restricts to the subquery's *claimed* cuboid key
        interval, which both prevents double counting when one node is
        surrogate for several sibling subqueries of the same query, and —
        thanks to the sorted-key invariant — narrows the rectangle test to a
        contiguous slice.
        """
        n = len(self.keys)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        start, stop = 0, n
        if key_lo is not None:
            start = int(np.searchsorted(self.keys, np.uint64(key_lo), side="left"))
        if key_hi is not None:
            stop = int(np.searchsorted(self.keys, np.uint64(key_hi), side="right"))
        if start >= stop:
            return np.empty(0, dtype=np.int64)
        pts = self.points[start:stop]
        mask = np.all((pts >= lows) & (pts <= highs), axis=1)
        return np.flatnonzero(mask) + start
