"""Per-node index-entry storage.

Each overlay node stores, for every index it participates in, the entries
whose (rotated) keys fall in its ownership interval.  An entry is
``(key, index_point, object_id)``; keys are stored *unrotated* (pure LPH
output) because query prefixes live in unrotated space — rotation is applied
only when deciding ownership/routing.

Shards hold columnar NumPy arrays **sorted by key**: the claimed-key-range
filter of query resolution then reduces to two ``searchsorted`` calls and the
rectangle mask runs only over the candidate slice — profiling the query loop
showed the full-shard mask dominating local solve time on hot shards (see
``bench_perf_microbench.py``).

Two storage shapes share that invariant:

* :class:`Shard` — one node's slice, grown with **amortised doubling** and
  sorted **lazily** on first read after a batch of appends.  A stable sort
  of the appended batches in append order produces exactly the array the
  old sort-on-every-``add`` produced (stable sorts compose), so the change
  is value-identical while index distribution drops from O(n log n) *per
  replica batch* to one deferred sort per shard.
* :class:`ShardStore` — the scale path: **all** nodes' entries of one index
  in a single CSR-like columnar block (one global sort by ``(owner, key)``
  plus an offsets array), so a 100k-node index costs three arrays instead
  of 100k Python shard objects.  Used by :mod:`repro.core.scale`.

The live-deployment path (:mod:`repro.net`) adds durability on top:

* :class:`WriteAheadLog` — append-only JSONL of entry batches, flushed per
  record and sequence-numbered, tolerant of a torn final line (the state a
  SIGKILL mid-append leaves behind);
* :class:`PersistentShard` — a :class:`Shard` plus its WAL, a compacting
  snapshot, and a small ``meta.json`` carrying the node's overlay state
  (successor list, predecessor), so a killed node restarts with the exact
  entries — bit-identical, via :mod:`repro.util.arrays` raw-buffer
  encoding — and ring hints it held before the crash.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any

import numpy as np

from repro.util.arrays import decode_array, encode_array

__all__ = ["Shard", "ShardStore", "WriteAheadLog", "PersistentShard"]


class Shard:
    """Columnar store of the index entries held by one node for one index.

    Invariant: ``keys`` is non-decreasing; ``points``/``object_ids`` are
    aligned with it.  The columns are exposed as read-only views of the
    live prefix of preallocated capacity buffers; ``add`` appends in
    amortised O(batch) and the key order is re-established lazily on the
    next read.
    """

    __slots__ = ("_k", "_keys", "_points", "_ids", "_n", "_dirty")

    def __init__(self, k: int) -> None:
        self._k = int(k)
        self._keys = np.empty(0, dtype=np.uint64)
        self._points = np.empty((0, self._k), dtype=np.float64)
        self._ids = np.empty(0, dtype=np.int64)
        self._n = 0
        self._dirty = False

    def __len__(self) -> int:
        return self._n

    @property
    def load(self) -> int:
        """The paper's load measure: number of index entries stored."""
        return self._n

    @property
    def keys(self) -> np.ndarray:
        self._ensure_sorted()
        return self._keys[: self._n]

    @property
    def points(self) -> np.ndarray:
        self._ensure_sorted()
        return self._points[: self._n]

    @property
    def object_ids(self) -> np.ndarray:
        self._ensure_sorted()
        return self._ids[: self._n]

    def _grow(self, extra: int) -> None:
        need = self._n + extra
        cap = len(self._keys)
        if need <= cap:
            return
        new_cap = max(need, 2 * cap, 8)
        keys = np.empty(new_cap, dtype=np.uint64)
        points = np.empty((new_cap, self._k), dtype=np.float64)
        ids = np.empty(new_cap, dtype=np.int64)
        n = self._n
        keys[:n] = self._keys[:n]
        points[:n] = self._points[:n]
        ids[:n] = self._ids[:n]
        self._keys, self._points, self._ids = keys, points, ids

    def _ensure_sorted(self) -> None:
        if not self._dirty:
            return
        n = self._n
        order = np.argsort(self._keys[:n], kind="stable")
        self._keys[:n] = self._keys[:n][order]
        self._points[:n] = self._points[:n][order]
        self._ids[:n] = self._ids[:n][order]
        self._dirty = False

    def add(self, keys: np.ndarray, points: np.ndarray, object_ids: np.ndarray) -> None:
        """Append a batch of entries; key order is restored on next read."""
        keys = np.asarray(keys, dtype=np.uint64)
        m = len(keys)
        if m == 0:
            return
        self._grow(m)
        n = self._n
        self._keys[n : n + m] = keys
        self._points[n : n + m] = np.asarray(points, dtype=np.float64)
        self._ids[n : n + m] = np.asarray(object_ids, dtype=np.int64)
        self._n = n + m
        self._dirty = True

    def clear(self) -> None:
        self._n = 0
        self._dirty = False

    def range_search(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        key_lo: int | None = None,
        key_hi: int | None = None,
    ) -> np.ndarray:
        """Positions of entries inside the rectangle (and key range, if given).

        The key-range filter restricts to the subquery's *claimed* cuboid key
        interval, which both prevents double counting when one node is
        surrogate for several sibling subqueries of the same query, and —
        thanks to the sorted-key invariant — narrows the rectangle test to a
        contiguous slice.
        """
        n = self._n
        if n == 0:
            return np.empty(0, dtype=np.int64)
        self._ensure_sorted()
        keys = self._keys[:n]
        start, stop = 0, n
        if key_lo is not None:
            start = int(np.searchsorted(keys, np.uint64(key_lo), side="left"))
        if key_hi is not None:
            stop = int(np.searchsorted(keys, np.uint64(key_hi), side="right"))
        if start >= stop:
            return np.empty(0, dtype=np.int64)
        pts = self._points[start:stop]
        mask = np.all((pts >= lows) & (pts <= highs), axis=1)
        return np.flatnonzero(mask) + start


class ShardStore:
    """All nodes' entries of one index in a single columnar block.

    Entries are held sorted by ``(owner_slot, key)``; ``offsets[s] :
    offsets[s+1]`` delimits node slot ``s``'s shard, within which keys are
    non-decreasing — i.e. each slice satisfies the :class:`Shard` invariant
    without a per-node Python object.  This is the storage half of the
    scale refactor: at 100k nodes the per-node dict-of-``Shard`` layout costs
    hundreds of MB of object headers before a single entry is stored.
    """

    __slots__ = ("n_slots", "keys", "points", "object_ids", "offsets")

    def __init__(
        self,
        n_slots: int,
        keys: np.ndarray,
        points: np.ndarray,
        object_ids: np.ndarray,
        offsets: np.ndarray,
    ) -> None:
        self.n_slots = int(n_slots)
        self.keys = keys
        self.points = points
        self.object_ids = object_ids
        self.offsets = offsets

    @classmethod
    def build(
        cls,
        owner_slots: np.ndarray,
        keys: np.ndarray,
        points: np.ndarray,
        object_ids: np.ndarray,
        n_slots: int,
    ) -> ShardStore:
        """Distribute ``(keys, points, object_ids)`` to their owners at once.

        One stable lexicographic sort by ``(owner, key)`` replaces the
        per-node append loop; ties within ``(owner, key)`` keep input order,
        matching what per-shard stable sorts would produce.
        """
        owner_slots = np.asarray(owner_slots, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.uint64)
        order = np.lexsort((keys, owner_slots))
        counts = np.bincount(owner_slots, minlength=n_slots)
        offsets = np.zeros(n_slots + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return cls(
            n_slots,
            keys[order],
            np.asarray(points, dtype=np.float64)[order],
            np.asarray(object_ids, dtype=np.int64)[order],
            offsets,
        )

    def __len__(self) -> int:
        return len(self.keys)

    def loads(self) -> np.ndarray:
        """Stored-entry count per node slot (the paper's load measure)."""
        return np.diff(self.offsets)

    def slice(self, slot: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(keys, points, object_ids)`` views of one node's shard."""
        lo, hi = int(self.offsets[slot]), int(self.offsets[slot + 1])
        return self.keys[lo:hi], self.points[lo:hi], self.object_ids[lo:hi]

    def range_search(
        self,
        slot: int,
        lows: np.ndarray,
        highs: np.ndarray,
        key_lo: int | None = None,
        key_hi: int | None = None,
    ) -> np.ndarray:
        """Positions (into :meth:`slice` arrays) matching rectangle + key range.

        Same semantics as :meth:`Shard.range_search`, evaluated against one
        slot's slice of the block.
        """
        keys, pts, _ = self.slice(slot)
        n = len(keys)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        start, stop = 0, n
        if key_lo is not None:
            start = int(np.searchsorted(keys, np.uint64(key_lo), side="left"))
        if key_hi is not None:
            stop = int(np.searchsorted(keys, np.uint64(key_hi), side="right"))
        if start >= stop:
            return np.empty(0, dtype=np.int64)
        window = pts[start:stop]
        mask = np.all((window >= lows) & (window <= highs), axis=1)
        return np.flatnonzero(mask) + start


class WriteAheadLog:
    """Append-only JSONL log of shard mutations.

    Every record is one JSON object on one line, stamped with a monotonic
    ``seq`` by the caller.  :meth:`append` flushes to the OS after each
    record, which is durable against process death (SIGKILL) — the crash
    mode the live backend recovers from; ``fsync=True`` extends that to
    power loss at a per-append cost.

    :meth:`replay` yields records in order and **stops silently at the
    first undecodable line** — a process killed mid-``append`` leaves a
    torn final line, which is indistinguishable from the record never
    having been acknowledged, so dropping it is the correct recovery.
    A corrupt line *followed by* valid ones indicates real damage and
    raises ``ValueError``.
    """

    def __init__(self, path: str | Path, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._fh: Any = None
        #: byte offset after the last valid record seen by :meth:`replay`
        self._valid_end = 0

    def _handle(self) -> Any:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def append(self, record: dict[str, Any]) -> None:
        fh = self._handle()
        fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())

    def replay(self) -> list[dict[str, Any]]:
        self._valid_end = 0
        if not self.path.exists():
            return []
        records: list[dict[str, Any]] = []
        torn_at: int | None = None
        pos = 0
        with open(self.path, "rb") as fh:
            for lineno, raw in enumerate(fh):
                pos += len(raw)
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    if torn_at is None:
                        self._valid_end = pos
                    continue
                try:
                    obj = json.loads(line)
                except ValueError:
                    torn_at = lineno
                    continue
                if torn_at is not None:
                    raise ValueError(
                        f"{self.path}: undecodable record at line {torn_at + 1} "
                        "followed by valid records — log is damaged, not torn"
                    )
                if isinstance(obj, dict):
                    records.append(obj)
                self._valid_end = pos
        return records

    def trim_torn_tail(self) -> None:
        """Truncate whatever trails the last valid record :meth:`replay` saw.

        A SIGKILL mid-append leaves a torn final line; appending after it
        would weld the new record onto the torn bytes and lose both.  The
        recovery path replays, then trims, then resumes appending.
        """
        if self.path.exists() and self.path.stat().st_size > self._valid_end:
            self.close()
            with open(self.path, "rb+") as fh:
                fh.truncate(self._valid_end)

    def truncate(self) -> None:
        """Reset the log (after its records were folded into a snapshot)."""
        self.close()
        with open(self.path, "w", encoding="utf-8"):
            pass

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _atomic_write_json(path: Path, payload: dict[str, Any]) -> None:
    """Write ``payload`` as JSON via a same-directory rename (atomic on POSIX)."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, separators=(",", ":"))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class PersistentShard:
    """A :class:`Shard` with crash recovery: snapshot + WAL + node meta.

    Directory layout (one per node per index)::

        <data_dir>/snapshot.json   compacted entries + the WAL seq they cover
        <data_dir>/wal.jsonl       entry batches appended since the snapshot
        <data_dir>/meta.json       overlay state (successors, predecessor, ...)

    Recovery order is snapshot first, then every WAL record whose ``seq``
    exceeds the snapshot's high-water mark — so a crash *between* writing
    the snapshot and truncating the WAL cannot double-apply a batch.  All
    arrays ride :mod:`repro.util.arrays` raw-buffer encoding, making the
    restored columns bit-identical to what was acknowledged before the
    crash (asserted by :meth:`digest` equality in the recovery tests).
    """

    SNAPSHOT = "snapshot.json"
    WAL = "wal.jsonl"
    META = "meta.json"

    def __init__(self, data_dir: str | Path, k: int, fsync: bool = False) -> None:
        self.dir = Path(data_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.k = int(k)
        self.shard = Shard(self.k)
        self.wal = WriteAheadLog(self.dir / self.WAL, fsync=fsync)
        self._seq = 0
        self._snapshot_seq = 0
        self._wal_records = 0
        self.meta: dict[str, Any] = {}
        self._recover()

    # -- recovery ---------------------------------------------------------------

    def _recover(self) -> None:
        snap_path = self.dir / self.SNAPSHOT
        if snap_path.exists():
            with open(snap_path, encoding="utf-8") as fh:
                snap = json.load(fh)
            if int(snap.get("k", self.k)) != self.k:
                raise ValueError(
                    f"{snap_path}: snapshot k={snap.get('k')} != shard k={self.k}"
                )
            keys = decode_array(snap["keys"])
            if len(keys):
                self.shard.add(keys, decode_array(snap["points"]), decode_array(snap["ids"]))
            self._snapshot_seq = int(snap.get("seq", 0))
            self._seq = self._snapshot_seq
        for rec in self.wal.replay():
            self._wal_records += 1
            seq = int(rec.get("seq", 0))
            if seq <= self._snapshot_seq:
                continue  # already folded into the snapshot
            self.shard.add(
                decode_array(rec["keys"]),
                decode_array(rec["points"]),
                decode_array(rec["ids"]),
            )
            self._seq = max(self._seq, seq)
        self.wal.trim_torn_tail()
        meta_path = self.dir / self.META
        if meta_path.exists():
            with open(meta_path, encoding="utf-8") as fh:
                self.meta = json.load(fh)

    # -- mutation ---------------------------------------------------------------

    def add(self, keys: np.ndarray, points: np.ndarray, object_ids: np.ndarray) -> int:
        """Durably append a batch: WAL record first, then the in-memory shard.

        Returns the record's sequence number (0 for an empty batch).
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            return 0
        points = np.asarray(points, dtype=np.float64).reshape(len(keys), self.k)
        object_ids = np.asarray(object_ids, dtype=np.int64)
        self._seq += 1
        self.wal.append({
            "seq": self._seq,
            "keys": encode_array(keys),
            "points": encode_array(points),
            "ids": encode_array(object_ids),
        })
        self._wal_records += 1
        self.shard.add(keys, points, object_ids)
        return self._seq

    def set_meta(self, **fields: Any) -> None:
        """Merge and persist overlay state (successors, predecessor, ...)."""
        self.meta.update(fields)
        _atomic_write_json(self.dir / self.META, self.meta)

    def snapshot(self) -> int:
        """Fold the WAL into a compacted snapshot; returns entries covered."""
        _atomic_write_json(self.dir / self.SNAPSHOT, {
            "k": self.k,
            "seq": self._seq,
            "keys": encode_array(self.shard.keys),
            "points": encode_array(self.shard.points),
            "ids": encode_array(self.shard.object_ids),
        })
        self.wal.truncate()
        self._snapshot_seq = self._seq
        self._wal_records = 0
        return len(self.shard)

    # -- inspection -------------------------------------------------------------

    @property
    def wal_records(self) -> int:
        """Records currently in the live WAL segment."""
        return self._wal_records

    def digest(self) -> int:
        """CRC32 over the sorted columns — equal iff the entries are
        bit-identical (the crash-recovery acceptance check)."""
        crc = zlib.crc32(self.shard.keys.tobytes())
        crc = zlib.crc32(self.shard.points.tobytes(), crc)
        return zlib.crc32(self.shard.object_ids.tobytes(), crc)

    def close(self) -> None:
        self.wal.close()
