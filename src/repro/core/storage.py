"""Per-node index-entry storage.

Each overlay node stores, for every index it participates in, the entries
whose (rotated) keys fall in its ownership interval.  An entry is
``(key, index_point, object_id)``; keys are stored *unrotated* (pure LPH
output) because query prefixes live in unrotated space — rotation is applied
only when deciding ownership/routing.

Shards hold columnar NumPy arrays **sorted by key**: the claimed-key-range
filter of query resolution then reduces to two ``searchsorted`` calls and the
rectangle mask runs only over the candidate slice — profiling the query loop
showed the full-shard mask dominating local solve time on hot shards (see
``bench_perf_microbench.py``).

Two storage shapes share that invariant:

* :class:`Shard` — one node's slice, grown with **amortised doubling** and
  sorted **lazily** on first read after a batch of appends.  A stable sort
  of the appended batches in append order produces exactly the array the
  old sort-on-every-``add`` produced (stable sorts compose), so the change
  is value-identical while index distribution drops from O(n log n) *per
  replica batch* to one deferred sort per shard.
* :class:`ShardStore` — the scale path: **all** nodes' entries of one index
  in a single CSR-like columnar block (one global sort by ``(owner, key)``
  plus an offsets array), so a 100k-node index costs three arrays instead
  of 100k Python shard objects.  Used by :mod:`repro.core.scale`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Shard", "ShardStore"]


class Shard:
    """Columnar store of the index entries held by one node for one index.

    Invariant: ``keys`` is non-decreasing; ``points``/``object_ids`` are
    aligned with it.  The columns are exposed as read-only views of the
    live prefix of preallocated capacity buffers; ``add`` appends in
    amortised O(batch) and the key order is re-established lazily on the
    next read.
    """

    __slots__ = ("_k", "_keys", "_points", "_ids", "_n", "_dirty")

    def __init__(self, k: int) -> None:
        self._k = int(k)
        self._keys = np.empty(0, dtype=np.uint64)
        self._points = np.empty((0, self._k), dtype=np.float64)
        self._ids = np.empty(0, dtype=np.int64)
        self._n = 0
        self._dirty = False

    def __len__(self) -> int:
        return self._n

    @property
    def load(self) -> int:
        """The paper's load measure: number of index entries stored."""
        return self._n

    @property
    def keys(self) -> np.ndarray:
        self._ensure_sorted()
        return self._keys[: self._n]

    @property
    def points(self) -> np.ndarray:
        self._ensure_sorted()
        return self._points[: self._n]

    @property
    def object_ids(self) -> np.ndarray:
        self._ensure_sorted()
        return self._ids[: self._n]

    def _grow(self, extra: int) -> None:
        need = self._n + extra
        cap = len(self._keys)
        if need <= cap:
            return
        new_cap = max(need, 2 * cap, 8)
        keys = np.empty(new_cap, dtype=np.uint64)
        points = np.empty((new_cap, self._k), dtype=np.float64)
        ids = np.empty(new_cap, dtype=np.int64)
        n = self._n
        keys[:n] = self._keys[:n]
        points[:n] = self._points[:n]
        ids[:n] = self._ids[:n]
        self._keys, self._points, self._ids = keys, points, ids

    def _ensure_sorted(self) -> None:
        if not self._dirty:
            return
        n = self._n
        order = np.argsort(self._keys[:n], kind="stable")
        self._keys[:n] = self._keys[:n][order]
        self._points[:n] = self._points[:n][order]
        self._ids[:n] = self._ids[:n][order]
        self._dirty = False

    def add(self, keys: np.ndarray, points: np.ndarray, object_ids: np.ndarray) -> None:
        """Append a batch of entries; key order is restored on next read."""
        keys = np.asarray(keys, dtype=np.uint64)
        m = len(keys)
        if m == 0:
            return
        self._grow(m)
        n = self._n
        self._keys[n : n + m] = keys
        self._points[n : n + m] = np.asarray(points, dtype=np.float64)
        self._ids[n : n + m] = np.asarray(object_ids, dtype=np.int64)
        self._n = n + m
        self._dirty = True

    def clear(self) -> None:
        self._n = 0
        self._dirty = False

    def range_search(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        key_lo: int | None = None,
        key_hi: int | None = None,
    ) -> np.ndarray:
        """Positions of entries inside the rectangle (and key range, if given).

        The key-range filter restricts to the subquery's *claimed* cuboid key
        interval, which both prevents double counting when one node is
        surrogate for several sibling subqueries of the same query, and —
        thanks to the sorted-key invariant — narrows the rectangle test to a
        contiguous slice.
        """
        n = self._n
        if n == 0:
            return np.empty(0, dtype=np.int64)
        self._ensure_sorted()
        keys = self._keys[:n]
        start, stop = 0, n
        if key_lo is not None:
            start = int(np.searchsorted(keys, np.uint64(key_lo), side="left"))
        if key_hi is not None:
            stop = int(np.searchsorted(keys, np.uint64(key_hi), side="right"))
        if start >= stop:
            return np.empty(0, dtype=np.int64)
        pts = self._points[start:stop]
        mask = np.all((pts >= lows) & (pts <= highs), axis=1)
        return np.flatnonzero(mask) + start


class ShardStore:
    """All nodes' entries of one index in a single columnar block.

    Entries are held sorted by ``(owner_slot, key)``; ``offsets[s] :
    offsets[s+1]`` delimits node slot ``s``'s shard, within which keys are
    non-decreasing — i.e. each slice satisfies the :class:`Shard` invariant
    without a per-node Python object.  This is the storage half of the
    scale refactor: at 100k nodes the per-node dict-of-``Shard`` layout costs
    hundreds of MB of object headers before a single entry is stored.
    """

    __slots__ = ("n_slots", "keys", "points", "object_ids", "offsets")

    def __init__(
        self,
        n_slots: int,
        keys: np.ndarray,
        points: np.ndarray,
        object_ids: np.ndarray,
        offsets: np.ndarray,
    ) -> None:
        self.n_slots = int(n_slots)
        self.keys = keys
        self.points = points
        self.object_ids = object_ids
        self.offsets = offsets

    @classmethod
    def build(
        cls,
        owner_slots: np.ndarray,
        keys: np.ndarray,
        points: np.ndarray,
        object_ids: np.ndarray,
        n_slots: int,
    ) -> ShardStore:
        """Distribute ``(keys, points, object_ids)`` to their owners at once.

        One stable lexicographic sort by ``(owner, key)`` replaces the
        per-node append loop; ties within ``(owner, key)`` keep input order,
        matching what per-shard stable sorts would produce.
        """
        owner_slots = np.asarray(owner_slots, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.uint64)
        order = np.lexsort((keys, owner_slots))
        counts = np.bincount(owner_slots, minlength=n_slots)
        offsets = np.zeros(n_slots + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return cls(
            n_slots,
            keys[order],
            np.asarray(points, dtype=np.float64)[order],
            np.asarray(object_ids, dtype=np.int64)[order],
            offsets,
        )

    def __len__(self) -> int:
        return len(self.keys)

    def loads(self) -> np.ndarray:
        """Stored-entry count per node slot (the paper's load measure)."""
        return np.diff(self.offsets)

    def slice(self, slot: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(keys, points, object_ids)`` views of one node's shard."""
        lo, hi = int(self.offsets[slot]), int(self.offsets[slot + 1])
        return self.keys[lo:hi], self.points[lo:hi], self.object_ids[lo:hi]

    def range_search(
        self,
        slot: int,
        lows: np.ndarray,
        highs: np.ndarray,
        key_lo: int | None = None,
        key_hi: int | None = None,
    ) -> np.ndarray:
        """Positions (into :meth:`slice` arrays) matching rectangle + key range.

        Same semantics as :meth:`Shard.range_search`, evaluated against one
        slot's slice of the block.
        """
        keys, pts, _ = self.slice(slot)
        n = len(keys)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        start, stop = 0, n
        if key_lo is not None:
            start = int(np.searchsorted(keys, np.uint64(key_lo), side="left"))
        if key_hi is not None:
            stop = int(np.searchsorted(keys, np.uint64(key_hi), side="right"))
        if start >= stop:
            return np.empty(0, dtype=np.int64)
        window = pts[start:stop]
        mask = np.all((window >= lows) & (window <= highs), axis=1)
        return np.flatnonzero(mask) + start
