"""The k-dimensional landmark index space and its boundary (paper §3.1).

The boundary of the index space is required when partitioning and mapping it
onto overlay nodes.  The paper gives two strategies:

* **by the original metric space** — a bounded metric bounds every coordinate
  by ``[0, upper_bound]``; unbounded metrics first go through ``d' = d/(1+d)``
  (:class:`repro.metric.transforms.BoundedMetric`);
* **by the landmark selection procedure** — the min/max distances between the
  landmark set and the initially sampled objects bound each dimension;
  objects falling outside "will be mapped to the boundary points", i.e.
  clipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.landmarks import LandmarkSet

__all__ = ["IndexSpaceBounds", "IndexSpace"]


@dataclass(frozen=True)
class IndexSpaceBounds:
    """Per-dimension ``<L, H>`` bounds of the index space.

    ``lows``/``highs`` are length-``k`` float arrays.  The paper's synthetic
    experiments bound every dimension by ``[0, 1000]`` (the data-space
    diameter); the TREC experiments derive bounds from the sample.
    """

    lows: np.ndarray
    highs: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "lows", np.asarray(self.lows, dtype=np.float64))
        object.__setattr__(self, "highs", np.asarray(self.highs, dtype=np.float64))
        if self.lows.shape != self.highs.shape or self.lows.ndim != 1:
            raise ValueError("bounds must be 1-D arrays of equal length")
        if np.any(self.highs <= self.lows):
            raise ValueError("every dimension needs high > low")

    @property
    def k(self) -> int:
        """Dimensionality of the index space."""
        return len(self.lows)

    @classmethod
    def uniform(cls, k: int, low: float, high: float) -> IndexSpaceBounds:
        """Same ``[low, high]`` bound on all ``k`` dimensions."""
        return cls(np.full(k, float(low)), np.full(k, float(high)))

    @classmethod
    def from_metric(cls, k: int, metric: Any) -> IndexSpaceBounds:
        """Boundary strategy 1: derive from a bounded metric."""
        if not metric.is_bounded:
            raise ValueError(
                f"metric {metric.name!r} is unbounded; wrap it in BoundedMetric "
                "or use from_sample()"
            )
        return cls.uniform(k, 0.0, metric.upper_bound)

    @classmethod
    def from_sample(cls, index_points: np.ndarray, pad: float = 0.0) -> IndexSpaceBounds:
        """Boundary strategy 2: min/max of the projected selection sample.

        ``pad`` expands the box by a relative margin on each side (useful to
        reduce clipping of unseen data); the paper uses the raw min/max.
        Degenerate dimensions (min == max) are widened by a tiny epsilon so
        the space retains positive volume.
        """
        pts = np.asarray(index_points, dtype=np.float64)
        lows = pts.min(axis=0)
        highs = pts.max(axis=0)
        span = highs - lows
        margin = span * pad
        lows = lows - margin
        highs = highs + margin
        flat = highs <= lows
        if flat.any():
            # Widen degenerate dimensions so the box keeps positive volume.
            scale = np.maximum(np.abs(lows), 1.0)
            highs = highs.copy()
            highs[flat] = lows[flat] + 1e-9 * scale[flat]
        return cls(lows, highs)

    def clip(self, points: np.ndarray) -> np.ndarray:
        """Clip index points into the box (paper: out-of-range objects map to
        the boundary)."""
        return np.clip(points, self.lows, self.highs)

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of points inside the box (inclusive)."""
        pts = np.atleast_2d(points)
        return np.all((pts >= self.lows) & (pts <= self.highs), axis=1)


class IndexSpace:
    """A landmark set plus boundary: the full object → index-point pipeline.

    This is the "space mapping" half of the architecture; hashing the points
    onto the Chord ring is :mod:`repro.core.lph`.
    """

    def __init__(self, landmark_set: LandmarkSet, bounds: IndexSpaceBounds) -> None:
        if bounds.k != landmark_set.k:
            raise ValueError(
                f"bounds dimensionality {bounds.k} != number of landmarks {landmark_set.k}"
            )
        self.landmark_set = landmark_set
        self.bounds = bounds

    @property
    def k(self) -> int:
        """Index-space dimensionality (= number of landmarks)."""
        return self.bounds.k

    @classmethod
    def build(
        cls,
        landmark_set: LandmarkSet,
        boundary: str = "metric",
        sample: Any = None,
        pad: float = 0.0,
    ) -> IndexSpace:
        """Construct with one of the paper's two boundary strategies.

        ``boundary="metric"`` requires a bounded metric; ``boundary="sample"``
        projects ``sample`` and takes min/max per dimension.
        """
        if boundary == "metric":
            bounds = IndexSpaceBounds.from_metric(landmark_set.k, landmark_set.metric)
        elif boundary == "sample":
            if sample is None:
                raise ValueError('boundary="sample" needs the selection sample')
            bounds = IndexSpaceBounds.from_sample(landmark_set.project(sample), pad=pad)
        else:
            raise ValueError(f'unknown boundary strategy {boundary!r} (use "metric"/"sample")')
        return cls(landmark_set, bounds)

    def project(self, objects: Any) -> np.ndarray:
        """Map objects to clipped index points (``(n, k)`` array)."""
        return self.bounds.clip(self.landmark_set.project(objects))

    def project_one(self, obj: Any) -> np.ndarray:
        """Map one object to its clipped index point."""
        return self.bounds.clip(self.landmark_set.project_one(obj))
