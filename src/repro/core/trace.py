"""Query execution tracing: record the routing tree of a single query.

Wraps a :class:`repro.core.routing.QueryProtocol` and captures every
QueryRouting / SurrogateRefine invocation and every local resolution as
:class:`TraceEvent` records.  Useful for debugging routing behaviour, for
teaching (the trace *is* the embedded tree of §3.3), and for asserting
structural properties in tests (e.g. prefix lengths never decrease along a
path; every solved leaf's key range is disjoint from its siblings').

This is the *legacy* flat event stream: for qid-correlated parent/child
spans covering messages, drops and lifecycle events too, pass an
``obs=Observability(tracing=True)`` to any query protocol instead (see
:mod:`repro.obs.spans`).  A recorded :class:`QueryTrace` converts into that
unified span model with :meth:`QueryTrace.to_spans`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.routing import QueryProtocol
from repro.util.bits import key_to_bits

__all__ = ["TraceEvent", "QueryTrace", "TracingProtocol"]


@dataclass
class TraceEvent:
    """One step of a query's distributed execution."""

    kind: str  # "route" | "refine" | "solve"
    node_id: int
    node_name: str
    prefix_key: int
    prefix_len: int
    hops: int
    time: float
    #: for "solve": the claimed key interval answered locally
    key_lo: int | None = None
    key_hi: int | None = None
    #: for "solve": number of entries returned
    results: int = 0

    def prefix_bits(self, m: int) -> str:
        """The event's prefix as a bit string (only the valid bits)."""
        return key_to_bits(self.prefix_key, m)[: self.prefix_len]


@dataclass
class QueryTrace:
    """All events of one traced query, in execution order."""

    qid: int
    events: list[TraceEvent] = field(default_factory=list)

    def solves(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "solve"]

    def routes(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "route"]

    def refines(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "refine"]

    def nodes_visited(self) -> set[int]:
        return {e.node_id for e in self.events}

    def max_prefix_len(self) -> int:
        return max((e.prefix_len for e in self.events), default=0)

    def to_spans(self, recorder: Any = None) -> list[Any]:
        """This trace as unified :class:`repro.obs.spans.Span` records.

        Joins the legacy flat stream into the qid-correlated span model
        (optionally emitting through a ``SpanRecorder``'s sinks), so old
        traces render with the same tooling as ``repro trace <qid>``.
        """
        from repro.obs.spans import spans_from_query_trace

        return spans_from_query_trace(self, recorder=recorder)

    def render(self, m: int, limit: int = 50) -> str:
        """Human-readable listing of the execution."""
        lines = [f"query {self.qid}: {len(self.events)} events"]
        for e in self.events[:limit]:
            extra = ""
            if e.kind == "solve":
                extra = f" -> {e.results} results, keys [{e.key_lo:#x}..{e.key_hi:#x}]"
            lines.append(
                f"  t={e.time:8.3f} h={e.hops} {e.kind:6s} @{e.node_name:10s} "
                f"prefix={e.prefix_bits(m) or '(root)'}{extra}"
            )
        if len(self.events) > limit:
            lines.append(f"  ... {len(self.events) - limit} more")
        return "\n".join(lines)


class TracingProtocol(QueryProtocol):
    """A :class:`QueryProtocol` that additionally records execution traces."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.traces: dict[int, QueryTrace] = {}

    def _trace(self, qid: int) -> QueryTrace:
        if qid not in self.traces:
            self.traces[qid] = QueryTrace(qid=qid)
        return self.traces[qid]

    def _query_routing(self, node: Any, q: Any, hops: int) -> None:
        self._trace(q.qid).events.append(
            TraceEvent(
                kind="route",
                node_id=node.id,
                node_name=node.name,
                prefix_key=q.prefix_key,
                prefix_len=q.prefix_len,
                hops=hops,
                time=self.sim.now,
            )
        )
        super()._query_routing(node, q, hops)

    def _surrogate_refine(self, node: Any, q: Any, hops: int) -> None:
        self._trace(q.qid).events.append(
            TraceEvent(
                kind="refine",
                node_id=node.id,
                node_name=node.name,
                prefix_key=q.prefix_key,
                prefix_len=q.prefix_len,
                hops=hops,
                time=self.sim.now,
            )
        )
        super()._surrogate_refine(node, q, hops)

    def _solve_local(self, node: Any, q: Any, hops: int,
                     key_lo: int, key_hi: int) -> None:
        before = len(self.stats.for_query(q.qid).entries)
        super()._solve_local(node, q, hops, key_lo, key_hi)
        # entries may have been delivered locally (source == node) or queued;
        # count what the solve contributed when observable, else leave 0.
        after = len(self.stats.for_query(q.qid).entries)
        self._trace(q.qid).events.append(
            TraceEvent(
                kind="solve",
                node_id=node.id,
                node_name=node.name,
                prefix_key=q.prefix_key,
                prefix_len=q.prefix_len,
                hops=hops,
                time=self.sim.now,
                key_lo=key_lo,
                key_hi=key_hi,
                results=max(after - before, 0),
            )
        )
