"""SCRAP-style baseline: space-filling-curve mapping + 1-d interval queries.

SCRAP [11] ("One torus to rule them all", §5 of the paper) maps the
multi-dimensional space to one dimension with a space-filling curve and
resolves range queries as a set of 1-d key intervals routed to their owners.
This module reproduces that design on our Chord substrate so the paper's
embedded-tree routing can be compared against it quantitatively:

* :class:`SfcIndex` re-keys an existing landmark index's entries by Morton
  or Hilbert curve position (same index space, same refinement — only the
  1-d mapping differs);
* :class:`SfcRangeProtocol` decomposes a query rectangle into curve-key
  intervals (:func:`repro.core.sfc.decompose_rect_to_intervals`), routes
  each interval to the owner of its start key via a Chord lookup, and walks
  successors across the interval.

The trade-off this exposes: Hilbert fragments rectangles into fewer
intervals than Morton (continuity), but *every* interval costs an O(log n)
lookup plus a successor walk, whereas the paper's embedded-tree routing
shares prefixes across subqueries.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

import numpy as np

from repro.core.query import RangeQuery
from repro.core.sfc import (
    decompose_rect_to_intervals,
    hilbert_encode,
    morton_encode,
    quantize,
)
from repro.core.routing import QueryProtocol
from repro.core.storage import Shard
from repro.dht.idspace import in_interval_open_closed
from repro.sim.messages import query_message_size

__all__ = ["SfcIndex", "SfcRangeProtocol"]

_CURVES = {"morton": morton_encode, "hilbert": hilbert_encode}


class SfcIndex:
    """A landmark index re-keyed by space-filling-curve position.

    Built from an existing :class:`repro.core.platform.LandmarkIndex`
    (sharing its index space, dataset and refinement); entries are placed on
    the Chord successor of their curve key, scaled into the ``m``-bit ring by
    a left shift.
    """

    def __init__(self, landmark_index: Any, p: int | None = None,
                 curve: str = "hilbert") -> None:
        if curve not in _CURVES:
            raise ValueError(f"unknown curve {curve!r} (use 'morton'/'hilbert')")
        self.base = landmark_index
        self.ring = landmark_index.ring
        self.m = landmark_index.m
        self.k = landmark_index.k
        self.bounds = landmark_index.bounds
        self.curve = curve
        self.encode = _CURVES[curve]
        max_p = self.m // self.k
        self.p = min(p, max_p) if p is not None else min(8, max_p)
        if self.p < 1:
            raise ValueError(f"m={self.m} too small for {self.k} dimensions")
        #: ring key = curve key << shift
        self.shift = self.m - self.k * self.p
        self.shards: dict[object, Shard] = {}
        self._build()

    def _build(self) -> None:
        points = self.base._points
        cells = quantize(points, self.bounds.lows, self.bounds.highs, self.p)
        curve_keys = self.encode(cells, self.p)
        ring_keys = curve_keys << np.uint64(self.shift)
        owners = self.ring.owners_of_keys(ring_keys)
        nodes = self.ring.nodes()
        order = np.argsort(owners, kind="stable")
        bounds_idx = np.searchsorted(owners[order], np.arange(len(nodes) + 1))
        self.shards = {}
        for i, node in enumerate(nodes):
            sel = order[bounds_idx[i] : bounds_idx[i + 1]]
            shard = Shard(self.k)
            if len(sel):
                shard.add(ring_keys[sel], points[sel], self.base._object_ids[sel])
            self.shards[node] = shard

    def refine_distances(self, q: Any, points: Any, object_ids: Any) -> Any:
        """Delegates candidate refinement to the underlying landmark index."""
        return self.base.refine_distances(q, points, object_ids)

    def query_intervals(self, rect: Any,
                        max_intervals: int = 4096) -> list[tuple[int, int]]:
        """Ring-key intervals covering the rectangle (scaled curve intervals).

        Adaptively coarsens the decomposition when a fine one would exceed
        ``max_intervals`` — coarser intervals are supersets, which only cost
        extra traffic (the rectangle filter at solve time keeps results
        exact).  High-dimensional fragmentation is the documented weakness of
        SFC interval routing.
        """
        lo_cells = quantize(rect.lows[None, :], self.bounds.lows, self.bounds.highs, self.p)[0]
        hi_cells = quantize(rect.highs[None, :], self.bounds.lows, self.bounds.highs, self.p)[0]
        for level in range(self.p, 0, -1):
            try:
                raw = decompose_rect_to_intervals(
                    lo_cells, hi_cells, self.k, self.p, self.encode,
                    max_intervals=max_intervals, max_level=level,
                )
                break
            except RuntimeError:
                continue
        else:
            raw = [(0, (1 << (self.k * self.p)) - 1)]
        return [
            (a << self.shift, ((b + 1) << self.shift) - 1) for a, b in raw
        ]

    def load_distribution(self) -> np.ndarray:
        empty = Shard(self.k)
        return np.asarray(
            [self.shards.get(n, empty).load for n in self.ring.nodes()], dtype=np.int64
        )


class SfcRangeProtocol(QueryProtocol):
    """Route a rectangle's curve intervals to their owner chains.

    A :class:`repro.core.routing.QueryProtocol` subclass sharing its local
    resolution, result replies and :class:`StatsCollector` semantics (so the
    comparison benches treat both uniformly) — only query decomposition and
    routing differ: each curve interval takes an independent hop-by-hop
    Chord lookup through the shared transport, then walks successors across
    the interval.
    """

    def _start(self, node: Any, query: RangeQuery) -> None:
        for key_lo, key_hi in self.index.query_intervals(query.rect):
            path = self.index.ring.lookup_path(node, key_lo)
            self._lookup_hop(path, 0, query, key_lo, key_hi, 0)

    def _lookup_hop(self, path: Any, i: int, q: RangeQuery,
                    key_lo: int, key_hi: int, hops: int) -> None:
        node = path[i]
        if i == len(path) - 1:
            self._walk_interval(node, q, key_lo, key_hi, hops)
            return
        nxt = path[i + 1]
        self._hop_message(node, nxt, q, self._lookup_hop, path, i + 1, q, key_lo, key_hi, hops + 1)

    def _walk_interval(self, owner: Any, q: RangeQuery,
                       key_lo: int, key_hi: int, hops: int) -> None:
        """Solve at the interval's current owner, then continue clockwise."""
        self._solve_local(owner, q, hops, key_lo, key_hi)
        if in_interval_open_closed(key_hi, owner.predecessor.id, owner.id, self.index.m):
            return
        nxt = owner.successor
        if nxt is owner:
            return
        self._hop_message(owner, nxt, q, self._walk_interval, nxt, q, key_lo, key_hi, hops + 1)

    def _hop_message(self, src: Any, dst: Any, q: RangeQuery,
                     handler: Callable[..., None], *args: Any) -> None:
        size = query_message_size(1, self.index.k)
        self._tracked_send(
            src, dst, handler, *args,
            kind="scrap:interval", size=size, qid=q.qid,
        )
