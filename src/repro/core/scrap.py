"""SCRAP-style baseline: space-filling-curve mapping + 1-d interval queries.

SCRAP [11] ("One torus to rule them all", §5 of the paper) maps the
multi-dimensional space to one dimension with a space-filling curve and
resolves range queries as a set of 1-d key intervals routed to their owners.
This module reproduces that design on our Chord substrate so the paper's
embedded-tree routing can be compared against it quantitatively:

* :class:`SfcIndex` re-keys an existing landmark index's entries by Morton
  or Hilbert curve position (same index space, same refinement — only the
  1-d mapping differs);
* :class:`SfcRangeProtocol` decomposes a query rectangle into curve-key
  intervals (:func:`repro.core.sfc.decompose_rect_to_intervals`), routes
  each interval to the owner of its start key via a Chord lookup, and walks
  successors across the interval.

The trade-off this exposes: Hilbert fragments rectangles into fewer
intervals than Morton (continuity), but *every* interval costs an O(log n)
lookup plus a successor walk, whereas the paper's embedded-tree routing
shares prefixes across subqueries.
"""

from __future__ import annotations

import numpy as np

from repro.core.query import RangeQuery
from repro.core.sfc import (
    decompose_rect_to_intervals,
    hilbert_encode,
    morton_encode,
    quantize,
)
from repro.core.storage import Shard
from repro.dht.idspace import in_interval_open_closed
from repro.sim.messages import ResultEntry, ResultMessage, query_message_size

__all__ = ["SfcIndex", "SfcRangeProtocol"]

_CURVES = {"morton": morton_encode, "hilbert": hilbert_encode}


class SfcIndex:
    """A landmark index re-keyed by space-filling-curve position.

    Built from an existing :class:`repro.core.platform.LandmarkIndex`
    (sharing its index space, dataset and refinement); entries are placed on
    the Chord successor of their curve key, scaled into the ``m``-bit ring by
    a left shift.
    """

    def __init__(self, landmark_index, p: "int | None" = None, curve: str = "hilbert"):
        if curve not in _CURVES:
            raise ValueError(f"unknown curve {curve!r} (use 'morton'/'hilbert')")
        self.base = landmark_index
        self.ring = landmark_index.ring
        self.m = landmark_index.m
        self.k = landmark_index.k
        self.bounds = landmark_index.bounds
        self.curve = curve
        self.encode = _CURVES[curve]
        max_p = self.m // self.k
        self.p = min(p, max_p) if p is not None else min(8, max_p)
        if self.p < 1:
            raise ValueError(f"m={self.m} too small for {self.k} dimensions")
        #: ring key = curve key << shift
        self.shift = self.m - self.k * self.p
        self.shards: "dict[object, Shard]" = {}
        self._build()

    def _build(self) -> None:
        points = self.base._points
        cells = quantize(points, self.bounds.lows, self.bounds.highs, self.p)
        curve_keys = self.encode(cells, self.p)
        ring_keys = curve_keys << np.uint64(self.shift)
        owners = self.ring.owners_of_keys(ring_keys)
        nodes = self.ring.nodes()
        order = np.argsort(owners, kind="stable")
        bounds_idx = np.searchsorted(owners[order], np.arange(len(nodes) + 1))
        self.shards = {}
        for i, node in enumerate(nodes):
            sel = order[bounds_idx[i] : bounds_idx[i + 1]]
            shard = Shard(self.k)
            if len(sel):
                shard.add(ring_keys[sel], points[sel], self.base._object_ids[sel])
            self.shards[node] = shard

    def refine_distances(self, q, points, object_ids):
        """Delegates candidate refinement to the underlying landmark index."""
        return self.base.refine_distances(q, points, object_ids)

    def query_intervals(self, rect, max_intervals: int = 4096) -> "list[tuple[int, int]]":
        """Ring-key intervals covering the rectangle (scaled curve intervals).

        Adaptively coarsens the decomposition when a fine one would exceed
        ``max_intervals`` — coarser intervals are supersets, which only cost
        extra traffic (the rectangle filter at solve time keeps results
        exact).  High-dimensional fragmentation is the documented weakness of
        SFC interval routing.
        """
        lo_cells = quantize(rect.lows[None, :], self.bounds.lows, self.bounds.highs, self.p)[0]
        hi_cells = quantize(rect.highs[None, :], self.bounds.lows, self.bounds.highs, self.p)[0]
        for level in range(self.p, 0, -1):
            try:
                raw = decompose_rect_to_intervals(
                    lo_cells, hi_cells, self.k, self.p, self.encode,
                    max_intervals=max_intervals, max_level=level,
                )
                break
            except RuntimeError:
                continue
        else:
            raw = [(0, (1 << (self.k * self.p)) - 1)]
        return [
            (a << self.shift, ((b + 1) << self.shift) - 1) for a, b in raw
        ]

    def load_distribution(self) -> np.ndarray:
        empty = Shard(self.k)
        return np.asarray(
            [self.shards.get(n, empty).load for n in self.ring.nodes()], dtype=np.int64
        )


class SfcRangeProtocol:
    """Route a rectangle's curve intervals to their owner chains.

    Mirrors the cost interface of :class:`repro.core.routing.QueryProtocol`
    (same :class:`StatsCollector` semantics) so the comparison benches can
    treat both uniformly.
    """

    def __init__(self, sim, index: SfcIndex, stats, latency=None, top_k: int = 10,
                 range_filter: bool = True, reply_empty: bool = True):
        self.sim = sim
        self.index = index
        self.stats = stats
        self.latency = latency
        self.top_k = top_k
        self.range_filter = range_filter
        self.reply_empty = reply_empty

    def issue(self, query: RangeQuery, node, at_time: "float | None" = None) -> None:
        query.source = node
        st = self.stats.for_query(query.qid)
        st.issued_at = self.sim.now if at_time is None else at_time
        if at_time is None:
            self._issue_now(node, query)
        else:
            self.sim.schedule_at(at_time, self._issue_now, node, query)

    def _issue_now(self, node, query: RangeQuery) -> None:
        for key_lo, key_hi in self.index.query_intervals(query.rect):
            self._route_interval(node, query, key_lo, key_hi)

    def _route_interval(self, node, q: RangeQuery, key_lo: int, key_hi: int) -> None:
        st = self.stats.for_query(q.qid)
        path = self.index.ring.lookup_path(node, key_lo)
        arrival = self.sim.now
        hops = 0
        for prev, nxt in zip(path[:-1], path[1:]):
            st.record_query_message(query_message_size(1, self.index.k))
            arrival += self.latency.latency(prev.host, nxt.host) if self.latency else 0.0
            hops += 1
        owner = path[-1]
        # walk successors across the interval
        m = self.index.m
        while True:
            self.sim.schedule_at(
                max(arrival, self.sim.now),
                self._solve_local, owner, q, hops, key_lo, key_hi,
            )
            if in_interval_open_closed(key_hi, owner.predecessor.id, owner.id, m):
                break
            nxt = owner.successor
            if nxt is owner:
                break
            st.record_query_message(query_message_size(1, self.index.k))
            arrival += self.latency.latency(owner.host, nxt.host) if self.latency else 0.0
            hops += 1
            owner = nxt

    def _solve_local(self, node, q: RangeQuery, hops: int, key_lo: int, key_hi: int) -> None:
        st = self.stats.for_query(q.qid)
        st.record_index_node(node.id, hops)
        entries: "list[ResultEntry]" = []
        shard = self.index.shards.get(node)
        if shard is not None and len(shard):
            pos = shard.range_search(q.rect.lows, q.rect.highs, key_lo, key_hi)
            if len(pos):
                object_ids = shard.object_ids[pos]
                dists = self.index.refine_distances(q, shard.points[pos], object_ids)
                if self.range_filter and q.radius is not None:
                    keep = dists <= q.radius
                    object_ids, dists = object_ids[keep], dists[keep]
                if len(object_ids) > self.top_k:
                    nearest = np.argpartition(dists, self.top_k)[: self.top_k]
                    object_ids, dists = object_ids[nearest], dists[nearest]
                entries = [ResultEntry(int(o), float(d)) for o, d in zip(object_ids, dists)]
        if entries or self.reply_empty:
            msg = ResultMessage(q.qid, entries, from_node=node.id)
            if q.source is node:
                st.record_result_message(0, self.sim.now)
                st.entries.extend(entries)
                return
            delay = self.latency.latency(node.host, q.source.host) if self.latency else 0.0
            self.sim.schedule_in(delay, self._arrive, q.qid, msg)

    def _arrive(self, qid: int, msg: ResultMessage) -> None:
        st = self.stats.for_query(qid)
        st.record_result_message(msg.size, self.sim.now)
        st.entries.extend(msg.entries)
