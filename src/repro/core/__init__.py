"""The paper's primary contribution: the landmark-based index architecture.

Sub-modules map one-to-one onto §3 of the paper:

* :mod:`repro.core.landmarks` — landmark selection (Algorithm 1, k-means)
  and projection into the index space (§3.1);
* :mod:`repro.core.index_space` — index-space boundaries (§3.1);
* :mod:`repro.core.lph` — locality-preserving hashing (Algorithm 2, §3.2);
* :mod:`repro.core.query` — range queries and QuerySplit (Algorithm 4);
* :mod:`repro.core.routing` — QueryRouting and SurrogateRefine
  (Algorithms 3 & 5, §3.3);
* :mod:`repro.core.lifecycle` — per-query state machines, completion
  detection, deadlines/retries and futures;
* :mod:`repro.core.loadbalance` — static rotation + dynamic migration (§3.4);
* :mod:`repro.core.platform` — the multi-index platform facade;
* :mod:`repro.core.naive` — the naive per-cuboid baseline of §3.3.
"""

from repro.core.index_space import IndexSpace, IndexSpaceBounds
from repro.core.landmarks import (
    LandmarkSet,
    greedy_selection,
    kmeans_selection,
    kmedoids_selection,
    select_landmarks,
)
from repro.core.loadbalance import (
    LoadBalanceReport,
    dynamic_load_migration,
    hotspot_overlap,
    probe_neighbourhood,
)
from repro.core.lph import (
    key_to_cuboid,
    lp_hash,
    lp_hash_batch,
    prefix_to_cuboid,
    smallest_enclosing_prefix,
)
from repro.core.knn import KnnResult, knn_search
from repro.core.lifecycle import (
    LifecycleEngine,
    QueryFuture,
    QueryTimeout,
    RetryPolicy,
)
from repro.core.naive import NaiveProtocol, decompose_to_owner_cuboids
from repro.core.platform import IndexPlatform, LandmarkIndex, QueryPayload, take
from repro.core.query import QidAllocator, RangeQuery, Rect, query_split
from repro.core.routing import QueryProtocol
from repro.core.scale import ScaleConfig, ScaleReport, ScaleSimulation
from repro.core.storage import Shard, ShardStore
from repro.core.trace import QueryTrace, TraceEvent, TracingProtocol
from repro.core.updates import UpdateProtocol, UpdateStats, entry_message_size

__all__ = [
    "LandmarkSet",
    "greedy_selection",
    "kmeans_selection",
    "kmedoids_selection",
    "select_landmarks",
    "IndexSpace",
    "IndexSpaceBounds",
    "lp_hash",
    "lp_hash_batch",
    "key_to_cuboid",
    "prefix_to_cuboid",
    "smallest_enclosing_prefix",
    "RangeQuery",
    "Rect",
    "QidAllocator",
    "query_split",
    "QueryProtocol",
    "LifecycleEngine",
    "QueryFuture",
    "QueryTimeout",
    "RetryPolicy",
    "NaiveProtocol",
    "decompose_to_owner_cuboids",
    "IndexPlatform",
    "LandmarkIndex",
    "QueryPayload",
    "take",
    "Shard",
    "ShardStore",
    "ScaleConfig",
    "ScaleReport",
    "ScaleSimulation",
    "LoadBalanceReport",
    "dynamic_load_migration",
    "hotspot_overlap",
    "probe_neighbourhood",
    "KnnResult",
    "knn_search",
    "UpdateProtocol",
    "UpdateStats",
    "entry_message_size",
    "TracingProtocol",
    "QueryTrace",
    "TraceEvent",
]
