"""Per-query lifecycle engine: completion, deadlines, retries, futures.

The paper's query resolving (§3.3, Algorithms 3–5) implicitly assumes every
subquery eventually answers: a simulation "knows" a query is done only when
the whole event queue drains.  That breaks down the moment faults are
injected (messages lost to crashes, loss or partitions silently shrink the
result set) and forbids concurrent queries (nothing separates one query's
quiescence from another's).  This module gives every query an explicit
lifecycle instead:

``issued → routing → resolving → complete | timed_out``

* **Positive completion detection** — every unit of in-flight work (the
  initial injection, each routing/refine bundle, each naive/SCRAP lookup
  hop, each result reply) is a *branch*.  Protocols open a branch before
  sending and settle it once the receiving side has processed it; a query is
  complete exactly when its outstanding-branch count returns to zero.
* **Deadlines** — an optional per-query deadline forces the ``timed_out``
  terminal state, so lossy or partitioned runs terminate loudly instead of
  hanging or silently under-reporting.
* **Retransmission** — each message branch keeps its send thunk; an RTO
  timer (exponential backoff, :class:`RetryPolicy`) re-invokes it until the
  branch settles or retries are exhausted.  The simulator's deterministic
  drop notifications double as fast-path NACKs.  Because a jittered original
  and its retransmission can both arrive, branch ids are idempotent: the
  receiver accepts each branch once and suppresses duplicates, and result
  entries are deduplicated by object id at merge time.
* **Futures** — :meth:`register` returns a :class:`QueryFuture` with the
  terminal state, merged results and completion callbacks, which is what
  lets ``knn_search`` ride completion on a live simulator and the eval
  runner pipeline whole query batches.

The engine is deliberately protocol-agnostic: `QueryProtocol`,
`NaiveProtocol` and `SfcRangeProtocol` all report the same three events
(open / accept / settle) through the hooks in
:class:`repro.core.routing.QueryProtocol._tracked_send`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import Any

__all__ = [
    "ISSUED",
    "ROUTING",
    "RESOLVING",
    "COMPLETE",
    "TIMED_OUT",
    "TERMINAL_STATES",
    "RetryPolicy",
    "QueryTimeout",
    "QueryFuture",
    "LifecycleCounters",
    "LifecycleEngine",
]

#: lifecycle states of a query
ISSUED = "issued"
ROUTING = "routing"
RESOLVING = "resolving"
COMPLETE = "complete"
TIMED_OUT = "timed_out"
TERMINAL_STATES = (COMPLETE, TIMED_OUT)


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline/retransmission knobs of a :class:`LifecycleEngine`.

    Attributes
    ----------
    deadline:
        Seconds (simulation time) a query may run after being issued before
        it is forced into ``timed_out``; ``None`` disables the deadline
        (queries still terminate — the transport's drop notifications settle
        lost branches — but only a deadline bounds pathological cases).
    max_retries:
        Retransmissions allowed per message branch on top of the original
        send; 0 disables retransmission entirely.
    rto:
        Initial retransmission timeout in seconds.  Each further attempt of
        the same branch multiplies it by ``backoff``.
    backoff:
        Exponential backoff factor (>= 1) applied per attempt.
    """

    deadline: float | None = None
    max_retries: int = 0
    rto: float = 1.0
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.rto <= 0:
            raise ValueError(f"rto must be positive, got {self.rto}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")


class QueryTimeout(RuntimeError):
    """Raised by :meth:`QueryFuture.result` when the query timed out."""


@dataclass
class LifecycleCounters:
    """Engine-wide event counters (all queries combined).

    The three branch counters obey the conservation law the invariant
    checker (:mod:`repro.check.invariants`) relies on: at any instant,
    ``branches_opened == branches_settled + branches_discarded +
    branches_in_flight()`` — every branch ever opened is either settled
    (delivered or failed), discarded by a deadline firing, or still
    outstanding.
    """

    registered: int = 0
    completed: int = 0
    timed_out: int = 0
    retransmissions: int = 0
    duplicates_suppressed: int = 0
    branches_failed: int = 0
    branches_opened: int = 0
    branches_settled: int = 0
    branches_discarded: int = 0


class _Branch:
    """One outstanding unit of work of a query."""

    __slots__ = ("bid", "attempts", "timer", "send")

    def __init__(self, bid: int) -> None:
        self.bid = bid
        self.attempts = 0
        self.timer = None  # TimerHandle of the pending RTO, if any
        self.send: Callable[[int], None] | None = None


class _Record:
    """Per-query lifecycle state."""

    __slots__ = (
        "qid", "state", "outstanding", "branches", "seen", "next_bid",
        "best", "stats", "deadline_timer", "callbacks", "future",
    )

    def __init__(self, qid: int) -> None:
        self.qid = qid
        self.state = ISSUED
        self.outstanding = 0
        self.branches: dict[int, _Branch] = {}
        self.seen: set[int] = set()   # branch ids accepted at a receiver
        self.next_bid = 0
        self.best: dict[int, float] = {}  # object id -> best distance
        self.stats = None               # optional QueryStats mirror
        self.deadline_timer = None
        self.callbacks: list[Callable[["QueryFuture"], None]] = []
        self.future: QueryFuture | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


class QueryFuture:
    """Handle on one in-flight query: state, merged results, callbacks.

    Completion is driven by the simulator — run it (e.g. via
    :meth:`LifecycleEngine.run_until_complete`) until :meth:`done`.
    """

    __slots__ = ("qid", "engine", "_rec")

    def __init__(self, qid: int, engine: LifecycleEngine, rec: _Record) -> None:
        self.qid = qid
        self.engine = engine
        self._rec = rec

    @property
    def state(self) -> str:
        return self._rec.state

    def done(self) -> bool:
        return self._rec.terminal

    @property
    def timed_out(self) -> bool:
        return self._rec.state == TIMED_OUT

    @property
    def outstanding(self) -> int:
        """Branches still in flight (0 once terminal)."""
        return self._rec.outstanding

    def entries(self) -> list[Any]:
        """Merged result entries so far, deduplicated by object id (the best
        distance wins), sorted by (distance, object id).  Available on
        incomplete and timed-out queries — partial results are explicit."""
        from repro.sim.messages import ResultEntry

        merged = [ResultEntry(oid, d) for oid, d in self._rec.best.items()]
        merged.sort(key=lambda e: (e.distance, e.object_id))
        return merged

    def result(self, top_k: int | None = None) -> list[Any]:
        """The merged entries of a *completed* query.

        Raises :class:`QueryTimeout` when the query timed out (use
        :meth:`entries` to inspect the partial results) and ``RuntimeError``
        when the query has not reached a terminal state yet.
        """
        if not self._rec.terminal:
            raise RuntimeError(
                f"query {self.qid} not finished (state={self._rec.state!r}); "
                "run the simulator to completion first"
            )
        if self._rec.state == TIMED_OUT:
            raise QueryTimeout(
                f"query {self.qid} timed out with "
                f"{len(self._rec.best)} partial result(s)"
            )
        out = self.entries()
        return out if top_k is None else out[:top_k]

    def add_done_callback(self, fn: Callable[["QueryFuture"], None]) -> None:
        """Call ``fn(future)`` once the query reaches a terminal state (or
        immediately if it already has)."""
        if self._rec.terminal:
            fn(self)
        else:
            self._rec.callbacks.append(fn)


class LifecycleEngine:
    """Tracks the lifecycle of every registered query on one transport.

    One engine serves any number of queries and protocols concurrently (its
    records are keyed by qid — another reason qids must be unique per
    platform, see :class:`repro.core.query.QidAllocator`).
    """

    def __init__(
        self,
        transport: Any,
        policy: RetryPolicy | None = None,
        metrics: Any = None,
        recorder: Any = None,
    ) -> None:
        self.transport = transport
        self.policy = policy if policy is not None else RetryPolicy()
        self.records: dict[int, _Record] = {}
        self.counters = LifecycleCounters()
        #: optional SpanRecorder — retransmission/deadline events become
        #: spans, and query root spans are finished here (the engine is the
        #: one component that knows when a query reached a terminal state)
        self.recorder = recorder
        # instruments resolved once; open/settle run per message branch
        if metrics is not None and getattr(metrics, "enabled", False):
            self._m_opened = metrics.counter(
                "lifecycle_branches_opened_total", "Branches opened")
            self._m_settled = metrics.counter(
                "lifecycle_branches_settled_total", "Branches settled",
                ("outcome",))
            self._m_retrans = metrics.counter(
                "lifecycle_retransmissions_total", "Branch retransmissions")
            self._m_deadline = metrics.counter(
                "lifecycle_deadline_hits_total", "Per-query deadline firings")
            self._m_queries = metrics.counter(
                "lifecycle_queries_total", "Queries reaching a terminal state",
                ("state",))
            self._m_dups = metrics.counter(
                "lifecycle_duplicates_total", "Duplicate deliveries suppressed")
        else:
            self._m_opened = self._m_settled = self._m_retrans = None
            self._m_deadline = self._m_queries = self._m_dups = None

    def branches_in_flight(self) -> int:
        """Outstanding branches across all live queries (health sampling)."""
        return sum(
            rec.outstanding for rec in self.records.values() if not rec.terminal
        )

    # -- registration -----------------------------------------------------------

    def register(
        self,
        qid: int,
        stats: Any = None,
        issued_at: float | None = None,
        on_complete: Callable[["QueryFuture"], None] | None = None,
    ) -> QueryFuture:
        """Start tracking ``qid``; returns its future.

        ``stats`` is an optional :class:`repro.sim.stats.StatsCollector`
        whose per-query record mirrors the lifecycle state.  ``issued_at``
        anchors the deadline for queries scheduled into the future.
        """
        if qid in self.records:
            raise ValueError(f"query id {qid} already registered on this engine")
        rec = _Record(qid)
        self.records[qid] = rec
        rec.future = QueryFuture(qid, self, rec)
        if stats is not None:
            rec.stats = stats.for_query(qid)
            rec.stats.state = ISSUED
        if on_complete is not None:
            rec.callbacks.append(on_complete)
        self.counters.registered += 1
        if self.policy.deadline is not None:
            start = issued_at if issued_at is not None else self.transport.sim.now
            rec.deadline_timer = self.transport.at_cancelable(
                start + self.policy.deadline, self._deadline, qid
            )
        return rec.future

    def tracked(self, qid: int) -> bool:
        """Whether ``qid`` is registered and still running."""
        rec = self.records.get(qid)
        return rec is not None and not rec.terminal

    def future(self, qid: int) -> QueryFuture | None:
        rec = self.records.get(qid)
        return rec.future if rec is not None else None

    # -- branch accounting ------------------------------------------------------

    def open(self, qid: int) -> int | None:
        """Open a branch; returns its id (None for untracked/finished qids)."""
        rec = self.records.get(qid)
        if rec is None or rec.terminal:
            return None
        bid = rec.next_bid
        rec.next_bid += 1
        rec.branches[bid] = _Branch(bid)
        rec.outstanding += 1
        self.counters.branches_opened += 1
        if self._m_opened is not None:
            self._m_opened.inc()
        if rec.state == ISSUED:
            self._set_state(rec, ROUTING)
        return bid

    def arm(self, qid: int, bid: int, send: Callable[[int], None]) -> None:
        """Attach the send thunk of a message branch and transmit attempt 1.

        ``send(attempt)`` must perform the actual transport send; the engine
        re-invokes it on retransmission with the incremented attempt number.
        """
        rec = self.records.get(qid)
        if rec is None or rec.terminal:
            return
        br = rec.branches.get(bid)
        if br is None:
            return
        br.send = send
        self._transmit(rec, br)

    def accept(self, qid: int, bid: int) -> bool:
        """Receiver-side idempotence check: process each branch only once.

        Returns False for duplicates (a retransmission racing its jittered
        original) and for stragglers of already-terminal queries.
        """
        rec = self.records.get(qid)
        if rec is None:
            return True  # untracked query: nothing to suppress
        if rec.terminal:
            return False
        if bid in rec.seen:
            self.counters.duplicates_suppressed += 1
            if self._m_dups is not None:
                self._m_dups.inc()
            if rec.stats is not None:
                rec.stats.duplicate_messages += 1
            return False
        rec.seen.add(bid)
        return True

    def settle(self, qid: int, bid: int | None, failed: bool = False) -> None:
        """Close a branch; the query completes when none remain outstanding."""
        if bid is None:
            return
        rec = self.records.get(qid)
        if rec is None or rec.terminal:
            return
        br = rec.branches.pop(bid, None)
        if br is None:
            return  # already settled (e.g. duplicate delivery)
        if br.timer is not None:
            br.timer.cancel()
            br.timer = None
        if failed:
            self.counters.branches_failed += 1
            if rec.stats is not None:
                rec.stats.failed_branches += 1
        self.counters.branches_settled += 1
        if self._m_settled is not None:
            self._m_settled.inc(("failed" if failed else "ok",))
        rec.outstanding -= 1
        if rec.outstanding <= 0:
            self._complete(rec)

    def notify_drop(self, qid: int, bid: int | None) -> None:
        """Transport drop notification: retry after backoff or fail the branch."""
        if bid is None:
            return
        rec = self.records.get(qid)
        if rec is None or rec.terminal:
            return
        br = rec.branches.get(bid)
        if br is None:
            return
        if br.timer is not None:
            br.timer.cancel()
            br.timer = None
        if br.send is None or br.attempts > self.policy.max_retries:
            self.settle(qid, bid, failed=True)
            return
        delay = self.policy.rto * self.policy.backoff ** (br.attempts - 1)
        br.timer = self.transport.timer_cancelable(delay, self._retransmit, qid, bid)

    # -- state reporting --------------------------------------------------------

    def mark_resolving(self, qid: int) -> None:
        """First local solve of a query: ``routing -> resolving``."""
        rec = self.records.get(qid)
        if rec is not None and rec.state in (ISSUED, ROUTING):
            self._set_state(rec, RESOLVING)

    def add_entries(self, qid: int, entries: Iterable[Any]) -> None:
        """Merge result entries into the query's best-per-object-id set."""
        rec = self.records.get(qid)
        if rec is None:
            return
        best = rec.best
        for e in entries:
            d = best.get(e.object_id)
            if d is None or e.distance < d:
                best[e.object_id] = e.distance

    # -- driving the simulator --------------------------------------------------

    def run_until_complete(self, futures: Iterable[Any]) -> bool:
        """Run the simulator until every future is terminal.

        Unlike running to quiescence this leaves unrelated events (other
        queries, scheduled maintenance) queued, which is what lets batches
        and maintenance traffic share one live simulator.  Returns True when
        all futures finished; False if the event queue drained first (which
        cannot happen for engine-tracked queries — every branch settles on
        delivery, drop or timeout).
        """
        pending = [f for f in futures if f is not None and not f.done()]
        remaining = [len(pending)]

        def _one_done(_fut: Any) -> None:
            remaining[0] -= 1

        for f in pending:
            f.add_done_callback(_one_done)
        sim = self.transport.sim
        while remaining[0] > 0 and sim.pending():
            sim.run(max_events=1)
        return remaining[0] == 0

    # -- internals --------------------------------------------------------------

    def _set_state(self, rec: _Record, state: str) -> None:
        rec.state = state
        if rec.stats is not None:
            rec.stats.state = state

    def _transmit(self, rec: _Record, br: _Branch) -> None:
        br.attempts += 1
        if br.attempts > 1:
            self.counters.retransmissions += 1
            if self._m_retrans is not None:
                self._m_retrans.inc()
            if self.recorder is not None:
                self.recorder.event(
                    rec.qid, "retransmit", bid=br.bid, attempt=br.attempts)
            if rec.stats is not None:
                rec.stats.retransmissions += 1
        attempt = br.attempts
        br.send(attempt)
        # The branch may have settled synchronously (self-delivery at zero
        # delay) or been dropped at send time (loss/partition -> notify_drop
        # already rescheduled or failed it); only arm an RTO when it is
        # still plainly in flight.
        br2 = rec.branches.get(br.bid)
        if br2 is not br or br.timer is not None or rec.terminal:
            return
        if attempt <= self.policy.max_retries:
            delay = self.policy.rto * self.policy.backoff ** (attempt - 1)
            br.timer = self.transport.timer_cancelable(
                delay, self._rto_expired, rec.qid, br.bid
            )

    def _rto_expired(self, qid: int, bid: int) -> None:
        rec = self.records.get(qid)
        if rec is None or rec.terminal:
            return
        br = rec.branches.get(bid)
        if br is None:
            return
        br.timer = None
        self._retransmit(qid, bid)

    def _retransmit(self, qid: int, bid: int) -> None:
        rec = self.records.get(qid)
        if rec is None or rec.terminal:
            return
        br = rec.branches.get(bid)
        if br is None:
            return
        br.timer = None
        self._transmit(rec, br)

    def _deadline(self, qid: int) -> None:
        rec = self.records.get(qid)
        if rec is None or rec.terminal:
            return
        for br in rec.branches.values():
            if br.timer is not None:
                br.timer.cancel()
                br.timer = None
        self.counters.branches_discarded += len(rec.branches)
        rec.branches.clear()
        rec.outstanding = 0
        self._set_state(rec, TIMED_OUT)
        self.counters.timed_out += 1
        if self._m_deadline is not None:
            self._m_deadline.inc()
            self._m_queries.inc((TIMED_OUT,))
        if self.recorder is not None:
            self.recorder.event(rec.qid, "deadline", status=TIMED_OUT)
        self._finalize(rec)

    def _complete(self, rec: _Record) -> None:
        self._set_state(rec, COMPLETE)
        self.counters.completed += 1
        if self._m_queries is not None:
            self._m_queries.inc((COMPLETE,))
        self._finalize(rec)

    def _finalize(self, rec: _Record) -> None:
        if rec.deadline_timer is not None:
            rec.deadline_timer.cancel()
            rec.deadline_timer = None
        if rec.stats is not None:
            rec.stats.completed_at = self.transport.sim.now
        if self.recorder is not None:
            self.recorder.finish_query(rec.qid, status=rec.state)
        callbacks, rec.callbacks = rec.callbacks, []
        for fn in callbacks:
            fn(rec.future)
