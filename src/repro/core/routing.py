"""Distributed range-query resolving and routing (paper §3.3, Algorithms 3 & 5).

``QueryProtocol`` drives queries through the simulated Chord overlay:

* **QueryRouting** (Algorithm 3) runs at every node on the propagation path:
  split the query one partition level deeper (Algorithm 4 via
  :func:`repro.core.query.query_split`); if both halves would take the same
  DHT link, keep the query whole — "a query splits into multiple subqueries
  only when these subqueries need to take different ways on the distributed
  embedded tree".  Subqueries whose ``next_hop`` is the current node have
  reached the predecessor of their prefix key and are handed to the
  *surrogate* (the successor, i.e. the key's owner) for refinement.

* **SurrogateRefine** (Algorithm 5) runs at owner nodes: answer the part of
  the query the node's ownership interval covers from local storage, carve
  out the remainder and re-route it.

All network delivery — latency lookup, liveness checks, drop accounting,
fault injection and per-message tracing — goes through the shared
:class:`repro.sim.transport.Transport`; this module only decides *what* to
send *where*.  When a :class:`repro.core.lifecycle.LifecycleEngine` is
attached, every message additionally runs as one tracked *branch*: opened
before the send, settled after the receiving side processed it, retried on
drops/timeouts and deduplicated on retransmission races — which gives each
query positive completion detection and a terminal state even under faults
(see :mod:`repro.core.lifecycle`).  Without an engine the protocol behaves
exactly as before: fire-and-forget sends, completion by quiescence.

Two surrogate modes are provided:

``"fixed"`` (default)
    Decomposes the claimed key range above the node's identifier into the
    canonical sibling cuboids — one per zero bit of the (rotation-adjusted)
    identifier, *the same prefixes Algorithm 5's recursion forwards* — but
    intersects each forwarded rectangle with the full sibling cuboid and
    answers the locally-owned key range against the whole remaining
    rectangle.  Identical message pattern and cost; never loses results.

``"literal"``
    Algorithm 5 exactly as printed.  When a query rectangle still straddles
    partition planes between ``prefix_len + 1`` and the node's first zero
    bit, the printed pseudocode re-prefixes the query with the node's 1-bits
    and can drop the straddling slivers (see DESIGN.md); kept for the
    fidelity ablation benchmark.

Rotation (static load balancing, §3.4) is applied at the boundary between
index-key space and ring space: routing targets ``rotate(prefix_key)`` and
prefix comparisons use the node's *effective* identifier
``unrotate(node.id)``; rotation is order-preserving on the ring so ownership
reasoning is unchanged.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

import numpy as np

from repro.core.query import RangeQuery, Rect, query_split
from repro.core.lph import prefix_to_cuboid
from repro.sim.messages import ResultEntry, ResultMessage, query_message_size
from repro.sim.transport import Protocol
from repro.util.bits import first_zero_bit, prefix_of, same_prefix, set_bit_at

__all__ = ["QueryProtocol"]


class QueryProtocol(Protocol):
    """Event-driven executor of the range-query routing algorithms.

    Parameters
    ----------
    sim:
        The discrete-event :class:`repro.sim.engine.Simulator` (ignored when
        ``transport`` is given — the transport's simulator is used).
    index:
        A distributed landmark index (duck-typed; see
        :class:`repro.core.platform.LandmarkIndex`): must expose ``m``,
        ``k``, ``bounds``, ``rotation``, ``shards`` and
        ``refine_distances``.
    stats:
        A :class:`repro.sim.stats.StatsCollector` (created when omitted).
    latency:
        Optional latency model; ``None`` makes all messages instantaneous
        (structural tests).  Ignored when ``transport`` is given.
    surrogate_mode:
        ``"fixed"`` or ``"literal"`` (see module docstring).
    top_k:
        How many nearest local results an index node returns (paper: 10).
    range_filter:
        Refine candidates by true distance and drop those beyond the query
        radius (the paper's superset refinement).
    reply_empty:
        Whether index nodes owning no matching entries still send a (20-byte)
        reply; needed for the *maximum latency* metric to be observable.
    maintenance:
        Optional :class:`repro.dht.stabilize.StabilizationProtocol`; query
        traffic is reported to it for §3.3 piggybacking.
    transport:
        A shared :class:`repro.sim.transport.Transport`; created from
        ``sim``/``latency`` when omitted.
    engine:
        Optional :class:`repro.core.lifecycle.LifecycleEngine`.  When given,
        :meth:`issue` registers the query with it and returns its
        :class:`repro.core.lifecycle.QueryFuture`; every message becomes a
        tracked, retryable branch.
    obs:
        Optional :class:`repro.obs.Observability`.  Routing counters and hop
        histograms land in its metrics registry; when its span recorder is
        active, every routing step, surrogate refinement, local solve,
        message send/drop and result arrival is emitted as a qid-correlated
        span (see :mod:`repro.obs.spans`).  ``None`` (the default) costs one
        ``is not None`` test per step.
    checker:
        Optional partition-exactness observer (duck-typed; see
        :class:`repro.check.invariants.PartitionChecker`).  Two callbacks:
        ``on_split(q, subs)`` whenever a query is split one level deeper,
        and ``on_refine(q, eff, local_lo, local_hi, siblings)`` whenever a
        surrogate decomposes its claimed key range (``siblings`` is the
        ``(prefix_key, prefix_len)`` list of forwarded sibling cuboids,
        before rect intersection).  ``None`` costs one test per step.
    """

    def __init__(
        self,
        sim: Any = None,
        index: Any = None,
        stats: Any = None,
        latency: Any = None,
        surrogate_mode: str = "fixed",
        top_k: int = 10,
        range_filter: bool = True,
        reply_empty: bool = True,
        maintenance: Any = None,
        transport: Any = None,
        engine: Any = None,
        obs: Any = None,
        checker: Any = None,
    ) -> None:
        if surrogate_mode not in ("fixed", "literal"):
            raise ValueError(f"unknown surrogate_mode {surrogate_mode!r}")
        if index is None:
            raise TypeError("QueryProtocol needs an index")
        super().__init__(
            sim=sim, stats=stats, latency=latency,
            transport=transport, maintenance=maintenance,
        )
        self.index = index
        self.surrogate_mode = surrogate_mode
        self.top_k = top_k
        self.range_filter = range_filter
        self.reply_empty = reply_empty
        self.engine = engine
        self.checker = checker
        self.recorder = obs.recorder if obs is not None else None
        registry = obs.registry if obs is not None else None
        if registry is not None and registry.enabled:
            from repro.obs.registry import DEFAULT_HOP_BUCKETS

            proto = type(self).__name__
            self._m_splits = registry.counter(
                "routing_splits_total", "Queries split one level deeper",
                ("proto",))
            self._m_refines = registry.counter(
                "routing_surrogate_refines_total", "Surrogate refinements",
                ("proto", "mode"))
            self._m_solves = registry.counter(
                "routing_local_solves_total", "Local range-query resolutions",
                ("proto",))
            self._h_hops = registry.histogram(
                "routing_index_node_hops", "Overlay hops to reach index nodes",
                ("proto",), buckets=DEFAULT_HOP_BUCKETS)
            self._proto_label = (proto,)
            self._refine_label = (proto, surrogate_mode)
        else:
            self._m_splits = self._m_refines = None
            self._m_solves = self._h_hops = None
            self._proto_label = ()
            self._refine_label = ()

    # -- key-space helpers ----------------------------------------------------

    def _rotate(self, key: int) -> int:
        return (key + self.index.rotation) % (1 << self.index.m)

    def _effective_id(self, node: Any) -> int:
        return (node.id - self.index.rotation) % (1 << self.index.m)

    def _next_hop(self, node: Any, prefix_key: int) -> Any:
        return node.next_hop(self._rotate(prefix_key))

    # -- lifecycle-tracked message plumbing ------------------------------------
    #
    # All three query protocols (this one, NaiveProtocol, SfcRangeProtocol)
    # send query-carrying messages through _tracked_send and receive them
    # through _recv, so branch accounting, retransmission and duplicate
    # suppression live in exactly one place.

    def _drop_cb(self, qid: int, bid: int | None = None,
                 psid: int | None = None) -> Callable[[Any], None]:
        """A per-message drop callback: attribute the loss to ``qid`` and
        notify the lifecycle engine so the branch retries or settles."""
        st = self.stats.for_query(qid)
        engine = self.engine
        recorder = self.recorder

        def on_drop(trace: Any) -> None:
            st.dropped_messages += 1
            if recorder is not None:
                recorder.event(qid, "drop", parent=psid, status=trace.status)
            if engine is not None:
                engine.notify_drop(qid, bid)

        return on_drop

    def _tracked_send(
        self,
        src: Any,
        dst: Any,
        fn: Callable[..., None],
        *args: Any,
        kind: str,
        size: int,
        qid: int,
        record: bool = True,
    ) -> None:
        """Send ``fn(*args)``-at-``dst`` as one lifecycle branch.

        ``record`` charges the message to the query's byte/message counters
        per transmission attempt (retries are real traffic); result replies
        pass ``record=False`` and account on arrival instead.  Without an
        engine this degrades to a plain transport send.

        With a span recorder, each transmission attempt emits a ``send``
        span parented to the span that was current when the send was
        *initiated* (captured here — a retransmission fires from a timer,
        when the context stack is long gone).  The send span's id travels
        with the message so processing at the receiver nests under it.
        """
        engine = self.engine
        bid = engine.open(qid) if engine is not None else None
        recorder = self.recorder
        parent = recorder.context(qid) if recorder is not None else None
        charged = bool(record and size)

        def transmit(attempt: int = 1) -> None:
            if record and size:
                self.stats.for_query(qid).record_query_message(size)
                self.note_traffic(src, dst)
            psid = None
            if recorder is not None:
                psid = recorder.event(
                    qid, "send", parent=parent, node=src.id,
                    msg_kind=kind, size=size, dst=dst.id,
                    attempt=attempt, charged=charged,
                )
            self.transport.send(
                src, dst, self._recv, qid, bid, psid, fn, args,
                kind=kind, size=size, qid=qid, attempt=attempt,
                on_drop=self._drop_cb(qid, bid, psid),
            )

        if bid is None:
            transmit()
        else:
            engine.arm(qid, bid, transmit)

    def _recv(self, qid: int, bid: int | None, psid: int | None,
              fn: Callable[..., None], args: tuple[Any, ...]) -> None:
        """Arrival half of :meth:`_tracked_send`: dedup, process, settle.

        ``psid`` is the sid of the send span this message belongs to; it is
        pushed as the current span while the handler runs so everything the
        receiver does nests under the message that triggered it.
        """
        recorder = self.recorder
        if recorder is not None and psid is not None:
            recorder.push(psid)
        try:
            engine = self.engine
            if engine is None or bid is None:
                fn(*args)
                return
            if not engine.accept(qid, bid):
                return
            try:
                fn(*args)
            finally:
                engine.settle(qid, bid)
        finally:
            if recorder is not None and psid is not None:
                recorder.pop()

    # -- entry points ----------------------------------------------------------

    def issue(self, query: RangeQuery, node: Any,
              at_time: float | None = None) -> Any:
        """Inject ``query`` at ``node`` (optionally at a future simulation time).

        Returns the query's :class:`repro.core.lifecycle.QueryFuture` when a
        lifecycle engine is attached, else ``None``.
        """
        query.source = node
        st = self.stats.for_query(query.qid)
        st.issued_at = self.sim.now if at_time is None else at_time
        if self.recorder is not None:
            self.recorder.begin_query(query.qid, node=node.id)
        if self.engine is None:
            if at_time is None:
                self._start(node, query)
            else:
                self.transport.at(at_time, self._start, node, query)
            return None
        fut = self.engine.register(query.qid, stats=self.stats, issued_at=st.issued_at)
        # the injection itself is a branch: the query cannot look complete
        # before its first routing step has run
        root = self.engine.open(query.qid)
        if at_time is None:
            self._start_root(node, query, root)
        else:
            self.transport.at(at_time, self._start_root, node, query, root)
        return fut

    def issue_many(
        self,
        queries: list[RangeQuery],
        nodes: list[Any],
        at_times: list[float],
    ) -> list[Any]:
        """Inject a batch of queries at their arrival times (bulk workload path).

        Equivalent to ``[self.issue(q, n, at_time=t) for ...]`` — same stats
        records, same event times, same sequence-number order, hence the same
        replay digest — but without a lifecycle engine the scheduling
        collapses into one :meth:`Transport.at_batch` heapify instead of one
        sift-up per query.  With an engine attached, registration itself
        arms deadline timers whose sequence numbers interleave with the
        starts, so the per-query path is kept to preserve that exact order.
        """
        if self.engine is not None:
            return [
                self.issue(q, node, at_time=float(at))
                for q, node, at in zip(queries, nodes, at_times)
            ]
        entries = []
        for query, node, at in zip(queries, nodes, at_times):
            at = float(at)
            query.source = node
            st = self.stats.for_query(query.qid)
            st.issued_at = at
            if self.recorder is not None:
                self.recorder.begin_query(query.qid, node=node.id)
            entries.append((at, self._start, (node, query)))
        self.transport.at_batch(entries)
        return [None] * len(entries)

    def _start_root(self, node: Any, query: RangeQuery, root: int | None) -> None:
        try:
            self._start(node, query)
        finally:
            self.engine.settle(query.qid, root)

    def _start(self, node: Any, query: RangeQuery) -> None:
        """Protocol-specific first step (overridden by the baselines)."""
        self._query_routing(node, query, 0)

    # -- Algorithm 3: QueryRouting ---------------------------------------------

    def _query_routing(self, node: Any, q: RangeQuery, hops: int) -> None:
        if not node.alive:
            # the issuing node crashed before its scheduled query fired
            self.stats.for_query(q.qid).dropped_messages += 1
            return
        m = self.index.m
        if q.prefix_len == m:
            sublist = [q]
        else:
            subs = query_split(q, q.prefix_len + 1, self.index.bounds, m)
            if len(subs) == 1:
                sublist = subs
            else:
                n1 = self._next_hop(node, subs[0].prefix_key)
                n2 = self._next_hop(node, subs[1].prefix_key)
                # Same next hop for both halves: deliver unsplit (line 8-9).
                sublist = [q] if n1 is n2 else subs
        if len(sublist) > 1:
            if self._m_splits is not None:
                self._m_splits.inc(self._proto_label)
            if self.checker is not None:
                self.checker.on_split(q, sublist)
        recorder = self.recorder
        sid = None
        if recorder is not None:
            sid = recorder.event(
                q.qid, "route", node=node.id, hops=hops,
                prefix_len=q.prefix_len, subqueries=len(sublist),
            )
            recorder.push(sid)
        try:
            routing_groups: dict[Any, list[RangeQuery]] = {}
            refine_groups: dict[Any, list[RangeQuery]] = {}
            for sq in sublist:
                n = self._next_hop(node, sq.prefix_key)
                if n is node:
                    # This node is the predecessor of the prefix key; the
                    # owner is its successor — the surrogate (lines 16-17).
                    refine_groups.setdefault(node.successor, []).append(sq)
                else:
                    routing_groups.setdefault(n, []).append(sq)
            for dest, sqs in routing_groups.items():
                self._send(node, dest, "routing", sqs, hops)
            for dest, sqs in refine_groups.items():
                self._send(node, dest, "refine", sqs, hops)
        finally:
            if recorder is not None:
                recorder.pop()

    # -- message plumbing --------------------------------------------------------

    def _send(self, src: Any, dest: Any, kind: str,
              sqs: list[RangeQuery], hops: int) -> None:
        """Bundle subqueries sharing a next hop into one message (§4.1 size model)."""
        qid = sqs[0].qid
        if dest is src:
            # Local hand-off (single-node ring): no network message.
            self._tracked_send(
                src, dest, self._open_bundle, dest, kind, sqs, hops,
                kind=f"query:{kind}", size=0, qid=qid,
            )
            return
        size = query_message_size(len(sqs), self.index.k)
        self._tracked_send(
            src, dest, self._open_bundle, dest, kind, sqs, hops + 1,
            kind=f"query:{kind}", size=size, qid=qid,
        )

    def _open_bundle(self, dest: Any, kind: str,
                     sqs: list[RangeQuery], hops: int) -> None:
        """Unpack an arrived bundle (liveness already checked by transport)."""
        for sq in sqs:
            if kind == "routing":
                self._query_routing(dest, sq, hops)
            else:
                self._surrogate_refine(dest, sq, hops)

    # -- Algorithm 5: SurrogateRefine ----------------------------------------------

    def _surrogate_refine(self, node: Any, q: RangeQuery, hops: int) -> None:
        if self._m_refines is not None:
            self._m_refines.inc(self._refine_label)
        recorder = self.recorder
        sid = None
        if recorder is not None:
            sid = recorder.event(
                q.qid, "refine", node=node.id, hops=hops,
                mode=self.surrogate_mode, prefix_len=q.prefix_len,
            )
            recorder.push(sid)
        try:
            if self.surrogate_mode == "fixed":
                self._surrogate_refine_fixed(node, q, hops)
            else:
                self._surrogate_refine_literal(node, q, hops)
        finally:
            if recorder is not None:
                recorder.pop()

    def _claimed_range(self, q: RangeQuery) -> tuple[int, int]:
        """The key interval of the cuboid a subquery claims."""
        span = 1 << (self.index.m - q.prefix_len)
        return q.prefix_key, q.prefix_key + span - 1

    def _surrogate_refine_fixed(self, node: Any, q: RangeQuery, hops: int) -> None:
        m = self.index.m
        eff = self._effective_id(node)
        key_lo, key_hi = self._claimed_range(q)
        if not same_prefix(q.prefix_key, eff, q.prefix_len, m):
            # The node's identifier lies beyond the claimed cuboid, so its
            # ownership interval swallows the whole claimed key range.
            if self.checker is not None:
                self.checker.on_refine(q, eff, key_lo, key_hi, [])
            self._solve_local(node, q, hops, key_lo, key_hi)
            return
        j = first_zero_bit(eff, q.prefix_len + 1, m)
        if j is None:
            # eff is the maximal key of the cuboid: full coverage again.
            if self.checker is not None:
                self.checker.on_refine(q, eff, key_lo, key_hi, [])
            self._solve_local(node, q, hops, key_lo, key_hi)
            return
        # Keys in (eff, key_hi] decompose into the canonical sibling cuboids
        # at each zero bit of eff — the prefixes Algorithm 5 forwards.
        siblings: list[tuple[int, int]] = []
        jj: int | None = j
        while jj is not None:
            siblings.append((set_bit_at(prefix_of(eff, jj - 1, m), jj, m), jj))
            jj = first_zero_bit(eff, jj + 1, m)
        if self.checker is not None:
            self.checker.on_refine(q, eff, key_lo, eff, siblings)
        # The node owns [key_lo, eff]; answer that slice of the rectangle.
        self._solve_local(node, q, hops, key_lo, eff)
        for sib_prefix, jj in siblings:
            lows, highs = prefix_to_cuboid(sib_prefix, jj, self.index.bounds, m)
            nl = np.maximum(q.rect.lows, lows)
            nh = np.minimum(q.rect.highs, highs)
            if np.all(nl <= nh):
                sq = RangeQuery(
                    rect=Rect(nl, nh),
                    prefix_key=sib_prefix,
                    prefix_len=jj,
                    qid=q.qid,
                    source=q.source,
                    index_name=q.index_name,
                    payload=q.payload,
                    radius=q.radius,
                )
                self._query_routing(node, sq, hops)

    def _surrogate_refine_literal(self, node: Any, q: RangeQuery, hops: int) -> None:
        m = self.index.m
        eff = self._effective_id(node)
        key_lo, key_hi = self._claimed_range(q)
        if not same_prefix(q.prefix_key, eff, q.prefix_len, m):
            self._solve_local(node, q, hops, key_lo, key_hi)  # lines 1-3
            return
        j = first_zero_bit(eff, q.prefix_len + 1, m)
        if j is None:
            self._solve_local(node, q, hops, key_lo, key_hi)  # lines 6-8
            return
        nq = q.copy()
        nq.prefix_key = prefix_of(eff, j - 1, m)  # line 10
        nq.prefix_len = j - 1  # line 11
        for sq in query_split(nq, j, self.index.bounds, m):  # line 12
            if same_prefix(sq.prefix_key, eff, sq.prefix_len, m):
                self._surrogate_refine_literal(node, sq, hops)  # line 15
            else:
                self._query_routing(node, sq, hops)  # line 17

    # -- local resolution ------------------------------------------------------------

    def _solve_local(self, node: Any, q: RangeQuery, hops: int,
                     key_lo: int, key_hi: int) -> None:
        """Answer the (rect x key-range) slice from local storage and reply.

        Index nodes return their ``top_k`` nearest results after refining the
        candidate superset with true distances (paper §4.1: "each queried
        index node returns the 10-nearest local results").
        """
        st = self.stats.for_query(q.qid)
        st.record_index_node(node.id, hops)
        if self._m_solves is not None:
            self._m_solves.inc(self._proto_label)
            self._h_hops.observe(hops, self._proto_label)
        if self.engine is not None:
            self.engine.mark_resolving(q.qid)
        entries: list[ResultEntry] = []
        shard = self.index.shards.get(node)
        if shard is not None and len(shard):
            pos = shard.range_search(q.rect.lows, q.rect.highs, key_lo, key_hi)
            if len(pos):
                object_ids = shard.object_ids[pos]
                dists = self.index.refine_distances(q, shard.points[pos], object_ids)
                if self.range_filter and q.radius is not None:
                    keep = dists <= q.radius
                    object_ids = object_ids[keep]
                    dists = dists[keep]
                if len(object_ids) > self.top_k:
                    nearest = np.argpartition(dists, self.top_k)[: self.top_k]
                    object_ids = object_ids[nearest]
                    dists = dists[nearest]
                entries = [
                    ResultEntry(int(oid), float(d)) for oid, d in zip(object_ids, dists)
                ]
        recorder = self.recorder
        sid = None
        if recorder is not None:
            sid = recorder.event(
                q.qid, "solve", node=node.id, hops=hops,
                results=len(entries), key_lo=key_lo, key_hi=key_hi,
            )
        if entries or self.reply_empty:
            if recorder is not None:
                recorder.push(sid)
            try:
                self._reply(node, q, entries)
            finally:
                if recorder is not None:
                    recorder.pop()

    def _reply(self, node: Any, q: RangeQuery, entries: list[ResultEntry]) -> None:
        msg = ResultMessage(q.qid, entries, from_node=node.id)
        st = self.stats.for_query(q.qid)
        if q.source is node:
            st.record_result_message(0, self.sim.now)
            st.entries.extend(entries)
            # a local reply is still one "result" leaf in the span tree —
            # span counts must match QueryStats.result_messages exactly
            if self.recorder is not None:
                self.recorder.event(
                    q.qid, "result", node=node.id,
                    results=len(entries), size=0, local=True,
                )
            if self.engine is not None:
                self.engine.add_entries(q.qid, entries)
            return
        self.note_traffic(node, q.source)
        # result bytes are charged on arrival (a dropped or duplicated reply
        # must not count), hence record=False here
        self._tracked_send(
            node, q.source, self._arrive_result, q.qid, msg,
            kind="result", size=msg.size, qid=q.qid, record=False,
        )

    def _arrive_result(self, qid: int, msg: ResultMessage) -> None:
        st = self.stats.for_query(qid)
        st.record_result_message(msg.size, self.sim.now)
        st.entries.extend(msg.entries)
        if self.recorder is not None:
            self.recorder.event(
                qid, "result", node=msg.from_node,
                results=len(msg.entries), size=msg.size, local=False,
            )
        if self.engine is not None:
            self.engine.add_entries(qid, msg.entries)
