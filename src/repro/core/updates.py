"""Dynamic datasets: protocol-level insertion and deletion of index entries.

The paper's §6 names dynamic datasets as future work; the natural mechanism
is already implied by the architecture: an insert maps the new object to its
index point (one landmark-distance vector per landmark), hashes it with the
locality-preserving hash, and routes the entry to the owner of its (rotated)
key over the same Chord links queries use.  This module implements that
update path with full message accounting, plus deletions.

Entry messages are modelled like the paper's query entries: 20 bytes header
+ 4 bytes source + per-entry ``(2k coordinates x 2 bytes + 8-byte key +
8-byte object id)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import Any

from repro.core.lph import lp_hash_batch
from repro.core.platform import take

__all__ = ["UpdateStats", "UpdateProtocol", "entry_message_size"]

HEADER_BYTES = 24


def entry_message_size(n_entries: int, k: int) -> int:
    """Size of a message carrying ``n_entries`` index entries."""
    return HEADER_BYTES + n_entries * (2 * 2 * k + 8 + 8)


@dataclass
class UpdateStats:
    """Cost counters of update traffic."""

    inserts: int = 0
    deletes: int = 0
    messages: int = 0
    bytes: int = 0
    hops_total: int = 0

    @property
    def mean_hops(self) -> float:
        ops = self.inserts + self.deletes
        return self.hops_total / ops if ops else 0.0


class UpdateProtocol:
    """Routes index-entry updates to their owner nodes over the overlay.

    Parameters
    ----------
    index:
        The :class:`repro.core.platform.LandmarkIndex` being updated.  Its
        ``dataset`` must already contain any object being inserted (the
        index stores references, not objects).
    """

    def __init__(self, index: Any) -> None:
        self.index = index
        self.stats = UpdateStats()

    def _route_cost(self, source_node: Any, ring_key: int) -> None:
        """Account the Chord lookup that carries one update entry."""
        path = self.index.ring.lookup_path(source_node, ring_key)
        hops = len(path) - 1
        self.stats.hops_total += hops
        self.stats.messages += max(hops, 1)
        self.stats.bytes += max(hops, 1) * entry_message_size(1, self.index.k)

    def insert(self, object_id: int, source_node: Any = None) -> int:
        """Index ``dataset[object_id]``: project, hash, route to the owner.

        Returns the entry's LPH key.  The object must already be present in
        ``index.dataset``.
        """
        index = self.index
        source_node = source_node or index.ring.nodes()[0]
        obj = take(index.dataset, object_id)
        point = index.bounds.clip(index.space.project_one(obj))
        key = int(lp_hash_batch(point[None, :], index.bounds, index.m)[0])
        mask = (1 << index.m) - 1
        self._route_cost(source_node, (key + index.rotation) & mask)
        index.append_entry(object_id, point, key)
        self.stats.inserts += 1
        return key

    def delete(self, object_id: int, source_node: Any = None) -> bool:
        """Remove the entry of ``object_id``; returns False when absent."""
        index = self.index
        source_node = source_node or index.ring.nodes()[0]
        key = index.remove_entry(object_id)
        if key is None:
            return False
        mask = (1 << index.m) - 1
        self._route_cost(source_node, (key + index.rotation) & mask)
        self.stats.deletes += 1
        return True

    def insert_many(self, object_ids: Any, source_node: Any = None) -> None:
        """Insert a batch (one routed entry each; arrays rebuilt once at the
        end for efficiency)."""
        index = self.index
        source_node = source_node or index.ring.nodes()[0]
        object_ids = np.asarray(object_ids, dtype=np.int64)
        objs = take(index.dataset, object_ids)
        points = index.bounds.clip(index.space.landmark_set.project(objs))
        keys = lp_hash_batch(points, index.bounds, index.m)
        mask = (1 << index.m) - 1
        for key in keys:
            self._route_cost(source_node, (int(key) + index.rotation) & mask)
        index._keys = np.concatenate([index._keys, keys])
        index._points = np.vstack([index._points, points])
        index._object_ids = np.concatenate([index._object_ids, object_ids])
        index._owner_objs = None
        index.distribute()
        self.stats.inserts += len(object_ids)
