"""The naive range-query baseline the paper argues against (§3.3).

"A naive approach is to subdivide a range query into many subqueries, each of
which is covered by only one of the ``2^m`` hypercuboids, and to route each
subquery to the corresponding index node.  This method is obviously
inefficient and will cause high overhead especially when the query
selectivity is large."

We implement the practical form of that strawman: the querying node
decomposes the query region into canonical prefix cuboids *down to owner
granularity* (descending only while a cuboid spans more than one owner, so
the subquery count equals the number of index nodes touched — the best case
for the naive scheme) and performs an **independent Chord lookup per
subquery**, with no path sharing, no bundling and no surrogate refinement.
Every lookup hop is a separate query message delivered through the shared
transport (so naive routing degrades under the same injected faults as the
embedded-tree routing it is compared against); this per-hop cost is what the
embedded-tree routing amortises away.
"""

from __future__ import annotations

import numpy as np

from typing import Any

from repro.core.query import RangeQuery, Rect
from repro.core.routing import QueryProtocol
from repro.core.lph import prefix_to_cuboid
from repro.sim.messages import query_message_size

__all__ = ["NaiveProtocol", "decompose_to_owner_cuboids"]


def decompose_to_owner_cuboids(
    index: Any,
    rect: Rect,
    max_subqueries: int = 1 << 14,
) -> list[tuple[int, int, np.ndarray, np.ndarray]]:
    """Split ``rect`` into prefix cuboids each owned by a single node.

    Returns ``(prefix_key, prefix_len, lows, highs)`` tuples whose boxes
    cover ``rect`` (intersected).  Descends the k-d partition; a cuboid stops
    splitting when one node owns its whole (rotated) key range or the depth
    hits ``m``.  Raises if the decomposition exceeds ``max_subqueries`` —
    the blow-up is the point of the baseline, but unbounded recursion would
    be unusable.
    """
    m = index.m
    ring = index.ring
    mask = (1 << m) - 1
    out: list[tuple[int, int, np.ndarray, np.ndarray]] = []
    stack: list[tuple[int, int]] = [(0, 0)]  # (prefix_key, prefix_len)
    while stack:
        prefix_key, prefix_len = stack.pop()
        lows, highs = prefix_to_cuboid(prefix_key, prefix_len, index.bounds, m)
        nl = np.maximum(rect.lows, lows)
        nh = np.minimum(rect.highs, highs)
        if np.any(nl > nh):
            continue
        span = 1 << (m - prefix_len)
        key_lo = (prefix_key + index.rotation) & mask
        key_hi = (prefix_key + span - 1 + index.rotation) & mask
        lo_owner = ring.successor_of(key_lo)
        hi_owner = ring.successor_of(key_hi)
        # One owner covers the whole (non-wrapping in index space, possibly
        # wrapping after rotation) key range iff both ends resolve to the
        # same node and no other node id lies inside the range.
        single = lo_owner is hi_owner and _no_node_inside(ring, key_lo, key_hi, m)
        if single or prefix_len == m:
            out.append((prefix_key, prefix_len, nl, nh))
            if len(out) > max_subqueries:
                raise RuntimeError(
                    f"naive decomposition exceeded {max_subqueries} subqueries"
                )
            continue
        child_len = prefix_len + 1
        high_child = prefix_key | (1 << (m - child_len))
        stack.append((prefix_key, child_len))
        stack.append((high_child, child_len))
    return out


def _no_node_inside(ring: Any, key_lo: int, key_hi: int, m: int) -> bool:
    """True when no node identifier lies in the cyclic interval [key_lo, key_hi)."""
    ids = ring._sorted_ids
    import bisect

    if key_lo <= key_hi:
        i = bisect.bisect_left(ids, key_lo)
        return i >= len(ids) or ids[i] >= key_hi
    # wrapped interval [key_lo, 2^m) ∪ [0, key_hi)
    i = bisect.bisect_left(ids, key_lo)
    if i < len(ids):
        return False
    return not ids or ids[0] >= key_hi


class NaiveProtocol(QueryProtocol):
    """Per-cuboid independent Chord lookups (no tree sharing, no bundling).

    ``issue()``/lifecycle tracking are inherited from
    :class:`repro.core.routing.QueryProtocol`; only the first step
    (:meth:`_start`) and the hop-by-hop lookup differ.
    """

    def _start(self, node: Any, query: RangeQuery) -> None:
        pieces = decompose_to_owner_cuboids(self.index, query.rect)
        for prefix_key, prefix_len, nl, nh in pieces:
            sq = RangeQuery(
                rect=Rect(nl.copy(), nh.copy()),
                prefix_key=prefix_key,
                prefix_len=prefix_len,
                qid=query.qid,
                source=query.source,
                index_name=query.index_name,
                payload=query.payload,
                radius=query.radius,
            )
            self._route_lookup(node, sq)

    def _route_lookup(self, node: Any, sq: RangeQuery) -> None:
        """Walk the Chord lookup path hop by hop, one message per hop."""
        target = self._rotate(sq.prefix_key)
        path = self.index.ring.lookup_path(node, target)
        self._lookup_hop(path, 0, sq, 0)

    def _lookup_hop(self, path: Any, i: int, sq: RangeQuery, hops: int) -> None:
        node = path[i]
        if i == len(path) - 1:
            key_lo, key_hi = self._claimed_range(sq)
            self._solve_local(node, sq, hops, key_lo, key_hi)
            return
        nxt = path[i + 1]
        size = query_message_size(1, self.index.k)
        self._tracked_send(
            node, nxt, self._lookup_hop, path, i + 1, sq, hops + 1,
            kind="naive:lookup", size=size, qid=sq.qid,
        )
