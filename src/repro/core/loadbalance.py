"""Load balancing mechanisms (paper §3.4).

**Static — space-mapping rotation.**  Each index gets a random rotation
offset ``φ = hash(index name)``; its keys map to ``[φ .. φ + 2^m - 1]`` so
hotspots of different indexes land on *different* arcs of the ring instead of
piling onto the same nodes.  Rotation is applied at index creation
(``IndexPlatform.create_index(rotation=True)``); this module provides the
analysis helper :func:`hotspot_overlap` used by the rotation ablation.

**Dynamic — load migration.**  A node ``N`` periodically probes the load of
its neighbours (and neighbours-of-neighbours up to probing level ``P_l``).
``N`` is *heavily loaded* when ``L_N > avg * (1 + δ_N)`` over the probed set.
A heavy node finds a lightly loaded node and asks it to leave and rejoin
with a chosen identifier — the split point dividing the heavy node's key
range so its load halves.  The paper notes the trade-off: migration skews
node identifiers away from uniform, deepening the embedded search tree and
hurting query routing, controlled by ``δ`` and ``P_l`` (the Figure 3
experiments push it to the max with ``δ = 0``, ``P_l = 4``).

The simulation applies migration as converging rounds between workload
phases, matching the paper's setup of measuring queries after
stabilisation.  Probe traffic is accounted in the returned report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from typing import Any

from repro.util.rng import as_rng

__all__ = ["LoadBalanceReport", "probe_neighbourhood", "dynamic_load_migration", "hotspot_overlap"]


@dataclass
class LoadBalanceReport:
    """What a dynamic load-balancing run did."""

    rounds: int = 0
    moves: int = 0
    probes: int = 0
    entries_migrated: int = 0
    initial_max_load: int = 0
    final_max_load: int = 0
    initial_imbalance: float = 0.0
    final_imbalance: float = 0.0
    history: list[int] = field(default_factory=list)


def probe_neighbourhood(node: Any, level: int) -> list[Any]:
    """Nodes reachable within ``level`` routing-table hops (excluding ``node``).

    Level 1 is the node's own routing table (fingers + successor list);
    higher levels follow neighbours' tables — the paper's ``P_l``.
    """
    seen = {node.id: node}
    frontier = [node]
    for _ in range(level):
        nxt = []
        for cur in frontier:
            for nb in cur.routing_table():
                if nb.id not in seen:
                    seen[nb.id] = nb
                    nxt.append(nb)
        frontier = nxt
        if not frontier:
            break
    del seen[node.id]
    return list(seen.values())


def _imbalance(loads: np.ndarray) -> float:
    """Max/mean load ratio (1.0 = perfectly even)."""
    mean = loads.mean()
    return float(loads.max() / mean) if mean > 0 else 0.0


def _split_point(platform: Any, node: Any) -> int | None:
    """The identifier halving ``node``'s load: the median ring key it stores.

    A light node rejoining at this identifier takes over the lower half of
    the heavy node's entries.
    """
    keys = []
    for index in platform.indexes.values():
        shard = index.shards.get(node)
        if shard is not None and len(shard):
            mask = np.uint64((1 << index.m) - 1)
            keys.append((shard.keys + np.uint64(index.rotation)) & mask)
    if not keys:
        return None
    # Keys within (predecessor, node] may wrap zero; unwrap relative to the
    # interval start so the median is meaningful on the circle.
    pred = node.predecessor.id if node.predecessor is not None else node.id
    two_m = 1 << platform.ring.m
    rel = sorted((int(kv) - pred) % two_m for kv in np.concatenate(keys))
    median_rel = rel[len(rel) // 2]
    split = (pred + median_rel) % two_m
    if split == node.id or split in platform.ring.nodes_by_id:
        return None
    return split


def dynamic_load_migration(
    platform: Any,
    delta: float = 0.0,
    probe_level: int = 4,
    max_rounds: int = 40,
    seed: int | np.random.Generator | None = 0,
    min_load: int = 4,
) -> LoadBalanceReport:
    """Run dynamic load migration until convergence (paper §3.4).

    Each round visits nodes in random order; a node whose load exceeds the
    probed-neighbourhood average by factor ``(1 + delta)`` recruits the
    lightest probed node (if it is strictly lighter) to leave and rejoin at
    the heavy node's split point.  Rounds repeat until a round makes no
    moves or ``max_rounds`` is reached.  ``min_load`` stops the churn of
    splitting nodes that hold almost nothing.
    """
    rng = as_rng(seed)
    ring = platform.ring
    report = LoadBalanceReport()
    loads0 = platform.load_distribution()
    report.initial_max_load = int(loads0.max()) if len(loads0) else 0
    report.initial_imbalance = _imbalance(loads0)
    for round_no in range(max_rounds):
        nodes = ring.nodes()
        order = rng.permutation(len(nodes))
        moves_this_round = 0
        moved_ids: set[int] = set()
        for pos in order:
            node = nodes[pos]
            if node.id in moved_ids or node.id not in ring.nodes_by_id:
                continue
            my_load = platform.node_load(node)
            if my_load < min_load:
                continue
            neighbours = probe_neighbourhood(node, probe_level)
            report.probes += len(neighbours)
            if not neighbours:
                continue
            n_loads = np.asarray([platform.node_load(nb) for nb in neighbours], dtype=np.float64)
            avg = n_loads.mean()
            if my_load <= avg * (1.0 + delta):
                continue
            light = neighbours[int(np.argmin(n_loads))]
            if platform.node_load(light) >= my_load // 2 or light.id in moved_ids:
                continue
            split = _split_point(platform, node)
            if split is None:
                continue
            moved_ids.add(light.id)
            moved_ids.add(node.id)
            ring.move_node(light, split)
            for index in platform.indexes.values():
                report.entries_migrated += index.distribute()
            moves_this_round += 1
            report.moves += 1
        report.rounds = round_no + 1
        loads = platform.load_distribution()
        report.history.append(int(loads.max()) if len(loads) else 0)
        if moves_this_round == 0:
            break
    loads1 = platform.load_distribution()
    report.final_max_load = int(loads1.max()) if len(loads1) else 0
    report.final_imbalance = _imbalance(loads1)
    return report


def hotspot_overlap(platform: Any, top_fraction: float = 0.05) -> float:
    """How much the hottest nodes of different indexes coincide.

    For each index, take the ``top_fraction`` most loaded nodes; return the
    mean pairwise Jaccard overlap of these hot sets across indexes.  Without
    rotation, indexes with similarly skewed key distributions produce
    overlapping hot sets (≈1); rotation drives the overlap toward the random
    baseline (≈``top_fraction``).  Used by the rotation ablation bench.
    """
    hot_sets = []
    for index in platform.indexes.values():
        loads = index.load_distribution()
        n_top = max(1, int(round(top_fraction * len(loads))))
        top_pos = np.argsort(-loads)[:n_top]
        hot_sets.append(set(int(p) for p in top_pos))
    if len(hot_sets) < 2:
        return 1.0
    overlaps = []
    for i in range(len(hot_sets)):
        for j in range(i + 1, len(hot_sets)):
            inter = len(hot_sets[i] & hot_sets[j])
            union = len(hot_sets[i] | hot_sets[j])
            overlaps.append(inter / union if union else 0.0)
    return float(np.mean(overlaps))
