"""k-nearest-neighbour search via iterative range expansion.

The architecture answers *range* queries natively (§3.1 converts a
near-neighbour ball into an index-space hypercube).  Exact k-NN with an
unknown radius is obtained by the classic radius-doubling loop: query with a
small radius, grow it geometrically until at least ``k`` results lie within
the queried radius — at which point the k-th candidate distance certifies
that no unexplored region can hold a closer object (the landmark projection
is contractive, so the range query has no false negatives).

Each round is one lifecycle-tracked query on the platform's *live*
simulator: the engine's completion future tells the loop when the round's
results are all in, so nothing ever calls ``sim.reset()`` — co-scheduled
events (stabilisation timers, other queries' messages) survive k-NN rounds
untouched.  Round qids come from the platform's allocator, so concurrent
searches never collide in stats or traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from typing import Any

from repro.core.lifecycle import RetryPolicy
from repro.sim.stats import StatsCollector

__all__ = ["KnnResult", "knn_search"]


@dataclass
class KnnResult:
    """Outcome of a k-NN search."""

    object_ids: np.ndarray
    distances: np.ndarray
    rounds: int
    final_radius: float
    exact: bool  # certified exact (k-th distance <= final radius)
    query_messages: int
    query_bytes: int
    result_bytes: int
    index_nodes: int


def knn_search(
    platform: Any,
    name: str,
    obj: Any,
    k: int = 10,
    initial_radius: float | None = None,
    growth: float = 2.0,
    max_rounds: int = 12,
    source_node: Any = None,
    policy: RetryPolicy | None = None,
    **protocol_kwargs: Any,
) -> KnnResult:
    """Find the ``k`` nearest indexed objects to ``obj``.

    ``initial_radius`` defaults to 1% of the index-space extent; each round
    multiplies the radius by ``growth`` until ``k`` results are certified or
    ``max_rounds`` is exhausted (the last round runs with the metric's upper
    bound when one is known, making the result exact for bounded metrics).
    ``policy`` configures per-round deadlines/retransmission for searches
    under faults; rounds run on the live simulator either way.
    """
    index = platform.indexes[name]
    node = source_node or platform.ring.nodes()[0]
    extent = float(np.max(index.bounds.highs - index.bounds.lows))
    radius = initial_radius if initial_radius is not None else 0.01 * extent
    if index.metric.is_bounded:
        radius = min(radius, index.metric.upper_bound)

    engine = platform.lifecycle(policy)
    stats = StatsCollector()
    proto, _ = platform.protocol(
        name, stats=stats, top_k=max(k, 10), range_filter=True,
        engine=engine, **protocol_kwargs,
    )
    total_msgs = 0
    total_qbytes = 0
    total_rbytes = 0
    nodes_touched: set[int] = set()
    best: dict[int, float] = {}
    rounds = 0
    exact = False
    for rounds in range(1, max_rounds + 1):
        qid = platform.qids.next()
        q = index.make_query(obj, radius, qid=qid)
        fut = proto.issue(q, node)
        engine.run_until_complete([fut])
        st = stats.for_query(qid)
        total_msgs += st.query_messages
        total_qbytes += st.query_bytes
        total_rbytes += st.result_bytes
        nodes_touched |= st.index_nodes
        for e in fut.entries():
            if e.object_id not in best or e.distance < best[e.object_id]:
                best[e.object_id] = e.distance
        within = sorted(d for d in best.values() if d <= radius)
        if len(within) >= k and within[k - 1] <= radius:
            exact = True
            break
        if index.metric.is_bounded and radius >= index.metric.upper_bound:
            exact = True  # the whole space has been covered
            break
        radius *= growth
        if index.metric.is_bounded:
            radius = min(radius, index.metric.upper_bound)

    ranked = sorted(best.items(), key=lambda kv: (kv[1], kv[0]))[:k]
    ids = np.asarray([oid for oid, _ in ranked], dtype=np.int64)
    dists = np.asarray([d for _, d in ranked])
    return KnnResult(
        object_ids=ids,
        distances=dists,
        rounds=rounds,
        final_radius=radius,
        exact=exact,
        query_messages=total_msgs,
        query_bytes=total_qbytes,
        result_bytes=total_rbytes,
        index_nodes=len(nodes_touched),
    )
