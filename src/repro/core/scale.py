"""The 100k-node simulator core: the paper's pipeline on flat arrays.

The object-graph simulation (:class:`repro.core.platform.IndexPlatform` over
:class:`repro.dht.ring.ChordRing`) models every message and per-node state
faithfully, which caps it at a few thousand nodes.  This module runs the same
*pipeline* — clustered data, landmark projection, locality-preserving
hashing, rotation, Chord routing, per-node shards — against the compact
substrates built for scale:

* membership + routing: :class:`repro.dht.compact.CompactChordRing`
  (slot-keyed arrays, batched greedy lookups);
* storage: :class:`repro.core.storage.ShardStore` (one columnar block,
  CSR-like offsets);
* delays: any :class:`repro.sim.LatencyModel` via its vectorised
  ``latency_pairs`` — at full scale that is
  :func:`repro.sim.king_coordinate_model`, whose lazy synthetic coordinates
  replace the O(n²) King matrix.

Queries advance in chunks; after each chunk the embedded
:class:`repro.sim.Simulator` clock advances one virtual second so a
:class:`repro.obs.HealthSampler` can tick and the run leaves a live health
trace alongside the Fig. 4/6-analogue outputs: the per-node load vector
(stored entries + forwarding visits, Gini/hotspot summarised) and the
query hop/latency distributions, all recorded into the metrics registry.

Wall-clock timing deliberately lives elsewhere (:mod:`repro.bench.scale`):
this module is deterministic simulation state only.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from repro.core.index_space import IndexSpaceBounds
from repro.core.landmarks import LandmarkSet, kmeans_selection
from repro.core.lph import lp_hash_batch
from repro.core.storage import ShardStore
from repro.dht.compact import CompactChordRing
from repro.dht.hashing import rotation_offset
from repro.metric.vector import EuclideanMetric
from repro.obs import (
    DEFAULT_HOP_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    FlightRecorder,
    HealthSampler,
    SpanRecorder,
    TraceSampler,
    gini_coefficient,
    hotspot_report,
    load_summary,
    record_load_vector,
)
from repro.obs.registry import MetricsRegistry
from repro.sim import LatencyModel, Simulator
from repro.util.rng import as_rng, derive_rng

__all__ = ["ScaleConfig", "ScaleReport", "ScaleSimulation"]

#: per-node gauges are only materialised up to this ring size — beyond it a
#: 100k-label gauge would dwarf the simulation state it describes; the load
#: vectors stay available on the report regardless.
_LOAD_GAUGE_MAX_NODES = 20_000

QUERY_LATENCY_HIST = "scale_query_latency_seconds"
QUERY_HOPS_HIST = "scale_query_hops"
FORWARD_LOAD_GAUGE = "scale_node_forwarding_visits"
STORED_LOAD_GAUGE = "scale_node_stored_entries"
QUERIES_ROUTED_TOTAL = "scale_queries_routed_total"
QUERIES_SOLVED_TOTAL = "scale_queries_solved_total"
QUERIES_DROPPED_TOTAL = "scale_queries_dropped_total"
TRACE_SAMPLES_TOTAL = "scale_trace_samples_total"


@dataclass(frozen=True)
class ScaleConfig:
    """Knobs of a scale run (defaults: the 100k-node / 1M-query target).

    The data model is the paper's Table 1 clustered-Gaussian family, scaled
    down in dimensionality so a 100k-object projection stays cheap; queries
    are drawn from the same cluster structure ("the corresponding query sets
    are generated with the same method").
    """

    n_nodes: int = 100_000
    n_objects: int = 100_000
    n_queries: int = 1_000_000
    dim: int = 16
    n_clusters: int = 10
    deviation: float = 20.0
    low: float = 0.0
    high: float = 100.0
    n_landmarks: int = 4
    m: int = 64
    successor_list_len: int = 16
    index_name: str = "scale-index"
    seed: int = 0
    #: queries routed per vectorised round-trip; each chunk advances the
    #: embedded simulator clock one virtual second (the health cadence).
    chunk: int = 100_000
    #: per-coordinate half-width of the sampled local range searches,
    #: as a fraction of the index-space span.
    query_range_factor: float = 0.02
    #: how many queries additionally run the owner-side range search
    #: (Python-loop priced, so sampled rather than exhaustive).
    local_solve_sample: int = 2_048
    #: trace 1-in-N queries via :class:`~repro.obs.sampling.TraceSampler`
    #: (deterministic qid hash — no RNG draws, replay-stable); 0 disables.
    trace_sample_every: int = 1024
    #: queries forwarded more than this many hops count as dropped
    #: (matches the top of :data:`~repro.obs.registry.DEFAULT_HOP_BUCKETS`).
    hop_deadline: int = 32
    #: per-chunk dropped fraction above this triggers one flight-recorder
    #: "deadline-storm" bundle dump for the run.
    storm_threshold: float = 0.05
    #: flight-recorder ring capacity (recent events kept for crash bundles).
    flight_capacity: int = 4_096


@dataclass
class ScaleReport:
    """Outcome of :meth:`ScaleSimulation.run` (numbers only, no wall-clock)."""

    n_nodes: int
    n_objects: int
    n_queries: int
    mean_hops: float
    hops_p50: float
    hops_p99: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p99_s: float
    storage_load: dict[str, Any] = field(default_factory=dict)
    forwarding_load: dict[str, Any] = field(default_factory=dict)
    health_samples: int = 0
    local_solves: int = 0
    local_hits_mean: float = 0.0
    dropped: int = 0
    sampled_spans: int = 0
    counters: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "n_nodes": self.n_nodes,
            "n_objects": self.n_objects,
            "n_queries": self.n_queries,
            "mean_hops": self.mean_hops,
            "hops_p50": self.hops_p50,
            "hops_p99": self.hops_p99,
            "latency_mean_s": self.latency_mean_s,
            "latency_p50_s": self.latency_p50_s,
            "latency_p99_s": self.latency_p99_s,
            "storage_load": self.storage_load,
            "forwarding_load": self.forwarding_load,
            "health_samples": self.health_samples,
            "local_solves": self.local_solves,
            "local_hits_mean": self.local_hits_mean,
            "dropped": self.dropped,
            "sampled_spans": self.sampled_spans,
            "counters": self.counters,
        }


class ScaleSimulation:
    """Build once, route millions: the scale-path end-to-end harness."""

    def __init__(
        self,
        cfg: ScaleConfig,
        latency: LatencyModel | None = None,
        registry: MetricsRegistry | None = None,
        recorder: SpanRecorder | None = None,
        flight: FlightRecorder | None = None,
        health_jsonl: Any = None,
    ) -> None:
        self.cfg = cfg
        self.latency = latency
        # Real metrics by default: the vectorised instruments (observe_many,
        # counter adds per chunk) keep the overhead within the ≤10% budget
        # asserted in bench, so NullRegistry is an opt-out, not the default.
        self.registry = registry if registry is not None else MetricsRegistry()
        rng = as_rng(cfg.seed)
        self._rng_data = derive_rng(rng, "scale-data")
        self._rng_query = derive_rng(rng, "scale-query")
        self._rng_ring = derive_rng(rng, "scale-ring")

        # -- data + landmark projection (Table 1 family, inline) --------------
        self._centers = self._rng_data.uniform(
            cfg.low, cfg.high, size=(cfg.n_clusters, cfg.dim)
        )
        objects = self._draw_points(self._rng_data, cfg.n_objects)
        metric = EuclideanMetric()
        sample_n = min(2_048, cfg.n_objects)
        self.landmarks: LandmarkSet = kmeans_selection(
            objects[:sample_n], metric, cfg.n_landmarks, seed=derive_rng(rng, "scale-lm")
        )
        proj = self.landmarks.project(objects)
        self.bounds = IndexSpaceBounds.from_sample(proj, pad=0.05)
        keys = lp_hash_batch(self.bounds.clip(proj), self.bounds, cfg.m)

        # -- membership + distribution ----------------------------------------
        n_hosts = latency.n_hosts if latency is not None else cfg.n_nodes
        self.ring = CompactChordRing.build(
            cfg.n_nodes,
            m=cfg.m,
            seed=self._rng_ring,
            n_hosts=n_hosts,
            successor_list_len=cfg.successor_list_len,
        )
        self.phi = np.uint64(rotation_offset(cfg.index_name, cfg.m))
        owners = self.ring.owners_of_keys((keys + self.phi) & self.ring.mask)
        self.store = ShardStore.build(
            owners, keys, proj, np.arange(cfg.n_objects, dtype=np.int64), cfg.n_nodes
        )

        # -- telemetry ---------------------------------------------------------
        self.sim = Simulator()
        self._hist_latency = self.registry.histogram(
            QUERY_LATENCY_HIST,
            "End-to-end routing latency per scale query",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._hist_hops = self.registry.histogram(
            QUERY_HOPS_HIST,
            "Forwarding hops per scale query",
            buckets=DEFAULT_HOP_BUCKETS,
        )
        self._c_routed = self.registry.counter(
            QUERIES_ROUTED_TOTAL, "Queries routed through the compact ring")
        self._c_solved = self.registry.counter(
            QUERIES_SOLVED_TOTAL, "Queries that reached their owner within the hop deadline")
        self._c_dropped = self.registry.counter(
            QUERIES_DROPPED_TOTAL, "Queries exceeding the hop deadline")
        self._c_traced = self.registry.counter(
            TRACE_SAMPLES_TOTAL, "Queries kept by the deterministic trace sampler")
        # Sampling is a pure hash of the qid — it draws no randomness, so
        # attaching a recorder cannot perturb the seeded streams above.
        self.tracer = TraceSampler(every=cfg.trace_sample_every)
        self.recorder = recorder
        if recorder is not None:
            recorder.bind(self.sim)
        self.flight = flight if flight is not None else FlightRecorder(
            capacity=cfg.flight_capacity,
            clock=lambda: self.sim.now,
            context={"scenario": "scale", "config": asdict(cfg)},
        )
        self.forward_visits = np.zeros(cfg.n_nodes, dtype=np.int64)
        #: per-chunk summary rows, the substrate of :meth:`slo_series`
        self.chunk_stats: list[dict[str, float]] = []
        self._local_hits: list[int] = []
        self._storm_dumped = False
        self.sampler = HealthSampler(
            self.sim,
            interval=1.0,
            registry=self.registry,
            load_fn=lambda: self.forward_visits,
            probes={
                "live_nodes": lambda: float(len(self.ring)),
                "routed_total": lambda: self._c_routed.total(),
                "dropped_total": lambda: self._c_dropped.total(),
            },
            jsonl=health_jsonl,
        )

    def _draw_points(self, rng: np.random.Generator, n: int) -> np.ndarray:
        cfg = self.cfg
        assignment = rng.integers(0, cfg.n_clusters, size=n)
        pts = self._centers[assignment] + rng.normal(
            0.0, cfg.deviation, size=(n, cfg.dim)
        )
        np.clip(pts, cfg.low, cfg.high, out=pts)
        return pts

    # -- invariants ---------------------------------------------------------------

    def check_invariants(self) -> None:
        """Structural checks over ring + store; AssertionError on violation.

        A violation dumps a flight bundle (reason ``invariant-violation``)
        before the assertion propagates, so the buffered chunk history and
        the replayable config land on disk next to the failure.
        """
        with self.flight.dump_on_error("invariant-violation"):
            self._check_invariants()

    def _check_invariants(self) -> None:
        self.ring.check_invariants()
        offsets = self.store.offsets
        assert offsets[0] == 0 and offsets[-1] == len(self.store)
        assert np.all(np.diff(offsets) >= 0), "store offsets must be monotone"
        assert int(self.store.loads().sum()) == self.cfg.n_objects
        # every stored entry must live on the node owning its rotated key
        owner_of = self.ring.owners_of_keys((self.store.keys + self.phi) & self.ring.mask)
        slot_of_row = np.repeat(
            np.arange(self.store.n_slots, dtype=np.int64), self.store.loads()
        )
        assert np.array_equal(owner_of, slot_of_row), "entry stored off its owner"
        # within each shard slice, keys are sorted (the Shard invariant)
        for slot in np.flatnonzero(self.store.loads())[:64]:
            ks, _, _ = self.store.slice(int(slot))
            assert np.all(np.diff(ks.astype(np.uint64)) >= 0)

    # -- the run ------------------------------------------------------------------

    def run(self, n_queries: int | None = None) -> ScaleReport:
        """Route ``n_queries`` (default: config) and return the report."""
        cfg = self.cfg
        nq = cfg.n_queries if n_queries is None else int(n_queries)
        self.sampler.start(duration=float(max(1, -(-nq // cfg.chunk))) + 1.0)
        hops_sum = 0.0
        all_hops: list[np.ndarray] = []
        all_lat: list[np.ndarray] = []
        local_hits: list[int] = []
        routed = 0
        chunk_no = 0
        dropped_total = 0
        sampled_total = 0
        while routed < nq:
            size = min(cfg.chunk, nq - routed)
            qpts = self._draw_points(self._rng_query, size)
            qproj = self.bounds.clip(self.landmarks.project(qpts))
            qkeys = lp_hash_batch(qproj, self.bounds, cfg.m)
            src = self._rng_query.integers(0, cfg.n_nodes, size=size)
            owner, hops, lat, visits = self.ring.route_batch(
                src,
                (qkeys + self.phi) & self.ring.mask,
                latency=self.latency,
                count_visits=True,
            )
            if visits is not None:
                self.forward_visits += visits
            hops_sum += float(hops.sum())
            all_hops.append(hops)
            all_lat.append(lat)
            self._hist_hops.observe_many(hops.astype(np.float64))
            self._hist_latency.observe_many(lat)
            dropped_mask = hops > cfg.hop_deadline if cfg.hop_deadline > 0 else hops < 0
            n_dropped = int(dropped_mask.sum())
            self._c_routed.add(float(size))
            self._c_dropped.add(float(n_dropped))
            self._c_solved.add(float(size - n_dropped))
            dropped_total += n_dropped
            sampled_total += self._trace_chunk(
                routed, size, src, owner, hops, lat, dropped_mask)
            stats = {
                "chunk": float(chunk_no),
                "routed": float(size),
                "dropped_frac": n_dropped / size if size else 0.0,
                "hops_p99": float(np.percentile(hops, 99)) if size else 0.0,
                "latency_p99_s": float(np.percentile(lat, 99)) if size else 0.0,
            }
            self.chunk_stats.append(stats)
            self.flight.record("chunk", **{k: v for k, v in stats.items()})
            if (
                stats["dropped_frac"] > cfg.storm_threshold
                and not self._storm_dumped
            ):
                # one bundle per run: the first storm captures the tail that
                # led into it; later storms would only repeat the picture.
                self._storm_dumped = True
                self.flight.record(
                    "deadline-storm",
                    chunk=chunk_no,
                    dropped_frac=stats["dropped_frac"],
                    hop_deadline=cfg.hop_deadline,
                )
                self.flight.dump(reason="deadline-storm")
            if chunk_no == 0 and cfg.local_solve_sample > 0:
                local_hits = self._local_solve(
                    qproj[: cfg.local_solve_sample], owner[: cfg.local_solve_sample]
                )
                self._local_hits = local_hits
            routed += size
            chunk_no += 1
            # one virtual second per chunk lets the health sampler tick
            # without core touching the scheduler (that is Transport's job
            # in the object simulation; here the clock is purely a cadence).
            self.sim.run(until=float(chunk_no))
        hops_all = np.concatenate(all_hops) if all_hops else np.zeros(0)
        lat_all = np.concatenate(all_lat) if all_lat else np.zeros(0)
        stored = self.store.loads().astype(np.float64)
        forward = self.forward_visits.astype(np.float64)
        if cfg.n_nodes <= _LOAD_GAUGE_MAX_NODES and self.registry.enabled:
            record_load_vector(self.registry, stored, metric=STORED_LOAD_GAUGE)
            record_load_vector(self.registry, forward, metric=FORWARD_LOAD_GAUGE)
        storage_load = hotspot_report(stored)
        forwarding_load = hotspot_report(forward)
        return ScaleReport(
            n_nodes=cfg.n_nodes,
            n_objects=cfg.n_objects,
            n_queries=routed,
            mean_hops=float(hops_all.mean()) if routed else 0.0,
            hops_p50=float(np.percentile(hops_all, 50)) if routed else 0.0,
            hops_p99=float(np.percentile(hops_all, 99)) if routed else 0.0,
            latency_mean_s=float(lat_all.mean()) if routed else 0.0,
            latency_p50_s=float(np.percentile(lat_all, 50)) if routed else 0.0,
            latency_p99_s=float(np.percentile(lat_all, 99)) if routed else 0.0,
            storage_load=storage_load,
            forwarding_load=forwarding_load,
            health_samples=len(self.sampler.samples),
            local_solves=len(local_hits),
            local_hits_mean=float(np.mean(local_hits)) if local_hits else 0.0,
            dropped=dropped_total,
            sampled_spans=sampled_total,
            counters={
                "routed": self._c_routed.total(),
                "solved": self._c_solved.total(),
                "dropped": self._c_dropped.total(),
                "trace_samples": self._c_traced.total(),
            },
        )

    def _trace_chunk(
        self,
        base: int,
        size: int,
        src: np.ndarray,
        owner: np.ndarray,
        hops: np.ndarray,
        lat: np.ndarray,
        dropped_mask: np.ndarray,
    ) -> int:
        """Emit spans for the deterministically sampled qids of one chunk.

        qids are the global query ordinals ``base..base+size``; the sampler
        mask is a pure hash, so the same qids are kept on every replay and
        whether or not a recorder is attached.
        """
        qids = np.arange(base, base + size, dtype=np.uint64)
        mask = self.tracer.mask(qids)
        n = int(mask.sum())
        if n:
            self._c_traced.add(float(n))
        rec = self.recorder
        if rec is None or n == 0:
            return n
        for i in np.flatnonzero(mask):
            qid = int(qids[i])
            rec.begin_query(qid, src=int(src[i]))
            rec.event(
                qid, "route",
                node=int(owner[i]),
                hops=int(hops[i]),
                latency_s=float(lat[i]),
            )
            rec.finish_query(
                qid, status="dropped" if bool(dropped_mask[i]) else "complete")
        return n

    def slo_series(self) -> dict[str, list[float]]:
        """The ``{series: values}`` map :data:`~repro.obs.slo.DEFAULT_SCALE_SLOS`
        evaluates — per-chunk tails plus run-final balance/recall/cadence."""
        n_chunks = len(self.chunk_stats)
        series: dict[str, list[float]] = {
            "chunk_latency_p99_s": [c["latency_p99_s"] for c in self.chunk_stats],
            "chunk_hops_p99": [c["hops_p99"] for c in self.chunk_stats],
            "chunk_dropped_frac": [c["dropped_frac"] for c in self.chunk_stats],
            "storage_gini": [
                float(gini_coefficient(self.store.loads().astype(np.float64)))],
            "forwarding_gini": [
                float(gini_coefficient(self.forward_visits.astype(np.float64)))],
        }
        if self._local_hits:
            series["local_hit_rate"] = [
                sum(1 for h in self._local_hits if h > 0) / len(self._local_hits)]
        else:
            series["local_hit_rate"] = []
        series["health_cadence_ratio"] = (
            [len(self.sampler.samples) / n_chunks] if n_chunks else []
        )
        return series

    def _local_solve(self, qproj: np.ndarray, owner: np.ndarray) -> list[int]:
        """Owner-side rectangle searches for a sample of routed queries.

        The rectangle is the paper's necessary condition: an object within
        range ``r`` of the query satisfies ``|proj_q - proj_o| <= r`` in
        every landmark coordinate (triangle inequality), so the owner scans
        ``proj_q ± r`` per dimension on its shard slice.
        """
        span = self.bounds.highs - self.bounds.lows
        radius = self.cfg.query_range_factor * span
        hits: list[int] = []
        for i in range(len(qproj)):
            lows = qproj[i] - radius
            highs = qproj[i] + radius
            idx = self.store.range_search(int(owner[i]), lows, highs)
            hits.append(int(len(idx)))
        return hits

    def load_report(self) -> dict[str, Any]:
        """Fig. 4-analogue summary of both load vectors."""
        return {
            "stored": load_summary(self.store.loads().astype(np.float64)),
            "forwarding": load_summary(self.forward_visits.astype(np.float64)),
        }
