"""The multi-index platform: index construction, distribution and querying.

This is the public face of the architecture.  An :class:`IndexPlatform`
wraps a Chord ring and hosts any number of :class:`LandmarkIndex` instances
— the paper's headline feature is that one overlay supports "arbitrary
number of indexes on different data types" with *no per-index routing
structures*: queries ride the trees already embedded in the DHT links.

Index construction follows §3.1: a well-known node samples the network's
data, selects landmarks (greedy / k-means / k-medoids), fixes the index-space
boundary (from the metric or from the sample), projects every object to its
landmark-distance vector, hashes it with the locality-preserving hash and
stores the entry on the Chord successor of the (optionally rotated) key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy import sparse

from repro.core.index_space import IndexSpace
from repro.core.landmarks import select_landmarks
from repro.core.lifecycle import LifecycleEngine, QueryFuture, RetryPolicy
from repro.core.lph import lp_hash_batch
from repro.core.query import QidAllocator, RangeQuery
from repro.core.routing import QueryProtocol
from repro.core.storage import Shard
from repro.dht.hashing import rotation_offset
from repro.dht.ring import ChordRing
from repro.metric.base import Metric
from repro.sim import Simulator
from repro.sim.stats import StatsCollector
from repro.sim.transport import FaultConfig, Transport, TraceSink
from repro.util.rng import as_rng

__all__ = ["QueryPayload", "LandmarkIndex", "IndexPlatform", "take"]


def take(dataset: Any, idx: Any) -> Any:
    """Index a dataset that may be an ndarray, CSR matrix or plain sequence."""
    if sparse.issparse(dataset) or isinstance(dataset, np.ndarray):
        return dataset[idx]
    if np.ndim(idx) == 0:
        return dataset[int(idx)]
    return [dataset[int(i)] for i in np.atleast_1d(idx)]


@dataclass
class QueryPayload:
    """What a query carries besides its rectangle: the query object and its
    index point (used by index nodes for candidate refinement)."""

    obj: Any
    ipoint: np.ndarray


class LandmarkIndex:
    """One distributed index: landmark space + entry placement + refinement.

    Attributes
    ----------
    name:
        Index name; also the seed of its rotation offset.
    space:
        The :class:`repro.core.index_space.IndexSpace` (landmarks + bounds).
    rotation:
        The static load-balancing offset ``φ`` (0 when rotation is off).
    shards:
        ``ChordNode -> Shard`` mapping of stored entries.
    refine_mode:
        ``"true"`` — refine candidates by true metric distance to the query
        object (the paper's refinement step);
        ``"index"`` — refine by Euclidean distance in index space (cheaper,
        no object access; a contractive lower bound of the true distance).
    """

    def __init__(
        self,
        name: str,
        space: IndexSpace,
        ring: ChordRing,
        dataset: Any,
        rotation: int = 0,
        refine_mode: str = "true",
        replication: int = 1,
    ) -> None:
        if refine_mode not in ("true", "index"):
            raise ValueError(f"unknown refine_mode {refine_mode!r}")
        if replication < 1:
            raise ValueError("replication factor must be >= 1")
        self.name = name
        self.space = space
        self.ring = ring
        self.dataset = dataset
        self.rotation = int(rotation)
        self.refine_mode = refine_mode
        #: scoped query-id source; the platform replaces it with its shared
        #: allocator so ids are unique across all of a platform's indexes
        self.qids = QidAllocator()
        #: entries are stored on the owner plus the next ``replication - 1``
        #: successors.  Replicas carry keys outside their holder's ownership
        #: interval, so the claimed-key-range filter of query resolution
        #: ignores them while the primary is alive — and serves them
        #: automatically once the ring repairs around a failed owner.
        self.replication = int(replication)
        self.m = ring.m
        self.k = space.k
        self.bounds = space.bounds
        self.metric = space.landmark_set.metric
        self.shards: dict[Any, Shard] = {}
        self._keys: np.ndarray | None = None
        self._points: np.ndarray | None = None
        self._object_ids: np.ndarray | None = None
        self._owner_objs: np.ndarray | None = None

    # -- construction -----------------------------------------------------------

    def build(self) -> None:
        """Project the dataset, hash it, and distribute entries to owners."""
        points = self.space.project(self.dataset)
        self._points = points
        self._keys = lp_hash_batch(points, self.bounds, self.m)
        n = points.shape[0]
        self._object_ids = np.arange(n, dtype=np.int64)
        self.distribute()

    def rotated_keys(self) -> np.ndarray:
        """Ring keys of all entries: LPH keys shifted by the rotation offset."""
        mask = np.uint64((1 << self.m) - 1)
        return (self._keys + np.uint64(self.rotation)) & mask

    def distribute(self) -> int:
        """(Re)assign all entries to their current owners.

        Returns the number of entries that changed node, which is the
        migration volume of a load-balancing step.
        """
        if self._keys is None:
            raise RuntimeError("call build() first")
        owners = self.ring.owners_of_keys(self.rotated_keys())
        nodes = self.ring.nodes()
        node_arr = np.empty(len(nodes), dtype=object)
        node_arr[:] = nodes
        new_owner_objs = node_arr[owners]
        if self._owner_objs is None:
            moved = 0
        else:
            moved = int(np.count_nonzero(new_owner_objs != self._owner_objs))
        self._owner_objs = new_owner_objs
        order = np.argsort(owners, kind="stable")
        sorted_owners = owners[order]
        bounds_idx = np.searchsorted(sorted_owners, np.arange(len(nodes) + 1))
        self.shards = {node: Shard(self.k) for node in nodes}
        n_nodes = len(nodes)
        copies = min(self.replication, n_nodes)
        for i, node in enumerate(nodes):
            sel = order[bounds_idx[i] : bounds_idx[i + 1]]
            if not len(sel):
                continue
            for c in range(copies):
                holder = nodes[(i + c) % n_nodes]
                self.shards[holder].add(
                    self._keys[sel], self._points[sel], self._object_ids[sel]
                )
        return moved

    # -- dynamic entries (used by repro.core.updates) ------------------------------

    def append_entry(self, object_id: int, point: np.ndarray, key: int) -> None:
        """Add one entry to the global arrays and redistribute.

        ``object_id`` must index into ``dataset`` (the object itself must
        already exist there).
        """
        self._keys = np.concatenate([self._keys, np.array([key], dtype=np.uint64)])
        self._points = np.vstack([self._points, np.asarray(point, dtype=np.float64)[None, :]])
        self._object_ids = np.concatenate(
            [self._object_ids, np.array([object_id], dtype=np.int64)]
        )
        self._owner_objs = None  # placement cache invalidated
        self.distribute()

    def remove_entry(self, object_id: int) -> int | None:
        """Remove the entry of ``object_id``; returns its LPH key or None."""
        pos = np.flatnonzero(self._object_ids == object_id)
        if pos.size == 0:
            return None
        p = int(pos[0])
        key = int(self._keys[p])
        keep = np.ones(len(self._keys), dtype=bool)
        keep[p] = False
        self._keys = self._keys[keep]
        self._points = self._points[keep]
        self._object_ids = self._object_ids[keep]
        self._owner_objs = None
        self.distribute()
        return key

    # -- failure handling -----------------------------------------------------------

    def surviving_object_ids(self) -> np.ndarray:
        """Distinct object ids still stored on some live node's shard."""
        ids = [s.object_ids for s in self.shards.values() if len(s)]
        if not ids:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(ids))

    def rebuild_from_shards(self) -> int:
        """Re-replication after failures: rebuild the entry set from the
        union of surviving shards and redistribute (restoring the configured
        replication factor).  Returns the number of entries lost for good.
        """
        before = len(self._keys)
        keys, points, oids = [], [], []
        seen: set[int] = set()
        for shard in self.shards.values():
            for j in range(len(shard)):
                oid = int(shard.object_ids[j])
                if oid in seen:
                    continue
                seen.add(oid)
                keys.append(shard.keys[j])
                points.append(shard.points[j])
                oids.append(oid)
        self._keys = np.asarray(keys, dtype=np.uint64)
        self._points = (
            np.asarray(points, dtype=np.float64)
            if points
            else np.empty((0, self.k))
        )
        self._object_ids = np.asarray(oids, dtype=np.int64)
        self._owner_objs = None
        self.distribute()
        return before - len(self._keys)

    # -- querying ------------------------------------------------------------------

    def make_query(
        self,
        obj: Any,
        radius: float,
        qid: int | None = None,
    ) -> RangeQuery:
        """Convert a near-neighbour query ``(obj, radius)`` to its range query."""
        ipoint = self.space.project_one(obj)
        return RangeQuery.from_point(
            ipoint,
            radius,
            self.bounds,
            self.m,
            index_name=self.name,
            payload=QueryPayload(obj=obj, ipoint=ipoint),
            qid=qid,
            alloc=self.qids,
        )

    def make_queries(
        self,
        objs: Any,
        radii: Any,
        qids: Any = None,
    ) -> list[RangeQuery]:
        """Batch :meth:`make_query`: one projection pass for all objects.

        The whole batch is embedded as a single ``(n, k)`` distance matrix
        (the metric's ``many_to_many`` kernel); per-query rectangle and
        prefix construction is unchanged.  ``project_one`` delegates to the
        same batch kernel, so the resulting queries are bit-identical to n
        separate :meth:`make_query` calls.  ``qids=None`` draws fresh ids
        from the platform allocator, exactly as the scalar path would.
        """
        n = objs.shape[0] if hasattr(objs, "shape") else len(objs)
        ipoints = self.space.project(objs)
        if qids is None:
            qids = [None] * n
        return [
            RangeQuery.from_point(
                ipoints[i],
                float(radii[i]),
                self.bounds,
                self.m,
                index_name=self.name,
                payload=QueryPayload(obj=take(objs, i), ipoint=ipoints[i]),
                qid=qids[i],
                alloc=self.qids,
            )
            for i in range(n)
        ]

    def refine_distances(self, q: RangeQuery, points: np.ndarray, object_ids: np.ndarray) -> np.ndarray:
        """Distances used to refine range-search candidates at an index node.

        ``"index"`` mode ranks by the Chebyshev (L∞) distance between index
        points — the contractive lower bound of the true distance implied by
        the triangle inequality, so it never over-estimates.
        """
        if self.refine_mode == "index":
            return np.abs(points - q.payload.ipoint).max(axis=1)
        return self.metric.one_to_many(q.payload.obj, take(self.dataset, object_ids))

    # -- introspection ------------------------------------------------------------------

    def load_distribution(self) -> np.ndarray:
        """Index entries per node, in ring order (Figures 4 and 6).

        Counts replicas too — they cost storage.  Nodes that joined after
        the last distribution hold nothing yet.
        """
        empty = Shard(self.k)
        return np.asarray(
            [self.shards.get(n, empty).load for n in self.ring.nodes()], dtype=np.int64
        )

    def total_entries(self) -> int:
        return 0 if self._keys is None else len(self._keys)

    def filtering_score(self, sample: Any, seed: int | np.random.Generator | None = 0, pairs: int = 500) -> float:
        """How well the landmark projection preserves distances on a sample.

        Mean ratio of the contractive lower bound (L∞ in index space) to the
        true distance over random pairs, in [0, 1]; higher means tighter
        filtering.  Used by landmark regeneration (§6 future work) to decide
        whether a candidate landmark set beats the current one.
        """
        rng = as_rng(seed)
        n = sample.shape[0] if hasattr(sample, "shape") else len(sample)
        a = rng.integers(0, n, size=pairs)
        b = rng.integers(0, n, size=pairs)
        keep = a != b
        a, b = a[keep], b[keep]
        pa = self.space.project(take(sample, a))
        pb = self.space.project(take(sample, b))
        lower = np.abs(pa - pb).max(axis=1)
        true = np.asarray(
            [self.metric.distance(take(sample, int(x)), take(sample, int(y))) for x, y in zip(a, b)]
        )
        ok = true > 0
        if not ok.any():
            return 0.0
        return float(np.mean(np.minimum(lower[ok] / true[ok], 1.0)))


class IndexPlatform:
    """A Chord overlay hosting multiple landmark indexes.

    Parameters
    ----------
    ring:
        The overlay; build one with :meth:`ChordRing.build`.
    latency:
        Latency model shared with the ring (may be None for structural runs).
    sim:
        Discrete-event simulator (created on demand).
    faults:
        Optional :class:`repro.sim.transport.FaultConfig` — message loss,
        delay jitter and partitions applied to every protocol on the
        platform's shared transport.
    trace:
        Optional :class:`repro.sim.transport.TraceSink` receiving one record
        per message the transport handles.
    transport:
        Pass an existing :class:`repro.sim.transport.Transport` to share it
        (mutually exclusive with faults/trace, which configure a new one).
    obs:
        Optional :class:`repro.obs.Observability`.  Its metrics registry is
        attached to the transport and threaded into every protocol and
        lifecycle engine the platform creates; its span recorder (when
        tracing is on) is bound to the platform's simulator.  The platform
        is a context manager — ``with IndexPlatform(..., obs=obs) as p:``
        guarantees trace sinks are flushed and closed on any exit path.
    """

    def __init__(
        self,
        ring: ChordRing,
        latency: Any = None,
        sim: Simulator | None = None,
        faults: FaultConfig | None = None,
        trace: TraceSink | None = None,
        transport: Transport | None = None,
        obs: Any = None,
    ) -> None:
        self.ring = ring
        self.latency = latency if latency is not None else ring.latency
        self.obs = obs
        registry = obs.registry if obs is not None else None
        if transport is not None:
            if faults is not None or trace is not None:
                raise ValueError("pass either transport= or faults=/trace=, not both")
            self.transport = transport
            self.sim = transport.sim
            if transport.latency is not None:
                self.latency = transport.latency
            if registry is not None:
                transport.attach_metrics(registry)
        else:
            self.sim = sim or Simulator()
            self.transport = Transport(
                sim=self.sim, latency=self.latency, faults=faults, trace=trace,
                metrics=registry,
            )
        self.trace = self.transport.trace
        if obs is not None:
            obs.bind(self.sim)
        self.indexes: dict[str, LandmarkIndex] = {}
        #: platform-scoped query ids: unique across all indexes and
        #: concurrent queries, reproducible per platform instance
        self.qids = QidAllocator()

    # -- teardown --------------------------------------------------------------------

    def close(self) -> None:
        """Flush and close the observability bundle and any trace sink.

        Idempotent; runs on ``with``-exit so an exception mid-run cannot
        leave truncated JSONL trace files behind.
        """
        if self.obs is not None:
            self.obs.close()
        if self.trace is not None:
            self.trace.close()

    def __enter__(self) -> IndexPlatform:
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- index lifecycle -------------------------------------------------------------

    def create_index(
        self,
        name: str,
        dataset: Any,
        metric: Metric,
        k: int = 10,
        selection: str = "greedy",
        sample_size: int = 2000,
        boundary: str = "metric",
        rotation: bool = False,
        refine_mode: str = "true",
        replication: int = 1,
        seed: int | np.random.Generator | None = 0,
    ) -> LandmarkIndex:
        """Build and distribute a new index (§3.1's initiation procedure).

        ``sample_size`` objects are sampled for landmark selection (paper:
        2000 for the synthetic dataset, 3000 for TREC); ``boundary`` picks
        the index-space bounding strategy; ``rotation`` enables the static
        load-balancing offset.
        """
        if name in self.indexes:
            raise ValueError(f"index {name!r} already exists")
        rng = as_rng(seed)
        n = dataset.shape[0] if hasattr(dataset, "shape") else len(dataset)
        sample_idx = rng.choice(n, size=min(sample_size, n), replace=False)
        sample = take(dataset, sample_idx)
        lset = select_landmarks(selection, sample, metric, k, rng)
        space = IndexSpace.build(lset, boundary=boundary, sample=sample)
        rot = rotation_offset(name, self.ring.m) if rotation else 0
        index = LandmarkIndex(
            name, space, self.ring, dataset, rotation=rot,
            refine_mode=refine_mode, replication=replication,
        )
        index.qids = self.qids
        index.build()
        self.indexes[name] = index
        return index

    def drop_index(self, name: str) -> None:
        """Remove an index and free its shards."""
        del self.indexes[name]

    def reindex(
        self,
        name: str,
        selection: str | None = None,
        sample_size: int = 2000,
        threshold: float = 0.02,
        seed: int | np.random.Generator | None = 1,
    ) -> dict[str, float]:
        """Landmark regeneration for dynamic datasets (paper §6, future work).

        Selects a candidate landmark set, scores old vs new by
        :meth:`LandmarkIndex.filtering_score` on a fresh sample, and adopts
        the new set when it wins by more than ``threshold``.  Returns a
        report including whether adoption happened and how many entries
        migrated.
        """
        index = self.indexes[name]
        rng = as_rng(seed)
        n = index.dataset.shape[0] if hasattr(index.dataset, "shape") else len(index.dataset)
        sample_idx = rng.choice(n, size=min(sample_size, n), replace=False)
        sample = take(index.dataset, sample_idx)
        scheme = selection or index.space.landmark_set.scheme
        new_set = select_landmarks(scheme, sample, index.metric, index.k, rng)
        boundary = "metric" if index.metric.is_bounded else "sample"
        new_space = IndexSpace.build(new_set, boundary=boundary, sample=sample)
        candidate = LandmarkIndex(
            name, new_space, self.ring, index.dataset,
            rotation=index.rotation, refine_mode=index.refine_mode,
            replication=index.replication,
        )
        candidate.qids = self.qids
        old_score = index.filtering_score(sample, rng)
        new_score = candidate.filtering_score(sample, rng)
        report = {"old_score": old_score, "new_score": new_score, "adopted": 0.0, "moved": 0.0}
        if new_score > old_score * (1.0 + threshold):
            candidate.build()
            self.indexes[name] = candidate
            report["adopted"] = 1.0
            report["moved"] = float(candidate.total_entries())
        return report

    # -- querying --------------------------------------------------------------------

    def protocol(
        self,
        name: str,
        stats: StatsCollector | None = None,
        **kwargs: Any,
    ) -> tuple[QueryProtocol, StatsCollector]:
        """A query protocol bound to one index (kwargs forwarded to it).

        All protocols from one platform share its transport, so faults,
        traces and the latency model are configured once, on the platform.
        """
        # note: an empty StatsCollector is falsy (len == 0), so test identity
        stats = stats if stats is not None else StatsCollector()
        kwargs.setdefault("obs", self.obs)
        proto = QueryProtocol(
            index=self.indexes[name], stats=stats, transport=self.transport, **kwargs
        )
        return proto, stats

    def lifecycle(self, policy: RetryPolicy | None = None) -> LifecycleEngine:
        """A fresh :class:`repro.core.lifecycle.LifecycleEngine` on the
        platform's transport (deadlines, retries and completion futures)."""
        obs = self.obs
        return LifecycleEngine(
            self.transport, policy=policy,
            metrics=obs.registry if obs is not None else None,
            recorder=obs.recorder if obs is not None else None,
        )

    def health_sampler(self, interval: float = 1.0, engine: Any = None,
                       **kwargs: Any) -> Any:
        """A :class:`repro.obs.HealthSampler` wired to this platform.

        Samples event-queue depth, live ring membership and the per-node
        load deciles of all hosted indexes; pass the run's lifecycle
        ``engine`` to include in-flight branch counts.  Requires ``obs=``.
        """
        if self.obs is None:
            raise RuntimeError("health_sampler requires the platform's obs=")
        return self.obs.health_sampler(
            self.sim, interval, ring=self.ring, engine=engine,
            load_fn=self.load_distribution, **kwargs,
        )

    def run_workload(
        self,
        name: str,
        workload: Any,
        reset_sim: bool = True,
        pipelined: bool = True,
        policy: RetryPolicy | None = None,
        **protocol_kwargs: Any,
    ) -> StatsCollector:
        """Issue a :class:`repro.datasets.queries.QueryWorkload` and run it.

        Query ``qid`` equals the workload position, so ground-truth joins are
        positional.  Returns the stats collector (per-query costs + merged
        result entries).

        ``pipelined=True`` (default) injects every query at its arrival time
        and runs them concurrently — one pass over the event queue.
        ``pipelined=False`` issues and drains one query at a time (the
        serial baseline; with faults off both produce identical per-query
        stats, the queries being causally independent).  ``policy`` attaches
        a lifecycle engine: per-query deadlines, retransmission with backoff
        and a terminal state per query — required for meaningful runs under
        :class:`repro.sim.transport.FaultConfig` faults.
        """
        if reset_sim:
            self.sim.reset()
        engine = self.lifecycle(policy) if policy is not None else None
        proto, stats = self.protocol(name, engine=engine, **protocol_kwargs)
        index = self.indexes[name]
        nodes = self.ring.nodes()
        # Maintenance traffic has no qid, so per-query stats can't carry it;
        # snapshot the transport's per-class counters around the run instead
        # and hand the delta to the collector (query-vs-maintenance split).
        maint_bytes0 = self.transport.stats.maintenance_bytes
        maint_msgs0 = self.transport.stats.maintenance_messages
        # One batched projection pass maps every query object up front
        # (bit-identical to per-query make_query; see make_queries).
        queries = index.make_queries(
            workload.points, workload.radii, qids=range(len(workload))
        )

        def issue_one(i: int) -> Any:
            q = queries[i]
            node = nodes[int(workload.source_nodes[i]) % len(nodes)]
            # serial draining can advance the clock past the next arrival;
            # the serial baseline then issues the query immediately (its
            # *relative* latencies are unaffected — only absolute timestamps)
            at = max(float(workload.arrival_times[i]), self.sim.now)
            return proto.issue(q, node, at_time=at)

        if pipelined:
            # bulk injection: the clock does not advance while issuing, so
            # the arrival clamp uses one fixed `now` — identical timestamps
            # to the per-query loop, one heapify instead of n sift-ups
            now = self.sim.now
            n_ring = len(nodes)
            futures = proto.issue_many(
                queries,
                [nodes[int(s) % n_ring] for s in workload.source_nodes],
                [max(float(t), now) for t in workload.arrival_times],
            )
            if engine is not None:
                engine.run_until_complete(futures)
            else:
                self.sim.run()
        else:
            for i in range(len(workload)):
                fut = issue_one(i)
                if engine is not None:
                    engine.run_until_complete([fut])
                else:
                    self.sim.run()
        stats.maintenance_bytes += self.transport.stats.maintenance_bytes - maint_bytes0
        stats.maintenance_messages += (
            self.transport.stats.maintenance_messages - maint_msgs0
        )
        return stats

    def query_async(
        self,
        name: str,
        obj: Any,
        radius: float,
        source_node: Any = None,
        top_k: int = 10,
        policy: RetryPolicy | None = None,
        engine: LifecycleEngine | None = None,
        **protocol_kwargs: Any,
    ) -> QueryFuture:
        """Issue one similarity query on the live simulator; returns its future.

        The query runs alongside whatever else is scheduled (other queries,
        maintenance); harvest it with ``future.engine.run_until_complete([f])``
        or a done-callback.  Pass a shared ``engine`` to co-track several
        queries; otherwise one is created with ``policy``.
        """
        if engine is None:
            engine = self.lifecycle(policy)
        elif policy is not None:
            raise ValueError("pass either engine= or policy=, not both")
        proto, _ = self.protocol(name, top_k=top_k, engine=engine, **protocol_kwargs)
        index = self.indexes[name]
        node = source_node or self.ring.nodes()[0]
        q = index.make_query(obj, radius)
        return proto.issue(q, node)

    def query(
        self,
        name: str,
        obj: Any,
        radius: float,
        source_node: Any = None,
        top_k: int = 10,
        policy: RetryPolicy | None = None,
        **protocol_kwargs: Any,
    ) -> list[Any]:
        """One-shot similarity query; returns merged, deduplicated results.

        Results are ``ResultEntry`` objects sorted by distance (closest
        first), at most ``top_k`` of them.  Runs through the lifecycle
        engine: the simulator advances only until this query completes, so
        co-scheduled events stay queued.  Raises
        :class:`repro.core.lifecycle.QueryTimeout` when ``policy`` has a
        deadline and the query missed it.
        """
        fut = self.query_async(
            name, obj, radius, source_node=source_node, top_k=top_k,
            policy=policy, **protocol_kwargs,
        )
        fut.engine.run_until_complete([fut])
        return fut.result(top_k)

    # -- failure injection --------------------------------------------------------------

    def fail_node(self, node: Any) -> None:
        """Crash a node: every entry it stored (primaries and replicas)
        vanishes; the ring repairs around it.  Surviving replicas on the new
        owners keep the dead key ranges answerable — queries need no code
        path for failover because the claimed-key-range filter serves
        whatever the current owner stores.
        """
        for index in self.indexes.values():
            index.shards.pop(node, None)
        self.ring.remove_node(node)

    # -- load ------------------------------------------------------------------------

    def node_load(self, node: Any) -> int:
        """Total index entries a node stores across all indexes (§3.4's measure)."""
        return sum(
            idx.shards[node].load for idx in self.indexes.values() if node in idx.shards
        )

    def load_distribution(self) -> np.ndarray:
        """Per-node total load in ring order."""
        return np.asarray([self.node_load(n) for n in self.ring.nodes()], dtype=np.int64)
