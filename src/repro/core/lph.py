"""Locality-preserving hashing of the index space (paper §3.2, Algorithm 2).

The k-dimensional index space is partitioned k-d-tree style into ``2^m``
equally sized hypercuboids, dividing dimensions alternately — the ``i``-th
division splits dimension ``j = (i - 1) mod k`` — for ``m`` total divisions
(``m`` = identifier bits of Chord, 64 in the paper).  A cuboid's key spells
its division choices: picking the *higher half* on the ``i``-th division sets
bit ``i`` (counted from the left) to 1.  The paper's tie rule is strict
(``point[j] > mid`` → high half), so a coordinate exactly on a split plane
belongs to the lower cell.

Nearby index points share long key prefixes, so Chord's successor mapping
sends them to the same or neighbouring nodes — that is the locality the range
queries exploit.

This module also provides the inverse geometry (key/prefix → cuboid) and the
*smallest enclosing prefix* of a query rectangle, used to initialise the
``(prefix_key, prefix_length)`` of a range query (§3.3, figure 1a).
"""

from __future__ import annotations

import numpy as np

from repro.core.index_space import IndexSpaceBounds
from repro.util.bits import bit_at

__all__ = [
    "lp_hash",
    "lp_hash_batch",
    "prefix_to_cuboid",
    "key_to_cuboid",
    "dimension_range",
    "smallest_enclosing_prefix",
]


def lp_hash(point: np.ndarray, bounds: IndexSpaceBounds, m: int) -> int:
    """Algorithm 2: hash one index point to its ``m``-bit cuboid key.

    Reference scalar implementation — the batch version below is the hot
    path.  Coordinates are assumed clipped into ``bounds``.
    """
    point = np.asarray(point, dtype=np.float64)
    k = bounds.k
    if point.shape != (k,):
        raise ValueError(f"point shape {point.shape} != ({k},)")
    lo = bounds.lows.copy()
    hi = bounds.highs.copy()
    key = 0
    for i in range(1, m + 1):
        j = (i - 1) % k
        mid = (lo[j] + hi[j]) / 2.0
        if point[j] > mid:
            lo[j] = mid
            key = (key << 1) | 1
        else:
            hi[j] = mid
            key = key << 1
    return key


def lp_hash_batch(points: np.ndarray, bounds: IndexSpaceBounds, m: int) -> np.ndarray:
    """Vectorised Algorithm 2 over ``(n, k)`` points.

    Runs the same ``m`` halving steps but across all points at once; exact
    bit-for-bit agreement with :func:`lp_hash` (same floating-point midpoint
    sequence).  Returns ``uint64`` keys (``m <= 64``).
    """
    if m > 64:
        raise ValueError("lp_hash_batch supports identifier sizes up to 64 bits")
    pts = np.ascontiguousarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != bounds.k:
        raise ValueError(f"points must be (n, {bounds.k}); got {pts.shape}")
    n, k = pts.shape
    lo = np.broadcast_to(bounds.lows, (n, k)).copy()
    hi = np.broadcast_to(bounds.highs, (n, k)).copy()
    keys = np.zeros(n, dtype=np.uint64)
    one = np.uint64(1)
    for i in range(1, m + 1):
        j = (i - 1) % k
        mid = (lo[:, j] + hi[:, j]) * 0.5
        high_half = pts[:, j] > mid
        # np.where copies the midpoint values unchanged, so the halving
        # sequence (and hence every key bit) matches lp_hash exactly; it
        # replaces two boolean fancy-indexing round trips per division.
        lo[:, j] = np.where(high_half, mid, lo[:, j])
        hi[:, j] = np.where(high_half, hi[:, j], mid)
        keys = (keys << one) | high_half.astype(np.uint64)
    return keys


def dimension_range(
    prefix_key: int,
    upto: int,
    dim: int,
    bounds: IndexSpaceBounds,
    m: int,
) -> tuple[float, float]:
    """Range of dimension ``dim`` of the cuboid spelled by bits ``1..upto``.

    Replays the divisions that hit ``dim`` among the first ``upto`` bits of
    ``prefix_key`` — the loop at the top of Algorithm 4 (QuerySplit), which
    reconstructs ``R`` before computing the split midpoint.
    """
    k = bounds.k
    lo = float(bounds.lows[dim])
    hi = float(bounds.highs[dim])
    # Divisions on dimension `dim` are i = dim+1, dim+1+k, dim+1+2k, ...
    i = dim + 1
    while i <= upto:
        mid = (lo + hi) / 2.0
        if bit_at(prefix_key, i, m):
            lo = mid
        else:
            hi = mid
        i += k
    return lo, hi


def prefix_to_cuboid(
    prefix_key: int,
    prefix_len: int,
    bounds: IndexSpaceBounds,
    m: int,
) -> tuple[np.ndarray, np.ndarray]:
    """The hypercuboid (lows, highs) addressed by a prefix of length ``prefix_len``."""
    k = bounds.k
    lo = bounds.lows.copy()
    hi = bounds.highs.copy()
    for i in range(1, prefix_len + 1):
        j = (i - 1) % k
        mid = (lo[j] + hi[j]) / 2.0
        if bit_at(prefix_key, i, m):
            lo[j] = mid
        else:
            hi[j] = mid
    return lo, hi


def key_to_cuboid(key: int, bounds: IndexSpaceBounds, m: int) -> tuple[np.ndarray, np.ndarray]:
    """The leaf hypercuboid of a full ``m``-bit key."""
    return prefix_to_cuboid(key, m, bounds, m)


def smallest_enclosing_prefix(
    lows: np.ndarray,
    highs: np.ndarray,
    bounds: IndexSpaceBounds,
    m: int,
) -> tuple[int, int]:
    """Smallest hypercuboid completely holding the query region (figure 1a).

    Descends the recursive partition while the query rectangle fits entirely
    within one half; returns ``(prefix_key, prefix_length)`` with the prefix
    zero-padded to ``m`` bits.  Containment follows the hash's tie rule:
    the lower half is ``[lo, mid]`` (closed) and the higher half ``(mid, hi]``,
    so a query touching ``mid`` from above only fits the higher half if its
    low end is strictly greater than ``mid``.
    """
    k = bounds.k
    lo_r = np.asarray(lows, dtype=np.float64).copy()
    hi_r = np.asarray(highs, dtype=np.float64).copy()
    lo = bounds.lows.copy()
    hi = bounds.highs.copy()
    key = 0
    length = 0
    for i in range(1, m + 1):
        j = (i - 1) % k
        mid = (lo[j] + hi[j]) / 2.0
        if lo_r[j] > mid:  # entire query in the higher half
            key = (key << 1) | 1
            lo[j] = mid
        elif hi_r[j] <= mid:  # entire query in the lower half (mid inclusive)
            key = key << 1
            hi[j] = mid
        else:
            break
        length = i
    return key << (m - length), length
