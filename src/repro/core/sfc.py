"""Space-filling curves: Morton (Z-order) and Hilbert encodings.

The paper's related work (§5) contrasts its k-d locality-preserving hash
with SCRAP [11], which maps the multi-dimensional space to one dimension
with a Hilbert space-filling curve [18] and resolves range queries as 1-d
key intervals.  This module supplies both curves so the comparison can be
made quantitatively (`bench_ablation_sfc.py`):

* **Morton** (bit interleaving) is exactly the ordering induced by the
  paper's Algorithm 2 — the k-d recursive bisection spells the same bits —
  so it doubles as an independent cross-check of the LPH;
* **Hilbert** (Skilling's transform) visits every axis-aligned subcube
  contiguously, which fragments rectangles into fewer key intervals.

Both curves operate on ``k`` dimensions × ``p`` bits per dimension
(coordinates are grid cells in ``[0, 2^p)``); keys have ``k*p`` bits.  Every
*aligned* subcube of side ``2^(p-L)`` maps to one contiguous, size-aligned
key interval under either curve — the property
:func:`decompose_rect_to_intervals` exploits.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

__all__ = [
    "morton_encode",
    "morton_decode",
    "hilbert_encode",
    "hilbert_decode",
    "quantize",
    "dequantize_cell",
    "decompose_rect_to_intervals",
]


# -- quantisation ---------------------------------------------------------------


def quantize(points: np.ndarray, lows: np.ndarray, highs: np.ndarray, p: int) -> np.ndarray:
    """Map float coordinates to grid cells in ``[0, 2^p)`` per dimension.

    Uses the same tie rule as the LPH (a coordinate exactly on a cell
    boundary belongs to the lower cell), implemented as
    ``ceil(frac * 2^p) - 1`` clipped into range.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    frac = (pts - lows) / (np.asarray(highs) - np.asarray(lows))
    cells = np.ceil(frac * (1 << p)).astype(np.int64) - 1
    return np.clip(cells, 0, (1 << p) - 1)


def dequantize_cell(
        cells: np.ndarray, lows: np.ndarray, highs: np.ndarray, p: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Return the (lo, hi) float box of integer grid cells."""
    cells = np.atleast_2d(np.asarray(cells, dtype=np.int64))
    span = (np.asarray(highs) - np.asarray(lows)) / (1 << p)
    lo = lows + cells * span
    return lo, lo + span


# -- Morton (Z-order) --------------------------------------------------------------


def morton_encode(cells: np.ndarray, p: int) -> np.ndarray:
    """Interleave ``(n, k)`` integer coordinates into Morton keys.

    Bit ``t`` (0 = most significant of each coordinate) of dimension ``j``
    lands at key position ``t*k + j`` from the top — matching Algorithm 2's
    division order (dimension ``j`` is split on divisions ``j+1, j+1+k, ...``).
    """
    cells = np.atleast_2d(np.asarray(cells, dtype=np.uint64))
    n, k = cells.shape
    keys = np.zeros(n, dtype=np.uint64)
    one = np.uint64(1)
    for t in range(p):
        shift = np.uint64(p - 1 - t)
        for j in range(k):
            bit = (cells[:, j] >> shift) & one
            keys = (keys << one) | bit
    return keys


def morton_decode(keys: np.ndarray, k: int, p: int) -> np.ndarray:
    """Inverse of :func:`morton_encode`; returns ``(n, k)`` coordinates."""
    keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
    n = len(keys)
    cells = np.zeros((n, k), dtype=np.uint64)
    one = np.uint64(1)
    for t in range(p):
        for j in range(k):
            pos = np.uint64(k * p - 1 - (t * k + j))
            bit = (keys >> pos) & one
            cells[:, j] = (cells[:, j] << one) | bit
    return cells.astype(np.int64)


# -- Hilbert (Skilling's transform) ---------------------------------------------------


def _transpose_to_axes(x: list[int], k: int, p: int) -> list[int]:
    """Skilling: transposed Hilbert index -> axis coordinates (in place)."""
    n = 2 << (p - 1)
    # Gray decode by H ^ (H/2)
    t = x[k - 1] >> 1
    for i in range(k - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    # Undo excess work
    q = 2
    while q != n:
        pq = q - 1
        for i in range(k - 1, -1, -1):
            if x[i] & q:
                x[0] ^= pq  # invert
            else:
                t = (x[0] ^ x[i]) & pq
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return x


def _axes_to_transpose(x: list[int], k: int, p: int) -> list[int]:
    """Skilling: axis coordinates -> transposed Hilbert index (in place)."""
    m = 1 << (p - 1)
    q = m
    while q > 1:
        pq = q - 1
        for i in range(k):
            if x[i] & q:
                x[0] ^= pq
            else:
                t = (x[0] ^ x[i]) & pq
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode
    for i in range(1, k):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[k - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(k):
        x[i] ^= t
    return x


def _untranspose(x: list[int], k: int, p: int) -> int:
    """Collect the transposed form into a single k*p-bit integer."""
    key = 0
    for t in range(p):
        for j in range(k):
            bit = (x[j] >> (p - 1 - t)) & 1
            key = (key << 1) | bit
    return key


def _transpose(key: int, k: int, p: int) -> list[int]:
    """Split a k*p-bit integer into the transposed form."""
    x = [0] * k
    for t in range(p):
        for j in range(k):
            pos = k * p - 1 - (t * k + j)
            bit = (key >> pos) & 1
            x[j] = (x[j] << 1) | bit
    return x


def hilbert_encode(cells: np.ndarray, p: int) -> np.ndarray:
    """Hilbert keys of ``(n, k)`` integer coordinates (Skilling's algorithm)."""
    cells = np.atleast_2d(np.asarray(cells, dtype=np.int64))
    n, k = cells.shape
    out = np.zeros(n, dtype=np.uint64)
    for i in range(n):
        x = [int(c) for c in cells[i]]
        _axes_to_transpose(x, k, p)
        out[i] = _untranspose(x, k, p)
    return out


def hilbert_decode(keys: np.ndarray, k: int, p: int) -> np.ndarray:
    """Inverse of :func:`hilbert_encode`; returns ``(n, k)`` coordinates."""
    keys = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
    out = np.zeros((len(keys), k), dtype=np.int64)
    for i, key in enumerate(keys):
        x = _transpose(int(key), k, p)
        _transpose_to_axes(x, k, p)
        out[i] = x
    return out


# -- rectangle -> key-interval decomposition ----------------------------------------------


def decompose_rect_to_intervals(
    lo_cells: np.ndarray,
    hi_cells: np.ndarray,
    k: int,
    p: int,
    encode: Callable[[np.ndarray, int, int], np.ndarray],
    max_intervals: int = 1 << 14,
    max_level: int | None = None,
) -> list[tuple[int, int]]:
    """Decompose an integer cell box into contiguous curve-key intervals.

    ``encode`` is :func:`morton_encode` or :func:`hilbert_encode`.  Descends
    the aligned-subcube hierarchy: a subcube disjoint from the box is pruned,
    a contained one emits its (contiguous, size-aligned) key interval, a
    straddling one recurses into its ``2^k`` children.  Adjacent intervals
    are merged before returning, sorted by start key.

    ``max_level`` coarsens the decomposition: a cube still straddling the
    box at that depth emits its *whole* interval (a superset — callers must
    post-filter by rectangle, which the shard range search does anyway).
    ``max_intervals`` raises when even the coarsened decomposition is too
    fragmented.  The exponential fragmentation of high-dimensional
    rectangles is the documented weakness of SFC interval routing (SCRAP
    targets low dimensionality).
    """
    lo_cells = np.asarray(lo_cells, dtype=np.int64)
    hi_cells = np.asarray(hi_cells, dtype=np.int64)
    cutoff = p if max_level is None else max(1, min(max_level, p))
    intervals: list[tuple[int, int]] = []

    def emit(corner: np.ndarray, level: int) -> None:
        size = 1 << (k * (p - level))
        e = int(encode(corner[None, :], p)[0])
        start = e - (e % size)
        intervals.append((start, start + size - 1))
        if len(intervals) > max_intervals:
            raise RuntimeError(f"decomposition exceeded {max_intervals} intervals")

    def visit(corner: np.ndarray, level: int) -> None:
        side = 1 << (p - level)
        cube_lo = corner
        cube_hi = corner + side - 1
        if np.any(cube_hi < lo_cells) or np.any(cube_lo > hi_cells):
            return
        contained = np.all(cube_lo >= lo_cells) and np.all(cube_hi <= hi_cells)
        if contained or level >= cutoff:
            emit(corner, level)
            return
        half = side >> 1
        if half == 0:
            emit(corner, level)
            return
        for mask in range(1 << k):
            child = corner.copy()
            for j in range(k):
                if mask & (1 << j):
                    child[j] += half
            visit(child, level + 1)

    visit(np.zeros(k, dtype=np.int64), 0)
    intervals.sort()
    merged: list[tuple[int, int]] = []
    for a, b in intervals:
        if merged and a == merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], b)
        else:
            merged.append((a, b))
    return merged
