"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro fig2 [--scale bench|paper] [--nodes N] [--objects N]
                          [--queries N] [--out results.txt]
    python -m repro fig3 ...
    python -m repro fig4 ...
    python -m repro fig5 ...
    python -m repro fig6 ...
    python -m repro table1
    python -m repro table2 [--corpus-scale F]
    python -m repro quickstart
    python -m repro obs-demo [--out-dir DIR] [--queries N] [--loss P]
    python -m repro metrics DIR/metrics.jsonl [--prefix transport_]
    python -m repro trace QID --file DIR/spans.jsonl
    python -m repro replay BUNDLE.json [--differential] [--timeline]
    python -m repro fuzz [--runs N] [--ops N] [--loss P] [--out-dir DIR]
    python -m repro scale-smoke [--out-dir DIR] [--obs-overhead 0.10] [--slo]
    python -m repro top --health DIR/health.jsonl [--metrics DIR/metrics.jsonl]
    python -m repro slo [--nodes N] [--queries N] [--json]
    python -m repro serve --metrics DIR/metrics.jsonl --health DIR/health.jsonl
    python -m repro flight BUNDLE.json [--rerun]
    python -m repro node --name node-0 --data-dir ./data/node-0 [--port P]
                          [--bootstrap IP:PORT]
    python -m repro cluster [--nodes N] [--entries N] [--queries N] [--json]

The figure commands print the same tables the benchmark suite saves under
``benchmarks/results/``; ``--scale paper`` runs the authors' full parameters
(slow in pure Python).
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Landmark-based P2P similarity-search index (IPPS 2007) — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_experiment(name: str, help_: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_)
        p.add_argument("--scale", choices=("bench", "paper"), default="bench")
        p.add_argument("--nodes", type=int, default=None, help="override overlay size")
        p.add_argument("--objects", type=int, default=None, help="override dataset size")
        p.add_argument("--queries", type=int, default=None, help="override query count")
        p.add_argument("--corpus-scale", type=float, default=None, help="TREC corpus fraction")
        p.add_argument("--seed", type=int, default=None)
        p.add_argument("--out", type=str, default=None, help="also write the table to this file")
        return p

    add_experiment("fig2", "synthetic sweep, no load balancing")
    add_experiment("fig3", "synthetic sweep, with dynamic load balancing")
    add_experiment("fig4", "load distribution on nodes (synthetic, with LB)")
    add_experiment("fig5", "TREC-like sweep, greedy vs k-means (with LB)")
    add_experiment("fig6", "TREC-like load distribution (with LB)")

    t1 = sub.add_parser("table1", help="synthetic dataset parameters")
    t1.add_argument("--objects", type=int, default=10_000)
    t1.add_argument("--out", type=str, default=None)

    t2 = sub.add_parser("table2", help="document vector size distribution")
    t2.add_argument("--corpus-scale", type=float, default=0.05)
    t2.add_argument("--out", type=str, default=None)

    sub.add_parser("quickstart", help="run the quickstart example")
    check = sub.add_parser("check", help="run the installation self-check battery")
    check.add_argument("--seed", type=int, default=0)

    mtr = sub.add_parser("metrics", help="render a recorded metrics snapshot (JSONL)")
    mtr.add_argument("file", help="metrics JSONL written by export_metrics / obs-demo")
    mtr.add_argument("--prefix", default="", help="only metrics whose name starts with this")
    mtr.add_argument("--out", type=str, default=None)

    tr = sub.add_parser("trace", help="render one query's span tree from a trace JSONL")
    tr.add_argument("qid", type=int, nargs="?", default=None,
                    help="query id; omit to list the qids in the file")
    tr.add_argument("--file", required=True,
                    help="spans JSONL written by Observability(trace_path=...) / obs-demo")
    tr.add_argument("--max-spans", type=int, default=400)
    tr.add_argument("--out", type=str, default=None)

    rp = sub.add_parser(
        "replay",
        help="re-execute a recorded replay log / repro bundle and verify the "
             "run is bit-identical to the recording",
    )
    rp.add_argument("file", help="replay log written by record_run or the pytest plugin")
    rp.add_argument("--differential", action="store_true",
                    help="also diff every query against the linear-scan oracle")
    rp.add_argument("--timeline", action="store_true", help="print the op timeline")

    fz = sub.add_parser(
        "fuzz",
        help="run seeded differential scenarios against the linear-scan "
             "oracle, recording a replay log per failure",
    )
    fz.add_argument("--runs", type=int, default=10, help="number of seeded scenarios")
    fz.add_argument("--ops", type=int, default=20, help="operations per scenario")
    fz.add_argument("--seed", type=int, default=0, help="base scenario seed")
    fz.add_argument("--loss", type=float, default=0.0, help="message loss rate")
    fz.add_argument("--jitter", type=float, default=0.0, help="mean delay jitter (s)")
    fz.add_argument("--out-dir", default=".repro-bundles",
                    help="where failing scenarios are written as replay logs")

    lint = sub.add_parser(
        "lint",
        help="run the determinism/architecture/contract static analysis "
             "(AST rules DET1xx/ARCH2xx/CON3xx; see docs/static-analysis.md)",
    )
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories to lint (default: src/)")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--baseline", default=None,
                      help="baseline file (default: lint-baseline.json at the repo root)")
    lint.add_argument("--layers", default=None,
                      help="layering contract (default: the packaged layers.toml)")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule ids to run (default: all)")
    lint.add_argument("--fix", action="store_true",
                      help="apply mechanical fixes (seeding, facade import moves)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline to cover current findings "
                           "(keeps existing justifications)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")

    tc = sub.add_parser(
        "typecheck",
        help="run mypy --strict on the gated packages (repro.core, "
             "repro.dht, repro.util)",
    )
    tc.add_argument("--format", choices=("text", "json"), default="text")

    bench = sub.add_parser(
        "bench",
        help="run the performance suites, writing BENCH_perf.json / "
             "BENCH_e2e.json (see docs/performance.md)",
    )
    bench.add_argument("--suite", choices=("perf", "e2e", "scale", "all"), default="all")
    bench.add_argument("--quick", action="store_true",
                       help="small sizes / few repeats (the CI smoke mode)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="timing repeats per section (default: 3 quick, 5 full)")
    bench.add_argument("--write", metavar="DIR", default=None,
                       help="directory to write BENCH_<suite>.json into "
                            "(default: current directory)")
    bench.add_argument("--check-against", metavar="DIR", default=None,
                       help="compare speedups against the BENCH_*.json baselines "
                            "in DIR; exit 1 on regression")
    bench.add_argument("--threshold", type=float, default=0.2,
                       help="allowed fractional speedup regression for "
                            "--check-against (default: 0.2 = 20%%)")
    bench.add_argument("--convert", metavar="DIR", default=None,
                       help="convert legacy benchmarks/results/*.txt tables in "
                            "DIR to BenchResult JSON and exit")

    smoke = sub.add_parser(
        "scale-smoke",
        help="build a 10k-node compact ring, route 10k queries with invariant "
             "checks and health sampling, and fail over the wall-clock budget "
             "(the CI scale-smoke job)",
    )
    smoke.add_argument("--nodes", type=int, default=10_000)
    smoke.add_argument("--queries", type=int, default=10_000)
    smoke.add_argument("--budget", type=float, default=120.0,
                       help="wall-clock budget in seconds (default 120)")
    smoke.add_argument("--seed", type=int, default=0)
    smoke.add_argument("--out-dir", default=None,
                       help="stream health/spans JSONL during the run and "
                            "write metrics.jsonl + prom.txt here")
    smoke.add_argument("--obs-overhead", type=float, default=None,
                       metavar="FRAC",
                       help="also run with NullRegistry and fail if the "
                            "instrumented run cost more than FRAC extra "
                            "(e.g. 0.10)")
    smoke.add_argument("--slo", action="store_true",
                       help="evaluate the default SLO catalogue over the run "
                            "and fail on burned budget")

    top = sub.add_parser(
        "top",
        help="terminal dashboard over a running (or finished) scale "
             "simulation's health/metrics JSONL artifacts",
    )
    top.add_argument("--health", required=True,
                     help="health JSONL (scale-smoke --out-dir writes one)")
    top.add_argument("--metrics", default=None, help="metrics JSONL (optional)")
    top.add_argument("--follow", action="store_true",
                     help="re-render every --interval seconds until Ctrl-C")
    top.add_argument("--interval", type=float, default=2.0)
    top.add_argument("--frames", type=int, default=None,
                     help="with --follow: stop after N frames (default: forever)")

    slo = sub.add_parser(
        "slo",
        help="run the default scale scenario and evaluate the SLO catalogue "
             "(burn-rate gate; exit 1 on burned budget)",
    )
    slo.add_argument("--nodes", type=int, default=2_000)
    slo.add_argument("--objects", type=int, default=None,
                     help="default: 10 objects per node")
    slo.add_argument("--queries", type=int, default=20_000)
    slo.add_argument("--seed", type=int, default=0)
    slo.add_argument("--json", action="store_true", help="machine-readable output")
    slo.add_argument("--out", type=str, default=None)

    srv = sub.add_parser(
        "serve",
        help="HTTP ops endpoint (/metrics Prometheus text, /health JSON) "
             "tailing recorded JSONL artifacts",
    )
    srv.add_argument("--metrics", default=None, help="metrics JSONL to serve")
    srv.add_argument("--health", default=None, help="health JSONL to serve")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=9464)
    srv.add_argument("--duration", type=float, default=None,
                     help="serve for this many seconds then exit "
                          "(default: until Ctrl-C)")

    flt = sub.add_parser(
        "flight",
        help="render a flight-recorder bundle (written on invariant failure, "
             "deadline storm, or test crash); --rerun replays its config",
    )
    flt.add_argument("file", help="flight bundle JSON (.repro-bundles/flight-*.json)")
    flt.add_argument("--max-events", type=int, default=50)
    flt.add_argument("--rerun", action="store_true",
                     help="re-execute the embedded ScaleConfig deterministically "
                          "and re-check invariants")

    node = sub.add_parser(
        "node",
        help="run one live DHT node (asyncio TCP backend) until Ctrl-C; "
             "state persists under --data-dir and survives SIGKILL",
    )
    node.add_argument("--name", required=True, help="node name (hashed to its ring id)")
    node.add_argument("--data-dir", required=True, help="WAL/snapshot/meta directory")
    node.add_argument("--bind", default="127.0.0.1")
    node.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    node.add_argument("--bootstrap", default=None,
                      help="ip:port of any ring member (omit to seed a new ring)")
    node.add_argument("--m", type=int, default=32, help="ring bits")
    node.add_argument("--k", type=int, default=2, help="index-space dimensions")
    node.add_argument("--bounds-low", type=float, default=0.0)
    node.add_argument("--bounds-high", type=float, default=1000.0)
    node.add_argument("--index-name", default="index")
    node.add_argument("--stabilize-interval", type=float, default=0.25)
    node.add_argument("--fmt", choices=("json", "msgpack"), default="json")
    node.add_argument("--fsync", action="store_true",
                      help="fsync every WAL append (power-loss durability; "
                           "SIGKILL durability needs only the default flush)")
    node.add_argument("--seed", type=int, default=0)

    clus = sub.add_parser(
        "cluster",
        help="live-cluster demo: boot N TCP nodes, insert + range-query a "
             "workload, kill one node, rejoin it, verify bit-identical "
             "recovery and recall parity",
    )
    clus.add_argument("--nodes", type=int, default=8)
    clus.add_argument("--entries", type=int, default=512)
    clus.add_argument("--queries", type=int, default=16)
    clus.add_argument("--m", type=int, default=32)
    clus.add_argument("--k", type=int, default=2)
    clus.add_argument("--seed", type=int, default=0)
    clus.add_argument("--data-root", default=None,
                      help="persistence root (default: a temp dir)")
    clus.add_argument("--json", action="store_true", help="machine-readable report")

    demo = sub.add_parser(
        "obs-demo",
        help="run a small fault-injected workload with full observability on, "
             "writing metrics/spans/health JSONL artifacts",
    )
    demo.add_argument("--out-dir", default="obs-demo-out")
    demo.add_argument("--queries", type=int, default=50)
    demo.add_argument("--nodes", type=int, default=32)
    demo.add_argument("--objects", type=int, default=2000)
    demo.add_argument("--loss", type=float, default=0.05)
    demo.add_argument("--seed", type=int, default=0)
    return parser


def _overrides(args) -> dict:
    out = {}
    if args.nodes is not None:
        out["n_nodes"] = args.nodes
    if args.objects is not None:
        out["n_objects"] = args.objects
    if args.queries is not None:
        out["n_queries"] = args.queries
    if getattr(args, "corpus_scale", None) is not None:
        out["corpus_scale"] = args.corpus_scale
    if args.seed is not None:
        out["seed"] = args.seed
    return out


def _emit(text: str, out_path: str | None) -> None:
    print(text)
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"[written to {out_path}]")


def _run_figure(args) -> None:
    from repro.eval import experiments as ex
    from repro.eval.report import format_load_distribution, format_sweep
    from repro.eval.runner import run_experiment

    cfgf = {
        "fig2": ex.figure2_config,
        "fig3": ex.figure3_config,
        "fig4": ex.figure4_config,
        "fig5": ex.figure5_config,
        "fig6": ex.figure6_config,
    }[args.command]
    overrides = _overrides(args)
    if args.command in ("fig4", "fig6"):
        overrides.setdefault("range_factors", (0.05,))
    cfg = cfgf(scale=args.scale, **overrides)
    result = run_experiment(cfg)
    if args.command in ("fig4", "fig6"):
        text = format_load_distribution(result, top_n=10)
    else:
        text = format_sweep(result)
    _emit(f"[{args.command}] {cfgf.__doc__.strip().splitlines()[0]}\n\n{text}", args.out)


def _run_table1(args) -> None:

    from repro.datasets.synthetic import generate_clustered, paper_table1_config
    from repro.eval.report import format_table

    cfg = paper_table1_config(n_objects=args.objects)
    data, centers = generate_clustered(cfg, seed=0)
    rows = [
        ["Dimension", 100, data.shape[1]],
        ["Range of each dimension", "[0..100]", f"[{data.min():.0f}..{data.max():.0f}]"],
        ["Number of clusters", 10, centers.shape[0]],
        ["Deviation of each cluster", 20, round(float((data - centers[((data[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2).argmin(axis=1)]).std()), 1)],
        ["Objects", "1e5", data.shape[0]],
    ]
    _emit(format_table(["parameter", "paper", "measured"], rows, title="Table 1"), args.out)


def _run_table2(args) -> None:
    from repro.datasets.documents import (
        PAPER_TABLE2,
        SyntheticCorpusConfig,
        generate_corpus,
        vector_size_stats,
    )
    from repro.eval.report import format_table

    cfg = SyntheticCorpusConfig().scaled(args.corpus_scale)
    corpus = generate_corpus(cfg, seed=0)
    stats = vector_size_stats(corpus.doc_sizes)
    rows = [[k, PAPER_TABLE2[k], round(stats[k], 1)] for k in PAPER_TABLE2]
    _emit(format_table(["statistic", "paper", "measured"], rows, title="Table 2"), args.out)


def _run_metrics(args) -> None:
    from repro.obs.export import format_metrics_rows, read_metrics_jsonl

    rows = read_metrics_jsonl(args.file)
    _emit(format_metrics_rows(rows, prefix=args.prefix), args.out)


def _run_trace(args) -> int:
    import json

    from repro.obs.spans import SpanTree

    if args.qid is None:
        counts: dict[int, int] = {}
        with open(args.file) as fh:
            for line in fh:
                if not line.strip():
                    continue
                qid = json.loads(line).get("qid")
                if qid is not None:
                    counts[qid] = counts.get(qid, 0) + 1
        lines = [f"{len(counts)} traced queries in {args.file}"] + [
            f"  qid {qid}: {n} spans" for qid, n in sorted(counts.items())
        ]
        print("\n".join(lines))
        return 0
    tree = SpanTree.from_jsonl(args.file, qid=args.qid)
    if not len(tree):
        print(f"no spans recorded for qid {args.qid} in {args.file}")
        return 1
    _emit(f"query {args.qid}: {len(tree)} spans\n" + tree.render(args.max_spans),
          args.out)
    return 0


def _run_replay(args) -> int:
    from repro.eval.report import format_dict
    from repro.check.replay import replay_file

    identical, diffs, report = replay_file(args.file, differential=args.differential)
    if args.timeline:
        for i, line in enumerate(report.timeline):
            print(f"  op {i}: {line}")
        print()
    print(format_dict(
        {k: float(v) for k, v in report.checks.items()},
        title="[invariant checks]",
    ))
    fp = report.fingerprint
    print(f"\nevents={fp.events} schedule_digest={fp.schedule_digest:#010x} "
          f"draws_crc={fp.draw_crc:#010x} spans={fp.span_count}")
    if report.mismatches:
        print("\ndifferential mismatches:")
        for m in report.mismatches:
            print(f"  {m}")
    if identical:
        print("replay OK: bit-identical to the recording")
    else:
        print("replay MISMATCH versus the recording:")
        for d in diffs:
            print(f"  {d}")
    return 0 if identical and not report.mismatches else 1


def _run_fuzz(args) -> int:
    import os

    from repro.check.replay import random_scenario, execute_scenario, write_bundle

    failures = 0
    for i in range(args.runs):
        seed = args.seed + i
        scenario = random_scenario(
            seed, n_ops=args.ops,
            loss=args.loss, jitter=args.jitter, fault_seed=seed,
        )
        try:
            report = execute_scenario(scenario, differential=True)
            mismatches = report.mismatches
            error = None
        except Exception as exc:  # invariant violations surface here
            mismatches = [f"{type(exc).__name__}: {exc}"]
            error = str(exc)
            report = None
        if mismatches:
            failures += 1
            os.makedirs(args.out_dir, exist_ok=True)
            path = os.path.join(args.out_dir, f"fuzz-seed{seed}.json")
            write_bundle(
                path, scenario,
                fingerprint=report.fingerprint if report else None,
                error=error or "; ".join(mismatches),
            )
            print(f"seed {seed}: FAIL ({'; '.join(mismatches)[:160]})")
            print(f"  replay log: {path}")
        else:
            print(f"seed {seed}: ok ({len(scenario.ops)} ops, "
                  f"{report.fingerprint.events} events, "
                  f"{sum(v for k, v in report.checks.items() if k != 'violations')} checks)")
    print(f"\n{args.runs - failures}/{args.runs} scenarios clean")
    return 0 if failures == 0 else 1


def _run_lint(args) -> int:
    import json
    from pathlib import Path

    from repro.check.lint import (
        Baseline,
        LayersConfig,
        all_rules,
        apply_fixes,
        find_repo_root,
        run_lint,
    )

    if args.list_rules:
        for r in all_rules():
            print(f"{r.id}  {r.name}\n    {r.rationale}")
        return 0

    paths = [Path(p) for p in args.paths] if args.paths else None
    if paths is None:
        root = find_repo_root(Path.cwd())
        paths = [root / "src"] if (root / "src").is_dir() else [root]
    root = find_repo_root(paths[0])
    baseline_path = Path(args.baseline) if args.baseline else root / "lint-baseline.json"
    layers = LayersConfig.load(args.layers) if args.layers else LayersConfig.load()
    select = args.select.split(",") if args.select else None
    baseline = Baseline.load(baseline_path)
    result = run_lint(paths, root=root, layers=layers, baseline=baseline, select=select)

    if args.fix:
        applied = apply_fixes(result.findings, root)
        if applied:
            print(f"applied {applied} mechanical fix(es); re-linting")
            result = run_lint(paths, root=root, layers=layers,
                              baseline=baseline, select=select)

    if args.update_baseline:
        new = Baseline.from_findings(result.findings + result.baselined, old=baseline)
        new.save(baseline_path)
        print(f"baseline updated: {len(new)} entrie(s) -> {baseline_path}")
        return 0

    if args.format == "json":
        print(json.dumps({
            "files_scanned": result.files_scanned,
            "findings": [f.to_json() for f in result.findings],
            "baselined": [f.to_json() for f in result.baselined],
            "stale_baseline_entries": [
                {"rule": e.rule, "path": e.path, "symbol": e.symbol,
                 "justification": e.justification}
                for e in result.stale
            ],
            "errors": result.errors,
            "baseline_problems": result.baseline_problems,
            "ok": result.ok,
        }, indent=2))
        return 0 if result.ok else 1

    for f in result.findings:
        print(f.render())
    for e in result.stale:
        print(f"stale baseline entry: {e.rule} {e.path} [{e.symbol}] — "
              "violation is gone, delete the entry")
    for problem in result.baseline_problems:
        print(f"baseline: {problem}")
    for err in result.errors:
        print(f"parse error: {err}")
    n, b = len(result.findings), len(result.baselined)
    print(f"{result.files_scanned} files: {n} finding(s), {b} baselined, "
          f"{len(result.stale)} stale baseline entrie(s)")
    return 0 if result.ok else 1


#: packages under the strict typing gate (mypy --strict must pass)
TYPECHECK_PACKAGES = (
    "repro.core", "repro.dht", "repro.util",
    "repro.sim", "repro.obs", "repro.net", "repro.check",
)


def _run_typecheck(args) -> int:
    import importlib.util
    import json
    import subprocess

    cmd = [sys.executable, "-m", "mypy", "--strict"]
    for p in TYPECHECK_PACKAGES:
        cmd += ["-p", p]
    if importlib.util.find_spec("mypy") is None:
        msg = ("mypy is not installed in this environment; "
               "`pip install mypy` (the CI typecheck job runs it)")
        if args.format == "json":
            print(json.dumps({"tool": "mypy", "available": False, "note": msg}))
        else:
            print(f"typecheck skipped: {msg}")
        return 2
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if args.format == "json":
        print(json.dumps({
            "tool": "mypy",
            "available": True,
            "packages": list(TYPECHECK_PACKAGES),
            "returncode": proc.returncode,
            "output": proc.stdout.splitlines(),
        }, indent=2))
    else:
        print(proc.stdout, end="")
        if proc.stderr:
            print(proc.stderr, end="", file=sys.stderr)
    return proc.returncode


def _run_bench(args) -> int:
    import os

    from repro.bench import (
        BenchResult,
        check_regression,
        convert_results_dir,
        run_e2e,
        run_perf,
        run_scale,
    )

    if args.convert:
        written = convert_results_dir(args.convert, overwrite=True)
        for path in written:
            print(f"[converted {path}]")
        if not written:
            print(f"no .txt tables found in {args.convert}")
        return 0

    out_dir = args.write or "."
    os.makedirs(out_dir, exist_ok=True)
    suites = ("perf", "e2e", "scale") if args.suite == "all" else (args.suite,)
    results: dict[str, BenchResult] = {}
    for suite in suites:
        print(f"[bench: running {suite} suite{' (quick)' if args.quick else ''}]")
        if suite == "perf":
            results[suite] = run_perf(quick=args.quick, repeats=args.repeats)
        elif suite == "scale":
            results[suite] = run_scale(quick=args.quick, repeats=args.repeats)
        else:
            results[suite] = run_e2e(quick=args.quick)
        result = results[suite]
        for sec in result.sections:
            if sec.kind != "timing" or sec.speedup is None:
                continue
            print(f"  {sec.name}: {sec.baseline_s:.4f}s -> {sec.candidate_s:.4f}s "
                  f"({sec.speedup:.2f}x, {sec.repeats} repeats)")
        for key, val in result.summary.items():
            print(f"  {key}: {val}")
        path = os.path.join(out_dir, f"BENCH_{suite}.json")
        result.write(path)
        print(f"  [written to {path}]")

    if args.check_against:
        problems: list[str] = []
        for suite, current in results.items():
            base_path = os.path.join(args.check_against, f"BENCH_{suite}.json")
            if not os.path.exists(base_path):
                print(f"[no baseline {base_path}; skipping gate for {suite}]")
                continue
            baseline = BenchResult.load(base_path)
            problems.extend(check_regression(current, baseline, args.threshold))
        if problems:
            print()
            for p in problems:
                print(f"REGRESSION: {p}")
            return 1
        print(f"[regression gate OK at {args.threshold:.0%} threshold]")
    return 0


def _run_top(args) -> int:
    import time

    from repro.obs import read_health_jsonl, render_top
    from repro.obs.export import read_metrics_jsonl

    def frame() -> str:
        health = read_health_jsonl(args.health)
        metrics = read_metrics_jsonl(args.metrics) if args.metrics else None
        return render_top(health, metrics)

    if not args.follow:
        print(frame())
        return 0
    shown = 0
    try:
        while args.frames is None or shown < args.frames:
            print(frame())
            print()
            shown += 1
            if args.frames is not None and shown >= args.frames:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def _run_slo(args) -> int:
    import json

    from repro.core.scale import ScaleConfig, ScaleSimulation
    from repro.obs import DEFAULT_SCALE_SLOS, evaluate_slos
    from repro.sim.king import king_coordinate_model

    n_objects = args.objects if args.objects is not None else 10 * args.nodes
    cfg = ScaleConfig(
        n_nodes=args.nodes,
        n_objects=n_objects,
        n_queries=args.queries,
        chunk=max(1, args.queries // 10),
        local_solve_sample=256,
        seed=args.seed,
    )
    sim = ScaleSimulation(
        cfg, latency=king_coordinate_model(n_hosts=args.nodes, seed=args.seed)
    )
    sim.run()
    report = evaluate_slos(DEFAULT_SCALE_SLOS, sim.slo_series())
    if args.json:
        _emit(json.dumps(report.to_dict(), indent=2), args.out)
    else:
        _emit(
            f"[slo] {args.nodes} nodes, {n_objects} objects, "
            f"{args.queries} queries (seed {args.seed})\n\n" + report.format(),
            args.out,
        )
    return 0 if report.ok else 1


def _run_serve(args) -> int:
    import time

    from repro.obs import serve_files

    if args.metrics is None and args.health is None:
        print("serve: need --metrics and/or --health")
        return 2
    server = serve_files(
        metrics_path=args.metrics,
        health_path=args.health,
        host=args.host,
        port=args.port,
    )
    with server:
        print(f"serving {server.url}/metrics and {server.url}/health "
              f"(Ctrl-C to stop)")
        try:
            if args.duration is not None:
                time.sleep(args.duration)
            else:
                while True:
                    time.sleep(3600.0)
        except KeyboardInterrupt:
            pass
    return 0


def _run_flight(args) -> int:
    from repro.obs import format_bundle, load_bundle

    bundle = load_bundle(args.file)
    print(format_bundle(bundle, max_events=args.max_events))
    if not args.rerun:
        return 0
    ctx = bundle.get("context") or {}
    cfg_dict = ctx.get("config")
    if not cfg_dict:
        print("\nrerun: bundle carries no replayable config")
        return 1
    from repro.core.scale import ScaleConfig, ScaleSimulation

    cfg = ScaleConfig(**cfg_dict)
    print(f"\nrerun: {cfg.n_nodes} nodes, {cfg.n_queries} queries, "
          f"seed {cfg.seed}")
    sim = ScaleSimulation(cfg)
    try:
        report = sim.run()
        sim.check_invariants()
    except AssertionError as exc:
        print(f"rerun reproduced the failure: {exc}")
        return 1
    print(f"rerun clean: mean hops {report.mean_hops:.2f}, "
          f"dropped {report.dropped}, {report.health_samples} health samples")
    return 0


def _run_node(args) -> int:
    import asyncio

    from repro.net.node import NodeConfig, NodeProcess

    async def serve() -> int:
        config = NodeConfig(
            name=args.name,
            data_dir=args.data_dir,
            m=args.m,
            k=args.k,
            bounds_low=args.bounds_low,
            bounds_high=args.bounds_high,
            index_name=args.index_name,
            bind=args.bind,
            port=args.port,
            bootstrap=args.bootstrap,
            stabilize_interval=args.stabilize_interval,
            fmt=args.fmt,
            seed=args.seed,
            fsync=args.fsync,
        )
        node = NodeProcess(config)
        addr = await node.start()
        print(f"[node {args.name}] id={node.id:#x} listening on {addr} "
              f"(data: {args.data_dir})", flush=True)
        try:
            while True:
                await asyncio.sleep(3600.0)
        except asyncio.CancelledError:  # pragma: no cover - loop teardown
            raise
        finally:
            await node.close()

    try:
        return asyncio.run(serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 0


def _run_cluster(args) -> int:
    import asyncio
    import json

    from repro.eval.report import format_dict
    from repro.net.cluster import run_cluster_demo

    report = asyncio.run(run_cluster_demo(
        n_nodes=args.nodes,
        n_entries=args.entries,
        n_queries=args.queries,
        m=args.m,
        k=args.k,
        seed=args.seed,
        data_root=args.data_root,
    ))
    payload = {
        "nodes": report.n_nodes,
        "entries": report.n_entries,
        "queries": report.n_queries,
        "recall_before_kill": report.recall_before,
        "recall_after_rejoin": report.recall_after,
        "killed_node": report.killed_node,
        "shard_digest_match": report.digest_before == report.digest_after,
        "converged_after_kill": report.converged_after_kill,
        "converged_after_rejoin": report.converged_after_rejoin,
        "ok": report.ok,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(format_dict(
            {k: (float(v) if isinstance(v, (int, float)) and not isinstance(v, bool)
                 else v)
             for k, v in payload.items() if k != "killed_node"},
            title="[live cluster demo]",
        ))
        print(f"\nkilled and rejoined: {report.killed_node}")
        for note in report.notes:
            print(f"note: {note}")
        print("OK" if report.ok else "FAILED")
    return 0 if report.ok else 1


def _run_obs_demo(args) -> None:
    from repro.eval.report import format_dict
    from repro.eval.demo import run_demo
    from repro.obs import format_hotspot_report, format_metrics_table, hotspot_report

    result = run_demo(
        args.out_dir, n_nodes=args.nodes, n_objects=args.objects,
        n_queries=args.queries, loss=args.loss, seed=args.seed,
    )
    stats, obs = result["stats"], result["obs"]
    print(format_dict(stats.summary(), title="[workload summary]"))
    print()
    print(format_metrics_table(obs.registry, prefix="transport_"))
    print()
    print(format_metrics_table(obs.registry, prefix="lifecycle_"))
    print()
    loads = result["index"].load_distribution()
    print(format_hotspot_report(hotspot_report(loads), title="[stored-entry load]"))
    qids = sorted(obs.span_memory.qids()) if obs.span_memory else []
    if qids:
        print()
        tree = obs.span_tree(qids[0])
        print(f"[sample trace: qid {qids[0]}, {len(tree)} spans]")
        print(tree.render(max_spans=40))
    if result["paths"]:
        print()
        for kind, path in result["paths"].items():
            print(f"[{kind} written to {path}]")
        print(f"render with: repro metrics {result['paths']['metrics']}  |  "
              f"repro trace <qid> --file {result['paths']['spans']}")


def main(argv: list[str] | None = None) -> int:
    """Entry point (``python -m repro ...``)."""
    args = build_parser().parse_args(argv)
    if args.command in ("fig2", "fig3", "fig4", "fig5", "fig6"):
        _run_figure(args)
    elif args.command == "table1":
        _run_table1(args)
    elif args.command == "table2":
        _run_table2(args)
    elif args.command == "quickstart":
        import runpy
        from pathlib import Path

        script = Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
        runpy.run_path(str(script), run_name="__main__")
    elif args.command == "check":
        from repro.eval.validate import self_check

        result = self_check(seed=args.seed)
        print(result)
        return 0 if result.ok else 1
    elif args.command == "lint":
        return _run_lint(args)
    elif args.command == "typecheck":
        return _run_typecheck(args)
    elif args.command == "metrics":
        _run_metrics(args)
    elif args.command == "trace":
        return _run_trace(args)
    elif args.command == "replay":
        return _run_replay(args)
    elif args.command == "fuzz":
        return _run_fuzz(args)
    elif args.command == "bench":
        return _run_bench(args)
    elif args.command == "scale-smoke":
        from repro.bench import run_scale_smoke

        return run_scale_smoke(
            n_nodes=args.nodes,
            n_queries=args.queries,
            budget_s=args.budget,
            seed=args.seed,
            out_dir=args.out_dir,
            obs_overhead=args.obs_overhead,
            slo=args.slo,
        )
    elif args.command == "top":
        return _run_top(args)
    elif args.command == "slo":
        return _run_slo(args)
    elif args.command == "serve":
        return _run_serve(args)
    elif args.command == "flight":
        return _run_flight(args)
    elif args.command == "obs-demo":
        _run_obs_demo(args)
    elif args.command == "node":
        return _run_node(args)
    elif args.command == "cluster":
        return _run_cluster(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
