"""One-shot migration of ``benchmarks/results/*.txt`` to the BenchResult schema.

The loose text files are fixed-width tables rendered by
:mod:`repro.eval.report`: an optional title line, then one or more blocks of

    [metric]
    header1  header2 ...
    -------  ------- ...
    value    value   ...

Column boundaries are recovered from the dash row (cells may contain single
spaces, so splitting on whitespace would corrupt them).  Each block becomes
a ``kind="table"`` section; the whole file becomes one ``BenchResult`` whose
suite is the file stem.  ``repro bench --convert DIR`` writes ``<stem>.json``
next to every ``.txt`` — after that, both formats are readable through
:func:`repro.eval.report.read_result_file`.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any

from repro.bench.schema import BenchResult, BenchSection

__all__ = ["convert_text_table", "convert_results_dir"]

_DASH_ROW = re.compile(r"^[-\s]+$")


def _parse_value(cell: str) -> Any:
    cell = cell.strip()
    try:
        return int(cell)
    except ValueError:
        pass
    try:
        return float(cell)
    except ValueError:
        return cell


def _column_spans(dash_row: str) -> list[tuple[int, int]]:
    """(start, end) character spans of each dash column."""
    return [(m.start(), m.end()) for m in re.finditer(r"-+", dash_row)]


def _slice_row(line: str, spans: list[tuple[int, int]]) -> list[str]:
    cells = []
    for i, (start, end) in enumerate(spans):
        # column content may be wider than the dashes (right-justified
        # headers/values): extend left to the previous column's end
        left = spans[i - 1][1] if i else 0
        right = end if i < len(spans) - 1 else len(line)
        cells.append(line[left:right].strip())
    return cells


def _parse_blocks(lines: list[str]) -> tuple[str, list[BenchSection]]:
    title = ""
    sections: list[BenchSection] = []
    i = 0
    if lines and not lines[0].startswith("[") and (
        len(lines) < 3 or not _DASH_ROW.match(lines[2] or "x")
    ):
        # a free-standing title line ("Figure 2 — ...") not followed
        # immediately by header+dashes
        title = lines[0].strip()
        i = 1
    block_name = ""
    block_title = ""
    while i < len(lines):
        line = lines[i]
        if not line.strip():
            i += 1
            continue
        if line.startswith("[") and line.rstrip().endswith("]"):
            block_title = line.strip()
            block_name = block_title.strip("[]").split(",")[0].strip().replace(" ", "_")
            i += 1
            continue
        # expect: header row, dash row, data rows
        if i + 1 >= len(lines) or not _DASH_ROW.match(lines[i + 1]) or "-" not in lines[i + 1]:
            # a stray prose line (e.g. a title directly above a table)
            block_title = block_title or line.strip()
            i += 1
            continue
        spans = _column_spans(lines[i + 1])
        headers = _slice_row(line, spans)
        rows: list[list[Any]] = []
        i += 2
        while i < len(lines) and lines[i].strip() and not lines[i].startswith("["):
            rows.append([_parse_value(c) for c in _slice_row(lines[i], spans)])
            i += 1
        sections.append(BenchSection(
            name=block_name or f"table_{len(sections)}",
            kind="table",
            title=block_title,
            headers=headers,
            rows=rows,
        ))
        block_name = block_title = ""
    return title, sections


def convert_text_table(path: str | Path) -> BenchResult:
    """Parse one results ``.txt`` file into a :class:`BenchResult`."""
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    title, sections = _parse_blocks(lines)
    result = BenchResult.new(suite=path.stem)
    result.sections = sections
    result.summary = {"source": path.name, "title": title}
    return result


def convert_results_dir(directory: str | Path, overwrite: bool = False) -> list[Path]:
    """Convert every ``*.txt`` in ``directory``; returns the written paths."""
    directory = Path(directory)
    written: list[Path] = []
    for txt in sorted(directory.glob("*.txt")):
        out = txt.with_suffix(".json")
        if out.exists() and not overwrite:
            continue
        convert_text_table(txt).write(str(out))
        written.append(out)
    return written
