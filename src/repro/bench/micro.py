"""The ``perf`` bench suite: microbenchmarks of the vectorised hot paths.

Each section times the *shipped* code (candidate) against the code shape it
replaced (baseline) on the same data and machine:

* ``embedding`` — one batched ``many_to_many`` distance matrix vs the scalar
  definition of landmark projection: a Python loop calling
  ``metric.distance(object, landmark)`` per pair, which is exactly what the
  base-``Metric`` fallback (and every call site before the bulk kernels)
  reduces to.  The intermediate shape — a per-object ``project_one`` loop,
  i.e. vectorised over landmarks but looping over objects — is timed too and
  recorded in ``meta`` so the two contributions stay visible.
* ``event_loop`` — the live tombstone-compacting engine vs the frozen
  :mod:`repro.bench.legacy_engine` on a retry-storm workload: every
  operation fans out cancelable long-deadline timers that its completion
  (milliseconds later) cancels — the lifecycle pattern that left the old
  heap dragging thousands of dead timers to their distant due times.

Only the speedup ratios are machine-portable; the regression gate compares
those, never absolute seconds (see :func:`repro.bench.schema.check_regression`).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from statistics import median

import numpy as np

from repro.bench.legacy_engine import LegacySimulator
from repro.bench.schema import BenchResult, BenchSection, geomean_speedup
from repro.core.landmarks import LandmarkSet
from repro.metric.vector import EuclideanMetric
from repro.sim.engine import Simulator

__all__ = ["run_perf", "median_time"]


def median_time(fn: Callable[[], object], repeats: int) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return median(times)


# -- embedding -----------------------------------------------------------------


def _bench_embedding(quick: bool, repeats: int) -> BenchSection:
    n_objects = 4_000 if quick else 20_000
    dim, k = 100, 10
    rng = np.random.default_rng(0)
    objects = rng.uniform(0, 100, size=(n_objects, dim))
    lset = LandmarkSet(
        landmarks=rng.uniform(0, 100, size=(k, dim)), metric=EuclideanMetric()
    )
    metric = lset.metric
    landmark_rows = [np.asarray(lset.landmarks[j]) for j in range(k)]

    def batched() -> np.ndarray:
        return lset.project(objects)

    def scalar_pairs() -> np.ndarray:
        # the projection *definition*: one metric.distance call per
        # (object, landmark) pair — the base-Metric fallback path
        out = np.empty((n_objects, k))
        for i in range(n_objects):
            x = objects[i]
            for j in range(k):
                out[i, j] = metric.distance(x, landmark_rows[j])
        return out

    def project_one_loop() -> np.ndarray:
        return np.stack([lset.project_one(objects[i]) for i in range(n_objects)])

    # correctness first.  The batched kernel is bit-identical to the
    # project_one column loop (the contract tests/test_batch_equivalence.py
    # enforces per metric family); the scalar definition agrees to float
    # tolerance (its p=2 reduction is a BLAS ddot, not the einsum row
    # reduction).
    if not np.array_equal(batched(), project_one_loop()):
        raise AssertionError("batched projection diverged from the project_one loop")
    if not np.allclose(batched(), scalar_pairs(), rtol=1e-12, atol=1e-9):
        raise AssertionError("batched projection diverged from the scalar definition")

    project_one_s = median_time(project_one_loop, repeats)
    return BenchSection(
        name="embedding",
        baseline_label="scalar metric.distance per (object, landmark) pair",
        candidate_label="batched many_to_many projection",
        baseline_s=median_time(scalar_pairs, repeats),
        candidate_s=median_time(batched, repeats),
        repeats=repeats,
        meta={
            "n_objects": n_objects,
            "dim": dim,
            "k_landmarks": k,
            "project_one_loop_s": round(project_one_s, 6),
            "note": "project_one_loop_s is the intermediate per-object loop "
            "(vectorised over landmarks only), for attribution",
        },
    )


# -- event loop ----------------------------------------------------------------


def _storm_workload(sim, n_ops: int, fan_out: int = 8) -> int:
    """Retry-storm schedule: each operation arms ``fan_out`` cancelable
    30-second deadline timers, then completes 1 ms later, cancelling them
    all and starting the next operation.  Dead timers pile up with due
    times ~30 simulated seconds away — the old engine drags every one to
    its due time through an ever-larger heap; the compacting engine
    filters them out as soon as they dominate."""
    completed = 0
    timed_out = 0

    def deadline() -> None:
        nonlocal timed_out
        timed_out += 1

    def complete(handles) -> None:
        nonlocal completed
        completed += 1
        for h in handles:
            h.cancel()
        if completed < n_ops:
            start_op()

    def start_op() -> None:
        handles = [
            sim.schedule_cancelable_in(30.0, deadline) for _ in range(fan_out)
        ]
        sim.schedule_in(0.001, complete, handles)

    start_op()
    sim.run()
    if completed != n_ops or timed_out != 0:
        raise AssertionError(
            f"workload mis-ran: completed={completed} timed_out={timed_out}"
        )
    return completed


def _bench_event_loop(quick: bool, repeats: int) -> BenchSection:
    n_ops = 10_000 if quick else 50_000
    fan_out = 8

    def live() -> None:
        _storm_workload(Simulator(), n_ops, fan_out)

    def legacy() -> None:
        _storm_workload(LegacySimulator(), n_ops, fan_out)

    return BenchSection(
        name="event_loop",
        baseline_label="legacy tuple-heap engine (cancelled timers fire as no-ops)",
        candidate_label="tombstone engine with heap compaction",
        baseline_s=median_time(legacy, repeats),
        candidate_s=median_time(live, repeats),
        repeats=repeats,
        meta={
            "workload": "retry storm: per op, 8 cancelable 30s deadlines "
            "cancelled at +1ms, operations chained",
            "n_ops": n_ops,
            "fan_out": fan_out,
            "timers_cancelled": n_ops * fan_out,
        },
    )


def run_perf(quick: bool = False, repeats: int | None = None) -> BenchResult:
    """Run the microbench suite and return its :class:`BenchResult`.

    The summary's ``embedding_event_loop_geomean_speedup`` is the headline
    number ISSUE 6 targets (≥5×): the geometric mean of the two sections'
    speedups, so neither an embedding-only nor an engine-only win can claim
    the whole refactor.
    """
    if repeats is None:
        repeats = 3 if quick else 5
    result = BenchResult.new("perf", quick=quick)
    result.sections.append(_bench_embedding(quick, repeats))
    result.sections.append(_bench_event_loop(quick, repeats))
    gm = geomean_speedup(result, ["embedding", "event_loop"])
    result.summary = {
        "embedding_event_loop_geomean_speedup": None if gm is None else round(gm, 2),
        "per_section_speedups": {
            s.name: round(s.speedup, 2)
            for s in result.sections if s.speedup is not None
        },
    }
    return result
