"""The ``scale`` bench suite: the compact substrates vs the object graph.

Two paired timings on identical membership (classic fingers, no PNS — the
configuration where :meth:`CompactChordRing.route_batch` is hop-for-hop
identical to :meth:`ChordRing.lookup_path`):

* **ring_build** — a stabilised ring from scratch: per-object
  :meth:`ChordRing.build` versus array-backed
  :meth:`CompactChordRing.build`;
* **query_routing** — the same lookups through the per-node Python greedy
  loop versus one batched vectorised sweep.

The summary carries the scale headline numbers ISSUE 7 targets: nodes/sec
joined and queries/sec at 10k nodes, peak RSS at the 10k and 100k marks,
and — in full (non-quick) mode — the wall-clock of the complete
100k-node / 1M-query :class:`repro.core.scale.ScaleSimulation` run, which
must land under ten minutes.

``ru_maxrss`` is a process-lifetime high-water mark, so the two RSS figures
are "peak reached by the end of that phase" (the 10k phase runs first);
they bound the phase's true peak from above only if later phases are
larger, which here they are.

This module also hosts :func:`run_scale_smoke`, the CI ``scale-smoke``
job's entry point — wall-clock measurement belongs to the bench layer (the
DET101 exemption), so the simulation core stays clock-free.
"""

from __future__ import annotations

import os
import resource
import time

import numpy as np

from repro.bench.schema import BenchResult, BenchSection
from repro.core.scale import ScaleConfig, ScaleSimulation
from repro.dht.compact import CompactChordRing
from repro.dht.ring import ChordRing
from repro.obs import (
    DEFAULT_SCALE_SLOS,
    JsonlSpanSink,
    MemorySpanSink,
    SpanRecorder,
    evaluate_slos,
    export_metrics,
    format_hotspot_report,
    write_prometheus,
)
from repro.obs.registry import MetricsRegistry, NullRegistry
from repro.sim.king import king_coordinate_model

__all__ = ["run_scale", "run_scale_smoke"]

#: the wall-clock overhead budget for real metrics + sampled tracing,
#: relative to a NullRegistry run of the same configuration
OBS_OVERHEAD_BUDGET = 0.10


def _peak_rss_mb() -> float:
    """Process-lifetime peak resident set, MB (ru_maxrss is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _median(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def _bench_ring_build(n_nodes: int, repeats: int) -> BenchSection:
    def object_build() -> None:
        ChordRing.build(n_nodes, seed=7, pns=False, id_source="random")

    def compact_build() -> None:
        CompactChordRing.build(n_nodes, seed=7)

    return BenchSection(
        name="ring_build",
        baseline_label=f"ChordRing.build({n_nodes})",
        candidate_label=f"CompactChordRing.build({n_nodes})",
        baseline_s=_median(object_build, repeats),
        candidate_s=_median(compact_build, repeats),
        repeats=repeats,
        meta={"n_nodes": n_nodes},
    )


def _bench_query_routing(n_nodes: int, n_queries: int, repeats: int) -> BenchSection:
    ring = ChordRing.build(n_nodes, seed=7, pns=False, id_source="random")
    comp = CompactChordRing.from_ring(ring)
    by_slot = [ring.nodes_by_id[int(i)] for i in comp.ids]
    rng = np.random.default_rng(11)
    keys = rng.integers(0, 1 << 63, size=n_queries, dtype=np.uint64)
    src = rng.integers(0, n_nodes, size=n_queries)

    def object_lookups() -> None:
        for i in range(n_queries):
            ring.lookup_path(by_slot[src[i]], int(keys[i]))

    def batched_lookups() -> None:
        comp.route_batch(src, keys)

    return BenchSection(
        name="query_routing",
        baseline_label=f"{n_queries} x lookup_path ({n_nodes} nodes)",
        candidate_label="route_batch, one sweep",
        baseline_s=_median(object_lookups, repeats),
        candidate_s=_median(batched_lookups, repeats),
        repeats=repeats,
        meta={"n_nodes": n_nodes, "n_queries": n_queries},
    )


def _bench_obs_overhead(
    n_nodes: int, n_queries: int, repeats: int
) -> BenchSection:
    """Paired timing: NullRegistry run vs real metrics + sampled tracing.

    Here "baseline" is the *uninstrumented* run, so the section's speedup is
    the instrumented run's relative cost (~1.0 when observability is in
    budget); the overhead fraction lands in ``meta``.  Both simulations are
    built once and only ``run()`` is timed — construction is identical.
    """
    lat = king_coordinate_model(n_hosts=n_nodes, seed=3)
    cfg = ScaleConfig(
        n_nodes=n_nodes,
        n_objects=n_nodes,
        n_queries=n_queries,
        chunk=max(1, n_queries // 4),
    )
    null_sim = ScaleSimulation(cfg, latency=lat, registry=NullRegistry())
    rec = SpanRecorder()
    rec.add_sink(MemorySpanSink())
    obs_sim = ScaleSimulation(cfg, latency=lat, recorder=rec)
    baseline_s = _median(null_sim.run, repeats)
    candidate_s = _median(obs_sim.run, repeats)
    return BenchSection(
        name="obs_overhead",
        baseline_label=f"run() with NullRegistry ({n_nodes} nodes, {n_queries} queries)",
        candidate_label="run() with metrics + 1-in-1024 sampled tracing",
        baseline_s=baseline_s,
        candidate_s=candidate_s,
        repeats=repeats,
        meta={
            "n_nodes": n_nodes,
            "n_queries": n_queries,
            "overhead_frac": round(candidate_s / baseline_s - 1.0, 4),
            "budget_frac": OBS_OVERHEAD_BUDGET,
        },
    )


def run_scale(quick: bool = False, repeats: int | None = None) -> BenchResult:
    """Run the scale suite and return its :class:`BenchResult`."""
    if repeats is None:
        repeats = 3 if quick else 5
    # the paired sections keep full size even in quick mode — the regression
    # gate compares speedup ratios against the committed full-mode baseline,
    # and the object/compact ratio shifts with ring size (the object ring's
    # next-hop memo warms differently); only the repeats and the 100k summary
    # run shrink under --quick.
    n_nodes = 10_000
    n_queries = 10_000
    result = BenchResult.new("scale", quick=quick)
    result.sections.append(_bench_ring_build(n_nodes, repeats))
    result.sections.append(_bench_query_routing(n_nodes, n_queries, repeats))
    obs_sec = _bench_obs_overhead(n_nodes, 4 * n_queries, repeats)
    result.sections.append(obs_sec)

    # -- headline throughput/memory numbers (compact substrate only) ---------
    t0 = time.perf_counter()
    comp = CompactChordRing.build(n_nodes, seed=3)
    extra = np.setdiff1d(
        np.random.default_rng(5).integers(0, 1 << 63, size=n_nodes, dtype=np.uint64),
        comp.ids,
    )
    comp.bulk_join(extra, np.arange(len(extra), dtype=np.int64))
    join_s = time.perf_counter() - t0
    nodes_per_sec_10k = (n_nodes + len(extra)) / join_s

    sim_small = ScaleSimulation(
        ScaleConfig(
            n_nodes=n_nodes,
            n_objects=n_nodes,
            n_queries=n_queries,
            chunk=max(1, n_queries // 4),
        ),
        latency=king_coordinate_model(n_hosts=n_nodes, seed=3),
    )
    sim_small.check_invariants()
    t0 = time.perf_counter()
    rep_small = sim_small.run()
    small_s = time.perf_counter() - t0
    rss_small_mb = _peak_rss_mb()

    summary: dict[str, object] = {
        "nodes_per_sec_joined_10k": round(nodes_per_sec_10k),
        "queries_per_sec_10k": round(rep_small.n_queries / small_s),
        "peak_rss_mb_10k": round(rss_small_mb, 1),
        "mean_hops_10k": round(rep_small.mean_hops, 2),
        "obs_overhead_frac_10k": obs_sec.meta["overhead_frac"],
        "obs_overhead_ok": bool(
            obs_sec.meta["overhead_frac"] <= OBS_OVERHEAD_BUDGET
        ),
        "per_section_speedups": {
            s.name: round(s.speedup, 2)
            for s in result.sections
            if s.speedup is not None
        },
    }

    if not quick:
        cfg = ScaleConfig()  # the 100k-node / 1M-query target
        t0 = time.perf_counter()
        sim_big = ScaleSimulation(
            cfg, latency=king_coordinate_model(n_hosts=cfg.n_nodes, seed=3)
        )
        build_s = time.perf_counter() - t0
        sim_big.check_invariants()
        t0 = time.perf_counter()
        rep_big = sim_big.run()
        route_s = time.perf_counter() - t0
        # the acceptance bar: real metrics + sampled tracing at the full
        # 100k/1M size must stay within the overhead budget vs NullRegistry
        sim_null = ScaleSimulation(
            cfg,
            latency=king_coordinate_model(n_hosts=cfg.n_nodes, seed=3),
            registry=NullRegistry(),
        )
        t0 = time.perf_counter()
        sim_null.run()
        null_route_s = time.perf_counter() - t0
        overhead_100k = route_s / null_route_s - 1.0
        summary.update(
            {
                "obs_overhead_frac_100k": round(overhead_100k, 4),
                "obs_overhead_ok_100k": bool(overhead_100k <= OBS_OVERHEAD_BUDGET),
                "build_sec_100k": round(build_s, 2),
                "route_1m_sec_100k": round(route_s, 2),
                "total_sec_100k_1m": round(build_s + route_s, 2),
                "under_10_min": bool(build_s + route_s < 600.0),
                "queries_per_sec_100k": round(rep_big.n_queries / route_s),
                "nodes_per_sec_built_100k": round(cfg.n_nodes / build_s),
                "peak_rss_mb_100k": round(_peak_rss_mb(), 1),
                "mean_hops_100k": round(rep_big.mean_hops, 2),
                "latency_p50_s_100k": round(rep_big.latency_p50_s, 4),
                "storage_gini_100k": round(
                    float(rep_big.storage_load.get("gini", 0.0)), 3
                ),
            }
        )
    result.summary = summary
    return result


def run_scale_smoke(
    n_nodes: int = 10_000,
    n_queries: int = 10_000,
    budget_s: float = 120.0,
    seed: int = 0,
    out_dir: str | None = None,
    obs_overhead: float | None = None,
    slo: bool = False,
) -> int:
    """The CI ``scale-smoke`` job: build, route, check, report, enforce budget.

    Runs a 10k-node / 10k-query :class:`ScaleSimulation` with invariant
    checking on and full observability, prints the health trace and the
    Fig. 4-analogue Gini/hotspot report, and fails (non-zero) if wall-clock
    exceeds ``budget_s``.

    Extras (each opt-in, all used by the CI observability-at-scale job):

    * ``out_dir`` — stream ``health.jsonl``/``spans.jsonl`` live during the
      run (the ``repro top``/``repro serve`` inputs) and write
      ``metrics.jsonl`` + ``prom.txt`` at the end;
    * ``obs_overhead`` — also run the same config with ``NullRegistry`` and
      fail if the instrumented run cost more than this fraction extra;
    * ``slo`` — evaluate :data:`~repro.obs.slo.DEFAULT_SCALE_SLOS` over the
      run's series and fail on any burned budget.
    """
    registry = MetricsRegistry()
    cfg = ScaleConfig(
        n_nodes=n_nodes,
        n_objects=n_nodes,
        n_queries=n_queries,
        chunk=max(1, n_queries // 8),
        seed=seed,
    )
    latency = king_coordinate_model(n_hosts=n_nodes, seed=seed)
    recorder = None
    health_jsonl = None
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        recorder = SpanRecorder()
        recorder.add_sink(JsonlSpanSink(os.path.join(out_dir, "spans.jsonl")))
        health_jsonl = os.path.join(out_dir, "health.jsonl")
    t0 = time.perf_counter()
    sim = ScaleSimulation(
        cfg,
        latency=latency,
        registry=registry,
        recorder=recorder,
        health_jsonl=health_jsonl,
    )
    sim.check_invariants()
    t_route = time.perf_counter()
    report = sim.run()
    route_s = time.perf_counter() - t_route
    sim.check_invariants()
    elapsed = time.perf_counter() - t0
    print(f"[scale-smoke] {n_nodes} nodes, {report.n_queries} queries "
          f"in {elapsed:.1f}s (budget {budget_s:.0f}s)")
    print(f"  mean hops {report.mean_hops:.2f}  "
          f"latency p50 {report.latency_p50_s * 1e3:.1f}ms "
          f"p99 {report.latency_p99_s * 1e3:.1f}ms")
    print(f"  routed {report.counters.get('routed', 0.0):.0f}  "
          f"solved {report.counters.get('solved', 0.0):.0f}  "
          f"dropped {report.counters.get('dropped', 0.0):.0f}  "
          f"sampled spans {report.sampled_spans}")
    print("  " + format_hotspot_report(report.storage_load, title="stored entries"))
    print("  " + format_hotspot_report(report.forwarding_load, title="forwarding visits"))
    print(f"  health samples: {report.health_samples}  "
          f"local solves: {report.local_solves} "
          f"(mean hits {report.local_hits_mean:.2f})")
    for s in sim.sampler.samples:
        deciles = ", ".join(f"{v:.0f}" for v in s.load_deciles[-3:])
        print(f"    t={s.time:>5.1f}s queue={s.event_queue_depth} "
              f"top-deciles=[{deciles}]")
    ok = True
    if report.health_samples == 0:
        print("[scale-smoke] FAIL: health sampler never ticked")
        ok = False
    if out_dir is not None:
        sim.sampler.close()
        if recorder is not None:
            recorder.close()
        export_metrics(registry, os.path.join(out_dir, "metrics.jsonl"))
        write_prometheus(registry, os.path.join(out_dir, "prom.txt"))
        print(f"  [artifacts written under {out_dir}: "
              "health.jsonl spans.jsonl metrics.jsonl prom.txt]")
    if slo:
        slo_report = evaluate_slos(DEFAULT_SCALE_SLOS, sim.slo_series())
        print()
        print(slo_report.format())
        if not slo_report.ok:
            print("[scale-smoke] FAIL: SLO budget burned")
            ok = False
    if obs_overhead is not None:
        # a dedicated paired measurement (fresh sims, median of 3) — the
        # single-shot route timing above includes artifact streaming and is
        # too noisy to gate on.
        sec = _bench_obs_overhead(n_nodes, n_queries, repeats=3)
        frac = sec.meta["overhead_frac"]
        print(f"  obs overhead: {sec.candidate_s:.2f}s instrumented vs "
              f"{sec.baseline_s:.2f}s NullRegistry = {frac:+.1%} "
              f"(bound {obs_overhead:.0%}, median of {sec.repeats})")
        if frac > obs_overhead:
            print(f"[scale-smoke] FAIL: observability overhead {frac:.1%} "
                  f"exceeds {obs_overhead:.0%}")
            ok = False
    if elapsed > budget_s:
        print(f"[scale-smoke] FAIL: exceeded wall-clock budget "
              f"({elapsed:.1f}s > {budget_s:.0f}s)")
        ok = False
    print("[scale-smoke] OK" if ok else "[scale-smoke] FAILED")
    return 0 if ok else 1
