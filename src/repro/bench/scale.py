"""The ``scale`` bench suite: the compact substrates vs the object graph.

Two paired timings on identical membership (classic fingers, no PNS — the
configuration where :meth:`CompactChordRing.route_batch` is hop-for-hop
identical to :meth:`ChordRing.lookup_path`):

* **ring_build** — a stabilised ring from scratch: per-object
  :meth:`ChordRing.build` versus array-backed
  :meth:`CompactChordRing.build`;
* **query_routing** — the same lookups through the per-node Python greedy
  loop versus one batched vectorised sweep.

The summary carries the scale headline numbers ISSUE 7 targets: nodes/sec
joined and queries/sec at 10k nodes, peak RSS at the 10k and 100k marks,
and — in full (non-quick) mode — the wall-clock of the complete
100k-node / 1M-query :class:`repro.core.scale.ScaleSimulation` run, which
must land under ten minutes.

``ru_maxrss`` is a process-lifetime high-water mark, so the two RSS figures
are "peak reached by the end of that phase" (the 10k phase runs first);
they bound the phase's true peak from above only if later phases are
larger, which here they are.

This module also hosts :func:`run_scale_smoke`, the CI ``scale-smoke``
job's entry point — wall-clock measurement belongs to the bench layer (the
DET101 exemption), so the simulation core stays clock-free.
"""

from __future__ import annotations

import resource
import time

import numpy as np

from repro.bench.schema import BenchResult, BenchSection
from repro.core.scale import ScaleConfig, ScaleSimulation
from repro.dht.compact import CompactChordRing
from repro.dht.ring import ChordRing
from repro.obs import format_hotspot_report
from repro.obs.registry import MetricsRegistry
from repro.sim.king import king_coordinate_model

__all__ = ["run_scale", "run_scale_smoke"]


def _peak_rss_mb() -> float:
    """Process-lifetime peak resident set, MB (ru_maxrss is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _median(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def _bench_ring_build(n_nodes: int, repeats: int) -> BenchSection:
    def object_build() -> None:
        ChordRing.build(n_nodes, seed=7, pns=False, id_source="random")

    def compact_build() -> None:
        CompactChordRing.build(n_nodes, seed=7)

    return BenchSection(
        name="ring_build",
        baseline_label=f"ChordRing.build({n_nodes})",
        candidate_label=f"CompactChordRing.build({n_nodes})",
        baseline_s=_median(object_build, repeats),
        candidate_s=_median(compact_build, repeats),
        repeats=repeats,
        meta={"n_nodes": n_nodes},
    )


def _bench_query_routing(n_nodes: int, n_queries: int, repeats: int) -> BenchSection:
    ring = ChordRing.build(n_nodes, seed=7, pns=False, id_source="random")
    comp = CompactChordRing.from_ring(ring)
    by_slot = [ring.nodes_by_id[int(i)] for i in comp.ids]
    rng = np.random.default_rng(11)
    keys = rng.integers(0, 1 << 63, size=n_queries, dtype=np.uint64)
    src = rng.integers(0, n_nodes, size=n_queries)

    def object_lookups() -> None:
        for i in range(n_queries):
            ring.lookup_path(by_slot[src[i]], int(keys[i]))

    def batched_lookups() -> None:
        comp.route_batch(src, keys)

    return BenchSection(
        name="query_routing",
        baseline_label=f"{n_queries} x lookup_path ({n_nodes} nodes)",
        candidate_label="route_batch, one sweep",
        baseline_s=_median(object_lookups, repeats),
        candidate_s=_median(batched_lookups, repeats),
        repeats=repeats,
        meta={"n_nodes": n_nodes, "n_queries": n_queries},
    )


def run_scale(quick: bool = False, repeats: int | None = None) -> BenchResult:
    """Run the scale suite and return its :class:`BenchResult`."""
    if repeats is None:
        repeats = 3 if quick else 5
    # the paired sections keep full size even in quick mode — the regression
    # gate compares speedup ratios against the committed full-mode baseline,
    # and the object/compact ratio shifts with ring size (the object ring's
    # next-hop memo warms differently); only the repeats and the 100k summary
    # run shrink under --quick.
    n_nodes = 10_000
    n_queries = 10_000
    result = BenchResult.new("scale", quick=quick)
    result.sections.append(_bench_ring_build(n_nodes, repeats))
    result.sections.append(_bench_query_routing(n_nodes, n_queries, repeats))

    # -- headline throughput/memory numbers (compact substrate only) ---------
    t0 = time.perf_counter()
    comp = CompactChordRing.build(n_nodes, seed=3)
    extra = np.setdiff1d(
        np.random.default_rng(5).integers(0, 1 << 63, size=n_nodes, dtype=np.uint64),
        comp.ids,
    )
    comp.bulk_join(extra, np.arange(len(extra), dtype=np.int64))
    join_s = time.perf_counter() - t0
    nodes_per_sec_10k = (n_nodes + len(extra)) / join_s

    sim_small = ScaleSimulation(
        ScaleConfig(
            n_nodes=n_nodes,
            n_objects=n_nodes,
            n_queries=n_queries,
            chunk=max(1, n_queries // 4),
        ),
        latency=king_coordinate_model(n_hosts=n_nodes, seed=3),
    )
    sim_small.check_invariants()
    t0 = time.perf_counter()
    rep_small = sim_small.run()
    small_s = time.perf_counter() - t0
    rss_small_mb = _peak_rss_mb()

    summary: dict[str, object] = {
        "nodes_per_sec_joined_10k": round(nodes_per_sec_10k),
        "queries_per_sec_10k": round(rep_small.n_queries / small_s),
        "peak_rss_mb_10k": round(rss_small_mb, 1),
        "mean_hops_10k": round(rep_small.mean_hops, 2),
        "per_section_speedups": {
            s.name: round(s.speedup, 2)
            for s in result.sections
            if s.speedup is not None
        },
    }

    if not quick:
        cfg = ScaleConfig()  # the 100k-node / 1M-query target
        t0 = time.perf_counter()
        sim_big = ScaleSimulation(
            cfg, latency=king_coordinate_model(n_hosts=cfg.n_nodes, seed=3)
        )
        build_s = time.perf_counter() - t0
        sim_big.check_invariants()
        t0 = time.perf_counter()
        rep_big = sim_big.run()
        route_s = time.perf_counter() - t0
        summary.update(
            {
                "build_sec_100k": round(build_s, 2),
                "route_1m_sec_100k": round(route_s, 2),
                "total_sec_100k_1m": round(build_s + route_s, 2),
                "under_10_min": bool(build_s + route_s < 600.0),
                "queries_per_sec_100k": round(rep_big.n_queries / route_s),
                "nodes_per_sec_built_100k": round(cfg.n_nodes / build_s),
                "peak_rss_mb_100k": round(_peak_rss_mb(), 1),
                "mean_hops_100k": round(rep_big.mean_hops, 2),
                "latency_p50_s_100k": round(rep_big.latency_p50_s, 4),
                "storage_gini_100k": round(
                    float(rep_big.storage_load.get("gini", 0.0)), 3
                ),
            }
        )
    result.summary = summary
    return result


def run_scale_smoke(
    n_nodes: int = 10_000,
    n_queries: int = 10_000,
    budget_s: float = 120.0,
    seed: int = 0,
) -> int:
    """The CI ``scale-smoke`` job: build, route, check, report, enforce budget.

    Runs a 10k-node / 10k-query :class:`ScaleSimulation` with invariant
    checking on and full observability, prints the health trace and the
    Fig. 4-analogue Gini/hotspot report, and fails (non-zero) if wall-clock
    exceeds ``budget_s``.
    """
    registry = MetricsRegistry()
    cfg = ScaleConfig(
        n_nodes=n_nodes,
        n_objects=n_nodes,
        n_queries=n_queries,
        chunk=max(1, n_queries // 8),
        seed=seed,
    )
    t0 = time.perf_counter()
    sim = ScaleSimulation(
        cfg,
        latency=king_coordinate_model(n_hosts=n_nodes, seed=seed),
        registry=registry,
    )
    sim.check_invariants()
    report = sim.run()
    sim.check_invariants()
    elapsed = time.perf_counter() - t0
    print(f"[scale-smoke] {n_nodes} nodes, {report.n_queries} queries "
          f"in {elapsed:.1f}s (budget {budget_s:.0f}s)")
    print(f"  mean hops {report.mean_hops:.2f}  "
          f"latency p50 {report.latency_p50_s * 1e3:.1f}ms "
          f"p99 {report.latency_p99_s * 1e3:.1f}ms")
    print("  " + format_hotspot_report(report.storage_load, title="stored entries"))
    print("  " + format_hotspot_report(report.forwarding_load, title="forwarding visits"))
    print(f"  health samples: {report.health_samples}  "
          f"local solves: {report.local_solves} "
          f"(mean hits {report.local_hits_mean:.2f})")
    for s in sim.sampler.samples:
        deciles = ", ".join(f"{v:.0f}" for v in s.load_deciles[-3:])
        print(f"    t={s.time:>5.1f}s queue={s.event_queue_depth} "
              f"top-deciles=[{deciles}]")
    if report.health_samples == 0:
        print("[scale-smoke] FAIL: health sampler never ticked")
        return 1
    if elapsed > budget_s:
        print(f"[scale-smoke] FAIL: exceeded wall-clock budget "
              f"({elapsed:.1f}s > {budget_s:.0f}s)")
        return 1
    print("[scale-smoke] OK")
    return 0
