"""Frozen copy of the pre-vectorization event engine — the bench baseline.

This is the tuple-heap calendar queue (and its lazy-cancellation
``LegacyTimerHandle``) exactly as it shipped before :mod:`repro.sim.engine`
was rewritten around tombstone cells.  It exists so the ``event_loop``
section of ``repro bench`` measures the live engine against the real code it
replaced, on the same machine, forever — do not "fix" or modernise it.
"""

from __future__ import annotations

import heapq
import itertools
import struct
import zlib
from collections.abc import Callable
from typing import Any

__all__ = ["LegacySimulator", "LegacyTimerHandle"]


class LegacyTimerHandle:
    """The old cancelable timer: cancellation is lazy, the queued event
    stays in the heap and fires as a no-op through :meth:`_fire`."""

    __slots__ = ("_fn", "_args", "_done")

    def __init__(self, fn: Callable, args: tuple[Any, ...]) -> None:
        self._fn = fn
        self._args = args
        self._done = False

    @property
    def active(self) -> bool:
        return not self._done

    def cancel(self) -> None:
        self._done = True
        self._fn = None
        self._args = ()

    def _fire(self) -> None:
        if self._done:
            return
        fn, args = self._fn, self._args
        self.cancel()
        fn(*args)


class LegacySimulator:
    """The old engine: ``(time, seq, callback, args)`` tuples on heapq,
    cancelable timers dispatched through a per-timer ``_fire`` frame."""

    def __init__(self) -> None:
        self._queue: list = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self.events_processed: int = 0
        self.digest_enabled: bool = False
        self._digest: int = 0

    @property
    def schedule_digest(self) -> int:
        return self._digest

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> None:
        if time < self.now:
            raise ValueError(f"cannot schedule into the past ({time} < {self.now})")
        heapq.heappush(self._queue, (time, next(self._seq), fn, args))

    def schedule_in(self, delay: float, fn: Callable, *args: Any) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule_at(self.now + delay, fn, *args)

    def schedule_cancelable_in(
        self, delay: float, fn: Callable, *args: Any
    ) -> LegacyTimerHandle:
        """The old ``Transport.timer_cancelable`` path: a handle object whose
        bound ``_fire`` is what actually sits in the queue."""
        handle = LegacyTimerHandle(fn, args)
        self.schedule_in(delay, handle._fire)
        return handle

    def pending(self) -> int:
        return len(self._queue)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        executed = 0
        while self._queue:
            time, seq, fn, args = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.now = time
            if self.digest_enabled:
                self._digest = zlib.crc32(struct.pack("<dq", time, seq), self._digest)
            fn(*args)
            self.events_processed += 1
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        if until is not None and (not self._queue or self._queue[0][0] > until):
            self.now = max(self.now, until)

    def reset(self) -> None:
        self._queue.clear()
        self.now = 0.0
        self.events_processed = 0
        self._digest = 0
