"""The ``e2e`` bench suite: end-to-end queries/sec on the Fig. 2 workload.

Builds the paper's §4.1 setup at bench scale — clustered synthetic objects
on a Chord overlay, range queries at a 5% range factor pushed through the
full stack (projection, LPH, routing, transport, lifecycle) — and measures
batch turnaround two ways:

* **baseline**: serial drain, one query in flight at a time (the shape of
  the pre-lifecycle harness);
* **candidate**: pipelined lifecycle execution, every query in flight
  concurrently.

Timings are *simulated* makespans (issue of the first query to completion
of the last), so queries/sec means queries per simulated second and the
numbers are exactly reproducible; wall-clock per run is recorded in
``meta`` for context only.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.schema import BenchResult, BenchSection
from repro.core.lifecycle import RetryPolicy
from repro.core.platform import IndexPlatform
from repro.datasets.queries import QueryWorkload
from repro.dht.ring import ChordRing
from repro.metric.vector import EuclideanMetric
from repro.sim.network import ConstantLatency

__all__ = ["run_e2e"]


def _build_platform(n_objects: int, n_nodes: int):
    rng = np.random.default_rng(42)
    centers = rng.uniform(0, 100, size=(10, 6))
    data = np.clip(
        centers[rng.integers(0, 10, size=n_objects)]
        + rng.normal(0, 4, size=(n_objects, 6)),
        0, 100,
    )
    latency = ConstantLatency(n_nodes, delay=0.02)
    ring = ChordRing.build(n_nodes, m=32, seed=1, latency=latency, pns=False)
    platform = IndexPlatform(ring, latency=latency)
    platform.create_index(
        "fig2", data, EuclideanMetric(box=(0, 100), dim=6),
        k=4, sample_size=min(1000, n_objects), seed=2,
    )
    return platform, data


def run_e2e(quick: bool = False) -> BenchResult:
    """Run the Fig. 2 workload suite and return its :class:`BenchResult`.

    Repeats are pointless here — the makespan is simulated time, identical
    on every run of the same seed — so each mode runs once and ``repeats``
    records 1.
    """
    n_queries = 50 if quick else 200
    n_objects = 2_000 if quick else 5_000
    n_nodes = 64
    platform, data = _build_platform(n_objects, n_nodes)
    workload = QueryWorkload.build(
        data[:n_queries], 10.0, n_nodes=n_nodes, mean_interarrival=0.01, seed=3,
    )
    policy = RetryPolicy(deadline=500.0)
    start = float(workload.arrival_times.min())

    def makespan(pipelined: bool) -> tuple[float, float]:
        t0 = time.perf_counter()
        stats = platform.run_workload("fig2", workload, pipelined=pipelined, policy=policy)
        wall = time.perf_counter() - t0
        counts = stats.state_counts()
        if counts != {"complete": n_queries}:
            raise AssertionError(f"workload did not complete cleanly: {counts}")
        done = max(qs.completed_at for qs in stats.queries.values())
        return done - start, wall

    serial_s, serial_wall = makespan(pipelined=False)
    pipelined_s, pipelined_wall = makespan(pipelined=True)

    result = BenchResult.new("e2e", quick=quick)
    result.sections.append(BenchSection(
        name="query_throughput",
        baseline_label="serial drain (one query in flight)",
        candidate_label="pipelined lifecycle (all queries in flight)",
        baseline_s=serial_s,
        candidate_s=pipelined_s,
        repeats=1,
        meta={
            "workload": "fig2-synthetic, 5% range factor radius 10.0",
            "n_queries": n_queries,
            "n_objects": n_objects,
            "n_nodes": n_nodes,
            "seconds_are": "simulated makespan (deterministic)",
            "qps_serial": round(n_queries / serial_s, 1),
            "qps_pipelined": round(n_queries / pipelined_s, 1),
            "wall_s_serial": round(serial_wall, 3),
            "wall_s_pipelined": round(pipelined_wall, 3),
        },
    ))
    sec = result.sections[0]
    result.summary = {
        "queries_per_sim_second": sec.meta["qps_pipelined"],
        "qps_speedup_vs_serial": round(sec.speedup, 2) if sec.speedup else None,
    }
    return result
