"""Performance benchmarking: suites, the BenchResult schema, regression gate.

``repro bench`` runs the suites and writes ``BENCH_perf.json`` /
``BENCH_e2e.json`` at the repo root; CI re-runs them in quick mode and fails
on >20% speedup regression against the committed baselines.  See
``docs/performance.md`` for the schema and the replay-fingerprint procedure
required before landing any optimization.
"""

from repro.bench.convert import convert_results_dir, convert_text_table
from repro.bench.e2e import run_e2e
from repro.bench.micro import run_perf
from repro.bench.scale import run_scale, run_scale_smoke
from repro.bench.schema import (
    SCHEMA,
    BenchResult,
    BenchSection,
    check_regression,
    current_git_sha,
    geomean_speedup,
    machine_fingerprint,
)

__all__ = [
    "SCHEMA",
    "BenchResult",
    "BenchSection",
    "check_regression",
    "convert_results_dir",
    "convert_text_table",
    "current_git_sha",
    "geomean_speedup",
    "machine_fingerprint",
    "run_e2e",
    "run_perf",
    "run_scale",
    "run_scale_smoke",
]
