"""The ``BenchResult`` schema: one JSON format for every saved benchmark.

Two kinds of payload share the envelope:

* **timing** sections — a baseline/candidate pair of median wall-clock
  timings plus their speedup (the ``repro bench`` suites);
* **table** sections — the figure/table grids the experiment benchmarks
  print (migrated from the loose ``benchmarks/results/*.txt`` files).

The envelope records where the numbers came from: schema version, suite
name, git revision and a machine fingerprint.  Regression gating compares
**speedup ratios**, not absolute seconds — each section times baseline and
candidate on the *same* machine, so the ratio is the only number that
transfers between the committed baseline and a CI runner.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any

__all__ = [
    "SCHEMA",
    "BenchSection",
    "BenchResult",
    "machine_fingerprint",
    "current_git_sha",
    "check_regression",
    "geomean_speedup",
]

#: schema identifier stored in every file; bump on breaking changes
SCHEMA = "repro-bench/1"


def machine_fingerprint() -> dict[str, Any]:
    """Enough host detail to judge whether two absolute timings compare."""
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy.__version__,
    }


def current_git_sha(cwd: str | None = None) -> str | None:
    """HEAD revision of the enclosing checkout, or None outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@dataclass
class BenchSection:
    """One named measurement (``kind="timing"``) or grid (``kind="table"``)."""

    name: str
    kind: str = "timing"
    # -- timing payload -------------------------------------------------------
    baseline_label: str = ""
    candidate_label: str = ""
    baseline_s: float | None = None  # median seconds over `repeats`
    candidate_s: float | None = None
    repeats: int = 0
    meta: dict[str, Any] = field(default_factory=dict)
    # -- table payload --------------------------------------------------------
    title: str = ""
    headers: list[str] = field(default_factory=list)
    rows: list[list[Any]] = field(default_factory=list)

    @property
    def speedup(self) -> float | None:
        """baseline_s / candidate_s (>1 means the candidate is faster)."""
        if self.kind != "timing" or not self.baseline_s or not self.candidate_s:
            return None
        return self.baseline_s / self.candidate_s

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name, "kind": self.kind}
        if self.kind == "timing":
            out.update(
                baseline_label=self.baseline_label,
                candidate_label=self.candidate_label,
                baseline_s=self.baseline_s,
                candidate_s=self.candidate_s,
                repeats=self.repeats,
                speedup=None if self.speedup is None else round(self.speedup, 3),
                meta=self.meta,
            )
        else:
            out.update(title=self.title, headers=self.headers, rows=self.rows)
        return out

    @classmethod
    def from_json(cls, d: dict[str, Any]) -> BenchSection:
        return cls(
            name=d["name"],
            kind=d.get("kind", "timing"),
            baseline_label=d.get("baseline_label", ""),
            candidate_label=d.get("candidate_label", ""),
            baseline_s=d.get("baseline_s"),
            candidate_s=d.get("candidate_s"),
            repeats=d.get("repeats", 0),
            meta=d.get("meta", {}),
            title=d.get("title", ""),
            headers=d.get("headers", []),
            rows=d.get("rows", []),
        )


@dataclass
class BenchResult:
    """A saved benchmark run: envelope + sections."""

    suite: str
    sections: list[BenchSection] = field(default_factory=list)
    created: str | None = None
    git_sha: str | None = None
    machine: dict[str, Any] = field(default_factory=dict)
    quick: bool = False
    summary: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def new(cls, suite: str, quick: bool = False) -> BenchResult:
        return cls(
            suite=suite,
            created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            git_sha=current_git_sha(),
            machine=machine_fingerprint(),
            quick=quick,
        )

    def section(self, name: str) -> BenchSection | None:
        for s in self.sections:
            if s.name == name:
                return s
        return None

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "suite": self.suite,
            "created": self.created,
            "git_sha": self.git_sha,
            "machine": self.machine,
            "quick": self.quick,
            "sections": [s.to_json() for s in self.sections],
            "summary": self.summary,
        }

    @classmethod
    def from_json(cls, d: dict[str, Any]) -> BenchResult:
        if d.get("schema") != SCHEMA:
            raise ValueError(f"not a {SCHEMA} file (schema={d.get('schema')!r})")
        return cls(
            suite=d["suite"],
            sections=[BenchSection.from_json(s) for s in d.get("sections", [])],
            created=d.get("created"),
            git_sha=d.get("git_sha"),
            machine=d.get("machine", {}),
            quick=d.get("quick", False),
            summary=d.get("summary", {}),
        )

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> BenchResult:
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(json.load(fh))


def geomean_speedup(result: BenchResult, names: list[str] | None = None) -> float | None:
    """Geometric mean of the named timing sections' speedups (all if None)."""
    vals = [
        s.speedup for s in result.sections
        if s.kind == "timing" and s.speedup is not None
        and (names is None or s.name in names)
    ]
    if not vals:
        return None
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def check_regression(
    current: BenchResult, baseline: BenchResult, threshold: float = 0.2
) -> list[str]:
    """Compare two runs of the same suite; return regression messages.

    A section regresses when its candidate lost more than ``threshold`` of
    the recorded speedup — i.e. ``baseline.speedup / current.speedup``
    exceeds ``1 + threshold`` (a synthetic 25% slowdown of the candidate
    trips the default 20% gate).  Sections present in only one file are
    reported as warnings, not regressions, so suites can grow.
    """
    problems: list[str] = []
    for base_sec in baseline.sections:
        if base_sec.kind != "timing" or base_sec.speedup is None:
            continue
        cur_sec = current.section(base_sec.name)
        if cur_sec is None or cur_sec.speedup is None:
            problems.append(
                f"[{baseline.suite}] section '{base_sec.name}' missing from the "
                "current run (remove it from the committed baseline if retired)"
            )
            continue
        slowdown = base_sec.speedup / cur_sec.speedup
        if slowdown > 1.0 + threshold:
            problems.append(
                f"[{baseline.suite}] '{base_sec.name}' regressed: speedup "
                f"{cur_sec.speedup:.2f}x vs recorded {base_sec.speedup:.2f}x "
                f"({(slowdown - 1) * 100:.0f}% > {threshold * 100:.0f}% allowed)"
            )
    return problems
