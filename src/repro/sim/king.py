"""Synthetic King-like latency matrix (substitution for the King dataset).

The paper's network model "is derived from the King dataset, which includes
the pairwise latencies of 1740 DNS servers in the Internet measured by King
method; the average round-trip time of the simulated network is 180
milliseconds" (§4.1).  The measured dataset is not redistributable here, so
we synthesise a matrix with the same gross statistics:

* 1740 hosts embedded uniformly in a 2-D plane (geography);
* one-way delay = propagation (Euclidean distance) x lognormal jitter
  (access-network variance, which gives King its heavy right tail)
  + a small fixed processing floor;
* symmetrised, then globally scaled so the mean RTT is exactly the paper's
  180 ms.

Experiments consume only the latency *distribution* — mean and spread set the
absolute scale of response times; relative comparisons between landmark
schemes are unaffected (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.sim.network import CoordinateLatency, MatrixLatency
from repro.util.rng import as_rng

__all__ = [
    "synthetic_king_matrix",
    "king_latency_model",
    "king_coordinate_model",
    "KING_N_HOSTS",
    "KING_MEAN_RTT",
]

#: Host count of the real King dataset.
KING_N_HOSTS = 1740
#: The paper's mean simulated round-trip time, seconds.
KING_MEAN_RTT = 0.180


def synthetic_king_matrix(
    n_hosts: int = KING_N_HOSTS,
    mean_rtt: float = KING_MEAN_RTT,
    seed: int | np.random.Generator | None = 0,
    jitter_sigma: float = 0.35,
    floor: float = 0.002,
) -> np.ndarray:
    """Build an ``(n, n)`` one-way delay matrix (seconds), zero diagonal.

    ``jitter_sigma`` controls the lognormal multiplicative spread;
    ``floor`` is a minimum one-way processing delay.
    """
    rng = as_rng(seed)
    coords = rng.uniform(0.0, 1.0, size=(n_hosts, 2))
    # Pairwise Euclidean distances via the expansion trick.
    sq = (
        np.einsum("ij,ij->i", coords, coords)[:, None]
        + np.einsum("ij,ij->i", coords, coords)[None, :]
        - 2.0 * (coords @ coords.T)
    )
    np.maximum(sq, 0.0, out=sq)
    dist = np.sqrt(sq)
    jitter = rng.lognormal(0.0, jitter_sigma, size=dist.shape)
    one_way = dist * jitter + floor
    # Symmetrise (King measures RTT/2 both ways; we keep a symmetric model).
    one_way = 0.5 * (one_way + one_way.T)
    np.fill_diagonal(one_way, 0.0)
    # Scale the off-diagonal mean one-way delay to mean_rtt / 2.
    n = n_hosts
    off_mean = one_way.sum() / (n * (n - 1))
    one_way *= (mean_rtt / 2.0) / off_mean
    return one_way


def king_latency_model(
    n_hosts: int = KING_N_HOSTS,
    mean_rtt: float = KING_MEAN_RTT,
    seed: int | np.random.Generator | None = 0,
) -> MatrixLatency:
    """A :class:`MatrixLatency` over a synthetic King-like matrix."""
    return MatrixLatency(synthetic_king_matrix(n_hosts, mean_rtt, seed))


def king_coordinate_model(
    n_hosts: int = KING_N_HOSTS,
    mean_rtt: float = KING_MEAN_RTT,
    seed: int | np.random.Generator | None = 0,
    jitter_sigma: float = 0.35,
    floor: float = 0.002,
    calibration_pairs: int = 8192,
) -> CoordinateLatency:
    """A lazy :class:`CoordinateLatency` fitted to the King RTT distribution.

    Same generative model as :func:`synthetic_king_matrix` — uniform 2-D
    geography, lognormal access-network jitter, a processing floor — but with
    O(n) state: pairwise delays are derived on demand from the coordinates
    and a counter-based per-pair jitter hash, so host counts far beyond the
    1740 of the measured dataset stay cheap (100k hosts ≈ 1.6 MB).

    Two deliberate departures from the matrix model, both documented in
    ``docs/scaling.md``:

    * delays are **directional** (the matrix symmetrises them) — the RTT
      ``latency(a,b) + latency(b,a)`` is what the calibration targets;
    * the global scale is **calibrated on a seeded sample** of
      ``calibration_pairs`` ordered pairs rather than the exact off-diagonal
      mean (which would require the full matrix): the sample mean RTT is
      exactly ``mean_rtt``, the population mean lands well inside ±1%.
    """
    rng = as_rng(seed)
    coords = rng.uniform(0.0, 1.0, size=(n_hosts, 2))
    jitter_seed = int(rng.integers(0, np.iinfo(np.int64).max))
    model = CoordinateLatency(
        coords, 1.0, jitter_sigma=jitter_sigma, floor=0.0, seed=jitter_seed
    )
    a = rng.integers(0, n_hosts, size=calibration_pairs)
    b = rng.integers(0, n_hosts, size=calibration_pairs)
    ok = a != b
    if np.any(ok):
        # spu=1, floor=0: the sampled values are dist·jitter both ways
        base_rtt = model.latency_pairs(a[ok], b[ok]) + model.latency_pairs(b[ok], a[ok])
        mean_base = float(np.mean(base_rtt))
        model.seconds_per_unit = (mean_rtt - 2.0 * floor) / mean_base
    model.floor = floor
    return model
