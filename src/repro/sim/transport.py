"""Unified message transport: delivery, faults and per-message tracing.

Every message-passing protocol in the library (query routing, Chord
stabilisation, the naive flooding baseline, SCRAP interval routing) delivers
through one :class:`Transport`.  The transport owns the four concerns the
protocols used to hand-roll separately:

1. **latency-model lookup** — one-way delay between the endpoints' hosts;
2. **destination-liveness checks** — a message arriving at a crashed node is
   dropped, once, in one place;
3. **dropped-message accounting** — global counters per drop reason, plus an
   optional per-message ``on_drop`` callback so protocols can attribute the
   loss to a query;
4. **delivery scheduling** — the only component that touches the simulator's
   event queue for network messages.

On top of that it provides what the per-protocol implementations never had:

* **fault injection** (:class:`FaultConfig`) — probabilistic message loss,
  extra exponential delay jitter, and network partitions by host set.  All
  draws come from one seeded generator, so a run with the same seed drops
  exactly the same messages (the simulator is deterministic, hence so is the
  message order the generator is consumed in);
* **per-message tracing** (:class:`MessageTrace` fed to a :class:`TraceSink`)
  — message kind, endpoints, size, send/arrive times and final status, for
  observability and structural assertions in tests.

:class:`Protocol` is the small base class protocols derive from: it wires
``sim``/``stats``/``latency``/``maintenance`` once instead of copy-pasting
the plumbing through every protocol constructor.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from collections.abc import Callable
from typing import TYPE_CHECKING, Any, Protocol as StructuralType, Self

from repro.sim.engine import EventHandle, Simulator
from repro.util.rng import spawn_rngs

if TYPE_CHECKING:
    from repro.sim.network import LatencyModel


class Peer(StructuralType):
    """Structural endpoint type: anything with a node id and a host index
    (ring nodes, test doubles).  Liveness is probed via ``getattr(dst,
    "alive", True)`` so pure data endpoints stay valid peers."""

    id: int
    host: int

__all__ = [
    "FaultConfig",
    "TransportStats",
    "traffic_class",
    "MessageTrace",
    "TimerHandle",
    "TraceSink",
    "MemoryTraceSink",
    "JsonlTraceSink",
    "Transport",
    "Protocol",
]

#: terminal statuses of a message
DELIVERED = "delivered"
DROPPED_DEAD = "dropped:dead"          # destination crashed before arrival
DROPPED_LOSS = "dropped:loss"          # probabilistic fault-injected loss
DROPPED_PARTITION = "dropped:partition"  # endpoints in different partitions


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection knobs of a :class:`Transport`.

    Attributes
    ----------
    loss_rate:
        Probability in ``[0, 1]`` that any remote message is lost in flight.
    jitter:
        Mean of an exponential extra delay (seconds) added to every remote
        delivery; 0 disables the draw entirely (keeps the random stream
        untouched, so enabling jitter does not perturb loss decisions).
    partitions:
        Collection of host-index sets.  Hosts in different sets — or a host
        in a set versus a host in none — cannot exchange messages.  Empty
        means no partition.
    seed:
        Seed of the generator behind loss and jitter draws; the same seed
        (with the same deterministic simulation) reproduces the same drops.
    """

    loss_rate: float = 0.0
    jitter: float = 0.0
    partitions: tuple[frozenset[int], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {self.loss_rate}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        # normalise to hashable frozensets (allows lists/sets in user code)
        object.__setattr__(
            self, "partitions", tuple(frozenset(p) for p in self.partitions)
        )

    @property
    def active(self) -> bool:
        return bool(self.loss_rate or self.jitter or self.partitions)


def traffic_class(kind: str) -> str:
    """Classify a message kind into query/result/maintenance traffic.

    The paper's cost comparisons (Fig. 3/5) separate the bandwidth of
    answering queries from the background cost of keeping the overlay alive;
    the transport applies the same split to every byte it moves.
    """
    if kind == "result":
        return "result"
    if kind.startswith("maintenance"):
        return "maintenance"
    return "query"


@dataclass
class TransportStats:
    """Global message counters of one transport (all protocols combined).

    Bytes are broken down by traffic class (see :func:`traffic_class`);
    ``bytes`` remains as the grand total for existing callers.
    """

    sent: int = 0
    delivered: int = 0
    dropped_dead: int = 0
    dropped_loss: int = 0
    dropped_partition: int = 0
    query_bytes: int = 0
    result_bytes: int = 0
    maintenance_bytes: int = 0
    maintenance_messages: int = 0

    @property
    def bytes(self) -> int:
        return self.query_bytes + self.result_bytes + self.maintenance_bytes

    @property
    def dropped(self) -> int:
        return self.dropped_dead + self.dropped_loss + self.dropped_partition


@dataclass
class MessageTrace:
    """One message's life, as recorded by the trace hooks.

    ``arrived_at`` stays ``None`` for dropped messages; ``status`` is one of
    ``"delivered"``, ``"dropped:dead"``, ``"dropped:loss"``,
    ``"dropped:partition"``.  ``attempt`` is the transmission attempt the
    record belongs to: 1 for the original send, 2+ for lifecycle-engine
    retransmissions of the same logical message.
    """

    kind: str
    src: int
    dst: int
    src_host: int
    dst_host: int
    size: int
    sent_at: float
    arrived_at: float | None = None
    status: str = "sent"
    qid: int | None = None
    attempt: int = 1


#: Cancelable timers are engine-level events now: cancellation tombstones
#: the heap entry so the dispatch loop skips the callback entirely, instead
#: of firing a no-op.  The old name stays exported for existing callers.
TimerHandle = EventHandle


class TraceSink:
    """Receives one :class:`MessageTrace` per message at its terminal state.

    Sinks are context managers: ``with JsonlTraceSink(path) as sink`` (or a
    ``try/finally`` around :meth:`close`) guarantees the underlying file is
    flushed and closed even when the run raises, so a crashed simulation
    cannot leave a truncated trace file behind.
    """

    def record(self, trace: MessageTrace) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    def __enter__(self) -> Self:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class MemoryTraceSink(TraceSink):
    """Keeps traces in a list, with the filters tests and notebooks want."""

    def __init__(self) -> None:
        self.records: list[MessageTrace] = []

    def record(self, trace: MessageTrace) -> None:
        self.records.append(trace)

    def __len__(self) -> int:
        return len(self.records)

    def by_kind(self, kind: str) -> list[MessageTrace]:
        return [t for t in self.records if t.kind == kind]

    def by_status(self, status: str) -> list[MessageTrace]:
        return [t for t in self.records if t.status == status]

    def dropped(self) -> list[MessageTrace]:
        return [t for t in self.records if t.status.startswith("dropped")]

    def for_query(self, qid: int) -> list[MessageTrace]:
        return [t for t in self.records if t.qid == qid]


class JsonlTraceSink(TraceSink):
    """Streams traces as JSON lines to a path or file-like object.

    :meth:`close` flushes before closing and is safe to call twice; a
    file-like ``target`` is flushed but left open (the caller owns it).
    """

    def __init__(self, target: Any) -> None:
        if hasattr(target, "write"):
            self._fh = target
            self._owns = False
        else:
            self._fh = open(target, "w")
            self._owns = True
        self._closed = False

    def record(self, trace: MessageTrace) -> None:
        self._fh.write(json.dumps(asdict(trace)) + "\n")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._fh.flush()
        if self._owns:
            self._fh.close()


class Transport:
    """Message delivery between overlay nodes over the discrete-event engine.

    Endpoints are duck-typed node objects exposing ``id``, ``host`` and
    ``alive``.  ``latency`` may be ``None``, which makes all messages
    instantaneous (structural tests).

    The two delivery primitives:

    * :meth:`send` — asynchronous: schedules ``handler(*args)`` at the
      destination after the network delay, applying faults and the liveness
      check at arrival time;
    * :meth:`control` — synchronous RPC-hop accounting for the maintenance
      protocol (stabilisation models request/response pairs as instantaneous
      but countable and fault-droppable).

    ``timer``/``at`` schedule local (non-network) callbacks so protocol code
    never needs the simulator directly.
    """

    def __init__(
        self,
        sim: Simulator | None = None,
        latency: LatencyModel | None = None,
        faults: FaultConfig | None = None,
        trace: TraceSink | None = None,
        metrics: Any = None,
    ) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.latency = latency
        self.faults = faults if faults is not None else FaultConfig()
        self.trace = trace
        self.stats = TransportStats()
        self.attach_metrics(metrics)
        # independent streams: toggling jitter must not re-order loss draws
        self._loss_rng, self._jitter_rng = spawn_rngs(self.faults.seed, 2)
        #: when set (to a list), every fault-injection draw is appended as a
        #: ``(kind, value)`` pair — ``("loss", u)`` per loss coin flip,
        #: ``("jitter", j)`` per jitter delay.  Deterministic replay compares
        #: the logs of two runs to prove the fault streams were consumed
        #: identically (see :mod:`repro.check.replay`).
        self.draw_log: list[tuple[str, float]] | None = None
        self._partition_of: dict[int, int] = {}
        for gi, group in enumerate(self.faults.partitions):
            for host in group:
                self._partition_of[host] = gi

    def attach_metrics(self, metrics: Any) -> None:
        """Resolve registry instruments for this transport (or disable them).

        Instruments are resolved once and guarded with a single ``is not
        None`` test per message — the per-message path is the hottest in the
        simulator and must cost nothing when metrics are off (``None`` or a
        ``NullRegistry`` both count as off).  Callable after construction so
        a shared transport can adopt a platform's registry.
        """
        if metrics is not None and getattr(metrics, "enabled", False):
            self._m_sent = metrics.counter(
                "transport_sent_total", "Messages sent", ("proto",))
            self._m_delivered = metrics.counter(
                "transport_delivered_total", "Messages delivered", ("proto",))
            self._m_dropped = metrics.counter(
                "transport_dropped_total", "Messages dropped",
                ("proto", "reason"))
            self._m_bytes = metrics.counter(
                "transport_bytes_total", "Payload bytes sent",
                ("proto", "class"))
            self._m_latency = metrics.histogram(
                "transport_delivery_latency_seconds",
                "Send-to-arrival delay of delivered messages")
        else:
            self._m_sent = self._m_delivered = None
            self._m_dropped = self._m_bytes = self._m_latency = None

    # -- scheduling helpers (local, non-network) -------------------------------

    def timer(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` seconds (maintenance timers,
        workload arrivals — anything that is not a network message)."""
        self.sim.schedule_in(delay, fn, *args)

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulation time ``time``."""
        self.sim.schedule_at(time, fn, *args)

    def at_batch(self, entries: list[tuple[float, Callable[..., Any], tuple[Any, ...]]]) -> None:
        """Schedule many ``(time, fn, args)`` callbacks with one heapify.

        Bulk workload injection: equivalent to calling :meth:`at` per entry
        (identical sequence-number assignment, hence identical replay
        digests) but O(n) instead of n sift-ups — see
        :meth:`repro.sim.engine.Simulator.schedule_batch`.
        """
        self.sim.schedule_batch(entries)

    def timer_cancelable(self, delay: float, fn: Callable[..., Any], *args: Any) -> TimerHandle:
        """Like :meth:`timer`, returning a handle that can cancel the firing
        (retransmission timeouts, per-query deadlines).  Cancellation
        tombstones the queued event — the engine skips dispatch entirely."""
        return self.sim.schedule_cancelable_in(delay, fn, *args)

    def at_cancelable(self, time: float, fn: Callable[..., Any], *args: Any) -> TimerHandle:
        """Like :meth:`at`, returning a cancelable :class:`TimerHandle`."""
        return self.sim.schedule_cancelable_at(time, fn, *args)

    # -- network model ---------------------------------------------------------

    def delay(self, src_host: int, dst_host: int) -> float:
        """One-way network delay between two hosts (0 without a model)."""
        if self.latency is None:
            return 0.0
        return self.latency.latency(src_host, dst_host)

    def partitioned(self, a_host: int, b_host: int) -> bool:
        """Whether a partition separates the two hosts."""
        if not self._partition_of:
            return False
        return self._partition_of.get(a_host, -1) != self._partition_of.get(b_host, -1)

    # -- delivery --------------------------------------------------------------

    def send(
        self,
        src: Peer,
        dst: Peer,
        handler: Callable[..., None],
        *args: Any,
        kind: str = "message",
        size: int = 0,
        qid: int | None = None,
        attempt: int = 1,
        on_drop: Callable[[MessageTrace], None] | None = None,
    ) -> bool:
        """Deliver ``handler(*args)`` at ``dst`` after the network delay.

        Returns ``False`` when the message is dropped at send time (fault
        loss or partition); in-flight drops (destination crashed before
        arrival) surface through ``on_drop`` and the drop counters.  A send
        to self is a local hand-off: immediate, never faulted, but still
        liveness-checked at delivery.
        """
        rec = MessageTrace(
            kind=kind,
            src=src.id,
            dst=dst.id,
            src_host=src.host,
            dst_host=dst.host,
            size=size,
            sent_at=self.sim.now,
            qid=qid,
            attempt=attempt,
        )
        self._account_send(kind, size)
        if src is dst:
            delay = 0.0
        else:
            if self.partitioned(src.host, dst.host):
                return self._drop(rec, DROPPED_PARTITION, on_drop)
            if self.faults.loss_rate:
                u = float(self._loss_rng.random())
                if self.draw_log is not None:
                    self.draw_log.append(("loss", u))
                if u < self.faults.loss_rate:
                    return self._drop(rec, DROPPED_LOSS, on_drop)
            delay = self.delay(src.host, dst.host)
            if self.faults.jitter:
                j = float(self._jitter_rng.exponential(self.faults.jitter))
                if self.draw_log is not None:
                    self.draw_log.append(("jitter", j))
                delay += j
        self.sim.schedule_in(delay, self._deliver, dst, handler, args, rec, on_drop)
        return True

    def _account_send(self, kind: str, size: int) -> None:
        self.stats.sent += 1
        cls = traffic_class(kind)
        if cls == "query":
            self.stats.query_bytes += size
        elif cls == "result":
            self.stats.result_bytes += size
        else:
            self.stats.maintenance_bytes += size
            self.stats.maintenance_messages += 1
        if self._m_sent is not None:
            proto = kind.split(":", 1)[0]
            self._m_sent.inc((proto,))
            self._m_bytes.add(size, (proto, cls))

    def _deliver(self, dst: Peer, handler: Callable[..., None],
                 args: tuple[Any, ...], rec: MessageTrace,
                 on_drop: Callable[[MessageTrace], None] | None) -> None:
        if not getattr(dst, "alive", True):
            self._drop(rec, DROPPED_DEAD, on_drop)
            return
        rec.arrived_at = self.sim.now
        rec.status = DELIVERED
        self.stats.delivered += 1
        if self._m_delivered is not None:
            self._m_delivered.inc((rec.kind.split(":", 1)[0],))
            self._m_latency.observe(rec.arrived_at - rec.sent_at)
        if self.trace is not None:
            self.trace.record(rec)
        handler(*args)

    def _drop(self, rec: MessageTrace, status: str,
              on_drop: Callable[[MessageTrace], None] | None) -> bool:
        rec.status = status
        if status == DROPPED_DEAD:
            self.stats.dropped_dead += 1
        elif status == DROPPED_LOSS:
            self.stats.dropped_loss += 1
        else:
            self.stats.dropped_partition += 1
        if self._m_dropped is not None:
            self._m_dropped.inc((rec.kind.split(":", 1)[0], status))
        if self.trace is not None:
            self.trace.record(rec)
        if on_drop is not None:
            on_drop(rec)
        return False

    def control(self, src: Peer, dst: Peer, kind: str = "maintenance",
                size: int = 0) -> bool:
        """Account one synchronous control-message hop; True when delivered.

        Stabilisation models its request/response pairs as instantaneous
        (their latencies are negligible against the maintenance intervals);
        the transport still applies partitions and probabilistic loss so the
        maintenance loop degrades under the same faults queries do.
        """
        rec = MessageTrace(
            kind=kind,
            src=src.id,
            dst=dst.id,
            src_host=src.host,
            dst_host=dst.host,
            size=size,
            sent_at=self.sim.now,
            qid=None,
        )
        self._account_send(kind, size)
        if src is not dst:
            if self.partitioned(src.host, dst.host):
                return self._drop(rec, DROPPED_PARTITION, None)
            if self.faults.loss_rate:
                u = float(self._loss_rng.random())
                if self.draw_log is not None:
                    self.draw_log.append(("loss", u))
                if u < self.faults.loss_rate:
                    return self._drop(rec, DROPPED_LOSS, None)
            if not getattr(dst, "alive", True):
                return self._drop(rec, DROPPED_DEAD, None)
        rec.arrived_at = self.sim.now
        rec.status = DELIVERED
        self.stats.delivered += 1
        if self._m_delivered is not None:
            self._m_delivered.inc((kind.split(":", 1)[0],))
            self._m_latency.observe(0.0)
        if self.trace is not None:
            self.trace.record(rec)
        return True


class Protocol:
    """Base class of the message-passing protocols.

    Owns the wiring every protocol used to repeat: the transport (created
    from ``sim``/``latency`` when not shared), the stats collector, and the
    optional maintenance protocol that piggybacks on query traffic (§3.3).

    Subclasses override :meth:`default_stats` when their stats object is not
    a :class:`repro.sim.stats.StatsCollector`.
    """

    def __init__(
        self,
        sim: Simulator | None = None,
        stats: Any = None,
        latency: LatencyModel | None = None,
        transport: Transport | None = None,
        maintenance: Any = None,
    ) -> None:
        if transport is None:
            transport = Transport(sim=sim, latency=latency)
        self.transport = transport
        self.sim = transport.sim
        self.latency = transport.latency
        self.stats = stats if stats is not None else self.default_stats()
        #: optional StabilizationProtocol — query traffic is reported to it
        #: so maintenance messages can piggyback on these links (§3.3).
        self.maintenance = maintenance

    def default_stats(self) -> Any:
        from repro.sim.stats import StatsCollector

        return StatsCollector()

    def note_traffic(self, src: Peer, dst: Peer) -> None:
        """Report query traffic on a link to the maintenance protocol."""
        if self.maintenance is not None and src is not dst:
            self.maintenance.note_query_traffic(src.host, dst.host)
