"""Discrete event engine — the core of the p2psim substitute.

The event queue is a flat array organised as a binary heap (via the
:mod:`heapq` C sift routines): entries are ``(time, seq, fn, args)`` tuples;
``seq`` is a monotonically increasing tiebreaker so simultaneous events run
in schedule order and runs are exactly reproducible.  Time is a float in
seconds (the paper's latencies are milliseconds; the King matrix is stored
in seconds).

**Cancellation tombstones.**  Heap entries cannot be removed from the
middle, and lifecycle timers (per-query deadlines, retransmission timeouts)
are cancelled far more often than they fire — every settled branch kills
one.  Cancelable events therefore carry a mutable two-slot *cell*
``[fn, args]`` in place of a direct callback; :meth:`EventHandle.cancel`
nulls the cell, turning the queued entry into a tombstone.  The dispatch
loop still pops tombstones, still counts them in :attr:`events_processed`
and still folds their ``(time, seq)`` pair into the schedule digest — the
exact accounting of the previous engine, where a cancelled timer fired as a
no-op — but skips the Python callback dispatch entirely, which is where the
per-event cost lives.

**Tombstone compaction.**  Long-deadline timers cancelled early (the retry
pattern: arm a 30 s deadline, settle in milliseconds) would otherwise sit in
the heap until their distant due time, bloating every sift and getting
popped one by one.  When cancelled entries outnumber live ones the engine
filters them out of the heap in one O(n) pass and re-heapifies — classic
lazy deletion with amortised O(1) cost per cancel.  Compaction is
**disabled while** :attr:`Simulator.digest_enabled` **is on**: replay
fingerprints count tombstone pops, so digesting runs keep the exact
pop-and-count accounting above (and tests asserting counters do too —
compaction also needs the queue to exceed a minimum size).
"""

from __future__ import annotations

import heapq
import itertools
import struct
import zlib
from collections.abc import Callable
from typing import Any

__all__ = ["Simulator", "EventHandle"]

#: sentinel in the ``fn`` slot marking a cancelable entry whose real
#: callback lives in the ``args`` slot as an ``[fn, args]`` cell.
_CANCELABLE = None


class EventHandle:
    """Handle of a cancelable scheduled event.

    ``active`` is True until the event either fires or is cancelled;
    :meth:`cancel` is idempotent and amortised O(1) — it tombstones the
    queued heap entry in place, and lets the owning simulator compact the
    heap when tombstones pile up.
    """

    __slots__ = ("_cell", "_sim")

    def __init__(self, cell: list[Any], sim: Simulator | None = None) -> None:
        self._cell = cell
        self._sim = sim

    @property
    def active(self) -> bool:
        return self._cell[0] is not None

    def cancel(self) -> None:
        if self._cell[0] is None:
            return
        self._cell[0] = None
        self._cell[1] = ()
        if self._sim is not None:
            self._sim._note_cancel()


class Simulator:
    """A minimal deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule_in(1.5, fired.append, "a")
    >>> sim.schedule_in(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    #: compaction never runs on queues smaller than this, so unit tests
    #: asserting ``pending()`` around a handful of cancels see the plain
    #: tombstone accounting
    COMPACT_MIN_QUEUE = 64

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, Callable[..., Any] | None, Any]] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self.events_processed: int = 0
        #: tombstoned (cancelled) events popped without dispatch — the work
        #: the cancelable-event path avoids; purely informational.
        self.tombstones_skipped: int = 0
        #: cancelled-but-still-queued entries; drives compaction.
        self._cancelled_pending: int = 0
        #: when True, every executed event folds its ``(time, seq)`` pair
        #: into a CRC32 running digest — a cheap fingerprint of the exact
        #: event schedule, used by deterministic replay to prove two runs
        #: executed bit-identically (see :mod:`repro.check.replay`).
        #: Tombstones fold too: cancellation may not perturb the digest.
        self.digest_enabled: bool = False
        self._digest: int = 0

    @property
    def schedule_digest(self) -> int:
        """CRC32 over every executed ``(time, seq)`` pair (0 until enabled)."""
        return self._digest

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past ({time} < {self.now})")
        heapq.heappush(self._queue, (time, next(self._seq), fn, args))

    def schedule_in(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule_at(self.now + delay, fn, *args)

    def every(self, interval: float, fn: Callable[[], bool]) -> None:
        """Periodic hook: call ``fn()`` every ``interval`` seconds for as
        long as it returns truthy.

        This is the sanctioned way for cross-cutting observers (invariant
        checkers, health samplers) to ride the event queue without owning
        it: the re-arm pattern lives here, in the scheduler layer, instead
        of being re-implemented around raw :meth:`schedule_in` calls in
        protocol-adjacent code (which the ARCH202 lint rule rejects).
        Scheduling is plain :meth:`schedule_in` under the hood, so the
        ``(time, seq)`` stream — and with it the replay digest — is
        identical to the hand-rolled loop it replaces.
        """
        def tick() -> None:
            if fn():
                self.schedule_in(interval, tick)

        self.schedule_in(interval, tick)

    def schedule_batch(self, entries: list[tuple[float, Callable[..., Any], tuple[Any, ...]]]) -> None:
        """Schedule many ``(time, fn, args)`` entries with one heapify.

        The bulk-injection path for workloads: pushing ``k`` events one by
        one costs ``k`` sift-ups through an ever-deeper heap; extending the
        array and re-heapifying once is O(n).  Replay-safe by construction —
        sequence numbers are assigned in list order, exactly as a loop of
        :meth:`schedule_at` calls would, and the pop order of a binary heap
        depends only on the (unique) ``(time, seq)`` keys, never on the
        internal array layout.
        """
        seq = self._seq
        now = self.now
        for time, _fn, _args in entries:
            if time < now:
                raise ValueError(f"cannot schedule into the past ({time} < {now})")
        self._queue.extend(
            (time, next(seq), fn, args) for time, fn, args in entries
        )
        heapq.heapify(self._queue)

    def schedule_cancelable_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Like :meth:`schedule_at`, returning a cancelable :class:`EventHandle`."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past ({time} < {self.now})")
        cell = [fn, args]
        heapq.heappush(self._queue, (time, next(self._seq), _CANCELABLE, cell))
        return EventHandle(cell, self)

    def schedule_cancelable_in(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Like :meth:`schedule_in`, returning a cancelable :class:`EventHandle`."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_cancelable_at(self.now + delay, fn, *args)

    def pending(self) -> int:
        """Number of events still queued (tombstones included)."""
        return len(self._queue)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the queue, advancing :attr:`now`.

        ``until`` stops before any event later than the given time (that
        event stays queued); ``max_events`` caps the number of events popped
        (a runaway-protocol guard used by the tests).  Tombstones count
        toward both the cap and :attr:`events_processed` so replay under a
        cap truncates at exactly the same point as the recording.
        """
        queue = self._queue
        pop = heapq.heappop
        crc32 = zlib.crc32
        pack = struct.pack
        executed = 0
        while queue:
            entry = queue[0]
            time = entry[0]
            if until is not None and time > until:
                break
            pop(queue)
            self.now = time
            if self.digest_enabled:
                self._digest = crc32(pack("<dq", time, entry[1]), self._digest)
            fn = entry[2]
            if fn is not None:
                fn(*entry[3])
            else:
                cell = entry[3]
                cfn = cell[0]
                if cfn is not None:
                    # deactivate before dispatch, matching the one-shot
                    # semantics of the old TimerHandle._fire
                    cargs = cell[1]
                    cell[0] = None
                    cell[1] = ()
                    cfn(*cargs)
                else:
                    self.tombstones_skipped += 1
                    if self._cancelled_pending:
                        self._cancelled_pending -= 1
            self.events_processed += 1
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        if until is not None and (not queue or queue[0][0] > until):
            self.now = max(self.now, until)

    def _note_cancel(self) -> None:
        """Bump the tombstone count; compact the heap when they dominate.

        Compaction filters cancelled entries out **in place** (``run`` holds
        a local reference to the queue list, so rebinding would split the
        schedule) and re-heapifies — O(n), amortised O(1) per cancel because
        it only triggers when tombstones outnumber live entries.  Skipped
        entirely while :attr:`digest_enabled` (replay digests count tombstone
        pops) and below :attr:`COMPACT_MIN_QUEUE` (tests assert ``pending()``
        around small schedules).
        """
        self._cancelled_pending += 1
        if (
            not self.digest_enabled
            and len(self._queue) >= self.COMPACT_MIN_QUEUE
            and self._cancelled_pending * 2 > len(self._queue)
        ):
            self._queue[:] = [
                e for e in self._queue if e[2] is not None or e[3][0] is not None
            ]
            heapq.heapify(self._queue)
            self._cancelled_pending = 0

    def reset(self) -> None:
        """Clear all pending events and rewind the clock."""
        self._queue.clear()
        self.now = 0.0
        self.events_processed = 0
        self.tombstones_skipped = 0
        self._cancelled_pending = 0
        self._digest = 0
