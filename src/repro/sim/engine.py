"""Discrete event engine — the core of the p2psim substitute.

A classic calendar queue on :mod:`heapq`: events are ``(time, seq, callback,
args)`` tuples; ``seq`` is a monotonically increasing tiebreaker so
simultaneous events run in schedule order and runs are exactly reproducible.
Time is a float in seconds (the paper's latencies are milliseconds; the King
matrix is stored in seconds).
"""

from __future__ import annotations

import heapq
import itertools
import struct
import zlib
from collections.abc import Callable
from typing import Any

__all__ = ["Simulator"]


class Simulator:
    """A minimal deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule_in(1.5, fired.append, "a")
    >>> sim.schedule_in(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self) -> None:
        self._queue: list = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self.events_processed: int = 0
        #: when True, every executed event folds its ``(time, seq)`` pair
        #: into a CRC32 running digest — a cheap fingerprint of the exact
        #: event schedule, used by deterministic replay to prove two runs
        #: executed bit-identically (see :mod:`repro.check.replay`).
        self.digest_enabled: bool = False
        self._digest: int = 0

    @property
    def schedule_digest(self) -> int:
        """CRC32 over every executed ``(time, seq)`` pair (0 until enabled)."""
        return self._digest

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past ({time} < {self.now})")
        heapq.heappush(self._queue, (time, next(self._seq), fn, args))

    def schedule_in(self, delay: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule_at(self.now + delay, fn, *args)

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the queue, advancing :attr:`now`.

        ``until`` stops before any event later than the given time (that
        event stays queued); ``max_events`` caps the number of callbacks
        executed (a runaway-protocol guard used by the tests).
        """
        executed = 0
        while self._queue:
            time, seq, fn, args = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.now = time
            if self.digest_enabled:
                self._digest = zlib.crc32(struct.pack("<dq", time, seq), self._digest)
            fn(*args)
            self.events_processed += 1
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        if until is not None and (not self._queue or self._queue[0][0] > until):
            self.now = max(self.now, until)

    def reset(self) -> None:
        """Clear all pending events and rewind the clock."""
        self._queue.clear()
        self.now = 0.0
        self.events_processed = 0
        self._digest = 0
