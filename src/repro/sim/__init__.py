"""Packet-level discrete-event simulation substrate (p2psim substitute).

Provides the event engine, network latency models (including the synthetic
King-like matrix standing in for the King dataset), message size accounting
per the paper's byte model, and per-query cost statistics.
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.king import (
    KING_MEAN_RTT,
    KING_N_HOSTS,
    king_latency_model,
    synthetic_king_matrix,
)
from repro.sim.messages import (
    QueryMessage,
    ResultEntry,
    ResultMessage,
    query_message_size,
    result_message_size,
)
from repro.sim.network import ConstantLatency, EuclideanLatency, LatencyModel, MatrixLatency
from repro.sim.stats import QueryStats, StatsCollector
from repro.sim.transport import (
    FaultConfig,
    JsonlTraceSink,
    MemoryTraceSink,
    MessageTrace,
    Protocol,
    TimerHandle,
    TraceSink,
    Transport,
    TransportStats,
    traffic_class,
)

__all__ = [
    "Simulator",
    "EventHandle",
    "LatencyModel",
    "ConstantLatency",
    "MatrixLatency",
    "EuclideanLatency",
    "synthetic_king_matrix",
    "king_latency_model",
    "KING_N_HOSTS",
    "KING_MEAN_RTT",
    "QueryMessage",
    "ResultMessage",
    "ResultEntry",
    "query_message_size",
    "result_message_size",
    "QueryStats",
    "StatsCollector",
    "Transport",
    "TransportStats",
    "traffic_class",
    "Protocol",
    "FaultConfig",
    "MessageTrace",
    "TimerHandle",
    "TraceSink",
    "MemoryTraceSink",
    "JsonlTraceSink",
]
