"""Message types and the paper's byte-size accounting (§4.1).

The paper models message sizes exactly as::

    query message  = 20 + 4 + n * (2*2*k + 8 + 1)   bytes
    result message = 20 + 6 * entries               bytes

where 20 bytes are the packet header, 4 the source IP, ``n`` the number of
subqueries bundled in the message, ``k`` the number of landmarks (each
subquery ships its k-dimensional rectangle as 2k coordinates of 2 bytes
each), 8 bytes the prefix key and 1 byte the prefix length.

Bundling matters: Algorithm 3 can produce several subqueries sharing a next
hop; the routing layer groups them into a single message, which is what the
``n x`` term models.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass
from collections.abc import Sequence
from typing import Any, TypeVar

__all__ = [
    "query_message_size",
    "result_message_size",
    "register_message",
    "message_schema",
    "message_record",
    "QueryMessage",
    "ResultMessage",
    "ResultEntry",
]

_T = TypeVar("_T")

#: trace schema: message class name -> tuple of its dataclass field names.
#: Trace consumers (replay diffing, span reconciliation, dashboards) treat
#: this as the exhaustive catalogue of what can appear on the wire; the
#: CON302 lint rule enforces that every `*Message` dataclass registers.
_MESSAGE_SCHEMA: dict[str, tuple[str, ...]] = {}


def register_message(cls: type[_T]) -> type[_T]:
    """Class decorator adding a message dataclass to the trace schema."""
    if not is_dataclass(cls):
        raise TypeError(f"{cls.__name__} must be a dataclass to register")
    _MESSAGE_SCHEMA[cls.__name__] = tuple(f.name for f in fields(cls))
    return cls


def message_schema() -> dict[str, tuple[str, ...]]:
    """Snapshot of the registered message trace schema (name -> fields)."""
    return dict(_MESSAGE_SCHEMA)


def message_record(msg: Any) -> dict[str, Any]:
    """Shallow field dict of a registered message instance.

    The compat shim for trace consumers: message dataclasses are
    ``slots=True`` (no ``__dict__``/``vars()``), so consumers that need a
    field mapping — replay diffing, dashboards — read it through the
    registered schema instead.  Shallow on purpose: nested values (e.g.
    ``ResultEntry`` lists) are passed through unconverted, matching what
    ``vars()`` used to return.
    """
    names = _MESSAGE_SCHEMA.get(type(msg).__name__)
    if names is None:
        raise TypeError(f"{type(msg).__name__} is not a registered message")
    return {name: getattr(msg, name) for name in names}

PACKET_HEADER_BYTES = 20
SOURCE_IP_BYTES = 4
COORD_BYTES = 2
PREFIX_KEY_BYTES = 8
PREFIX_LEN_BYTES = 1
RESULT_ENTRY_BYTES = 6


def query_message_size(n_subqueries: int, k: int) -> int:
    """Paper's query-message size model: ``20 + 4 + n (4k + 9)`` bytes."""
    per_subquery = 2 * COORD_BYTES * k + PREFIX_KEY_BYTES + PREFIX_LEN_BYTES
    return PACKET_HEADER_BYTES + SOURCE_IP_BYTES + n_subqueries * per_subquery


def result_message_size(n_entries: int) -> int:
    """Paper's result-message size model: ``20 + 6 * entries`` bytes."""
    return PACKET_HEADER_BYTES + RESULT_ENTRY_BYTES * n_entries


@dataclass(slots=True)
class ResultEntry:
    """One index entry returned to the querier: object id + its distance."""

    object_id: int
    distance: float


@register_message
@dataclass(slots=True)
class QueryMessage:
    """A bundle of subqueries of one original query travelling one DHT link.

    ``kind`` distinguishes the remote procedure being invoked at the
    destination: ``"routing"`` (Algorithm 3) or ``"refine"`` (Algorithm 5 on
    the surrogate/successor).  ``hops`` counts overlay hops travelled so far
    — the paper's *hops* metric is the maximum over all delivery paths.
    """

    qid: int
    subqueries: Sequence[Any]
    kind: str
    hops: int
    k: int

    @property
    def size(self) -> int:
        return query_message_size(len(self.subqueries), self.k)


@register_message
@dataclass(slots=True)
class ResultMessage:
    """Results flowing from an index node back to the querying node."""

    qid: int
    entries: list[ResultEntry] = field(default_factory=list)
    from_node: Any = None

    @property
    def size(self) -> int:
        return result_message_size(len(self.entries))
