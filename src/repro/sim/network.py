"""Network latency models for the packet-level simulation.

The paper derives its network model from the King dataset: pairwise
latencies of 1740 DNS servers with an average simulated RTT of 180 ms
(§4.1).  :mod:`repro.sim.king` synthesises an equivalent matrix; this module
defines the latency-model interface and simpler models used in tests.

Latencies are *one-way* delays in seconds between host indices (a host index
is an endpoint slot in the underlying network, assigned to overlay nodes at
join time).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import as_rng

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "MatrixLatency",
    "EuclideanLatency",
    "CoordinateLatency",
]


class LatencyModel:
    """One-way delay between two host endpoints."""

    #: number of addressable hosts
    n_hosts: int = 0

    def latency(self, a: int, b: int) -> float:
        """One-way delay (seconds) from host ``a`` to host ``b``."""
        raise NotImplementedError

    def latency_row(self, a: int, hosts: np.ndarray) -> np.ndarray:
        """Vectorised delays from ``a`` to each host in ``hosts``.

        Every shipped model overrides this with direct array slicing; the
        base version is the black-box fallback — one scalar lookup per host,
        streamed through ``fromiter`` into a preallocated array (used by PNS
        finger selection, which evaluates many candidates per finger).
        """
        hosts = np.asarray(hosts)
        return np.fromiter(
            (self.latency(a, int(b)) for b in hosts),
            dtype=np.float64,
            count=len(hosts),
        )

    def latency_pairs(self, a_hosts: np.ndarray, b_hosts: np.ndarray) -> np.ndarray:
        """Vectorised delays for aligned host pairs ``(a_hosts[i], b_hosts[i])``.

        The batched-routing hot path: one call prices a whole hop of a bulk
        lookup (``repro.dht.compact``).  Shipped models override this with
        elementwise array math that reproduces the scalar path bit for bit;
        the base version is the black-box ``fromiter`` fallback.
        """
        a_hosts = np.asarray(a_hosts)
        b_hosts = np.asarray(b_hosts)
        return np.fromiter(
            (self.latency(int(x), int(y)) for x, y in zip(a_hosts, b_hosts)),
            dtype=np.float64,
            count=len(a_hosts),
        )

    def mean_rtt(self, sample: int = 2000, seed: int = 0) -> float:
        """Estimate the mean round-trip time over random distinct host pairs.

        Vectorised through :meth:`latency_pairs` — the forward and reverse
        delays of the sampled pairs are batched and summed elementwise, which
        is the same float64 addition order as the scalar loop it replaced.
        """
        rng = as_rng(seed)
        n = self.n_hosts
        a = rng.integers(0, n, size=sample)
        b = rng.integers(0, n, size=sample)
        ok = a != b
        fwd = self.latency_pairs(a[ok], b[ok])
        rev = self.latency_pairs(b[ok], a[ok])
        return float(np.mean(fwd + rev))


class ConstantLatency(LatencyModel):
    """Every distinct pair of hosts is ``delay`` seconds apart (tests, analytics)."""

    def __init__(self, n_hosts: int, delay: float = 0.045) -> None:
        self.n_hosts = n_hosts
        self.delay = float(delay)

    def latency(self, a: int, b: int) -> float:
        return 0.0 if a == b else self.delay

    def latency_row(self, a: int, hosts: np.ndarray) -> np.ndarray:
        hosts = np.asarray(hosts, dtype=np.intp)
        out = np.full(len(hosts), self.delay, dtype=np.float64)
        out[hosts == a] = 0.0
        return out

    def latency_pairs(self, a_hosts: np.ndarray, b_hosts: np.ndarray) -> np.ndarray:
        a_hosts = np.asarray(a_hosts, dtype=np.intp)
        b_hosts = np.asarray(b_hosts, dtype=np.intp)
        out = np.full(len(a_hosts), self.delay, dtype=np.float64)
        out[a_hosts == b_hosts] = 0.0
        return out


class MatrixLatency(LatencyModel):
    """Latency looked up in an explicit ``(n, n)`` one-way delay matrix."""

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("latency matrix must be square")
        if np.any(matrix < 0):
            raise ValueError("latencies must be non-negative")
        self.matrix = matrix
        self.n_hosts = matrix.shape[0]

    def latency(self, a: int, b: int) -> float:
        return float(self.matrix[a, b])

    def latency_row(self, a: int, hosts: np.ndarray) -> np.ndarray:
        return self.matrix[a, np.asarray(hosts, dtype=np.intp)]

    def latency_pairs(self, a_hosts: np.ndarray, b_hosts: np.ndarray) -> np.ndarray:
        return self.matrix[
            np.asarray(a_hosts, dtype=np.intp), np.asarray(b_hosts, dtype=np.intp)
        ]


class EuclideanLatency(LatencyModel):
    """Hosts embedded in a plane; delay proportional to Euclidean distance.

    A cheap stand-in for geographic latency used when a full matrix would be
    wasteful (very large host counts).  ``base`` adds a fixed per-hop
    processing delay.
    """

    def __init__(self, coords: np.ndarray, seconds_per_unit: float, base: float = 0.0) -> None:
        self.coords = np.asarray(coords, dtype=np.float64)
        if self.coords.ndim != 2:
            raise ValueError("coords must be (n_hosts, dim)")
        self.n_hosts = self.coords.shape[0]
        self.seconds_per_unit = float(seconds_per_unit)
        self.base = float(base)

    def latency(self, a: int, b: int) -> float:
        # Delegate to the row kernel so scalar and vectorised lookups share
        # one floating-point path (1-D ``np.linalg.norm`` uses a scaled nrm2
        # that differs from the axis reduction at the last ulp).
        return float(self.latency_row(a, np.array([b], dtype=np.intp))[0])

    def latency_row(self, a: int, hosts: np.ndarray) -> np.ndarray:
        hosts = np.asarray(hosts, dtype=np.intp)
        d = np.linalg.norm(self.coords[hosts] - self.coords[a], axis=1)
        out = self.base + self.seconds_per_unit * d
        out[hosts == a] = 0.0
        return out

    def latency_pairs(self, a_hosts: np.ndarray, b_hosts: np.ndarray) -> np.ndarray:
        a_hosts = np.asarray(a_hosts, dtype=np.intp)
        b_hosts = np.asarray(b_hosts, dtype=np.intp)
        d = np.linalg.norm(self.coords[b_hosts] - self.coords[a_hosts], axis=1)
        out = self.base + self.seconds_per_unit * d
        out[a_hosts == b_hosts] = 0.0
        return out


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a uint64 array (wrapping arithmetic).

    Everything stays an *array* operation: NumPy integer ufuncs wrap
    silently, whereas the scalar path would raise overflow warnings under
    the suite's ``filterwarnings = error``.
    """
    x = x ^ (x >> np.uint64(30))
    x = x * np.uint64(0xBF58476D1CE4E5B9)
    x = x ^ (x >> np.uint64(27))
    x = x * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


class CoordinateLatency(LatencyModel):
    """Lazy synthetic-coordinate latency: O(n·dim) state instead of O(n²).

    Hosts are points in a low-dimensional space; the one-way delay from
    ``a`` to ``b`` is ``floor + seconds_per_unit · dist(a, b) · jitter(a, b)``
    where ``jitter`` is a *directional* lognormal factor computed lazily and
    deterministically from the ordered pair ``(a, b)`` and the model seed —
    no pairwise matrix is ever materialised, so a 100k-host network costs
    ~1.6 MB of coordinates rather than the 80 GB dense matrix.

    The directional jitter makes delays one-way (``latency(a, b) ≠
    latency(b, a)`` in general), mirroring the access-network asymmetry the
    symmetrised King matrix averages out.  Two models with the same seed and
    coordinates agree on every pair; a different seed redraws every jitter.

    See :func:`repro.sim.king.king_coordinate_model` for the constructor
    fitted to the King RTT distribution.
    """

    def __init__(
        self,
        coords: np.ndarray,
        seconds_per_unit: float = 1.0,
        *,
        jitter_sigma: float = 0.0,
        floor: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.coords = np.asarray(coords, dtype=np.float64)
        if self.coords.ndim != 2:
            raise ValueError("coords must be (n_hosts, dim)")
        if jitter_sigma < 0 or floor < 0:
            raise ValueError("jitter_sigma and floor must be non-negative")
        self.n_hosts = self.coords.shape[0]
        self.seconds_per_unit = float(seconds_per_unit)
        self.jitter_sigma = float(jitter_sigma)
        self.floor = float(floor)
        self.seed = int(seed)
        # fold the seed once; per-pair hashing then only mixes indices
        self._seed64 = _mix64(
            np.asarray([self.seed & 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        )

    def _pair_jitter(self, a_hosts: np.ndarray, b_hosts: np.ndarray) -> np.ndarray:
        """Deterministic directional lognormal jitter per ordered pair."""
        from scipy.special import ndtri  # local: keep the sim layer import-light

        a64 = a_hosts.astype(np.uint64, copy=False)
        b64 = b_hosts.astype(np.uint64, copy=False)
        x = _mix64(a64 * np.uint64(0x9E3779B97F4A7C15) + self._seed64)
        x = _mix64(x ^ (b64 * np.uint64(0xD1B54A32D192ED03)))
        # top 53 bits -> u in (0, 1), strictly interior so ndtri is finite
        u = ((x >> np.uint64(11)).astype(np.float64) + 0.5) * 2.0**-53
        return np.exp(self.jitter_sigma * ndtri(u))

    def latency(self, a: int, b: int) -> float:
        # Delegate to the pair kernel so scalar and batched lookups share one
        # floating-point path (same reasoning as EuclideanLatency.latency).
        return float(
            self.latency_pairs(
                np.array([a], dtype=np.intp), np.array([b], dtype=np.intp)
            )[0]
        )

    def latency_row(self, a: int, hosts: np.ndarray) -> np.ndarray:
        hosts = np.asarray(hosts, dtype=np.intp)
        d = np.linalg.norm(self.coords[hosts] - self.coords[a], axis=1)
        if self.jitter_sigma > 0.0:
            d = d * self._pair_jitter(np.full(len(hosts), a, dtype=np.intp), hosts)
        out = self.floor + self.seconds_per_unit * d
        out[hosts == a] = 0.0
        return out

    def latency_pairs(self, a_hosts: np.ndarray, b_hosts: np.ndarray) -> np.ndarray:
        a_hosts = np.asarray(a_hosts, dtype=np.intp)
        b_hosts = np.asarray(b_hosts, dtype=np.intp)
        d = np.linalg.norm(self.coords[b_hosts] - self.coords[a_hosts], axis=1)
        if self.jitter_sigma > 0.0:
            d = d * self._pair_jitter(a_hosts, b_hosts)
        out = self.floor + self.seconds_per_unit * d
        out[a_hosts == b_hosts] = 0.0
        return out
