"""Network latency models for the packet-level simulation.

The paper derives its network model from the King dataset: pairwise
latencies of 1740 DNS servers with an average simulated RTT of 180 ms
(§4.1).  :mod:`repro.sim.king` synthesises an equivalent matrix; this module
defines the latency-model interface and simpler models used in tests.

Latencies are *one-way* delays in seconds between host indices (a host index
is an endpoint slot in the underlying network, assigned to overlay nodes at
join time).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import as_rng

__all__ = ["LatencyModel", "ConstantLatency", "MatrixLatency", "EuclideanLatency"]


class LatencyModel:
    """One-way delay between two host endpoints."""

    #: number of addressable hosts
    n_hosts: int = 0

    def latency(self, a: int, b: int) -> float:
        """One-way delay (seconds) from host ``a`` to host ``b``."""
        raise NotImplementedError

    def latency_row(self, a: int, hosts: np.ndarray) -> np.ndarray:
        """Vectorised delays from ``a`` to each host in ``hosts``.

        Every shipped model overrides this with direct array slicing; the
        base version is the black-box fallback — one scalar lookup per host,
        streamed through ``fromiter`` into a preallocated array (used by PNS
        finger selection, which evaluates many candidates per finger).
        """
        hosts = np.asarray(hosts)
        return np.fromiter(
            (self.latency(a, int(b)) for b in hosts),
            dtype=np.float64,
            count=len(hosts),
        )

    def mean_rtt(self, sample: int = 2000, seed: int = 0) -> float:
        """Estimate the mean round-trip time over random distinct host pairs."""
        rng = as_rng(seed)
        n = self.n_hosts
        a = rng.integers(0, n, size=sample)
        b = rng.integers(0, n, size=sample)
        ok = a != b
        return float(
            np.mean([self.latency(int(x), int(y)) + self.latency(int(y), int(x))
                     for x, y in zip(a[ok], b[ok])])
        )


class ConstantLatency(LatencyModel):
    """Every distinct pair of hosts is ``delay`` seconds apart (tests, analytics)."""

    def __init__(self, n_hosts: int, delay: float = 0.045) -> None:
        self.n_hosts = n_hosts
        self.delay = float(delay)

    def latency(self, a: int, b: int) -> float:
        return 0.0 if a == b else self.delay

    def latency_row(self, a: int, hosts: np.ndarray) -> np.ndarray:
        hosts = np.asarray(hosts, dtype=np.intp)
        out = np.full(len(hosts), self.delay, dtype=np.float64)
        out[hosts == a] = 0.0
        return out


class MatrixLatency(LatencyModel):
    """Latency looked up in an explicit ``(n, n)`` one-way delay matrix."""

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("latency matrix must be square")
        if np.any(matrix < 0):
            raise ValueError("latencies must be non-negative")
        self.matrix = matrix
        self.n_hosts = matrix.shape[0]

    def latency(self, a: int, b: int) -> float:
        return float(self.matrix[a, b])

    def latency_row(self, a: int, hosts: np.ndarray) -> np.ndarray:
        return self.matrix[a, np.asarray(hosts, dtype=np.intp)]


class EuclideanLatency(LatencyModel):
    """Hosts embedded in a plane; delay proportional to Euclidean distance.

    A cheap stand-in for geographic latency used when a full matrix would be
    wasteful (very large host counts).  ``base`` adds a fixed per-hop
    processing delay.
    """

    def __init__(self, coords: np.ndarray, seconds_per_unit: float, base: float = 0.0) -> None:
        self.coords = np.asarray(coords, dtype=np.float64)
        if self.coords.ndim != 2:
            raise ValueError("coords must be (n_hosts, dim)")
        self.n_hosts = self.coords.shape[0]
        self.seconds_per_unit = float(seconds_per_unit)
        self.base = float(base)

    def latency(self, a: int, b: int) -> float:
        # Delegate to the row kernel so scalar and vectorised lookups share
        # one floating-point path (1-D ``np.linalg.norm`` uses a scaled nrm2
        # that differs from the axis reduction at the last ulp).
        return float(self.latency_row(a, np.array([b], dtype=np.intp))[0])

    def latency_row(self, a: int, hosts: np.ndarray) -> np.ndarray:
        hosts = np.asarray(hosts, dtype=np.intp)
        d = np.linalg.norm(self.coords[hosts] - self.coords[a], axis=1)
        out = self.base + self.seconds_per_unit * d
        out[hosts == a] = 0.0
        return out
