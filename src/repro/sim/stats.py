"""Per-query and system-wide cost metrics (paper §4.1).

The paper's evaluation metrics:

1. **hops** — maximum overlay path length needed to deliver a query to all
   of its index nodes;
2. **response time** — elapsed time from injecting the query to receiving
   the *first* result;
3. **maximum latency** — elapsed time until responses from *all* index nodes
   arrived;
4. **bandwidth cost** — total bytes for query delivery plus result delivery;
5. **recall** — ``|X ∩ Y| / |X|`` of the top-k (k = 10) result sets versus
   exact search.

:class:`QueryStats` accumulates 1–4 during simulation; recall is computed by
:mod:`repro.eval.metrics` against ground truth afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["QueryStats", "StatsCollector"]


@dataclass
class QueryStats:
    """Cost accumulators for one query (identified by ``qid``)."""

    qid: int
    issued_at: float = 0.0
    first_result_at: float | None = None
    last_result_at: float | None = None
    max_hops: int = 0
    query_bytes: int = 0
    result_bytes: int = 0
    query_messages: int = 0
    result_messages: int = 0
    #: messages that arrived at a crashed node and were lost (churn runs)
    dropped_messages: int = 0
    index_nodes: set[int] = field(default_factory=set)
    entries: list[Any] = field(default_factory=list)
    #: lifecycle state mirror ("untracked" when no LifecycleEngine is wired;
    #: otherwise issued/routing/resolving/complete/timed_out)
    state: str = "untracked"
    #: simulation time the query reached a terminal state (engine-tracked)
    completed_at: float | None = None
    #: message branches re-sent by the lifecycle engine (retries are real
    #: traffic: their bytes land in query_bytes like any other send)
    retransmissions: int = 0
    #: duplicate deliveries suppressed by idempotent branch ids
    duplicate_messages: int = 0
    #: branches abandoned after exhausting retries
    failed_branches: int = 0

    @property
    def terminal(self) -> bool:
        """True once an engine-tracked query completed or timed out."""
        return self.state in ("complete", "timed_out")

    @property
    def response_time(self) -> float | None:
        """Time to first result, or None if nothing ever came back."""
        if self.first_result_at is None:
            return None
        return self.first_result_at - self.issued_at

    @property
    def max_latency(self) -> float | None:
        """Time to last result, or None if nothing ever came back."""
        if self.last_result_at is None:
            return None
        return self.last_result_at - self.issued_at

    @property
    def total_bytes(self) -> int:
        """Query-delivery plus result-delivery bandwidth."""
        return self.query_bytes + self.result_bytes

    def record_query_message(self, size: int) -> None:
        self.query_messages += 1
        self.query_bytes += size

    def record_result_message(self, size: int, at: float) -> None:
        self.result_messages += 1
        self.result_bytes += size
        if self.first_result_at is None or at < self.first_result_at:
            self.first_result_at = at
        if self.last_result_at is None or at > self.last_result_at:
            self.last_result_at = at

    def record_index_node(self, node_id: int, hops: int) -> None:
        self.index_nodes.add(node_id)
        if hops > self.max_hops:
            self.max_hops = hops


class StatsCollector:
    """All per-query stats of a simulation run, with aggregate views.

    ``maintenance_bytes``/``maintenance_messages`` hold the stabilisation
    (maintenance-class) traffic of the run that produced these queries —
    filled by ``IndexPlatform.run_workload`` from the transport's per-class
    byte counters, so summaries separate the cost of answering queries from
    the background cost of keeping the overlay alive (Fig. 3/5).
    """

    def __init__(self) -> None:
        self.queries: dict[int, QueryStats] = {}
        self.maintenance_bytes: int = 0
        self.maintenance_messages: int = 0

    def for_query(self, qid: int) -> QueryStats:
        """Get (or create) the accumulator for ``qid``."""
        try:
            return self.queries[qid]
        except KeyError:
            qs = QueryStats(qid=qid)
            self.queries[qid] = qs
            return qs

    def __len__(self) -> int:
        return len(self.queries)

    # -- aggregates ----------------------------------------------------------

    def _collect(self, attr: str) -> np.ndarray:
        vals = []
        for qs in self.queries.values():
            v = getattr(qs, attr)
            if v is not None:
                vals.append(v)
        return np.asarray(vals, dtype=np.float64)

    def mean_hops(self) -> float:
        return float(self._collect("max_hops").mean()) if self.queries else 0.0

    def mean_response_time(self) -> float:
        v = self._collect("response_time")
        return float(v.mean()) if v.size else float("nan")

    def mean_max_latency(self) -> float:
        v = self._collect("max_latency")
        return float(v.mean()) if v.size else float("nan")

    def mean_total_bytes(self) -> float:
        return float(self._collect("total_bytes").mean()) if self.queries else 0.0

    def mean_query_bytes(self) -> float:
        return float(self._collect("query_bytes").mean()) if self.queries else 0.0

    def mean_result_bytes(self) -> float:
        return float(self._collect("result_bytes").mean()) if self.queries else 0.0

    def mean_query_messages(self) -> float:
        return float(self._collect("query_messages").mean()) if self.queries else 0.0

    def mean_index_nodes(self) -> float:
        if not self.queries:
            return 0.0
        return float(np.mean([len(q.index_nodes) for q in self.queries.values()]))

    def state_counts(self) -> dict[str, int]:
        """Queries per lifecycle state (``{"complete": 48, "timed_out": 2}``)."""
        out: dict[str, int] = {}
        for qs in self.queries.values():
            out[qs.state] = out.get(qs.state, 0) + 1
        return out

    def total_retransmissions(self) -> int:
        return sum(qs.retransmissions for qs in self.queries.values())

    def total_timed_out(self) -> int:
        return sum(1 for qs in self.queries.values() if qs.state == "timed_out")

    def summary(self) -> dict[str, float]:
        """All aggregate metrics as a flat dict (one row of a results table)."""
        return {
            "queries": float(len(self.queries)),
            "hops": self.mean_hops(),
            "response_time": self.mean_response_time(),
            "max_latency": self.mean_max_latency(),
            "query_bytes": self.mean_query_bytes(),
            "result_bytes": self.mean_result_bytes(),
            "total_bytes": self.mean_total_bytes(),
            "query_messages": self.mean_query_messages(),
            "index_nodes": self.mean_index_nodes(),
            "timed_out": float(self.total_timed_out()),
            "retransmissions": float(self.total_retransmissions()),
            "maintenance_bytes": float(self.maintenance_bytes),
            "maintenance_messages": float(self.maintenance_messages),
        }
