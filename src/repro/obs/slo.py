"""SLO declarations and burn-rate evaluation over recorded series.

Speed regressions are gated by ``BENCH_*.json``; this module gates
*behavior*.  An :class:`SLO` declares a target over one named series —
per-chunk p99 routing latency, per-chunk hop p99, drop rate, final load
Gini, health-sampler cadence, stabilization convergence time — and
:func:`evaluate_slos` scores each against the series a run produced
(:meth:`repro.core.scale.ScaleSimulation.slo_series` builds the standard
mapping for the scale path; any ``{name: [values]}`` dict works).

Scoring follows the error-budget model: an SLO with ``objective`` 0.95
tolerates 5% bad samples; the **burn rate** is the ratio of the observed
bad fraction to the tolerated one, so burn ≤ 1.0 means the run stayed
inside its budget and burn 2.0 means it burned budget twice as fast as
allowed.  An ``objective`` of 1.0 declares a hard floor: a single bad
sample yields an infinite burn rate and fails the SLO.  The CI gate
(``repro slo``) fails the build when any SLO in the catalogue burns hot —
a *behavioral* regression gate alongside the performance one.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "SLO",
    "SloResult",
    "SloReport",
    "burn_rate",
    "evaluate_slo",
    "evaluate_slos",
    "DEFAULT_SCALE_SLOS",
]


@dataclass(frozen=True)
class SLO:
    """One service-level objective over a named series.

    A sample ``v`` is *good* when ``v <op> threshold`` holds (``op`` is
    ``"<="`` or ``">="``); the SLO passes when at least ``objective`` of
    the samples are good — equivalently, when the burn rate is ≤ 1.
    """

    name: str
    series: str
    threshold: float
    op: str = "<="
    objective: float = 1.0
    unit: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in ("<=", ">="):
            raise ValueError(f"{self.name}: op must be '<=' or '>=', got {self.op!r}")
        if not 0.0 < self.objective <= 1.0:
            raise ValueError(f"{self.name}: objective must be in (0, 1], got {self.objective}")

    def is_good(self, value: float) -> bool:
        if math.isnan(value):
            return False
        return value <= self.threshold if self.op == "<=" else value >= self.threshold


def burn_rate(good_fraction: float, objective: float) -> float:
    """Observed bad fraction over the tolerated bad fraction.

    ``objective == 1.0`` has a zero error budget: any badness is an
    infinite burn, perfection is 0.
    """
    bad = max(0.0, 1.0 - good_fraction)
    budget = 1.0 - objective
    if budget <= 0.0:
        return 0.0 if bad == 0.0 else math.inf
    return bad / budget


@dataclass
class SloResult:
    """Outcome of one SLO over one series."""

    slo: SLO
    total: int
    good: int
    worst: float
    burn: float
    passed: bool

    @property
    def good_fraction(self) -> float:
        return self.good / self.total if self.total else 1.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.slo.name,
            "series": self.slo.series,
            "threshold": self.slo.threshold,
            "op": self.slo.op,
            "objective": self.slo.objective,
            "total": self.total,
            "good": self.good,
            "good_fraction": self.good_fraction,
            "worst": None if math.isnan(self.worst) else self.worst,
            "burn_rate": None if math.isinf(self.burn) else self.burn,
            "passed": self.passed,
        }


def evaluate_slo(slo: SLO, values: Sequence[float]) -> SloResult:
    """Score one SLO; an empty/missing series fails it (no evidence)."""
    vals = [float(v) for v in values]
    if not vals:
        return SloResult(slo, total=0, good=0, worst=math.nan, burn=math.inf, passed=False)
    good = sum(1 for v in vals if slo.is_good(v))
    finite = [v for v in vals if not math.isnan(v)]
    if not finite:
        worst = math.nan
    elif slo.op == "<=":
        worst = max(finite)
    else:
        worst = min(finite)
    burn = burn_rate(good / len(vals), slo.objective)
    return SloResult(slo, total=len(vals), good=good, worst=worst, burn=burn,
                     passed=burn <= 1.0)


@dataclass
class SloReport:
    """Every SLO's result for one run, plus the overall verdict."""

    results: list[SloResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.passed for r in self.results)

    def failed(self) -> list[SloResult]:
        return [r for r in self.results if not r.passed]

    def to_dict(self) -> dict[str, Any]:
        return {"ok": self.ok, "slos": [r.to_dict() for r in self.results]}

    def format(self) -> str:
        """Aligned verdict table (the ``repro slo`` output)."""
        rows = []
        for r in self.results:
            s = r.slo
            target = f"{s.op} {s.threshold:g}{s.unit}"
            worst = "n/a" if math.isnan(r.worst) else f"{r.worst:g}{s.unit}"
            burn = "inf" if math.isinf(r.burn) else f"{r.burn:.2f}"
            rows.append((
                r.slo.name, target, f"{r.good}/{r.total}",
                f"{s.objective:.0%}", worst, burn,
                "PASS" if r.passed else "FAIL",
            ))
        headers = ("slo", "target", "good", "objective", "worst", "burn", "verdict")
        widths = [max(len(h), *(len(row[i]) for row in rows)) if rows else len(h)
                  for i, h in enumerate(headers)]
        fmt = "  ".join(f"{{:<{w}}}" for w in widths)
        lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
        lines += [fmt.format(*row) for row in rows]
        lines.append(
            f"\n{sum(r.passed for r in self.results)}/{len(self.results)} SLOs met"
            + ("" if self.ok else " — BUDGET BURNED")
        )
        return "\n".join(lines)


def evaluate_slos(
    slos: Sequence[SLO], series: Mapping[str, Sequence[float]]
) -> SloReport:
    """Score a catalogue of SLOs against a ``{series_name: values}`` map."""
    return SloReport([evaluate_slo(s, series.get(s.series, ())) for s in slos])


#: The default catalogue for the scale path, evaluated over the series of
#: :meth:`repro.core.scale.ScaleSimulation.slo_series`.  Thresholds carry
#: headroom above the measured defaults (mean hops ≈ ½·log2(n), chunk p99
#: latency ≈ 1s on the King-calibrated coordinate model at 100k nodes) so
#: they flag behavioral regressions, not noise.  The storage-balance floor
#: sits just above the ~0.95 Gini the clustered Table-1 data measures on
#: locality-preserving hashing — the imbalance the paper's §3.4 dynamic
#: balancing exists to fix — so it catches drift, not the known skew.
DEFAULT_SCALE_SLOS: tuple[SLO, ...] = (
    SLO(
        "query_latency_p99", series="chunk_latency_p99_s", threshold=2.5,
        op="<=", objective=0.95, unit="s",
        description="per-chunk p99 end-to-end routing latency",
    ),
    SLO(
        "query_hops_p99", series="chunk_hops_p99", threshold=24.0,
        op="<=", objective=0.95,
        description="per-chunk p99 forwarding hops (log n routing holds)",
    ),
    SLO(
        "drop_rate", series="chunk_dropped_frac", threshold=0.01,
        op="<=", objective=0.99,
        description="fraction of queries past the hop deadline per chunk",
    ),
    SLO(
        "storage_balance", series="storage_gini", threshold=0.98, op="<=",
        description="Gini of stored entries per node (Fig. 4 analogue)",
    ),
    SLO(
        "forwarding_balance", series="forwarding_gini", threshold=0.9, op="<=",
        description="Gini of forwarding visits per node (Fig. 6 analogue)",
    ),
    SLO(
        "recall_floor", series="local_hit_rate", threshold=0.05, op=">=",
        description="fraction of sampled owner-side range searches with hits",
    ),
    SLO(
        "health_cadence", series="health_cadence_ratio", threshold=0.9, op=">=",
        description="health samples per simulated chunk-second",
    ),
)
