"""Exporters: registry / health / span data out as JSONL, CSV, Prometheus text.

All three formats read the same flat sample records that
:meth:`MetricsRegistry.snapshot` produces, so the bench harness, the CLI and
tests share one code path.  ``target`` is a path or a file-like object
everywhere; file-backed writes always flush-and-close via ``with``.
"""

from __future__ import annotations

import csv
import io
import json
import math
import re
from collections.abc import Iterator
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.obs.registry import MetricsRegistry

__all__ = [
    "write_jsonl",
    "write_csv",
    "read_metrics_jsonl",
    "prometheus_text",
    "prometheus_text_from_rows",
    "write_prometheus",
    "export_metrics",
    "format_metrics_table",
    "format_metrics_rows",
]

_LABEL_UNSAFE = re.compile(r"[^a-zA-Z0-9_]")


@contextmanager
def _open_target(target: Any, newline: str | None = None) -> Iterator[Any]:
    if hasattr(target, "write"):
        yield target
    else:
        with open(target, "w", newline=newline) as fh:
            yield fh


def _flatten(rec: dict[str, Any]) -> dict[str, Any]:
    """Inline the labels dict so rows are flat for CSV/table output."""
    out = {k: v for k, v in rec.items() if k != "labels"}
    for k, v in rec.get("labels", {}).items():
        out[f"label_{k}"] = v
    return out


def write_jsonl(rows: list[dict[str, Any]], target: Any) -> None:
    """One JSON object per line; NaN encoded as null for portability."""

    def _clean(v: Any) -> Any:
        return None if isinstance(v, float) and math.isnan(v) else v

    with _open_target(target) as fh:
        for row in rows:
            fh.write(json.dumps({k: _clean(v) for k, v in row.items()},
                                default=str) + "\n")


def write_csv(rows: list[dict[str, Any]], target: Any) -> None:
    """CSV over the union of keys (labels inlined as ``label_<name>``)."""
    flat = [_flatten(r) for r in rows]
    fields: list[str] = []
    for r in flat:
        for k in r:
            if k not in fields:
                fields.append(k)
    with _open_target(target, newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields, restval="")
        writer.writeheader()
        writer.writerows(flat)


def read_metrics_jsonl(target: Any) -> list[dict[str, Any]]:
    """Load snapshot rows back from a JSONL file (inverse of ``write_jsonl``).

    JSON has no NaN, so ``write_jsonl`` stores it as null; restore the NaN
    here so percentile fields round-trip with the in-memory contract.
    """
    if hasattr(target, "read"):
        lines = target.read().splitlines()
    else:
        with open(target) as fh:
            lines = fh.read().splitlines()
    rows = []
    for line in lines:
        if not line.strip():
            continue
        rec = json.loads(line)
        for k, v in rec.items():
            if v is None and k != "labels":
                rec[k] = float("nan")
        rows.append(rec)
    return rows


def _fmt_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{_LABEL_UNSAFE.sub("_", k)}="{str(v)}"' for k, v in merged.items())
    return "{" + body + "}"


def _fmt_value(v: float) -> str:
    if isinstance(v, float) and math.isnan(v):
        return "NaN"
    return repr(float(v))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus exposition-format text for every instrument.

    Histograms are rendered as summaries (``quantile`` label) plus
    ``_sum``/``_count`` — the registry snapshots pre-computed percentiles
    rather than raw buckets, which is what the CLI and artifacts want.
    """
    return prometheus_text_from_rows(registry.snapshot())


def prometheus_text_from_rows(rows: list[dict[str, Any]]) -> str:
    """Prometheus text from flat snapshot rows (live or reloaded JSONL).

    The same rows :meth:`MetricsRegistry.snapshot` produces — which is also
    what :func:`read_metrics_jsonl` returns — so the HTTP ops endpoint can
    re-export a *recorded* metrics stream from a running simulation's
    artifacts without holding the registry in-process.
    """
    buf = io.StringIO()
    seen: set[str] = set()
    for rec in rows:
        name = rec["name"]
        if name not in seen:
            seen.add(name)
            if rec.get("help"):
                buf.write(f"# HELP {name} {rec['help']}\n")
            kind = "summary" if rec["type"] == "histogram" else rec["type"]
            buf.write(f"# TYPE {name} {kind}\n")
        labels = rec.get("labels", {})
        if rec["type"] == "histogram":
            for q in ("p50", "p90", "p99"):
                quantile = f"0.{q[1:]}"
                buf.write(
                    f"{name}{_fmt_labels(labels, {'quantile': quantile})} "
                    f"{_fmt_value(rec[q])}\n")
            buf.write(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(rec['sum'])}\n")
            buf.write(f"{name}_count{_fmt_labels(labels)} {_fmt_value(rec['count'])}\n")
        else:
            buf.write(f"{name}{_fmt_labels(labels)} {_fmt_value(rec['value'])}\n")
    return buf.getvalue()


def write_prometheus(registry: MetricsRegistry, target: Any) -> None:
    with _open_target(target) as fh:
        fh.write(prometheus_text(registry))


def export_metrics(registry: MetricsRegistry, target: Any, fmt: str = "jsonl") -> None:
    """Dump a registry snapshot in one of ``jsonl``/``csv``/``prom``."""
    if fmt == "jsonl":
        write_jsonl(registry.snapshot(), target)
    elif fmt == "csv":
        write_csv(registry.snapshot(), target)
    elif fmt in ("prom", "prometheus", "text"):
        write_prometheus(registry, target)
    else:
        raise ValueError(f"unknown metrics format {fmt!r}")


def format_metrics_rows(records: list[dict[str, Any]], prefix: str = "") -> str:
    """Aligned plain-text summary of snapshot rows (live or reloaded).

    ``records`` come from :meth:`MetricsRegistry.snapshot` or from a JSONL
    file via :func:`read_metrics_jsonl` — the same table either way, which is
    how ``repro metrics`` renders recorded artifacts.
    """
    rows: list[tuple[str, str]] = []
    for rec in records:
        if prefix and not rec["name"].startswith(prefix):
            continue
        label = rec["name"]
        if rec.get("labels"):
            label += "{" + ",".join(f"{k}={v}" for k, v in rec["labels"].items()) + "}"
        if rec["type"] == "histogram":
            val = (f"count={rec['count']:.0f} sum={rec['sum']:.4g} "
                   f"p50={rec['p50']:.4g} p90={rec['p90']:.4g} p99={rec['p99']:.4g}")
        else:
            val = f"{rec['value']:.6g}"
        rows.append((label, val))
    if not rows:
        return "(no metrics recorded)"
    width = max(len(r[0]) for r in rows)
    return "\n".join(f"{name:<{width}}  {val}" for name, val in rows)


def format_metrics_table(registry: MetricsRegistry, prefix: str = "") -> str:
    """Aligned plain-text summary (the ``repro metrics`` output)."""
    return format_metrics_rows(registry.snapshot(), prefix=prefix)
