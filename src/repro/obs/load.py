"""Per-node load gauges and the Gini / max-mean hotspot report.

The load-distribution figures (Fig. 4, Fig. 6) and the §3.4 balancer both
need the same thing: a per-node vector of stored entries (storage load) and
of query hits (access load).  This module gives those vectors a home in the
metrics registry — ``node_stored_entries`` / ``node_query_hits`` gauges
labeled by node position — and turns any such gauge back into a sorted
vector plus a hotspot summary (max, mean, Gini coefficient, max/mean ratio,
top-k hotspots) reusing :mod:`repro.eval.metrics`.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.obs.registry import MetricsRegistry

__all__ = [
    "STORED_ENTRIES_GAUGE",
    "QUERY_HITS_GAUGE",
    "gini_coefficient",
    "load_summary",
    "record_load_vector",
    "gauge_vector",
    "hotspot_report",
    "format_hotspot_report",
]

STORED_ENTRIES_GAUGE = "node_stored_entries"
QUERY_HITS_GAUGE = "node_query_hits"


def gini_coefficient(loads: np.ndarray) -> float:
    """Gini coefficient of the load distribution (0 = even, →1 = concentrated)."""
    x = np.sort(np.asarray(loads, dtype=np.float64))
    n = len(x)
    total = x.sum()
    if n == 0 or total == 0:
        return 0.0
    cum = np.cumsum(x)
    return float((n + 1 - 2 * (cum / total).sum()) / n)


def load_summary(loads: np.ndarray) -> dict[str, float]:
    """Summary statistics of a per-node load vector (Figures 4 & 6)."""
    loads = np.asarray(loads, dtype=np.float64)
    if len(loads) == 0:
        return {"max": 0.0, "mean": 0.0, "nonzero": 0.0, "gini": 0.0, "max_over_mean": 0.0}
    mean = float(loads.mean())
    return {
        "max": float(loads.max()),
        "mean": mean,
        "nonzero": float(np.count_nonzero(loads)),
        "gini": gini_coefficient(loads),
        "max_over_mean": float(loads.max() / mean) if mean > 0 else 0.0,
    }


def record_load_vector(registry: MetricsRegistry, loads: Any,
                       metric: str = STORED_ENTRIES_GAUGE,
                       extra_labels: tuple[str, ...] = (),
                       extra_values: tuple[str, ...] = ()) -> None:
    """Set one gauge sample per node position from a load vector.

    ``extra_labels``/``extra_values`` let callers partition the gauge (e.g.
    by scheme in the Fig. 4 bench: ``("scheme",)`` / ``("scrap",)``).
    """
    gauge = registry.gauge(
        metric, "Per-node load vector", extra_labels + ("pos",))
    arr = np.asarray(loads, dtype=float)
    gauge.set_many(
        arr.tolist(),
        [extra_values + (str(pos),) for pos in range(len(arr))],
    )


def gauge_vector(registry: MetricsRegistry, metric: str = STORED_ENTRIES_GAUGE,
                 match: dict[str, str] | None = None) -> np.ndarray:
    """Read a per-node gauge back as a vector ordered by the ``pos`` label.

    ``match`` filters on other label values (e.g. ``{"scheme": "scrap"}``).
    Returns an empty array when the metric does not exist.
    """
    gauge = registry.get(metric)
    if gauge is None:
        return np.empty(0, dtype=float)
    idx = {name: i for i, name in enumerate(gauge.labelnames)}
    pos_i = idx.get("pos")
    out: list[tuple[int, float]] = []
    for labels, value in gauge.samples():
        if match and any(labels[idx[k]] != v for k, v in match.items() if k in idx):
            continue
        pos = int(labels[pos_i]) if pos_i is not None else len(out)
        out.append((pos, float(value)))
    out.sort()
    return np.asarray([v for _, v in out], dtype=float)


def hotspot_report(loads: Any, top_k: int = 5) -> dict[str, Any]:
    """Hotspot summary of a load vector: Fig. 4/6 statistics + top-k nodes."""
    loads = np.asarray(loads, dtype=float)
    report = load_summary(loads)
    order = np.argsort(loads)[::-1][:top_k]
    report["hotspots"] = [
        {"pos": int(i), "load": float(loads[i])} for i in order if loads.size]
    return report


def format_hotspot_report(report: dict[str, Any], title: str = "load") -> str:
    """Render a hotspot report as the small table ``repro metrics`` prints."""
    lines = [
        f"{title}: max={report['max']:.1f} mean={report['mean']:.2f} "
        f"gini={report['gini']:.3f} max/mean={report['max_over_mean']:.2f} "
        f"nonzero={int(report['nonzero'])}"
    ]
    for h in report.get("hotspots", []):
        lines.append(f"  hotspot node[{h['pos']}] load={h['load']:.1f}")
    return "\n".join(lines)
