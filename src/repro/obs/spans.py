"""Qid-correlated span tracing: one stream for a query's whole execution.

Before this module the record of one query was scattered across three
disjoint streams: the transport's :class:`~repro.sim.transport.MessageTrace`
records (per-message, terminal state only), the lifecycle engine's branch
counters, and :class:`~repro.core.trace.TraceEvent` routing-tree events
(per-protocol, memory only).  A :class:`SpanRecorder` unifies them: every
subsystem emits :class:`Span` records carrying the query id, a span id and a
*parent* span id into one fan-out, so the full embedded-tree execution of a
query — issue, message sends, retransmissions, drops, routing splits,
surrogate refinements, local solves, result arrivals, completion — is
reconstructable from a single stream (:class:`SpanTree`).

Parent propagation uses the fact that the simulator is single-threaded: the
recorder keeps a *current-span stack*.  A protocol pushes the span of the
message being processed before invoking the handler; any span emitted inside
(a routing step, a nested send) picks the stack top as its parent; the stack
is popped in a ``finally``.  Across the asynchronous send/deliver boundary
the parent id rides along as an explicit message argument (see
``QueryProtocol._tracked_send``).

Sinks mirror the transport's trace sinks: :class:`MemorySpanSink` for tests
and notebooks, :class:`JsonlSpanSink` streaming one JSON object per span.
All file-backed sinks are context managers and flush on close, so a crashed
run cannot leave a truncated trace file behind (use ``with`` or
``try/finally``).
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Self

if TYPE_CHECKING:
    from repro.sim.engine import Simulator

__all__ = [
    "Span",
    "SpanSink",
    "MemorySpanSink",
    "JsonlSpanSink",
    "SpanRecorder",
    "SpanTree",
    "spans_from_query_trace",
    "reconcile_with_stats",
]


@dataclass
class Span:
    """One unit of a query's execution.

    ``sid`` is unique per recorder; ``parent`` is the sid of the enclosing
    span (``None`` for the per-query root).  Event-like spans have
    ``end == start``; interval spans (the root ``query`` span, spans still
    open when a run is flushed) may have ``end`` of ``None`` until finished.
    """

    sid: int
    qid: int | None
    kind: str
    parent: int | None = None
    node: int | None = None
    start: float = 0.0
    end: float | None = None
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


class SpanSink:
    """Receives each :class:`Span` once, when the recorder emits it."""

    def record(self, span: Span) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    def __enter__(self) -> Self:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class MemorySpanSink(SpanSink):
    """Keeps spans in a list, with the filters tests and the CLI want."""

    def __init__(self) -> None:
        self.records: list[Span] = []

    def record(self, span: Span) -> None:
        self.records.append(span)

    def __len__(self) -> int:
        return len(self.records)

    def for_query(self, qid: int) -> list[Span]:
        return [s for s in self.records if s.qid == qid]

    def by_kind(self, kind: str) -> list[Span]:
        return [s for s in self.records if s.kind == kind]

    def qids(self) -> set[int]:
        return {s.qid for s in self.records if s.qid is not None}


class JsonlSpanSink(SpanSink):
    """Streams spans as JSON lines to a path or file-like object.

    A context manager; :meth:`close` flushes before closing and is safe to
    call twice, so ``with JsonlSpanSink(path) as sink: ...`` guarantees a
    complete file even when the body raises.
    """

    def __init__(self, target: Any) -> None:
        if hasattr(target, "write"):
            self._fh = target
            self._owns = False
        else:
            self._fh = open(target, "w")
            self._owns = True
        self._closed = False

    def record(self, span: Span) -> None:
        self._fh.write(json.dumps(span.to_dict()) + "\n")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._fh.flush()
        if self._owns:
            self._fh.close()


class SpanRecorder:
    """Allocates span ids, tracks the current-span stack, fans out to sinks.

    One recorder serves any number of concurrent queries (spans are
    qid-tagged); bind it to a simulator with :meth:`bind` so spans get
    simulation timestamps.  Event spans (:meth:`event`) are emitted
    immediately; interval spans (:meth:`begin`/:meth:`finish`) are emitted at
    finish time, and :meth:`flush_open` emits whatever is still open (with
    ``end=None``) so an aborted run still leaves a readable stream.
    """

    def __init__(self, *sinks: SpanSink) -> None:
        self.sinks: list[SpanSink] = list(sinks)
        self._sim = None
        self._next_sid = 0
        self._stack: list[int] = []
        #: open per-query root spans, finished by the lifecycle engine
        self._query_roots: dict[int, Span] = {}
        #: other open interval spans
        self._open: dict[int, Span] = {}

    # -- wiring ----------------------------------------------------------------

    def bind(self, sim: Simulator) -> None:
        """Timestamp spans from this simulator's clock from now on."""
        self._sim = sim

    def add_sink(self, sink: SpanSink) -> None:
        self.sinks.append(sink)

    def now(self) -> float:
        return self._sim.now if self._sim is not None else 0.0

    # -- current-span stack -----------------------------------------------------

    def push(self, sid: int) -> None:
        self._stack.append(sid)

    def pop(self) -> None:
        self._stack.pop()

    def current(self) -> int | None:
        return self._stack[-1] if self._stack else None

    def context(self, qid: int | None) -> int | None:
        """The parent for a new span: the stack top, else the query root."""
        if self._stack:
            return self._stack[-1]
        root = self._query_roots.get(qid)
        return root.sid if root is not None else None

    # -- emission ---------------------------------------------------------------

    def _alloc(self) -> int:
        sid = self._next_sid
        self._next_sid += 1
        return sid

    def _emit(self, span: Span) -> None:
        for sink in self.sinks:
            sink.record(span)

    def event(
        self,
        qid: int | None,
        kind: str,
        parent: int | None = None,
        node: int | None = None,
        status: str = "ok",
        **attrs: Any,
    ) -> int:
        """Emit an instantaneous span; returns its sid (usable as a parent)."""
        t = self.now()
        span = Span(
            sid=self._alloc(), qid=qid, kind=kind,
            parent=parent if parent is not None else self.context(qid),
            node=node, start=t, end=t, status=status, attrs=attrs,
        )
        self._emit(span)
        return span.sid

    def begin(
        self,
        qid: int | None,
        kind: str,
        parent: int | None = None,
        node: int | None = None,
        **attrs: Any,
    ) -> Span:
        """Open an interval span (emitted when finished or flushed)."""
        span = Span(
            sid=self._alloc(), qid=qid, kind=kind,
            parent=parent if parent is not None else self.context(qid),
            node=node, start=self.now(), attrs=attrs,
        )
        self._open[span.sid] = span
        return span

    def finish(self, span: Span, status: str = "ok") -> None:
        if self._open.pop(span.sid, None) is None:
            return  # already finished or flushed
        span.end = self.now()
        span.status = status
        self._emit(span)

    # -- per-query roots ----------------------------------------------------------

    def begin_query(self, qid: int, **attrs: Any) -> Span:
        """Open the root span of ``qid`` (idempotent; returns the root)."""
        root = self._query_roots.get(qid)
        if root is None:
            root = Span(
                sid=self._alloc(), qid=qid, kind="query",
                parent=None, start=self.now(), attrs=attrs,
            )
            self._query_roots[qid] = root
        return root

    def root_sid(self, qid: int) -> int | None:
        root = self._query_roots.get(qid)
        return root.sid if root is not None else None

    def finish_query(self, qid: int, status: str = "complete") -> None:
        root = self._query_roots.pop(qid, None)
        if root is None:
            return
        root.end = self.now()
        root.status = status
        self._emit(root)

    # -- teardown -----------------------------------------------------------------

    def flush_open(self) -> None:
        """Emit every still-open span with ``end=None`` (aborted runs)."""
        for span in list(self._query_roots.values()):
            self._emit(span)
        self._query_roots.clear()
        for span in list(self._open.values()):
            self._emit(span)
        self._open.clear()

    def close(self) -> None:
        self.flush_open()
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> Self:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SpanTree:
    """Parent/child reconstruction of one query's spans, with ASCII render."""

    def __init__(self, spans: list[Span]) -> None:
        self.spans = sorted(spans, key=lambda s: (s.start, s.sid))
        self.by_sid = {s.sid: s for s in self.spans}
        self.children: dict[int | None, list[Span]] = {}
        for s in self.spans:
            parent = s.parent if s.parent in self.by_sid else None
            self.children.setdefault(parent, []).append(s)

    @classmethod
    def from_records(
        cls, records: Iterable[Span | dict[str, Any]], qid: int | None = None
    ) -> SpanTree:
        """Build from Span objects or JSONL dicts; later duplicate sids win
        (an interval span flushed open and later finished)."""
        merged: dict[int, Span] = {}
        for r in records:
            span = r if isinstance(r, Span) else Span(**r)
            if qid is not None and span.qid != qid:
                continue
            merged[span.sid] = span
        return cls(list(merged.values()))

    @classmethod
    def from_jsonl(cls, path: str, qid: int | None = None) -> SpanTree:
        with open(path) as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        return cls.from_records(records, qid=qid)

    def roots(self) -> list[Span]:
        return self.children.get(None, [])

    def of_kind(self, kind: str) -> list[Span]:
        return [s for s in self.spans if s.kind == kind]

    def leaves(self) -> list[Span]:
        return [s for s in self.spans if s.sid not in self.children]

    def __len__(self) -> int:
        return len(self.spans)

    def _label(self, s: Span) -> str:
        bits = [s.kind]
        if s.node is not None:
            bits.append(f"@{s.node}")
        a = s.attrs or {}
        if "msg_kind" in a:
            bits.append(str(a["msg_kind"]))
        if "hops" in a:
            bits.append(f"h={a['hops']}")
        if "attempt" in a and a["attempt"] != 1:
            bits.append(f"try{a['attempt']}")
        if "size" in a and a["size"]:
            bits.append(f"{a['size']}B")
        if "results" in a:
            bits.append(f"{a['results']} results")
        if s.status not in ("ok", "complete"):
            bits.append(f"[{s.status}]")
        dur = s.duration
        if dur:
            bits.append(f"({dur * 1000:.1f}ms)")
        return f"t={s.start:8.3f} " + " ".join(bits)

    def render(self, max_spans: int = 400) -> str:
        """Indented ASCII tree (the ``repro trace <qid>`` output)."""
        lines: list[str] = []

        def walk(span: Span, prefix: str, last: bool) -> None:
            if len(lines) >= max_spans:
                return
            branch = "`-- " if last else "|-- "
            lines.append(prefix + branch + self._label(span))
            kids = self.children.get(span.sid, [])
            ext = "    " if last else "|   "
            for i, kid in enumerate(kids):
                walk(kid, prefix + ext, i == len(kids) - 1)

        roots = self.roots()
        for i, root in enumerate(roots):
            if len(lines) >= max_spans:
                break
            lines.append(self._label(root))
            kids = self.children.get(root.sid, [])
            for j, kid in enumerate(kids):
                walk(kid, "", j == len(kids) - 1)
        total = len(self.spans)
        if total > len(lines):
            lines.append(f"... {total - len(lines)} more span(s)")
        return "\n".join(lines)


def reconcile_with_stats(spans: list[Span], qstats: Any) -> list[str]:
    """Cross-check one query's span stream against its stats counters.

    The span tree and :class:`repro.sim.stats.QueryStats` are filled by
    independent code paths, so agreement between them is evidence neither
    lost an event.  The correspondences checked:

    * ``send`` spans with ``charged=True`` — one per transmission attempt
      that billed ``record_query_message`` — must equal ``query_messages``;
    * ``result`` spans (local and remote arrivals) must equal
      ``result_messages``;
    * ``drop`` spans must equal ``dropped_messages``;
    * ``send`` spans with ``attempt > 1`` must equal ``retransmissions``.

    Returns a list of human-readable discrepancies (empty = reconciled).
    Used by :class:`repro.check.invariants.InvariantChecker`.
    """
    sends = sum(1 for s in spans if s.kind == "send" and s.attrs.get("charged"))
    results = sum(1 for s in spans if s.kind == "result")
    drops = sum(1 for s in spans if s.kind == "drop")
    retries = sum(
        1 for s in spans if s.kind == "send" and s.attrs.get("attempt", 1) > 1
    )
    problems: list[str] = []
    if sends != qstats.query_messages:
        problems.append(
            f"{sends} charged send spans vs query_messages={qstats.query_messages}"
        )
    if results != qstats.result_messages:
        problems.append(
            f"{results} result spans vs result_messages={qstats.result_messages}"
        )
    if drops != qstats.dropped_messages:
        problems.append(
            f"{drops} drop spans vs dropped_messages={qstats.dropped_messages}"
        )
    if retries != qstats.retransmissions:
        problems.append(
            f"{retries} retry send spans vs retransmissions={qstats.retransmissions}"
        )
    return problems


def spans_from_query_trace(
    qtrace: Any, recorder: SpanRecorder | None = None
) -> list[Span]:
    """Convert a :class:`repro.core.trace.QueryTrace` into span records.

    The legacy tracer keeps a flat event list without parent links; the
    conversion parents every event to a synthetic per-query root so legacy
    traces join the unified stream losslessly (ordering and payload
    preserved in ``attrs``).  When ``recorder`` is given the spans are also
    emitted through it.
    """
    spans: list[Span] = []
    root = Span(sid=-1, qid=qtrace.qid, kind="query", start=0.0, status="legacy")
    if qtrace.events:
        root.start = qtrace.events[0].time
        root.end = qtrace.events[-1].time
    spans.append(root)
    for i, e in enumerate(qtrace.events):
        attrs = {
            "prefix_key": e.prefix_key, "prefix_len": e.prefix_len,
            "hops": e.hops, "node_name": e.node_name,
        }
        if e.kind == "solve":
            attrs.update(key_lo=e.key_lo, key_hi=e.key_hi, results=e.results)
        spans.append(
            Span(
                sid=-(i + 2), qid=qtrace.qid, kind=e.kind, parent=-1,
                node=e.node_id, start=e.time, end=e.time, attrs=attrs,
            )
        )
    if recorder is not None:
        for s in spans:
            recorder._emit(s)
    return spans
