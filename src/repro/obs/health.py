"""Periodic system-health time-series sampled on the simulation clock.

The paper's dynamic load balancing (§3.4) reacts to *observed* per-node
load, and honest perf work needs to see the system between query
completions — queue pressure, branches in flight, node churn.  The
:class:`HealthSampler` schedules itself on the simulator like any other
protocol timer and, each ``interval`` of simulated time, captures a
:class:`HealthSample`:

* ``event_queue_depth`` — pending events in the simulator calendar queue,
* ``in_flight_branches`` — open (unsettled) lifecycle branches across all
  tracked queries,
* ``live_nodes`` — ring members with ``alive=True`` (tracks churn),
* ``load_deciles`` — the 0/10/.../100th percentiles of per-node stored-entry
  load, a compact shape of the load distribution over time.

Samples are appended in memory and optionally mirrored into gauges of a
:class:`~repro.obs.registry.MetricsRegistry` (``health_*`` metrics), so the
same exporters serve both one-shot metrics and the time series.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.sim.engine import Simulator

import numpy as np

__all__ = ["HealthSample", "HealthSampler"]

_DECILES = tuple(range(0, 101, 10))


@dataclass
class HealthSample:
    """One snapshot of system health at simulated ``time``."""

    time: float
    event_queue_depth: int = 0
    in_flight_branches: int = 0
    live_nodes: int = 0
    total_nodes: int = 0
    load_deciles: list[float] = field(default_factory=list)
    extra: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


class HealthSampler:
    """Samples system health every ``interval`` simulated seconds.

    ``engine``, ``ring`` and ``load_fn`` are all optional — missing sources
    simply leave their fields at zero/empty, so the sampler works on a bare
    simulator as well as a full platform.  ``probes`` is a mapping of extra
    named callables evaluated into :attr:`HealthSample.extra` each tick.

    The sampler survives churn: dead nodes drop out of ``live_nodes`` while
    ``total_nodes`` keeps counting ring membership, and an empty ring yields
    empty deciles rather than raising.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float = 1.0,
        *,
        engine: Any = None,
        ring: Any = None,
        load_fn: Callable[[], Any] | None = None,
        registry: Any = None,
        probes: dict[str, Callable[[], float]] | None = None,
        jsonl: Any = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval = float(interval)
        self.engine = engine
        self.ring = ring
        self.load_fn = load_fn
        self.registry = registry
        self.probes = dict(probes or {})
        self.samples: list[HealthSample] = []
        self._running = False
        self._until: float | None = None
        # Optional live JSONL stream: every sample is written and flushed as
        # one line, so `repro top`/`repro serve` can tail a running sim.
        self._jsonl_owned = jsonl is not None and not hasattr(jsonl, "write")
        self._jsonl = (
            open(jsonl, "w", encoding="utf-8") if self._jsonl_owned else jsonl
        )
        if registry is not None and registry.enabled:
            self._g_queue = registry.gauge(
                "health_event_queue_depth", "Pending simulator events at last sample")
            self._g_branches = registry.gauge(
                "health_in_flight_branches", "Open lifecycle branches at last sample")
            self._g_live = registry.gauge(
                "health_live_nodes", "Ring nodes with alive=True at last sample")
            self._g_decile = registry.gauge(
                "health_load_decile", "Per-node load decile at last sample", ("pct",))
            self._g_samples = registry.counter(
                "health_samples_total", "Health samples taken")
        else:
            self._g_queue = self._g_branches = self._g_live = None
            self._g_decile = self._g_samples = None

    # -- scheduling -------------------------------------------------------------

    def start(self, duration: float | None = None) -> HealthSampler:
        """Begin sampling; stops after ``duration`` simulated seconds if given."""
        if self._running:
            return self
        self._running = True
        self._until = None if duration is None else self.sim.now + duration
        self.sim.every(self.interval, self._tick)
        return self

    def stop(self) -> None:
        """Stop sampling; a queued tick becomes a no-op."""
        self._running = False

    def close(self) -> None:
        """Stop sampling and close an owned JSONL stream (idempotent)."""
        self.stop()
        if self._jsonl_owned and self._jsonl is not None:
            self._jsonl.close()
            self._jsonl = None
            self._jsonl_owned = False

    def _tick(self) -> bool:
        """One sampling round; the truthy return re-arms ``sim.every``."""
        if not self._running:
            return False
        if self._until is not None and self.sim.now > self._until:
            self._running = False
            return False
        self.sample()
        # Never keep the simulation alive on our own: if the sampler's own
        # timer was the last queued event, the system is idle — stop instead
        # of ticking forever (``sim.run()`` must still terminate).
        if self.sim.pending() == 0 and self._until is None:
            self._running = False
            return False
        return True

    # -- capture ----------------------------------------------------------------

    def _branches_in_flight(self) -> int:
        eng = self.engine
        if eng is None:
            return 0
        count = getattr(eng, "branches_in_flight", None)
        if callable(count):
            return count()
        return 0

    def sample(self) -> HealthSample:
        """Capture one snapshot immediately (also called by the timer)."""
        s = HealthSample(time=self.sim.now)
        s.event_queue_depth = self.sim.pending()
        s.in_flight_branches = self._branches_in_flight()
        if self.ring is not None:
            nodes = self.ring.nodes()
            s.total_nodes = len(nodes)
            s.live_nodes = sum(1 for n in nodes if getattr(n, "alive", True))
        if self.load_fn is not None:
            loads = np.asarray(self.load_fn(), dtype=float)
            if loads.size:
                s.load_deciles = [
                    float(v) for v in np.percentile(loads, _DECILES)]
        for name, probe in self.probes.items():
            s.extra[name] = float(probe())
        self.samples.append(s)
        self._mirror(s)
        if self._jsonl is not None:
            self._jsonl.write(json.dumps(s.to_dict()) + "\n")
            self._jsonl.flush()
        return s

    def _mirror(self, s: HealthSample) -> None:
        if self._g_queue is None:
            return
        self._g_queue.set(s.event_queue_depth)
        self._g_branches.set(s.in_flight_branches)
        self._g_live.set(s.live_nodes)
        for pct, v in zip(_DECILES, s.load_deciles):
            self._g_decile.set(v, (str(pct),))
        self._g_samples.inc()

    # -- output -----------------------------------------------------------------

    def to_dicts(self) -> list[dict[str, Any]]:
        return [s.to_dict() for s in self.samples]

    def series(self, field_: str) -> tuple[list[float], list[float]]:
        """``(times, values)`` for one scalar sample field (plot-friendly)."""
        times = [s.time for s in self.samples]
        vals = [float(getattr(s, field_)) for s in self.samples]
        return times, vals
