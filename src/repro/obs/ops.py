"""Live ops surface: the ``repro top`` dashboard and an HTTP metrics endpoint.

A long scale run streams two JSONL artifacts as it executes — the health
time-series (:class:`~repro.obs.health.HealthSampler` with ``jsonl=``) and
the metrics snapshot — and this module turns either stream into something
an operator can watch:

* :func:`render_top` — a plain-text dashboard over the health tail:
  queries/sec (from the ``routed_total`` probe deltas on the simulation
  clock), event-queue depth, in-flight branches, live nodes, the load
  deciles as a bar strip, and a sparkline of recent throughput.  The
  ``repro top`` CLI re-renders it on an interval (``--follow``).
* :class:`ObsHTTPServer` — a Prometheus-format scrape endpoint
  (``/metrics``) plus ``/health`` (latest sample as JSON) and
  ``/health/series`` (the whole tail).  It serves from *callables*, so the
  same server fronts a live in-process registry
  (:func:`serve_registry`) or tails recorded JSONL artifacts of a separate
  running process (:func:`serve_files`), reusing the existing exporters.

Everything here is read-only over recorded/observed state; nothing touches
the simulation, so the surface can be attached or dropped without
perturbing a deterministic run.
"""

from __future__ import annotations

import json
import threading
from collections.abc import Callable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.obs.export import prometheus_text_from_rows, read_metrics_jsonl

__all__ = [
    "read_health_jsonl",
    "throughput_series",
    "sparkline",
    "render_top",
    "ObsHTTPServer",
    "serve_registry",
    "serve_files",
]

#: ASCII ramp for sparklines / decile bars (terminal-safe, no unicode)
_RAMP = " .:-=+*#%@"


def read_health_jsonl(target: Any) -> list[dict[str, Any]]:
    """Load health samples (one JSON object per line); tolerant of a
    mid-write trailing partial line, so it is safe to tail a live file."""
    if hasattr(target, "read"):
        text = target.read()
    else:
        try:
            with open(target, encoding="utf-8") as fh:
                text = fh.read()
        except FileNotFoundError:
            return []
    rows: list[dict[str, Any]] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # partial final line of a live writer
    return rows


def throughput_series(samples: list[dict[str, Any]], counter: str = "routed_total") -> list[float]:
    """Per-interval rate from a cumulative ``extra`` probe on the sim clock.

    ``rate[i] = (counter[i] - counter[i-1]) / (t[i] - t[i-1])`` — one value
    per consecutive sample pair carrying the probe.
    """
    pts = [
        (float(s["time"]), float(s["extra"][counter]))
        for s in samples
        if counter in (s.get("extra") or {})
    ]
    rates: list[float] = []
    for (t0, c0), (t1, c1) in zip(pts, pts[1:]):
        dt = t1 - t0
        if dt > 0:
            rates.append(max(0.0, (c1 - c0) / dt))
    return rates


def sparkline(values: list[float], width: int = 32) -> str:
    """Fixed-width ASCII sparkline of the last ``width`` values."""
    if not values:
        return ""
    tail = values[-width:]
    hi = max(tail)
    if hi <= 0:
        return _RAMP[0] * len(tail)
    idx = [min(len(_RAMP) - 1, int(v / hi * (len(_RAMP) - 1) + 0.5)) for v in tail]
    return "".join(_RAMP[i] for i in idx)


def _decile_bar(deciles: list[float]) -> str:
    """The 11 load deciles as a compact ramp strip (p0..p100)."""
    if not deciles:
        return "(no load data)"
    hi = max(deciles)
    if hi <= 0:
        return _RAMP[0] * len(deciles)
    return "".join(
        _RAMP[min(len(_RAMP) - 1, int(v / hi * (len(_RAMP) - 1) + 0.5))]
        for v in deciles
    )


def render_top(
    health_rows: list[dict[str, Any]],
    metrics_rows: list[dict[str, Any]] | None = None,
    width: int = 72,
) -> str:
    """One dashboard frame over the health tail (pure function of its input)."""
    if not health_rows:
        return "(no health samples yet)"
    last = health_rows[-1]
    rates = throughput_series(health_rows)
    qps = rates[-1] if rates else 0.0
    deciles = last.get("load_deciles") or []
    # the scale path reports membership via a probe (no ring object on the
    # sampler), so fall back to the extra series when the field is empty
    live = last.get("live_nodes", 0) or int((last.get("extra") or {}).get("live_nodes", 0))
    total = last.get("total_nodes", 0) or live
    lines = [
        f"repro top — t={last.get('time', 0.0):.1f}s sim  "
        f"({len(health_rows)} samples)",
        "-" * width,
        f"throughput   {qps:>12,.0f} q/s   {sparkline(rates)}",
        f"queue depth  {last.get('event_queue_depth', 0):>12,}   "
        f"in-flight branches {last.get('in_flight_branches', 0):,}",
        f"live nodes   {live:>12,} / {total:,}",
    ]
    if deciles:
        lines.append(
            f"load deciles [{_decile_bar(deciles)}]  "
            f"p50={deciles[len(deciles) // 2]:.0f} p100={deciles[-1]:.0f}"
        )
    extra = last.get("extra") or {}
    if extra:
        bits = "  ".join(f"{k}={v:g}" for k, v in sorted(extra.items()))
        lines.append(f"probes       {bits}")
    if metrics_rows:
        for rec in metrics_rows:
            name = rec.get("name", "")
            if name == "scale_query_latency_seconds":
                lines.append(
                    f"latency      p50={rec.get('p50', 0.0):.3f}s "
                    f"p90={rec.get('p90', 0.0):.3f}s p99={rec.get('p99', 0.0):.3f}s"
                )
            elif name == "scale_query_hops":
                lines.append(
                    f"hops         p50={rec.get('p50', 0.0):.1f} "
                    f"p99={rec.get('p99', 0.0):.1f}"
                )
            elif name and name.startswith("scale_queries_") and name.endswith("_total"):
                short = name[len("scale_queries_"):-len("_total")]
                lines.append(f"{short:<12} {rec.get('value', 0.0):>12,.0f}")
    return "\n".join(lines)


class _Handler(BaseHTTPRequestHandler):
    """Routes /metrics, /health, /health/series, /healthz; silent logs."""

    server: ObsHTTPServer  # type: ignore[assignment]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path.startswith("/metrics"):
                body = self.server.metrics_text()
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            elif self.path.startswith("/health/series"):
                body = json.dumps(self.server.health_rows())
                ctype = "application/json"
            elif self.path.startswith("/healthz"):
                body = "ok\n"
                ctype = "text/plain"
            elif self.path.startswith("/health"):
                rows = self.server.health_rows()
                body = json.dumps(rows[-1] if rows else {})
                ctype = "application/json"
            else:
                self.send_error(404, "unknown path (try /metrics or /health)")
                return
        except Exception as exc:  # surface source errors as a 500, keep serving
            self.send_error(500, f"{type(exc).__name__}: {exc}")
            return
        payload = body.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: D102
        pass


class ObsHTTPServer(ThreadingHTTPServer):
    """A daemon-threaded HTTP server over two source callables.

    ``metrics_fn`` returns Prometheus exposition text; ``health_fn``
    returns the health sample rows (list of dicts).  ``port=0`` binds an
    ephemeral port — read it back from :attr:`server_address`.
    """

    daemon_threads = True

    def __init__(
        self,
        metrics_fn: Callable[[], str] | None = None,
        health_fn: Callable[[], list[dict[str, Any]]] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        super().__init__((host, port), _Handler)
        self._metrics_fn = metrics_fn
        self._health_fn = health_fn
        self._thread: threading.Thread | None = None

    def metrics_text(self) -> str:
        return self._metrics_fn() if self._metrics_fn is not None else ""

    def health_rows(self) -> list[dict[str, Any]]:
        return self._health_fn() if self._health_fn is not None else []

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> ObsHTTPServer:
        """Serve in a daemon thread; returns self (use as context manager)."""
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.server_close()

    def __enter__(self) -> ObsHTTPServer:
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def serve_registry(
    registry: Any,
    sampler: Any = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ObsHTTPServer:
    """An endpoint over a live in-process registry (and optional sampler)."""
    from repro.obs.export import prometheus_text

    return ObsHTTPServer(
        metrics_fn=lambda: prometheus_text(registry),
        health_fn=(lambda: sampler.to_dicts()) if sampler is not None else None,
        host=host,
        port=port,
    )


def serve_files(
    metrics_path: Any = None,
    health_path: Any = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ObsHTTPServer:
    """An endpoint tailing a running simulation's JSONL artifacts.

    Each request re-reads the files, so the endpoint tracks a live writer
    (the partial-final-line tolerance in :func:`read_health_jsonl` makes
    concurrent reads safe).
    """
    return ObsHTTPServer(
        metrics_fn=(
            (lambda: prometheus_text_from_rows(read_metrics_jsonl(metrics_path)))
            if metrics_path is not None
            else None
        ),
        health_fn=(
            (lambda: read_health_jsonl(health_path)) if health_path is not None else None
        ),
        host=host,
        port=port,
    )
