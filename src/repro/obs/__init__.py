"""Unified observability: metrics registry, span tracing, health time-series.

One :class:`Observability` object bundles the three legs —

* :class:`MetricsRegistry` (:mod:`repro.obs.registry`): labeled counters,
  gauges, histograms with p50/p90/p99;
* :class:`SpanRecorder` (:mod:`repro.obs.spans`): qid-correlated
  parent/child spans fanned out to memory/JSONL sinks;
* :class:`HealthSampler` (:mod:`repro.obs.health`): periodic system-health
  snapshots on the simulation clock —

and is what :class:`repro.core.platform.IndexPlatform` and the eval runner
accept as ``obs=``.  Pass ``obs=None`` (the default everywhere) and no
instrumentation code runs beyond an ``is not None`` test per call site; pass
``Observability()`` for metrics only; pass
``Observability(tracing=True)`` (optionally with ``trace_path=``) for full
span tracing.  See ``docs/observability.md`` for the metrics catalogue.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.sim.engine import Simulator

from .export import (
    export_metrics,
    format_metrics_rows,
    format_metrics_table,
    prometheus_text,
    prometheus_text_from_rows,
    read_metrics_jsonl,
    write_csv,
    write_jsonl,
    write_prometheus,
)
from .flight import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    attached_recorders,
    format_bundle,
    load_bundle,
)
from .health import HealthSample, HealthSampler
from .ops import (
    ObsHTTPServer,
    read_health_jsonl,
    render_top,
    serve_files,
    serve_registry,
    sparkline,
    throughput_series,
)
from .load import (
    QUERY_HITS_GAUGE,
    STORED_ENTRIES_GAUGE,
    format_hotspot_report,
    gauge_vector,
    gini_coefficient,
    hotspot_report,
    load_summary,
    record_load_vector,
)
from .registry import (
    DEFAULT_HOP_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .sampling import TraceSampler, splitmix64, splitmix64_array
from .slo import (
    DEFAULT_SCALE_SLOS,
    SLO,
    SloReport,
    SloResult,
    burn_rate,
    evaluate_slo,
    evaluate_slos,
)
from .spans import (
    JsonlSpanSink,
    MemorySpanSink,
    Span,
    SpanRecorder,
    SpanSink,
    SpanTree,
    reconcile_with_stats,
    spans_from_query_trace,
)

__all__ = [
    "Observability",
    # registry
    "MetricsRegistry", "NullRegistry", "NULL_REGISTRY",
    "Counter", "Gauge", "Histogram",
    "DEFAULT_LATENCY_BUCKETS", "DEFAULT_HOP_BUCKETS",
    # spans
    "Span", "SpanSink", "MemorySpanSink", "JsonlSpanSink",
    "SpanRecorder", "SpanTree", "spans_from_query_trace", "reconcile_with_stats",
    # health
    "HealthSample", "HealthSampler",
    # load
    "STORED_ENTRIES_GAUGE", "QUERY_HITS_GAUGE",
    "record_load_vector", "gauge_vector",
    "gini_coefficient", "load_summary",
    "hotspot_report", "format_hotspot_report",
    # export
    "write_jsonl", "write_csv", "read_metrics_jsonl",
    "prometheus_text", "prometheus_text_from_rows", "write_prometheus",
    "export_metrics", "format_metrics_table", "format_metrics_rows",
    # sampling
    "TraceSampler", "splitmix64", "splitmix64_array",
    # flight recorder
    "FLIGHT_SCHEMA", "FlightRecorder", "attached_recorders",
    "load_bundle", "format_bundle",
    # slo
    "SLO", "SloResult", "SloReport", "burn_rate",
    "evaluate_slo", "evaluate_slos", "DEFAULT_SCALE_SLOS",
    # ops surface
    "read_health_jsonl", "throughput_series", "sparkline", "render_top",
    "ObsHTTPServer", "serve_registry", "serve_files",
]


class Observability:
    """The bundle a platform/runner threads through the stack.

    ``metrics=False`` swaps in the shared :data:`NULL_REGISTRY` so
    instrument calls are no-ops; ``tracing=True`` creates a
    :class:`SpanRecorder` with an in-memory sink (plus a JSONL sink when
    ``trace_path`` is given, or any extra ``span_sink``).  The object is a
    context manager; closing flushes open spans and closes file-backed
    sinks, so ``with Observability(...) as obs:`` can never leave a
    truncated trace file.
    """

    def __init__(
        self,
        metrics: bool = True,
        tracing: bool = False,
        trace_path: Any = None,
        span_sink: SpanSink | None = None,
        memory_spans: bool = True,
    ) -> None:
        self.registry: MetricsRegistry = MetricsRegistry() if metrics else NULL_REGISTRY
        self.recorder: SpanRecorder | None = None
        self.span_memory: MemorySpanSink | None = None
        if tracing or trace_path is not None or span_sink is not None:
            self.recorder = SpanRecorder()
            if memory_spans:
                self.span_memory = MemorySpanSink()
                self.recorder.add_sink(self.span_memory)
            if trace_path is not None:
                self.recorder.add_sink(JsonlSpanSink(trace_path))
            if span_sink is not None:
                self.recorder.add_sink(span_sink)
        self.samplers: list[HealthSampler] = []
        self._closed = False

    @classmethod
    def disabled(cls) -> Observability:
        """Metrics off, tracing off — every instrument is a shared no-op."""
        return cls(metrics=False, tracing=False)

    @property
    def enabled(self) -> bool:
        return self.registry.enabled or self.recorder is not None

    def bind(self, sim: Simulator) -> Observability:
        """Point the span clock (and future samplers) at this simulator."""
        if self.recorder is not None:
            self.recorder.bind(sim)
        return self

    def health_sampler(
        self, sim: Simulator, interval: float = 1.0, **kwargs: Any
    ) -> HealthSampler:
        """Create (and remember) a sampler wired into this registry."""
        sampler = HealthSampler(
            sim, interval, registry=self.registry, **kwargs)
        self.samplers.append(sampler)
        return sampler

    # -- output ------------------------------------------------------------------

    def metrics_snapshot(self) -> list[dict[str, Any]]:
        return self.registry.snapshot()

    def spans_for(self, qid: int) -> list[Span]:
        return self.span_memory.for_query(qid) if self.span_memory else []

    def span_tree(self, qid: int) -> SpanTree:
        return SpanTree.from_records(
            self.span_memory.records if self.span_memory else [], qid=qid)

    # -- teardown ----------------------------------------------------------------

    def close(self) -> None:
        """Flush open spans, stop samplers, close file-backed sinks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for sampler in self.samplers:
            sampler.close()
        if self.recorder is not None:
            self.recorder.close()

    def __enter__(self) -> Observability:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
