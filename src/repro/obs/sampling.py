"""Deterministic qid-based trace sampling for million-query runs.

Full span tracing of a 1M-query :class:`repro.core.scale.ScaleSimulation`
would write millions of records and dominate the run it observes.  The
scale path instead samples: a :class:`TraceSampler` keeps 1-in-``every``
queries, chosen by a *deterministic hash of the query id* rather than an
RNG draw.  That choice matters twice over:

* **replay stability** — the sampling decision consumes no randomness, so
  enabling or disabling tracing cannot perturb a seeded run's RNG streams,
  and the *same* queries are sampled on every replay of the same scenario
  (the ``RunFingerprint`` digests stay bit-identical with tracing on or
  off);
* **no coordination** — any shard of a partitioned run can decide locally
  whether a qid is sampled, with no shared counter.

The hash is SplitMix64 (the avalanche finalizer used to seed PRNG states),
computed either scalar in Python integers or vectorised over a ``uint64``
numpy array — both produce identical bits, asserted by the tests.  The
builtin ``hash()`` is deliberately *not* used: it is salted per process
(DET103), which would make sampling machine-dependent.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TraceSampler", "splitmix64", "splitmix64_array"]

_MASK64 = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def splitmix64(x: int) -> int:
    """The SplitMix64 finalizer over a Python int (64-bit wrapping)."""
    z = (x + _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return z ^ (z >> 31)


def splitmix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorised :func:`splitmix64`: bit-identical to the scalar form.

    Array integer arithmetic in numpy wraps silently (no overflow warnings,
    unlike ``uint64`` *scalars*), so the whole pipeline stays in ``uint64``
    arrays.
    """
    z = x.astype(np.uint64, copy=True)
    z += np.uint64(_GOLDEN)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
    return z ^ (z >> np.uint64(31))


class TraceSampler:
    """Keep 1-in-``every`` query ids, deterministically.

    ``every <= 0`` disables sampling entirely (nothing kept); ``every == 1``
    keeps everything.  ``salt`` decorrelates samplers (e.g. per tenant or
    per run) without touching any RNG: two samplers with different salts
    pick different — but individually stable — query subsets.
    """

    def __init__(self, every: int = 1024, salt: int = 0) -> None:
        self.every = int(every)
        self.salt = int(salt) & _MASK64

    @property
    def rate(self) -> float:
        """Expected kept fraction (0.0 when disabled)."""
        return 0.0 if self.every <= 0 else 1.0 / self.every

    def sample(self, qid: int) -> bool:
        """Is ``qid`` in the sampled subset?  Pure arithmetic, no state."""
        if self.every <= 0:
            return False
        if self.every == 1:
            return True
        return splitmix64((int(qid) ^ self.salt) & _MASK64) % self.every == 0

    def mask(self, qids: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`sample` over an array of qids (bool mask)."""
        qids = np.asarray(qids)
        if self.every <= 0:
            return np.zeros(qids.shape, dtype=bool)
        if self.every == 1:
            return np.ones(qids.shape, dtype=bool)
        h = splitmix64_array(qids.astype(np.uint64) ^ np.uint64(self.salt))
        return h % np.uint64(self.every) == 0

    def __repr__(self) -> str:
        return f"TraceSampler(every={self.every}, salt={self.salt:#x})"
