"""Metrics registry: labeled counters, gauges and histograms.

The simulation's telemetry used to be fragmented — :class:`TransportStats`
totals in the transport, :class:`QueryStats` in ``sim/stats.py``, ad-hoc
dataclasses in the lifecycle engine and the maintenance protocol.  This
module provides the one place all of it lands: a :class:`MetricsRegistry`
holding named, labeled instruments that every subsystem (transport,
lifecycle engine, query protocols, stabilisation, load balancer, health
sampler) writes into, and that the exporters in :mod:`repro.obs.export`
read back out.

Three instrument types, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing totals (messages sent, bytes,
  retransmissions);
* :class:`Gauge` — point-in-time values that go up and down (per-node load,
  event-queue depth, live nodes);
* :class:`Histogram` — distributions with p50/p90/p99 estimation, either
  **fixed-bucket** (Prometheus-style cumulative buckets, percentiles by
  linear interpolation inside the bucket) or **reservoir** (bounded uniform
  sample with exact percentiles over the sample; deterministic — the
  reservoir RNG is seeded from the metric name).

Labels are positional: an instrument declares ``labelnames`` once and every
update passes a tuple of label *values* in the same order.  That keeps the
hot path to one dict lookup, no kwargs unpacking.

Disabled observability must cost nothing: :class:`NullRegistry` returns
shared no-op instruments from the same factory methods, so instrumented code
holds an instrument unconditionally and never branches.  Code on the hottest
paths (the transport's per-message counters) instead resolves instruments to
``None`` up front and guards with one ``is not None`` test — see
``Transport.__init__``.
"""

from __future__ import annotations

import math
import random
import zlib
from bisect import bisect_left, insort
from collections.abc import Callable, Sequence
from typing import Any, TypeVar, cast

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_HOP_BUCKETS",
]

_I = TypeVar("_I", bound="_Instrument")

#: delivery-latency buckets in seconds (the King matrix RTTs live in the
#: tens-to-hundreds of milliseconds)
DEFAULT_LATENCY_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
#: overlay hop-count buckets (log n routing: single digits at bench scale)
DEFAULT_HOP_BUCKETS = (0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32)


class _Instrument:
    """Shared plumbing: name, help text, label names, per-labelset storage."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        #: label-value tuple -> instrument state (float or _HistState)
        self.values: dict[tuple[Any, ...], Any] = {}

    def _check(self, labels: tuple[Any, ...]) -> tuple[Any, ...]:
        if len(labels) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected {len(self.labelnames)} label value(s) "
                f"{self.labelnames}, got {labels!r}"
            )
        return labels

    def samples(self) -> list[tuple[tuple[Any, ...], object]]:
        """All (label-values, value) pairs, sorted for stable export order."""
        return sorted(self.values.items(), key=lambda kv: kv[0])


class Counter(_Instrument):
    """A monotonically increasing total, optionally labeled."""

    kind = "counter"

    def inc(self, labels: tuple[Any, ...] = (), amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up (got {amount})")
        key = self._check(labels)
        self.values[key] = self.values.get(key, 0.0) + amount

    def add(self, amount: float, labels: tuple[Any, ...] = ()) -> None:
        """``inc`` with the amount first (reads better for byte totals)."""
        self.inc(labels, amount)

    def value(self, labels: tuple[Any, ...] = ()) -> float:
        return float(self.values.get(labels, 0.0))

    def total(self) -> float:
        """Sum over every labelset."""
        return float(sum(self.values.values()))


class Gauge(_Instrument):
    """A point-in-time value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, labels: tuple[Any, ...] = ()) -> None:
        self.values[self._check(labels)] = float(value)

    def set_many(
        self,
        values: Sequence[float],
        labelsets: Sequence[tuple[Any, ...]],
    ) -> None:
        """Bulk :meth:`set` over aligned ``values``/``labelsets`` sequences.

        One dict update instead of a checked call per sample — the cheap way
        to materialise a per-node vector gauge (labels are validated once on
        the first set; the caller produces homogeneous labelsets).
        """
        labelsets = list(labelsets)
        if labelsets:
            self._check(labelsets[0])
        self.values.update(zip(labelsets, (float(v) for v in values)))

    def inc(self, labels: tuple[Any, ...] = (), amount: float = 1.0) -> None:
        key = self._check(labels)
        self.values[key] = self.values.get(key, 0.0) + amount

    def dec(self, labels: tuple[Any, ...] = (), amount: float = 1.0) -> None:
        self.inc(labels, -amount)

    def value(self, labels: tuple[Any, ...] = ()) -> float:
        return float(self.values.get(labels, 0.0))


class _HistState:
    """Per-labelset histogram state: bucket counts + sum/count (+ reservoir)."""

    __slots__ = ("counts", "sum", "count", "sample", "_rng")

    def __init__(self, n_buckets: int, reservoir: int, seed: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # +1 for the +inf bucket
        self.sum = 0.0
        self.count = 0
        # sorted bounded sample for exact-over-sample percentiles
        self.sample: list[float] | None = [] if reservoir else None
        self._rng = random.Random(seed) if reservoir else None


class Histogram(_Instrument):
    """A distribution with percentile estimation.

    ``buckets`` are the upper bounds of the cumulative fixed buckets (an
    implicit ``+inf`` bucket is appended).  ``reservoir > 0`` additionally
    keeps a uniform sample of that size per labelset; percentiles then come
    from the sample (exact over the sample) instead of bucket interpolation.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        reservoir: int = 0,
    ) -> None:
        super().__init__(name, help, labelnames)
        bs = tuple(sorted(float(b) for b in buckets))
        if not bs:
            raise ValueError(f"{self.name}: need at least one bucket bound")
        self.buckets = bs
        self.reservoir = int(reservoir)
        # the reservoir RNG is seeded from the metric name: deterministic
        # runs stay deterministic and no global random state is touched
        # (crc32, not hash() — string hashing is salted per process)
        self._seed = zlib.crc32(name.encode())

    def _state(self, labels: tuple[Any, ...]) -> _HistState:
        key = self._check(labels)
        st = self.values.get(key)
        if st is None:
            st = _HistState(len(self.buckets), self.reservoir, self._seed)
            self.values[key] = st
        return st

    def observe(self, value: float, labels: tuple[Any, ...] = ()) -> None:
        st = self._state(labels)
        st.counts[bisect_left(self.buckets, value)] += 1
        st.sum += value
        st.count += 1
        if st.sample is not None:
            if len(st.sample) < self.reservoir:
                insort(st.sample, value)
            else:
                # Vitter's algorithm R; evicting a uniformly random index of
                # the sorted sample is evicting a uniformly random element
                assert st._rng is not None  # reservoir implies a seeded rng
                j = st._rng.randrange(st.count)
                if j < self.reservoir:
                    del st.sample[j]
                    insort(st.sample, value)

    def observe_many(self, values: Any, labels: tuple[Any, ...] = ()) -> None:
        """Record a whole vector of observations at once.

        Bit-identical to looping :meth:`observe`: ``numpy.searchsorted``
        with ``side="left"`` lands each value in the same bucket as
        ``bisect_left``, and the bucket counts are order-independent.
        Reservoir histograms *are* order-dependent (algorithm R consumes
        one RNG draw per observation), so they take the loop path.
        """
        import numpy as np

        vals = np.asarray(values, dtype=np.float64)
        if vals.size == 0:
            return
        st = self._state(labels)
        if st.sample is not None:
            for v in vals:
                self.observe(float(v), labels)
            return
        idx = np.searchsorted(np.asarray(self.buckets), vals, side="left")
        hits = np.bincount(idx, minlength=len(self.buckets) + 1)
        for i, c in enumerate(hits):
            if c:
                st.counts[i] += int(c)
        st.sum += float(vals.sum())
        st.count += int(vals.size)

    def count(self, labels: tuple[Any, ...] = ()) -> int:
        st = self.values.get(labels)
        return st.count if st is not None else 0

    def sum(self, labels: tuple[Any, ...] = ()) -> float:
        st = self.values.get(labels)
        return st.sum if st is not None else 0.0

    def mean(self, labels: tuple[Any, ...] = ()) -> float:
        st = self.values.get(labels)
        return st.sum / st.count if st is not None and st.count else math.nan

    def percentile(self, q: float, labels: tuple[Any, ...] = ()) -> float:
        """The ``q``-quantile (``q`` in [0, 1]); NaN with no observations.

        Reservoir histograms interpolate over the kept sample; fixed-bucket
        histograms find the bucket containing the target rank and
        interpolate linearly inside it (the Prometheus ``histogram_quantile``
        estimate).  Values beyond the last finite bound clamp to it.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        st = self.values.get(labels)
        if st is None or st.count == 0:
            return math.nan
        if st.sample is not None and st.sample:
            s = st.sample
            pos = q * (len(s) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(s) - 1)
            return s[lo] + (s[hi] - s[lo]) * (pos - lo)
        target = q * st.count
        cum = 0
        for i, c in enumerate(st.counts):
            if c == 0:
                continue
            prev_cum = cum
            cum += c
            if cum >= target:
                if i >= len(self.buckets):  # +inf bucket: clamp
                    return self.buckets[-1]
                lo = self.buckets[i - 1] if i > 0 else 0.0
                hi = self.buckets[i]
                frac = (target - prev_cum) / c if c else 0.0
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
        return self.buckets[-1]

    def snapshot(self, labels: tuple[Any, ...] = ()) -> dict[str, float]:
        """count/sum/p50/p90/p99 of one labelset (the exporters' unit)."""
        return {
            "count": float(self.count(labels)),
            "sum": float(self.sum(labels)),
            "p50": self.percentile(0.50, labels),
            "p90": self.percentile(0.90, labels),
            "p99": self.percentile(0.99, labels),
        }


class MetricsRegistry:
    """Named instruments, get-or-create, one namespace per registry.

    Re-requesting an existing name returns the existing instrument (the
    declared label names must match); that is what lets the transport, the
    protocols and the engine resolve their instruments independently while
    sharing one registry.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, _Instrument] = {}

    def _get_or_create(
        self,
        cls: type[_I],
        name: str,
        help: str,
        labelnames: Sequence[str],
        **kwargs: Any,
    ) -> _I:
        inst = self._metrics.get(name)
        if inst is not None:
            if not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {inst.kind}"
                )
            if inst.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered with labels "
                    f"{inst.labelnames}, requested {tuple(labelnames)}"
                )
            return inst
        # Histogram grows the base signature (buckets/reservoir), so the
        # constructor is called through an untyped factory view of ``cls``
        factory = cast("Callable[..., _I]", cls)
        new = factory(name, help, tuple(labelnames), **kwargs)
        self._metrics[name] = new
        return new

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        reservoir: int = 0,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets, reservoir=reservoir
        )

    def get(self, name: str) -> _Instrument | None:
        return self._metrics.get(name)

    def collect(self) -> list[_Instrument]:
        """All instruments in registration order."""
        return list(self._metrics.values())

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> list[dict[str, Any]]:
        """Flat sample records — the exporters' common input.

        One dict per (metric, labelset): counters and gauges carry
        ``value``; histograms carry ``count``/``sum``/``p50``/``p90``/``p99``.
        """
        out: list[dict[str, Any]] = []
        for inst in self.collect():
            for labels, _ in inst.samples():
                rec: dict[str, Any] = {
                    "name": inst.name,
                    "type": inst.kind,
                    "help": inst.help,
                    "labels": dict(zip(inst.labelnames, labels)),
                }
                if isinstance(inst, Histogram):
                    rec.update(inst.snapshot(labels))
                else:
                    rec["value"] = inst.value(labels)
                out.append(rec)
        return out


class _NullInstrument:
    """Accepts every instrument method as a no-op."""

    def inc(self, labels: tuple[Any, ...] = (), amount: float = 1.0) -> None:
        pass

    def add(self, amount: float, labels: tuple[Any, ...] = ()) -> None:
        pass

    def dec(self, labels: tuple[Any, ...] = (), amount: float = 1.0) -> None:
        pass

    def set(self, value: float, labels: tuple[Any, ...] = ()) -> None:
        pass

    def set_many(
        self,
        values: Sequence[float],
        labelsets: Sequence[tuple[Any, ...]],
    ) -> None:
        pass

    def observe(self, value: float, labels: tuple[Any, ...] = ()) -> None:
        pass

    def observe_many(self, values: Any, labels: tuple[Any, ...] = ()) -> None:
        pass

    def value(self, labels: tuple[Any, ...] = ()) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def count(self, labels: tuple[Any, ...] = ()) -> int:
        return 0

    def sum(self, labels: tuple[Any, ...] = ()) -> float:
        return 0.0

    def mean(self, labels: tuple[Any, ...] = ()) -> float:
        return math.nan

    def percentile(self, q: float, labels: tuple[Any, ...] = ()) -> float:
        return math.nan

    def snapshot(self, labels: tuple[Any, ...] = ()) -> dict[str, float]:
        return {}

    def samples(self) -> list[tuple[tuple[Any, ...], object]]:
        return []


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """A registry whose instruments are shared no-ops.

    Code that holds instruments unconditionally short-circuits through the
    null objects; code that checks ``registry.enabled`` (the per-message hot
    paths) skips resolution entirely and guards with ``is not None``.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return cast(Counter, _NULL_INSTRUMENT)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return cast(Gauge, _NULL_INSTRUMENT)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        reservoir: int = 0,
    ) -> Histogram:
        return cast(Histogram, _NULL_INSTRUMENT)

    def snapshot(self) -> list[dict[str, Any]]:
        return []


#: shared disabled registry (instruments are stateless no-ops, safe to share)
NULL_REGISTRY = NullRegistry()
