"""Flight recorder: a bounded ring of recent events, dumped on failure.

A 100k-node / 1M-query run produces far too much telemetry to keep, but
when an invariant trips, a deadline storm hits, or the process dies, the
*recent* history is exactly what diagnosis needs.  The
:class:`FlightRecorder` keeps a fixed-size ring buffer of events — chunk
summaries, fault draws, invariant outcomes, whatever the owner records —
and on demand writes a **flight bundle**: a JSON file holding the reason,
the run's context (typically the full :class:`~repro.core.scale.ScaleConfig`
as a dict, seed included) and the buffered tail of events.  Because the
context carries the deterministic configuration, the bundle is replayable:
re-running the same config/seed reproduces the failing run bit-for-bit
(``repro flight BUNDLE --rerun``).

Integration points:

* :meth:`dump_on_error` wraps a block (e.g. an invariant check) and dumps
  the bundle before re-raising;
* :class:`repro.check.invariants.InvariantChecker` accepts ``flight=`` and
  dumps on every violation;
* the pytest plugin (``repro.check.pytest_plugin``) dumps every *attached*
  recorder with buffered events when a test fails — recorders register
  themselves in a module-level ``WeakSet`` at construction, so a crashed
  test leaves its bundles under ``.repro-bundles/`` automatically.

The recorder never reads the wall clock (DET101): timestamps come from the
``clock`` callable the owner supplies, normally a simulator's ``now``.
"""

from __future__ import annotations

import json
import os
import weakref
from collections import deque
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any

__all__ = [
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "attached_recorders",
    "load_bundle",
    "format_bundle",
]

#: schema identifier stored in every bundle; bump on breaking changes
FLIGHT_SCHEMA = "repro-flight/1"

#: environment variable overriding the default dump directory
FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"
_DEFAULT_DIR = ".repro-bundles"

#: live recorders, for the pytest plugin's crash dumps
_ATTACHED: weakref.WeakSet[FlightRecorder] = weakref.WeakSet()


def attached_recorders() -> list[FlightRecorder]:
    """Every live recorder, in no particular order (WeakSet snapshot)."""
    return list(_ATTACHED)


class FlightRecorder:
    """A fixed-capacity ring buffer of ``(time, kind, shard, attrs)`` events.

    Parameters
    ----------
    capacity:
        Maximum buffered events; older events fall off the front.
    clock:
        Zero-argument callable returning the current (simulated) time for
        each recorded event; defaults to a constant 0.0.
    shard:
        Default shard tag for events (a sharded/parallel run gives each
        ring segment its own recorder or its own tag).
    context:
        Replay context stored in every bundle — the deterministic run
        configuration (config dict, seed, scenario name).
    """

    def __init__(
        self,
        capacity: int = 4096,
        clock: Callable[[], float] | None = None,
        shard: int = 0,
        context: dict[str, Any] | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.clock = clock
        self.shard = int(shard)
        self.context: dict[str, Any] = dict(context or {})
        self._buf: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self.recorded = 0
        #: paths of bundles written by :meth:`dump`
        self.dumps: list[str] = []
        _ATTACHED.add(self)

    def _now(self) -> float:
        return float(self.clock()) if self.clock is not None else 0.0

    # -- recording ---------------------------------------------------------------

    def record(self, kind: str, shard: int | None = None, **attrs: Any) -> None:
        """Append one event; O(1), old events evicted beyond capacity."""
        self._buf.append(
            {
                "time": self._now(),
                "kind": kind,
                "shard": self.shard if shard is None else int(shard),
                "attrs": attrs,
            }
        )
        self.recorded += 1

    def events(self) -> list[dict[str, Any]]:
        """The buffered tail, oldest first."""
        return list(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    # -- bundles -----------------------------------------------------------------

    def bundle(self, reason: str) -> dict[str, Any]:
        """The dump payload: schema + reason + context + buffered events."""
        return {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "context": self.context,
            "shard": self.shard,
            "capacity": self.capacity,
            "recorded_total": self.recorded,
            "events": self.events(),
        }

    def dump(self, target: Any = None, reason: str = "manual") -> str:
        """Write the bundle as JSON; returns the path written.

        ``target`` may be a path, a file-like object, or ``None`` — then a
        deterministic name ``flight-<reason>[-N].json`` is chosen under
        ``$REPRO_FLIGHT_DIR`` (default ``.repro-bundles/``).
        """
        payload = self.bundle(reason)
        if target is not None and hasattr(target, "write"):
            json.dump(payload, target, indent=2)
            target.write("\n")
            path = getattr(target, "name", "<stream>")
        else:
            path = str(target) if target is not None else self._default_path(reason)
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2)
                fh.write("\n")
        self.dumps.append(path)
        return path

    @staticmethod
    def _default_path(reason: str) -> str:
        base = os.environ.get(FLIGHT_DIR_ENV, _DEFAULT_DIR)
        safe = "".join(c if c.isalnum() or c in "-._" else "_" for c in reason)
        path = os.path.join(base, f"flight-{safe}.json")
        n = 1
        while os.path.exists(path):
            path = os.path.join(base, f"flight-{safe}-{n}.json")
            n += 1
        return path

    @contextmanager
    def dump_on_error(self, reason: str) -> Iterator[FlightRecorder]:
        """Run a block; on any exception, dump a bundle and re-raise.

        The exception is recorded as a final event so the bundle's tail
        shows what the system was doing when it died.
        """
        try:
            yield self
        except BaseException as exc:
            self.record("error", error=f"{type(exc).__name__}: {exc}")
            self.dump(reason=reason)
            raise


def load_bundle(target: Any) -> dict[str, Any]:
    """Load a flight bundle, validating the schema marker."""
    if hasattr(target, "read"):
        payload = json.load(target)
    else:
        with open(target, encoding="utf-8") as fh:
            payload = json.load(fh)
    if payload.get("schema") != FLIGHT_SCHEMA:
        raise ValueError(
            f"not a {FLIGHT_SCHEMA} bundle (schema={payload.get('schema')!r})"
        )
    return payload


def format_bundle(bundle: dict[str, Any], max_events: int = 50) -> str:
    """Human-readable timeline of a bundle (the ``repro flight`` output)."""
    lines = [
        f"flight bundle: reason={bundle.get('reason', '?')!r} "
        f"shard={bundle.get('shard', 0)} "
        f"{len(bundle.get('events', []))} buffered / "
        f"{bundle.get('recorded_total', 0)} recorded",
    ]
    ctx = bundle.get("context") or {}
    if ctx:
        ctx_bits = ", ".join(f"{k}={v}" for k, v in sorted(ctx.items()))
        lines.append(f"context: {ctx_bits}")
    events = bundle.get("events", [])
    shown = events[-max_events:]
    if len(events) > len(shown):
        lines.append(f"... {len(events) - len(shown)} earlier event(s) omitted")
    for e in shown:
        attrs = e.get("attrs") or {}
        attr_bits = " ".join(f"{k}={v}" for k, v in attrs.items())
        lines.append(
            f"  t={e.get('time', 0.0):>9.3f} [{e.get('kind', '?')}] {attr_bits}"
        )
    return "\n".join(lines)
