"""repro — a landmark-based index architecture for general similarity search
in peer-to-peer networks.

A faithful, self-contained reproduction of Yang & Hu (IPPS 2007): a
distributed similarity-search index on top of a Chord DHT, supporting any
metric-space dataset through landmark projection, locality-preserving
k-d hashing, embedded-tree range-query routing and static/dynamic load
balancing — plus the simulation substrate (discrete-event network, Chord
with PNS, King-like latency model) and the full evaluation harness.

Quick start::

    import numpy as np
    from repro import ChordRing, IndexPlatform, EuclideanMetric
    from repro.sim import king_latency_model

    latency = king_latency_model(n_hosts=64, seed=0)
    ring = ChordRing.build(64, m=32, seed=0, latency=latency, pns=True)
    platform = IndexPlatform(ring)

    data = np.random.default_rng(0).uniform(0, 100, size=(5000, 16))
    metric = EuclideanMetric(box=(0, 100), dim=16)
    platform.create_index("demo", data, metric, k=5, selection="kmeans")

    results = platform.query("demo", data[0], radius=40.0)
    for entry in results:
        print(entry.object_id, entry.distance)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core import (
    IndexPlatform,
    IndexSpace,
    IndexSpaceBounds,
    LandmarkIndex,
    LandmarkSet,
    NaiveProtocol,
    QueryPayload,
    QueryProtocol,
    RangeQuery,
    Rect,
    dynamic_load_migration,
    greedy_selection,
    kmeans_selection,
    kmedoids_selection,
    lp_hash,
    lp_hash_batch,
    query_split,
    select_landmarks,
)
from repro.dht import ChordNode, ChordRing
from repro.metric import (
    AngularMetric,
    BoundedMetric,
    ChebyshevMetric,
    EditDistanceMetric,
    EuclideanMetric,
    HammingMetric,
    HausdorffMetric,
    ManhattanMetric,
    Metric,
    MetricSpace,
    MinkowskiMetric,
    ScaledMetric,
    SparseAngularMetric,
)
from repro.io import load_index, save_index
from repro.sim import Simulator, StatsCollector

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # platform / core
    "IndexPlatform",
    "LandmarkIndex",
    "QueryProtocol",
    "NaiveProtocol",
    "QueryPayload",
    "RangeQuery",
    "Rect",
    "query_split",
    "IndexSpace",
    "IndexSpaceBounds",
    "LandmarkSet",
    "greedy_selection",
    "kmeans_selection",
    "kmedoids_selection",
    "select_landmarks",
    "lp_hash",
    "lp_hash_batch",
    "dynamic_load_migration",
    # DHT
    "ChordNode",
    "ChordRing",
    # metrics
    "Metric",
    "MetricSpace",
    "MinkowskiMetric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "AngularMetric",
    "SparseAngularMetric",
    "EditDistanceMetric",
    "HammingMetric",
    "HausdorffMetric",
    "BoundedMetric",
    "ScaledMetric",
    # simulation
    "Simulator",
    "StatsCollector",
    "save_index",
    "load_index",
]
