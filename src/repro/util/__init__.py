"""Shared low-level utilities: identifier bit manipulation, RNG plumbing, chunked iteration.

These helpers are deliberately free of any domain knowledge; every subsystem
(DHT, index core, simulator) builds on them.
"""

from repro.util.bits import (
    bit_at,
    clear_trailing,
    first_zero_bit,
    key_to_bits,
    pad_prefix,
    prefix_of,
    same_prefix,
    set_bit_at,
)
from repro.util.rng import as_rng, derive_rng, spawn_rngs

__all__ = [
    "bit_at",
    "set_bit_at",
    "prefix_of",
    "pad_prefix",
    "same_prefix",
    "first_zero_bit",
    "clear_trailing",
    "key_to_bits",
    "as_rng",
    "derive_rng",
    "spawn_rngs",
]
