"""Bit manipulation for ``m``-bit DHT identifiers.

The paper indexes bits *from the left* of the ``m``-bit identifier: bit 1 is
the most significant bit, bit ``m`` the least significant (its footnote 3).
All helpers below follow that convention.  Identifiers are plain Python
integers in ``[0, 2**m)`` so that ``m = 64`` (the paper's setting) costs
nothing special.
"""

from __future__ import annotations

__all__ = [
    "bit_at",
    "set_bit_at",
    "clear_bit_at",
    "prefix_of",
    "pad_prefix",
    "same_prefix",
    "first_zero_bit",
    "clear_trailing",
    "key_to_bits",
    "bits_to_key",
]


def _check(i: int, m: int) -> None:
    if not 1 <= i <= m:
        raise ValueError(f"bit position {i} out of range 1..{m}")


def bit_at(key: int, i: int, m: int) -> int:
    """Return bit ``i`` (1-based, from the left) of the ``m``-bit ``key``."""
    _check(i, m)
    return (key >> (m - i)) & 1


def set_bit_at(key: int, i: int, m: int) -> int:
    """Return ``key`` with bit ``i`` (1-based, from the left) set to 1."""
    _check(i, m)
    return key | (1 << (m - i))


def clear_bit_at(key: int, i: int, m: int) -> int:
    """Return ``key`` with bit ``i`` (1-based, from the left) cleared to 0."""
    _check(i, m)
    return key & ~(1 << (m - i))


def prefix_of(key: int, length: int, m: int) -> int:
    """The first ``length`` bits of ``key`` as an ``m``-bit, right-zero-padded key.

    ``prefix_of(key, 0, m) == 0``; ``prefix_of(key, m, m) == key``.  This is
    the paper's ``prefix(id, len)`` followed by zero padding to form a
    *prefix_key*.
    """
    if not 0 <= length <= m:
        raise ValueError(f"prefix length {length} out of range 0..{m}")
    if length == 0:
        return 0
    shift = m - length
    return (key >> shift) << shift


def pad_prefix(prefix_bits: int, length: int, m: int) -> int:
    """Turn a ``length``-bit prefix value into an ``m``-bit prefix_key.

    ``prefix_bits`` holds the prefix in its *low* bits (e.g. ``0b011`` with
    ``length = 3``); the result shifts it to the top and pads zeros, e.g.
    ``0b0110...0``.
    """
    if not 0 <= length <= m:
        raise ValueError(f"prefix length {length} out of range 0..{m}")
    if prefix_bits >> length:
        raise ValueError(f"prefix value {prefix_bits:#x} wider than {length} bits")
    return prefix_bits << (m - length)


def same_prefix(a: int, b: int, length: int, m: int) -> bool:
    """True when ``a`` and ``b`` share their first ``length`` bits."""
    return prefix_of(a, length, m) == prefix_of(b, length, m)


def first_zero_bit(key: int, start: int, m: int) -> int | None:
    """First position ``j`` in ``start..m`` (1-based, from the left) where ``key`` has a 0 bit.

    Returns ``None`` when every bit in the range is 1 — the paper's
    "``j`` not exists" case in Algorithm 5 (SurrogateRefine).
    """
    if start > m:
        return None
    _check(start, m)
    width = m - start + 1
    # Bits start..m are exactly the low ``width`` bits of key.
    mask_all_ones = (1 << width) - 1
    window = key & mask_all_ones
    if window == mask_all_ones:
        return None
    # Find the most significant zero inside the window.
    inverted = (~window) & mask_all_ones
    msb = inverted.bit_length()  # 1-based from the right within the window
    return m - msb + 1


def clear_trailing(key: int, keep: int, m: int) -> int:
    """Alias of :func:`prefix_of` with argument order matching call sites."""
    return prefix_of(key, keep, m)


def key_to_bits(key: int, m: int) -> str:
    """Render ``key`` as an ``m``-character bit string (debugging aid)."""
    return format(key, f"0{m}b")


def bits_to_key(bits: str) -> int:
    """Parse a bit string (as produced by :func:`key_to_bits`) back to an int."""
    return int(bits, 2) if bits else 0
