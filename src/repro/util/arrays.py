"""Bit-exact array <-> JSON-safe wire/disk encoding.

The persistence layer (WAL + snapshots in :mod:`repro.core.storage`) and the
live network codec (:mod:`repro.net.codec`) both need to move NumPy arrays
through JSON without losing a single bit: crash recovery asserts the restored
shard is *bit-identical* to the pre-crash one, and a float round-tripped
through decimal text is not guaranteed to be.  The encoding is therefore the
raw little-endian buffer, base64-armoured, plus dtype and shape:

    {"__nd__": "<f8", "shape": [3, 2], "data": "<base64>"}

Decoding validates the payload length against ``dtype.itemsize * prod(shape)``
so a truncated or tampered record fails loudly instead of producing a
silently short array.
"""

from __future__ import annotations

import base64
from math import prod
from typing import Any

import numpy as np

__all__ = ["encode_array", "decode_array", "is_encoded_array"]

#: marker key of an encoded array payload
TAG = "__nd__"


def encode_array(arr: np.ndarray) -> dict[str, Any]:
    """JSON-safe dict representation of ``arr``, bit-exact on round-trip."""
    a = np.ascontiguousarray(arr)
    # normalise to little-endian so the encoding is machine-independent
    dt = a.dtype.newbyteorder("<")
    if dt != a.dtype:
        a = a.astype(dt)
    return {
        TAG: a.dtype.str,
        "shape": list(a.shape),
        "data": base64.b64encode(a.tobytes()).decode("ascii"),
    }


def is_encoded_array(obj: Any) -> bool:
    """Whether ``obj`` is a dict produced by :func:`encode_array`."""
    return isinstance(obj, dict) and TAG in obj


def decode_array(payload: dict[str, Any]) -> np.ndarray:
    """Inverse of :func:`encode_array`; raises ``ValueError`` on corruption."""
    try:
        dtype = np.dtype(payload[TAG])
        shape = tuple(int(s) for s in payload["shape"])
        raw = base64.b64decode(payload["data"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed array payload: {exc}") from exc
    expected = dtype.itemsize * prod(shape)
    if len(raw) != expected:
        raise ValueError(
            f"array payload carries {len(raw)} bytes, "
            f"dtype {dtype.str} x shape {shape} needs {expected}"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
