"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`; these helpers normalise and derive child
generators so that experiments are exactly reproducible and independent
subsystems (dataset generation, node join times, landmark sampling, ...)
never share a stream.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "derive_rng", "spawn_rngs"]

SeedLike = "int | np.random.Generator | None"


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh nondeterministic generator; an integer is used as
    a seed; an existing generator is passed through untouched.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, label: str) -> np.random.Generator:
    """Derive a child generator keyed by ``label``.

    One 64-bit draw is consumed from the parent and mixed with a hash of
    ``label``, so children derived with different labels are independent and
    the derivation is reproducible given the parent's state.
    """
    import zlib

    draw = int(rng.integers(0, 2**63, dtype=np.int64))
    mix = draw ^ zlib.crc32(label.encode("utf-8"))
    return np.random.default_rng(np.random.SeedSequence(entropy=mix))


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from one seed."""
    ss = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
