"""Index persistence: save/load a landmark index's state to ``.npz``.

A downstream adopter building a long-lived deployment needs the expensive
parts of index construction — landmark selection, projection, hashing — to
survive restarts.  :func:`save_index` captures the landmark set (for vector
domains), the bounds, per-entry keys/points/object-ids and the index
configuration; :func:`load_index` restores it onto a (possibly different)
ring and redistributes.

Only array-backed landmark domains round-trip the landmarks themselves;
black-box domains (strings, point sets) save everything *except* the
landmark objects, which the caller must re-supply (they are application
data).
"""

from __future__ import annotations

import numpy as np

from repro.core.index_space import IndexSpace, IndexSpaceBounds
from repro.core.landmarks import LandmarkSet
from repro.core.platform import LandmarkIndex

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1


def save_index(index: LandmarkIndex, path: str) -> None:
    """Serialise an index's state to ``path`` (.npz).

    Raises ``TypeError`` for landmark sets that are not dense arrays —
    black-box landmark objects cannot be serialised generically.
    """
    landmarks = index.space.landmark_set.landmarks
    if not isinstance(landmarks, np.ndarray):
        raise TypeError(
            "only array-backed landmark sets can be saved generically; "
            "persist black-box landmarks alongside your application data"
        )
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        name=np.bytes_(index.name.encode("utf-8")),
        scheme=np.bytes_(index.space.landmark_set.scheme.encode("utf-8")),
        refine_mode=np.bytes_(index.refine_mode.encode("utf-8")),
        landmarks=landmarks,
        bounds_lows=index.bounds.lows,
        bounds_highs=index.bounds.highs,
        rotation=np.uint64(index.rotation),
        replication=np.int64(index.replication),
        m=np.int64(index.m),
        keys=index._keys,
        points=index._points,
        object_ids=index._object_ids,
    )


def load_index(path: str, ring, dataset, metric) -> LandmarkIndex:
    """Restore an index saved with :func:`save_index` onto ``ring``.

    ``dataset`` and ``metric`` are re-supplied by the caller (objects are
    application data; the metric is code).  The ring may differ from the one
    the index was saved from — entries are redistributed to the current
    owners; only ``m`` must match the saved identifier width.
    """
    with np.load(path) as z:
        version = int(z["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported index format version {version}")
        m = int(z["m"])
        if ring.m != m:
            raise ValueError(f"ring identifier width {ring.m} != saved {m}")
        landmark_set = LandmarkSet(
            landmarks=z["landmarks"],
            metric=metric,
            scheme=z["scheme"].item().decode("utf-8"),
        )
        bounds = IndexSpaceBounds(z["bounds_lows"], z["bounds_highs"])
        space = IndexSpace(landmark_set, bounds)
        index = LandmarkIndex(
            z["name"].item().decode("utf-8"),
            space,
            ring,
            dataset,
            rotation=int(z["rotation"]),
            refine_mode=z["refine_mode"].item().decode("utf-8"),
            replication=int(z["replication"]),
        )
        index._keys = z["keys"].astype(np.uint64)
        index._points = z["points"]
        index._object_ids = z["object_ids"].astype(np.int64)
    index.distribute()
    return index
