"""Workload substrates: the paper's synthetic and TREC-like datasets plus
string/shape generators for the additional metric-space examples.
"""

from repro.datasets.documents import (
    PAPER_TABLE2,
    DocumentCorpus,
    SyntheticCorpusConfig,
    generate_corpus,
    generate_topics,
    vector_size_stats,
)
from repro.datasets.queries import (
    PAPER_RANGE_FACTORS,
    QueryWorkload,
    poisson_arrivals,
    repeat_topics,
    synthetic_query_points,
)
from repro.datasets.shapes import ShapeFamilyConfig, generate_shapes
from repro.datasets.strings import SequenceFamilyConfig, generate_sequences, mutate
from repro.datasets.timeseries import TimeSeriesFamilyConfig, generate_timeseries
from repro.datasets.synthetic import (
    ClusteredGaussianConfig,
    generate_clustered,
    paper_table1_config,
)

__all__ = [
    "ClusteredGaussianConfig",
    "generate_clustered",
    "paper_table1_config",
    "SyntheticCorpusConfig",
    "DocumentCorpus",
    "generate_corpus",
    "generate_topics",
    "vector_size_stats",
    "PAPER_TABLE2",
    "QueryWorkload",
    "poisson_arrivals",
    "synthetic_query_points",
    "repeat_topics",
    "PAPER_RANGE_FACTORS",
    "SequenceFamilyConfig",
    "generate_sequences",
    "mutate",
    "ShapeFamilyConfig",
    "TimeSeriesFamilyConfig",
    "generate_timeseries",
    "generate_shapes",
]
