"""Synthetic time-series datasets (paper §2, motivating example 4).

"Searching approximate time series in data mining" under the ``L_1`` or
``L_2`` metric: fixed-length series are just vectors, so the landmark
platform indexes them directly.  We synthesise families of series as noisy
variations of template shapes (trend + seasonality + autoregressive noise),
so near-neighbour structure exists by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import as_rng

__all__ = ["TimeSeriesFamilyConfig", "generate_timeseries"]


@dataclass(frozen=True)
class TimeSeriesFamilyConfig:
    """Parameters for the template-variation series generator."""

    n_series: int = 1000
    n_templates: int = 10
    length: int = 64
    noise: float = 0.3
    amplitude: float = 10.0
    #: clip values into [low, high] so the L_p metric has a domain bound
    low: float = -50.0
    high: float = 50.0


def _template(rng: np.random.Generator, cfg: TimeSeriesFamilyConfig) -> np.ndarray:
    t = np.linspace(0.0, 1.0, cfg.length)
    trend = rng.uniform(-1.0, 1.0) * cfg.amplitude * t
    freq = rng.integers(1, 6)
    phase = rng.uniform(0, 2 * np.pi)
    season = rng.uniform(0.3, 1.0) * cfg.amplitude * np.sin(2 * np.pi * freq * t + phase)
    level = rng.uniform(-0.5, 0.5) * cfg.amplitude
    return level + trend + season


def generate_timeseries(
    cfg: TimeSeriesFamilyConfig,
    seed: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate series clustered into template families.

    Returns ``(series, family_ids)`` where ``series`` is
    ``(n_series, length)`` float64, clipped to the configured domain.
    """
    rng = as_rng(seed)
    templates = np.stack([_template(rng, cfg) for _ in range(cfg.n_templates)])
    which = rng.integers(0, cfg.n_templates, size=cfg.n_series)
    # AR(1)-ish noise: smooth wiggle rather than white noise
    white = rng.normal(0.0, cfg.noise * cfg.amplitude, size=(cfg.n_series, cfg.length))
    smooth = np.empty_like(white)
    smooth[:, 0] = white[:, 0]
    for j in range(1, cfg.length):
        smooth[:, j] = 0.7 * smooth[:, j - 1] + white[:, j]
    series = templates[which] + smooth
    np.clip(series, cfg.low, cfg.high, out=series)
    return series, which
