"""Query workload generation: query points, ranges and arrival processes.

The paper schedules 2000 queries on randomly chosen nodes with exponentially
distributed inter-arrival times (mean 150 s) after system stabilisation
(§4.1), and sweeps the *query range factor* — query radius divided by the
theoretical maximum distance of the data space — from 0.1% to 20% (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import as_rng

__all__ = [
    "QueryWorkload",
    "poisson_arrivals",
    "synthetic_query_points",
    "repeat_topics",
    "PAPER_RANGE_FACTORS",
]

#: The range-factor sweep used in the paper's figures (0.1% .. 20%).
PAPER_RANGE_FACTORS = (0.001, 0.005, 0.01, 0.02, 0.05, 0.10, 0.20)


@dataclass
class QueryWorkload:
    """A timed sequence of similarity queries.

    Attributes
    ----------
    points:
        Query objects; indexable sequence (array rows, CSR rows, strings...).
    radii:
        Per-query search radius in the dataset's metric.
    arrival_times:
        Simulation timestamps (seconds) at which each query is issued.
    source_nodes:
        Index of the overlay node issuing each query (chosen uniformly, as in
        the paper).
    """

    points: np.ndarray | object
    radii: np.ndarray
    arrival_times: np.ndarray
    source_nodes: np.ndarray

    def __len__(self) -> int:
        return len(self.radii)

    @classmethod
    def build(
        cls,
        points,
        radius: float,
        n_nodes: int,
        mean_interarrival: float = 150.0,
        seed: int | np.random.Generator | None = 2,
        start_time: float = 0.0,
    ) -> QueryWorkload:
        """Assemble a workload with Poisson arrivals and random source nodes."""
        rng = as_rng(seed)
        n = points.shape[0] if hasattr(points, "shape") else len(points)
        return cls(
            points=points,
            radii=np.full(n, float(radius)),
            arrival_times=poisson_arrivals(n, mean_interarrival, rng, start_time),
            source_nodes=rng.integers(0, n_nodes, size=n),
        )


def poisson_arrivals(
    n: int,
    mean_interarrival: float,
    seed: int | np.random.Generator | None = 2,
    start_time: float = 0.0,
) -> np.ndarray:
    """Arrival times with exponential inter-arrival (paper: mean 150 s)."""
    rng = as_rng(seed)
    gaps = rng.exponential(mean_interarrival, size=n)
    return start_time + np.cumsum(gaps)


def synthetic_query_points(
    cfg,
    n_queries: int,
    centers: np.ndarray,
    seed: int | np.random.Generator | None = 3,
) -> np.ndarray:
    """Query points drawn "with the same method" as the synthetic dataset.

    ``cfg`` is a :class:`repro.datasets.synthetic.ClusteredGaussianConfig`;
    ``centers`` must be the cluster centres of the dataset being queried.
    """
    from repro.datasets.synthetic import ClusteredGaussianConfig, generate_clustered

    qcfg = ClusteredGaussianConfig(
        n_objects=n_queries,
        dim=cfg.dim,
        low=cfg.low,
        high=cfg.high,
        n_clusters=cfg.n_clusters,
        deviation=cfg.deviation,
        clip=cfg.clip,
    )
    points, _ = generate_clustered(qcfg, seed, centers=centers)
    return points


def repeat_topics(topics, n_queries: int, seed: int | np.random.Generator | None = 4):
    """Repeat a small topic set to ``n_queries`` queries in random order.

    The paper uses "2000 queries in the simulation by repeating these 50
    topics on randomly selected nodes".  Returns an index array into
    ``topics`` plus the materialised query matrix (row-sliced).
    """
    rng = as_rng(seed)
    n_topics = topics.shape[0] if hasattr(topics, "shape") else len(topics)
    idx = rng.integers(0, n_topics, size=n_queries)
    return idx, topics[idx]
