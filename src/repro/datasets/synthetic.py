"""Synthetic clustered-Gaussian datasets (paper §4.2, Table 1).

The paper's synthetic workload: each dataset holds 1e5 objects in a
100-dimensional space, clustered into 10 clusters; data in each cluster are
normally distributed with deviation 20 around the cluster centre; every
dimension ranges over [0, 100].  "Less number of clusters and less deviation
in each cluster will generate more skewed dataset."  Query points are drawn
with the same method.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import as_rng

__all__ = ["ClusteredGaussianConfig", "generate_clustered", "paper_table1_config"]


@dataclass(frozen=True)
class ClusteredGaussianConfig:
    """Parameters for the clustered Gaussian generator (paper Table 1).

    Attributes
    ----------
    n_objects:
        Number of data objects (paper: 1e5).
    dim:
        Dimensionality (paper: 100).
    low, high:
        Range of each dimension (paper: [0, 100]).
    n_clusters:
        Number of clusters (paper: 10).
    deviation:
        Standard deviation of each cluster (paper: 20).
    clip:
        Clip samples to the [low, high] box so the domain bound holds exactly
        (the paper bounds the index space assuming it does).
    """

    n_objects: int = 100_000
    dim: int = 100
    low: float = 0.0
    high: float = 100.0
    n_clusters: int = 10
    deviation: float = 20.0
    clip: bool = True

    @property
    def max_distance(self) -> float:
        """Theoretical maximum Euclidean distance between two domain points.

        The paper: ``sqrt(sum_{i=1}^{100} (100 - 0)^2) = 1000``.  The *query
        range factor* divides the query radius by this diameter.
        """
        return float(np.sqrt(self.dim) * (self.high - self.low))


def paper_table1_config(n_objects: int = 100_000) -> ClusteredGaussianConfig:
    """The exact Table 1 parameters, with an optional size override for scaled runs."""
    return ClusteredGaussianConfig(n_objects=n_objects)


def generate_clustered(
    cfg: ClusteredGaussianConfig,
    seed: int | np.random.Generator | None = 0,
    centers: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a clustered dataset; returns ``(objects, centers)``.

    ``objects`` is ``(n_objects, dim)`` float64; ``centers`` is
    ``(n_clusters, dim)``.  Pass ``centers`` back in to draw further samples
    (e.g. the query workload) from the *same* cluster structure, as the paper
    does ("the corresponding query sets are generated with the same method").
    """
    rng = as_rng(seed)
    if centers is None:
        centers = rng.uniform(cfg.low, cfg.high, size=(cfg.n_clusters, cfg.dim))
    else:
        centers = np.asarray(centers, dtype=np.float64)
        if centers.shape != (cfg.n_clusters, cfg.dim):
            raise ValueError(
                f"centers shape {centers.shape} != ({cfg.n_clusters}, {cfg.dim})"
            )
    assignment = rng.integers(0, cfg.n_clusters, size=cfg.n_objects)
    objects = centers[assignment] + rng.normal(0.0, cfg.deviation, size=(cfg.n_objects, cfg.dim))
    if cfg.clip:
        np.clip(objects, cfg.low, cfg.high, out=objects)
    return objects, centers
