"""Synthetic point-set "shape" datasets for the Hausdorff-metric examples.

Motivating example (3) of the paper: image similarity under the Hausdorff
metric [14].  An image is abstracted as the set of its feature points; we
synthesise shape families by sampling template outlines (circles, boxes,
crosses) and jittering them, so near-neighbour structure exists by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import as_rng

__all__ = ["ShapeFamilyConfig", "generate_shapes"]


@dataclass(frozen=True)
class ShapeFamilyConfig:
    """Parameters for the jittered-template shape generator."""

    n_shapes: int = 500
    n_templates: int = 8
    points_per_shape: int = 24
    canvas: float = 100.0
    jitter: float = 2.0


def _template(kind: int, center: np.ndarray, size: float, n: int, rng: np.random.Generator) -> np.ndarray:
    t = np.linspace(0.0, 2 * np.pi, n, endpoint=False)
    if kind % 3 == 0:  # circle
        pts = np.stack([np.cos(t), np.sin(t)], axis=1) * size
    elif kind % 3 == 1:  # square outline
        u = np.linspace(0.0, 4.0, n, endpoint=False)
        side = np.floor(u).astype(int)
        frac = u - side
        pts = np.zeros((n, 2))
        pts[side == 0] = np.stack([frac[side == 0], np.zeros((side == 0).sum())], axis=1)
        pts[side == 1] = np.stack([np.ones((side == 1).sum()), frac[side == 1]], axis=1)
        pts[side == 2] = np.stack([1 - frac[side == 2], np.ones((side == 2).sum())], axis=1)
        pts[side == 3] = np.stack([np.zeros((side == 3).sum()), 1 - frac[side == 3]], axis=1)
        pts = (pts - 0.5) * 2 * size
    else:  # cross
        half = n // 2
        xs = np.linspace(-size, size, half)
        ys = np.linspace(-size, size, n - half)
        pts = np.concatenate(
            [np.stack([xs, np.zeros(half)], axis=1), np.stack([np.zeros(n - half), ys], axis=1)]
        )
    return pts + center


def generate_shapes(
    cfg: ShapeFamilyConfig,
    seed: int | np.random.Generator | None = 0,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Generate jittered shapes; returns ``(point_sets, template_ids)``."""
    rng = as_rng(seed)
    centers = rng.uniform(0.25 * cfg.canvas, 0.75 * cfg.canvas, size=(cfg.n_templates, 2))
    sizes = rng.uniform(0.08 * cfg.canvas, 0.2 * cfg.canvas, size=cfg.n_templates)
    which = rng.integers(0, cfg.n_templates, size=cfg.n_shapes)
    shapes = []
    for tmpl in which:
        base = _template(int(tmpl), centers[tmpl], sizes[tmpl], cfg.points_per_shape, rng)
        noisy = base + rng.normal(0.0, cfg.jitter, size=base.shape)
        np.clip(noisy, 0.0, cfg.canvas, out=noisy)
        shapes.append(noisy)
    return shapes, which
