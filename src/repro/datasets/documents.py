"""Synthetic TREC-like newswire corpus (paper §4.3, Table 2).

The paper evaluates on TREC-1,2 AP: 157,021 documents as TF/IDF term vectors
over 233,640 distinct terms, with a 571-word SMART stop list removed and the
vector-size distribution of Table 2 (min 1 / 5th 50 / median 146 / 95th
293 / max 676 / mean 155.4 unique terms per document).  Queries come from 50
TREC-3 ad-hoc topics (~3.5 unique terms each) repeated to 2000 queries.

The AP corpus ships on proprietary TREC CDs, so this module synthesises the
closest statistical equivalent (see DESIGN.md substitution table):

* a Zipfian vocabulary of ``vocab_size`` terms; the top ``n_stopwords`` ranks
  *are* the stop list and never appear in vectors (matching "remove the stop
  words from the document vectors");
* per-document unique-term counts drawn from a mixture calibrated to Table 2
  (a lognormal bulk plus a short-document component);
* term frequencies ``1 + Poisson`` and IDF computed from the realised corpus,
  i.e. genuine TF/IDF weights (§4.3's weighting scheme);
* topic queries with ``~3.5`` unique mid-rank terms.

What matters for the paper's TREC findings is (a) extreme sparse
high-dimensional geometry under the angular metric — most pairs of short
documents are orthogonal (distance ``pi/2``) — and (b) the resulting collapse
of greedily-chosen landmarks; both are functions of the vector-size and
vocabulary statistics reproduced here, not of AP's actual prose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.util.rng import as_rng

__all__ = [
    "SyntheticCorpusConfig",
    "DocumentCorpus",
    "generate_corpus",
    "generate_topics",
    "vector_size_stats",
    "PAPER_TABLE2",
]

#: Table 2 of the paper: the distribution of AP document-vector sizes.
PAPER_TABLE2 = {
    "minimum": 1,
    "5th": 50,
    "50th": 146,
    "95th": 293,
    "maximum": 676,
    "mean": 155.4,
}


@dataclass(frozen=True)
class SyntheticCorpusConfig:
    """Parameters of the synthetic newswire corpus.

    Defaults reproduce the paper's AP statistics.  Use :meth:`scaled` for
    cheaper runs that keep the shape (vocabulary scales with the corpus so
    sparsity — and hence the pi/2-orthogonality pathology — is preserved).
    """

    n_docs: int = 157_021
    vocab_size: int = 233_640
    n_stopwords: int = 571
    zipf_s: float = 1.05
    #: lognormal bulk of the unique-term-count distribution
    log_median: float = 157.0
    log_sigma: float = 0.39
    #: short-document mixture component (uniform on [1, short_max])
    short_weight: float = 0.092
    short_max: int = 100
    min_terms: int = 1
    max_terms: int = 676
    #: mean TF above 1 (term frequencies are 1 + Poisson(tf_excess))
    tf_excess: float = 0.7

    def scaled(self, factor: float) -> SyntheticCorpusConfig:
        """A corpus shrunk by ``factor`` with proportional vocabulary.

        Unique-term counts per document are kept (they set the angular
        geometry); only corpus and vocabulary size shrink.
        """
        return SyntheticCorpusConfig(
            n_docs=max(100, int(self.n_docs * factor)),
            vocab_size=max(2_000, int(self.vocab_size * factor)),
            n_stopwords=self.n_stopwords,
            zipf_s=self.zipf_s,
            log_median=self.log_median,
            log_sigma=self.log_sigma,
            short_weight=self.short_weight,
            short_max=self.short_max,
            min_terms=self.min_terms,
            max_terms=self.max_terms,
            tf_excess=self.tf_excess,
        )


@dataclass
class DocumentCorpus:
    """A generated corpus: TF/IDF vectors plus bookkeeping.

    Attributes
    ----------
    tfidf:
        ``(n_docs, vocab_size)`` CSR matrix of TF/IDF weights (stop words are
        all-zero columns by construction).
    doc_sizes:
        Unique-term count of every document (the Table 2 variable).
    idf:
        Per-term inverse document frequency actually realised.
    config:
        The generating configuration.
    """

    tfidf: sparse.csr_matrix
    doc_sizes: np.ndarray
    idf: np.ndarray
    config: SyntheticCorpusConfig

    @property
    def n_docs(self) -> int:
        return self.tfidf.shape[0]

    @property
    def vocab_size(self) -> int:
        return self.tfidf.shape[1]

    @property
    def n_distinct_terms(self) -> int:
        """Number of terms that occur in at least one document."""
        return int(np.count_nonzero(np.diff(self.tfidf.tocsc().indptr)))


def _zipf_cdf(cfg: SyntheticCorpusConfig) -> np.ndarray:
    """Cumulative Zipf weights over the non-stop vocabulary ranks."""
    ranks = np.arange(cfg.n_stopwords + 1, cfg.vocab_size + 1, dtype=np.float64)
    w = ranks ** (-cfg.zipf_s)
    cdf = np.cumsum(w)
    cdf /= cdf[-1]
    return cdf


def _draw_doc_sizes(cfg: SyntheticCorpusConfig, n: int, rng: np.random.Generator) -> np.ndarray:
    """Unique-term counts calibrated to Table 2 (lognormal bulk + short tail)."""
    is_short = rng.random(n) < cfg.short_weight
    sizes = np.empty(n, dtype=np.int64)
    n_short = int(is_short.sum())
    sizes[is_short] = rng.integers(1, cfg.short_max + 1, size=n_short)
    bulk = rng.lognormal(np.log(cfg.log_median), cfg.log_sigma, size=n - n_short)
    sizes[~is_short] = np.round(bulk).astype(np.int64)
    np.clip(sizes, cfg.min_terms, cfg.max_terms, out=sizes)
    return sizes


def _sample_distinct_terms(
    sizes: np.ndarray,
    cdf: np.ndarray,
    first_rank: int,
    rng: np.random.Generator,
    rounds: int = 4,
    oversample: float = 1.35,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``sizes[i]`` distinct Zipf-distributed term ids per document ``i``.

    Returns flat ``(doc_ids, term_ids)`` arrays in CSR order.  Sampling is
    with replacement followed by per-document deduplication, topped up over a
    few vectorised rounds; after the final round any still-missing terms are
    dropped (affects only the heaviest documents marginally).
    """
    n = len(sizes)
    got_docs: list[np.ndarray] = []
    got_terms: list[np.ndarray] = []
    have = np.zeros(n, dtype=np.int64)
    need = sizes.copy()
    for _ in range(rounds):
        active = need > 0
        if not active.any():
            break
        draw_counts = np.ceil(need[active] * oversample).astype(np.int64)
        total = int(draw_counts.sum())
        u = rng.random(total)
        terms = first_rank + np.searchsorted(cdf, u, side="left")
        docs = np.repeat(np.flatnonzero(active), draw_counts)
        # Dedup per (doc, term) within this round *and* against prior rounds:
        # encode pairs as a single int64 and unique them globally.
        if got_docs:
            all_docs = np.concatenate(got_docs + [docs])
            all_terms = np.concatenate(got_terms + [terms])
        else:
            all_docs, all_terms = docs, terms
        code = all_docs.astype(np.int64) * np.int64(2**32) + all_terms.astype(np.int64)
        code = np.unique(code)
        all_docs = (code // np.int64(2**32)).astype(np.int64)
        all_terms = (code % np.int64(2**32)).astype(np.int64)
        # Keep at most sizes[i] terms per doc (drop the surplus, which is
        # uniform over the doc's drawn terms because unique() sorts by term).
        counts = np.bincount(all_docs, minlength=n)
        starts = np.concatenate(([0], np.cumsum(counts)))
        offsets = np.arange(len(all_docs)) - starts[all_docs]
        keep = offsets < sizes[all_docs]
        all_docs = all_docs[keep]
        all_terms = all_terms[keep]
        got_docs = [all_docs]
        got_terms = [all_terms]
        have = np.bincount(all_docs, minlength=n)
        need = sizes - have
    return got_docs[0], got_terms[0]


def generate_corpus(
    cfg: SyntheticCorpusConfig,
    seed: int | np.random.Generator | None = 0,
) -> DocumentCorpus:
    """Generate the synthetic corpus as a TF/IDF CSR matrix."""
    rng = as_rng(seed)
    sizes = _draw_doc_sizes(cfg, cfg.n_docs, rng)
    cdf = _zipf_cdf(cfg)
    docs, terms = _sample_distinct_terms(sizes, cdf, cfg.n_stopwords, rng)
    tf = 1.0 + rng.poisson(cfg.tf_excess, size=len(terms))
    mat = sparse.csr_matrix(
        (tf.astype(np.float64), (docs, terms)), shape=(cfg.n_docs, cfg.vocab_size)
    )
    mat.sum_duplicates()
    # IDF from the realised corpus: log(N / df); unseen terms get 0 (they
    # never appear, so the value is irrelevant but must be finite).
    df = np.diff(mat.tocsc().indptr).astype(np.float64)
    idf = np.zeros(cfg.vocab_size)
    seen = df > 0
    idf[seen] = np.log(cfg.n_docs / df[seen])
    mat = (mat @ sparse.diags(idf)).tocsr()
    real_sizes = np.diff(mat.indptr).astype(np.int64)
    return DocumentCorpus(tfidf=mat, doc_sizes=real_sizes, idf=idf, config=cfg)


def generate_topics(
    corpus: DocumentCorpus,
    n_topics: int = 50,
    mean_terms: float = 3.5,
    seed: int | np.random.Generator | None = 1,
) -> sparse.csr_matrix:
    """Synthesise short topic queries (paper: 50 topics, ~3.5 unique terms).

    Query terms are drawn from the corpus's mid-rank vocabulary (informative
    terms — real topic titles avoid both stop words and hapaxes); weights are
    TF(=1) x IDF.
    """
    rng = as_rng(seed)
    cfg = corpus.config
    sizes = np.maximum(1, rng.poisson(mean_terms - 1.0, size=n_topics) + 1)
    cdf = _zipf_cdf(cfg)
    docs, terms = _sample_distinct_terms(sizes, cdf, cfg.n_stopwords, rng)
    weights = corpus.idf[terms]
    # Terms with zero idf never occur in the corpus; give them unit weight so
    # queries stay well-formed.
    weights = np.where(weights > 0, weights, 1.0)
    return sparse.csr_matrix(
        (weights, (docs, terms)), shape=(n_topics, cfg.vocab_size)
    )


def vector_size_stats(doc_sizes: np.ndarray) -> dict[str, float]:
    """The Table 2 statistics of a vector-size sample."""
    s = np.asarray(doc_sizes)
    return {
        "minimum": float(s.min()),
        "5th": float(np.percentile(s, 5)),
        "50th": float(np.percentile(s, 50)),
        "95th": float(np.percentile(s, 95)),
        "maximum": float(s.max()),
        "mean": float(s.mean()),
    }
