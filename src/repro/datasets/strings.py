"""Synthetic string datasets (DNA-like sequences) for the edit-distance examples.

Motivating example (1) of the paper: "searching similar DNA or protein
sequences in a large genetics database".  We synthesise families of sequences
by mutating a set of ancestor sequences, so that near-neighbour structure
exists by construction (sequences within a family are a small edit distance
apart).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import as_rng

__all__ = ["SequenceFamilyConfig", "generate_sequences", "mutate"]

DNA_ALPHABET = "ACGT"


@dataclass(frozen=True)
class SequenceFamilyConfig:
    """Parameters for the mutated-family sequence generator."""

    n_sequences: int = 1000
    n_families: int = 20
    length: int = 60
    mutation_rate: float = 0.08
    alphabet: str = DNA_ALPHABET


def mutate(seq: str, rate: float, rng: np.random.Generator, alphabet: str = DNA_ALPHABET) -> str:
    """Apply point mutations (substitute / insert / delete) at the given rate."""
    out = []
    letters = list(alphabet)
    for ch in seq:
        r = rng.random()
        if r < rate / 3:
            continue  # deletion
        if r < 2 * rate / 3:
            out.append(letters[rng.integers(0, len(letters))])  # substitution
            continue
        if r < rate:
            out.append(letters[rng.integers(0, len(letters))])  # insertion
        out.append(ch)
    return "".join(out) if out else letters[rng.integers(0, len(letters))]


def generate_sequences(
    cfg: SequenceFamilyConfig,
    seed: int | np.random.Generator | None = 0,
) -> tuple[list[str], np.ndarray]:
    """Generate sequences clustered into mutation families.

    Returns ``(sequences, family_ids)``.
    """
    rng = as_rng(seed)
    letters = np.array(list(cfg.alphabet))
    ancestors = [
        "".join(letters[rng.integers(0, len(letters), size=cfg.length)])
        for _ in range(cfg.n_families)
    ]
    families = rng.integers(0, cfg.n_families, size=cfg.n_sequences)
    seqs = [mutate(ancestors[f], cfg.mutation_rate, rng, cfg.alphabet) for f in families]
    return seqs, families
