"""A live DHT node: Chord-over-RPC on :class:`repro.net.transport.TcpTransport`.

One :class:`NodeProcess` hosts one overlay node — as an asyncio task inside a
test or :class:`~repro.net.cluster.LocalCluster`, or as an OS process via
``repro node``.  It reuses the repository's algorithm layers unchanged:

* ring arithmetic and ownership — :mod:`repro.dht.idspace` /
  :mod:`repro.dht.hashing` (same ``(pred, self]`` intervals and rotation
  offsets the simulator uses, so placement agrees with the simulated ring);
* index hashing and local solving — :mod:`repro.core.lph` and
  :meth:`repro.core.storage.Shard.range_search` (the exact code path the
  simulator's query protocol executes per node);
* durability — :class:`repro.core.storage.PersistentShard`: every accepted
  insert batch is WAL-logged before it is acknowledged, and overlay state
  (successor list, predecessor) is checkpointed to ``meta.json``, so a
  SIGKILLed node restarts with a bit-identical shard and warm ring hints.

Stabilisation is the classic Chord triad (``stabilize`` / ``notify`` /
successor-list repair) expressed as request/response RPCs instead of the
simulator's shared-memory callback sends — the message *pattern* matches
:mod:`repro.dht.stabilize`, but each step awaits a real network round trip
and treats :class:`~repro.net.transport.RpcTimeout` as a failure detector.
Routing uses successor walks (plus full-ring snapshots for batch placement);
finger tables are future work for live clusters beyond tens of nodes —
docs/deployment.md discusses the trade-off.
"""

from __future__ import annotations

import asyncio
import bisect
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.index_space import IndexSpaceBounds
from repro.core.lph import smallest_enclosing_prefix
from repro.core.storage import PersistentShard
from repro.dht.hashing import node_id, rotation_offset
from repro.dht.idspace import in_interval_open, in_interval_open_closed
from repro.net.transport import RpcError, RpcTimeout, TcpTransport
from repro.sim.transport import FaultConfig, TraceSink

__all__ = ["NodeConfig", "NodeProcess", "MAX_ROUTE_HOPS"]

#: routing-loop guard: a successor walk longer than this aborts loudly
MAX_ROUTE_HOPS = 512


@dataclass
class NodeConfig:
    """Everything a live node needs to boot (CLI flags map 1:1 onto this)."""

    name: str
    data_dir: str
    m: int = 32
    k: int = 2
    bounds_low: float = 0.0
    bounds_high: float = 1000.0
    index_name: str = "index"
    bind: str = "127.0.0.1"
    port: int = 0
    bootstrap: str | None = None
    succ_list_len: int = 4
    stabilize_interval: float = 0.25
    rpc_timeout: float = 2.0
    fmt: str = "json"
    seed: int = 0
    host: int = 0
    fsync: bool = False
    faults: FaultConfig = field(default_factory=FaultConfig)

    @property
    def bounds(self) -> IndexSpaceBounds:
        return IndexSpaceBounds.uniform(self.k, self.bounds_low, self.bounds_high)


class NodeProcess:
    """One live overlay node (see module docstring)."""

    def __init__(self, config: NodeConfig, trace: TraceSink | None = None,
                 metrics: Any = None) -> None:
        self.config = config
        self.m = config.m
        self.id = node_id(config.name, config.m)
        self.rotation = rotation_offset(config.index_name, config.m)
        self.bounds = config.bounds
        self.transport = TcpTransport(
            node_id=self.id,
            host=config.host,
            faults=config.faults,
            trace=trace,
            metrics=metrics,
            fmt=config.fmt,
            seed=config.seed,
            rpc_timeout=config.rpc_timeout,
        )
        self.shard = PersistentShard(config.data_dir, config.k, fsync=config.fsync)
        self.predecessor: dict[str, Any] | None = None
        self.successors: list[dict[str, Any]] = []
        self._stabilize_task: asyncio.Task[None] | None = None
        self._running = False

    # -- identity ---------------------------------------------------------------

    @property
    def addr(self) -> str:
        return self.transport.addr

    def entry(self) -> dict[str, Any]:
        """This node as a ring entry (``{"id", "addr", "name"}``)."""
        return {"id": self.id, "addr": self.addr, "name": self.config.name}

    @property
    def successor(self) -> dict[str, Any]:
        return self.successors[0] if self.successors else self.entry()

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> str:
        """Bind, recover persisted state, join the ring, start stabilising."""
        await self.transport.start(self.config.bind, self.config.port)
        self._register_rpcs()
        self._recover_overlay_state()
        await self._join()
        self._running = True
        self._stabilize_task = asyncio.get_running_loop().create_task(
            self._stabilize_loop())
        return self.addr

    async def close(self) -> None:
        """Graceful local shutdown (crash tests just SIGKILL the process)."""
        self._running = False
        if self._stabilize_task is not None:
            self._stabilize_task.cancel()
            self._stabilize_task = None
        await self.transport.close()
        self.shard.close()

    def _recover_overlay_state(self) -> None:
        meta = self.shard.meta
        succ = meta.get("successors")
        if isinstance(succ, list):
            # stale addresses are fine: stabilisation times out and repairs
            self.successors = [e for e in succ if e.get("addr") != self.addr]
        pred = meta.get("predecessor")
        if isinstance(pred, dict):
            self.predecessor = pred

    def _persist_overlay_state(self) -> None:
        self.shard.set_meta(
            successors=self.successors[: self.config.succ_list_len],
            predecessor=self.predecessor,
            node_id=self.id,
            name=self.config.name,
            addr=self.addr,
        )

    async def _join(self) -> None:
        bootstrap = self.config.bootstrap
        candidates: list[str] = []
        if bootstrap:
            candidates.append(bootstrap)
        # a restarting node can rejoin through any peer it remembers
        candidates.extend(e["addr"] for e in self.successors)
        for cand in candidates:
            if cand == self.addr:
                continue
            try:
                succ = await self.transport.rpc(
                    cand, "find_successor", {"target": self.id})
                self.successors = [succ]
                self._persist_overlay_state()
                return
            except (RpcError, OSError):
                continue
        # nobody reachable: start (or continue) as a one-node ring
        self.successors = []
        self.predecessor = None
        self._persist_overlay_state()

    # -- stabilisation (Chord stabilize/notify over RPC) ------------------------

    async def _stabilize_loop(self) -> None:
        interval = self.config.stabilize_interval
        while self._running:
            try:
                await self._stabilize_once()
                await self._check_predecessor()
            except asyncio.CancelledError:
                raise
            except (RpcError, OSError):  # transient; next round retries
                pass
            await asyncio.sleep(interval)

    async def _check_predecessor(self) -> None:
        """Clear a dead predecessor so its live one can re-notify us."""
        pred = self.predecessor
        if pred is None or pred["addr"] == self.addr:
            return
        try:
            await self.transport.rpc(pred["addr"], "ping", None)
        except RpcTimeout:
            self.predecessor = None
            self._persist_overlay_state()

    async def _stabilize_once(self) -> None:
        succ = self.successor
        if succ["addr"] == self.addr:
            # single-node ring: adopt anyone who notified us
            if self.predecessor is not None and self.predecessor["addr"] != self.addr:
                self.successors = [self.predecessor]
            return
        try:
            pred = await self.transport.rpc(succ["addr"], "get_predecessor", None)
        except RpcTimeout:
            self._drop_successor(succ)
            return
        if (
            isinstance(pred, dict)
            and pred.get("addr") != self.addr
            and in_interval_open(int(pred["id"]), self.id, int(succ["id"]), self.m)
        ):
            succ = pred
            self.successors = [succ] + self.successors
        try:
            await self.transport.rpc(succ["addr"], "notify", self.entry())
            succ_list = await self.transport.rpc(succ["addr"], "get_successor_list", None)
        except RpcTimeout:
            self._drop_successor(succ)
            return
        chain = [succ] + [e for e in succ_list if e["addr"] != self.addr]
        deduped: list[dict[str, Any]] = []
        seen: set[str] = set()
        for e in chain:
            if e["addr"] not in seen:
                seen.add(e["addr"])
                deduped.append(e)
        self.successors = deduped[: self.config.succ_list_len]
        self._persist_overlay_state()

    def _drop_successor(self, dead: dict[str, Any]) -> None:
        """Failure detector fired: promote the next live successor."""
        self.successors = [e for e in self.successors if e["addr"] != dead["addr"]]
        self._persist_overlay_state()

    # -- routing ----------------------------------------------------------------

    async def find_successor(self, target: int) -> dict[str, Any]:
        """Owner of ring position ``target`` via a successor walk."""
        cur = self.entry()
        succ = self.successor
        if succ["addr"] == self.addr:
            return cur
        for _ in range(MAX_ROUTE_HOPS):
            if in_interval_open_closed(target, int(cur["id"]), int(succ["id"]), self.m):
                return succ
            nxt = await self.transport.rpc(succ["addr"], "get_successor", None)
            cur, succ = succ, nxt
        raise RpcError(f"find_successor({target}) exceeded {MAX_ROUTE_HOPS} hops")

    async def ring_snapshot(self) -> list[dict[str, Any]]:
        """All live ring members, by walking successors from this node."""
        members = [self.entry()]
        seen = {self.addr}
        cur = self.successor
        for _ in range(MAX_ROUTE_HOPS):
            if cur["addr"] in seen:
                break
            members.append(dict(cur))
            seen.add(cur["addr"])
            cur = await self.transport.rpc(cur["addr"], "get_successor", None)
        members.sort(key=lambda e: int(e["id"]))
        return members

    def owns(self, rotated_key: int) -> bool:
        """Ownership test: rotated key in ``(predecessor, self]``."""
        if self.predecessor is None:
            return True
        return in_interval_open_closed(
            rotated_key, int(self.predecessor["id"]), self.id, self.m)

    # -- data plane -------------------------------------------------------------

    def _rotate(self, keys: np.ndarray) -> np.ndarray:
        size = np.uint64(1 << self.m) if self.m < 64 else None
        rot = keys.astype(np.uint64) + np.uint64(self.rotation)
        return rot % size if size is not None else rot

    async def route_insert(self, keys: np.ndarray, points: np.ndarray,
                           object_ids: np.ndarray) -> int:
        """Place a batch on its owners (one ``insert`` RPC per owner).

        Returns the number of entries durably accepted.  Placement uses a
        ring snapshot: correct whenever stabilisation has converged, which
        the cluster demo and tests await first.
        """
        ring = await self.ring_snapshot()
        rotated = self._rotate(np.asarray(keys, dtype=np.uint64))
        ids_ring = np.asarray([int(e["id"]) for e in ring], dtype=np.uint64)
        # owner of key t = first ring id >= t, cyclically
        slot = np.searchsorted(ids_ring, rotated, side="left") % len(ring)
        accepted = 0
        for s in range(len(ring)):
            mask = slot == s
            if not mask.any():
                continue
            payload = {
                "keys": np.asarray(keys, dtype=np.uint64)[mask],
                "points": np.asarray(points, dtype=np.float64)[mask],
                "ids": np.asarray(object_ids, dtype=np.int64)[mask],
            }
            reply = await self.transport.rpc(ring[s]["addr"], "insert", payload)
            accepted += int(reply["accepted"])
        return accepted

    async def range_query(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Distributed range query: object ids of entries inside the rect.

        Coordinator side of the paper's pipeline: smallest enclosing prefix
        → cuboid key interval → rotated ring arc → one ``range_solve`` RPC
        per arc owner → union of locally solved ids.
        """
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        prefix_key, prefix_len = smallest_enclosing_prefix(
            lows, highs, self.bounds, self.m)
        key_lo = prefix_key
        key_hi = prefix_key + (1 << (self.m - prefix_len)) - 1
        size = 1 << self.m
        rot_lo = (key_lo + self.rotation) % size
        rot_hi = (key_hi + self.rotation) % size
        ring = await self.ring_snapshot()
        owners = _owners_for_arc(ring, rot_lo, rot_hi, self.m)
        payload = {
            "lows": lows,
            "highs": highs,
            "key_lo": key_lo,
            "key_hi": key_hi,
        }
        collected: list[np.ndarray] = []
        for owner in owners:
            reply = await self.transport.rpc(owner["addr"], "range_solve", payload)
            collected.append(reply["ids"])
        if not collected:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(collected)).astype(np.int64)

    # -- RPC surface ------------------------------------------------------------

    def _register_rpcs(self) -> None:
        t = self.transport
        t.register_rpc("ping", self._rpc_ping)
        t.register_rpc("get_successor", self._rpc_get_successor)
        t.register_rpc("get_successor_list", self._rpc_get_successor_list)
        t.register_rpc("get_predecessor", self._rpc_get_predecessor)
        t.register_rpc("notify", self._rpc_notify)
        t.register_rpc("find_successor", self._rpc_find_successor)
        t.register_rpc("insert", self._rpc_insert)
        t.register_rpc("route_insert", self._rpc_route_insert)
        t.register_rpc("range_solve", self._rpc_range_solve)
        t.register_rpc("query", self._rpc_query)
        t.register_rpc("status", self._rpc_status)
        t.register_rpc("snapshot", self._rpc_snapshot)

    async def _rpc_ping(self, payload: Any, src: dict[str, Any]) -> Any:
        return self.entry()

    async def _rpc_get_successor(self, payload: Any, src: dict[str, Any]) -> Any:
        return self.successor

    async def _rpc_get_successor_list(self, payload: Any, src: dict[str, Any]) -> Any:
        return self.successors[: self.config.succ_list_len]

    async def _rpc_get_predecessor(self, payload: Any, src: dict[str, Any]) -> Any:
        return self.predecessor

    async def _rpc_notify(self, payload: Any, src: dict[str, Any]) -> Any:
        cand = payload
        if (
            self.predecessor is None
            or self.predecessor["addr"] == self.addr
            or in_interval_open(
                int(cand["id"]), int(self.predecessor["id"]), self.id, self.m)
        ):
            self.predecessor = dict(cand)
            self._persist_overlay_state()
        return {"ok": True}

    async def _rpc_find_successor(self, payload: Any, src: dict[str, Any]) -> Any:
        return await self.find_successor(int(payload["target"]))

    async def _rpc_insert(self, payload: Any, src: dict[str, Any]) -> Any:
        keys = payload["keys"]
        seq = self.shard.add(keys, payload["points"], payload["ids"])
        return {"accepted": int(len(keys)), "seq": int(seq)}

    async def _rpc_route_insert(self, payload: Any, src: dict[str, Any]) -> Any:
        accepted = await self.route_insert(
            payload["keys"], payload["points"], payload["ids"])
        return {"accepted": accepted}

    async def _rpc_range_solve(self, payload: Any, src: dict[str, Any]) -> Any:
        pos = self.shard.shard.range_search(
            payload["lows"], payload["highs"],
            key_lo=int(payload["key_lo"]), key_hi=int(payload["key_hi"]))
        ids = self.shard.shard.object_ids[pos]
        return {"ids": np.asarray(ids, dtype=np.int64)}

    async def _rpc_query(self, payload: Any, src: dict[str, Any]) -> Any:
        ids = await self.range_query(payload["lows"], payload["highs"])
        return {"ids": ids}

    async def _rpc_status(self, payload: Any, src: dict[str, Any]) -> Any:
        return {
            "id": self.id,
            "name": self.config.name,
            "addr": self.addr,
            "predecessor": self.predecessor,
            "successors": self.successors[: self.config.succ_list_len],
            "entries": int(len(self.shard.shard)),
            "digest": self.shard.digest(),
            "wal_records": self.shard.wal_records,
            "stats": {
                "sent": self.transport.stats.sent,
                "delivered": self.transport.stats.delivered,
            },
        }

    async def _rpc_snapshot(self, payload: Any, src: dict[str, Any]) -> Any:
        """Fold the WAL into the snapshot (compaction; also an ops hook)."""
        self.shard.snapshot()
        return {"ok": True, "digest": self.shard.digest()}


def _owners_for_arc(ring: list[dict[str, Any]], lo: int, hi: int,
                    m: int) -> list[dict[str, Any]]:
    """Ring members whose ownership arc intersects the rotated ``[lo, hi]``.

    ``ring`` is sorted by id; member ``i`` owns ``(id[i-1], id[i]]``
    (cyclically).  The arc may wrap.
    """
    if not ring:
        return []
    if len(ring) == 1:
        return list(ring)
    ids = [int(e["id"]) for e in ring]
    n = len(ring)
    size = 1 << m
    lo %= size
    hi %= size
    # first owner: successor of lo on the ring
    start = bisect.bisect_left(ids, lo) % n
    # walk clockwise until an owner's id reaches hi's arc position; the
    # membership test `hi in (pred, id]` is wrong here — a near-full arc can
    # wrap past every node and end inside the *first* owner's interval
    arc_len = (hi - lo) % size
    owners = []
    i = start
    for _ in range(n):
        owners.append(ring[i])
        if (ids[i] - lo) % size >= arc_len:
            break
        i = (i + 1) % n
    return owners
